// E11 -- End-to-end ALGO (paper Sec. 9) in the synchronous simulator:
// Byzantine-strategy sweep at the paper's headline operating points
// (f = 1, n = d+1 and f = 2, n = (d+1)f), reporting agreement, the achieved
// relaxation delta, the Theorem 9/12 budget, and protocol costs.
#include "bench_util.h"

#include "consensus/algo_relaxed.h"
#include "consensus/exact_bvc.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "hull/gamma.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace {

using namespace rbvc;

double achieved_delta(const workload::SyncOutcome& out) {
  double worst = 0.0;
  for (const Vec& dec : out.decisions) {
    worst = std::max(worst,
                     distance_to_hull(dec, out.honest_inputs, 2.0));
  }
  return worst;
}

void report() {
  std::printf("E11: ALGO end-to-end under live Byzantine strategies\n");
  const workload::SyncStrategy strategies[] = {
      workload::SyncStrategy::kSilent, workload::SyncStrategy::kEquivocate,
      workload::SyncStrategy::kLyingRelay,
      workload::SyncStrategy::kOutlierInput};

  {
    rbvc::bench::Table t({"d", "n", "strategy", "agreed", "achieved delta",
                          "Thm 9 budget", "ratio", "msgs", "rounds"});
    Rng rng(777);
    for (std::size_t d : {3u, 4u, 6u}) {
      for (const auto strat : strategies) {
        workload::SyncExperiment e;
        e.n = d + 1;
        e.f = 1;
        e.honest_inputs = workload::gaussian_cloud(rng, d, d);
        e.byzantine_ids = {rng.below(e.n)};
        e.strategy = strat;
        e.decision = consensus::algo_decision(1);
        e.seed = rng.next_u64();
        const auto out = workload::run_sync_experiment(e);
        const auto ee = edge_extremes(out.honest_inputs);
        const double budget = std::min(
            ee.min_edge / 2.0, ee.max_edge / double(e.n - 2));
        const double delta = achieved_delta(out);
        t.add_row({std::to_string(d), std::to_string(e.n),
                   workload::to_string(strat),
                   check_agreement(out.decisions).identical ? "yes" : "NO",
                   rbvc::bench::Table::num(delta),
                   rbvc::bench::Table::num(budget),
                   rbvc::bench::Table::num(delta / budget),
                   std::to_string(out.stats.messages),
                   std::to_string(out.stats.rounds)});
      }
    }
    t.print("f = 1, n = d+1 (one process below the exact-BVC bound)");
  }

  {
    rbvc::bench::Table t({"d", "f", "n", "strategy", "agreed",
                          "achieved delta", "Thm 12 budget", "ratio",
                          "msgs"});
    Rng rng(778);
    const std::size_t d = 3, f = 2, n = (d + 1) * f;
    for (const auto strat : strategies) {
      workload::SyncExperiment e;
      e.n = n;
      e.f = f;
      e.honest_inputs = workload::gaussian_cloud(rng, n - f, d);
      e.byzantine_ids = {1, 5};
      e.strategy = strat;
      e.decision = consensus::algo_decision(f);
      e.seed = rng.next_u64();
      const auto out = workload::run_sync_experiment(e);
      const auto ee = edge_extremes(out.honest_inputs);
      const double budget = ee.max_edge / double(d - 1);
      const double delta = achieved_delta(out);
      t.add_row({std::to_string(d), std::to_string(f), std::to_string(n),
                 workload::to_string(strat),
                 check_agreement(out.decisions).identical ? "yes" : "NO",
                 rbvc::bench::Table::num(delta),
                 rbvc::bench::Table::num(budget),
                 rbvc::bench::Table::num(delta / budget),
                 std::to_string(out.stats.messages)});
    }
    t.print("f = 2, n = (d+1)f");
  }

  // Who-wins comparison: exact BVC at n = d+1 fails on simplex-like honest
  // inputs where ALGO succeeds.
  {
    rbvc::bench::Table t({"algorithm", "n", "result"});
    Rng rng(779);
    const std::size_t d = 3;
    const auto honest = workload::random_simplex(rng, d);
    workload::SyncExperiment e;
    e.n = d + 1;
    e.f = 1;
    e.honest_inputs = {honest[0], honest[1], honest[2]};
    e.byzantine_ids = {3};
    e.strategy = workload::SyncStrategy::kOutlierInput;
    e.seed = 99;
    e.decision = consensus::exact_bvc_decision(1);
    const auto exact_out = workload::run_sync_experiment(e);
    t.add_row({"exact BVC (Vaidya-Garg)", std::to_string(e.n),
               exact_out.decision_failed ? "FAILS (Gamma empty)"
                                         : "succeeded (inputs benign)"});
    e.decision = consensus::algo_decision(1);
    const auto algo_out = workload::run_sync_experiment(e);
    t.add_row({"ALGO (input-dependent delta)", std::to_string(e.n),
               algo_out.decision_failed
                   ? "FAILS (UNEXPECTED)"
                   : "succeeds, delta = " +
                         rbvc::bench::Table::num(achieved_delta(algo_out))});
    t.print("Headline comparison at n = d+1 = 4, f = 1, d = 3");
  }
}

void BM_AlgoRun(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  Rng rng(d);
  workload::SyncExperiment e;
  e.n = d + 1;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, d, d);
  e.byzantine_ids = {0};
  e.strategy = workload::SyncStrategy::kEquivocate;
  e.decision = consensus::algo_decision(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::run_sync_experiment(e));
  }
}
BENCHMARK(BM_AlgoRun)->Arg(3)->Arg(5)->Arg(8);

// Episode sweep across the worker pool: the property-harness fan-out
// pattern, timed. Each episode derives its experiment from
// seed_sequence(base, ep) exactly as check_property does, so per-iteration
// wall time at --jobs N vs --jobs 1 is the harness speedup.
void BM_AlgoEpisodeSweep(benchmark::State& state) {
  const std::size_t episodes = static_cast<std::size_t>(state.range(0));
  const std::size_t jobs = rbvc::bench::bench_jobs();
  exec::ParallelExecutor pool(jobs);
  for (auto _ : state) {
    pool.parallel_for(episodes, [](std::size_t ep) {
      Rng rng(seed_sequence(1234, ep));
      workload::SyncExperiment e;
      const std::size_t d = 4;
      e.n = d + 1;
      e.f = 1;
      e.honest_inputs = workload::gaussian_cloud(rng, d, d);
      e.byzantine_ids = {rng.below(e.n)};
      e.strategy = workload::SyncStrategy::kEquivocate;
      e.decision = consensus::algo_decision(1);
      e.seed = rng.next_u64();
      benchmark::DoNotOptimize(workload::run_sync_experiment(e));
    });
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["episodes_per_s"] = benchmark::Counter(
      static_cast<double>(episodes), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_AlgoEpisodeSweep)->Arg(32)->UseRealTime();

}  // namespace

RBVC_BENCH_MAIN(report)
