// E7 -- Appendix B / Theorem 4 (asynchronous k-relaxed, n = d+2, f = 1):
// the gamma/2-epsilon matrix forces the output sets Psi^1 and Psi^2 of
// processes 1 and 2 at least 2*epsilon apart in Linf, breaking
// epsilon-agreement. We compute the exact minimum gap by LP and sweep
// epsilon and d.
#include "bench_util.h"

#include "hull/psi.h"
#include "workload/adversarial_inputs.h"

namespace {

using namespace rbvc;

RelaxedIntersectionSpec psi_spec(const std::vector<Vec>& s, std::size_t i) {
  RelaxedIntersectionSpec spec;
  spec.parts = workload::async_proof_subsets(s, i);
  spec.k = 2;
  return spec;
}

void report() {
  std::printf(
      "E7: Appendix B -- forced Linf gap between Psi^1 and Psi^2 (k = 2)\n");
  rbvc::bench::Table t({"d", "gamma", "eps", "min gap", "2*eps", "verdict"});
  for (std::size_t d : {3u, 4u, 5u}) {
    for (double eps : {0.05, 0.1, 0.2, 0.4}) {
      const double gamma = 1.0;
      if (2.0 * eps >= gamma) continue;
      const auto s = workload::appendix_b_inputs(d, gamma, eps);
      const auto gap =
          relaxed_intersection_linf_gap(psi_spec(s, 0), psi_spec(s, 1));
      const bool ok = gap && *gap >= 2.0 * eps - 1e-7;
      t.add_row({std::to_string(d), rbvc::bench::Table::num(gamma, 3),
                 rbvc::bench::Table::num(eps, 3),
                 gap ? rbvc::bench::Table::num(*gap) : "(empty)",
                 rbvc::bench::Table::num(2.0 * eps, 3),
                 ok ? "gap >= 2eps (matches App. B)" : "UNEXPECTED"});
    }
  }
  t.print("Minimum Linf distance between forced output sets");

  std::printf(
      "\nInterpretation: any algorithm at n = d+2 must place process 1's\n"
      "output in Psi^1 and process 2's in Psi^2; the gap certifies the\n"
      "epsilon-agreement violation, so n >= (d+2)f+1 is necessary (Thm 4).\n");

  // Control: all pairwise gaps for the first four processes.
  rbvc::bench::Table t2({"pair", "min gap"});
  const auto s = workload::appendix_b_inputs(3, 1.0, 0.2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      const auto gap =
          relaxed_intersection_linf_gap(psi_spec(s, i), psi_spec(s, j));
      t2.add_row({"Psi^" + std::to_string(i + 1) + " vs Psi^" +
                      std::to_string(j + 1),
                  gap ? rbvc::bench::Table::num(*gap) : "(empty)"});
    }
  }
  t2.print("All pairwise output-set gaps (d = 3, eps = 0.2)");
}

void BM_AppendixBGap(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto s = workload::appendix_b_inputs(d, 1.0, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        relaxed_intersection_linf_gap(psi_spec(s, 0), psi_spec(s, 1)));
  }
}
BENCHMARK(BM_AppendixBGap)->Arg(3)->Arg(4)->Arg(5);

}  // namespace

RBVC_BENCH_MAIN(report)
