// E9 -- Appendix C / Theorem 6 (asynchronous (delta,inf)-relaxed, f = 1,
// n = d+2): the scaled-basis matrix forces the output sets of processes 1
// and 2 more than epsilon apart once x > 2*d*delta + epsilon. We chart the
// forced gap as a function of x and verify the flip point's shape.
#include "bench_util.h"

#include "hull/psi.h"
#include "workload/adversarial_inputs.h"

namespace {

using namespace rbvc;

std::optional<double> forced_gap(std::size_t d, double x, double delta) {
  const auto s = workload::appendix_c_inputs(d, x);
  RelaxedIntersectionSpec p1, p2;
  p1.parts = workload::async_proof_subsets(s, 0);
  p1.k = 0;
  p1.delta = delta;
  p1.p = kInfNorm;
  p2 = p1;
  p2.parts = workload::async_proof_subsets(s, 1);
  return relaxed_intersection_linf_gap(p1, p2);
}

void report() {
  std::printf(
      "E9: Appendix C -- forced output gap vs x (delta-relaxed, async)\n");
  const double delta = 0.2, eps = 0.3;
  rbvc::bench::Table t({"d", "x", "paper threshold 2d*delta+eps",
                        "forced gap", "gap > eps?"});
  for (std::size_t d : {2u, 3u, 4u}) {
    const double thresh = 2.0 * double(d) * delta + eps;
    for (double factor : {0.5, 0.9, 1.05, 1.5, 2.5}) {
      const double x = thresh * factor;
      const auto gap = forced_gap(d, x, delta);
      t.add_row({std::to_string(d), rbvc::bench::Table::num(x),
                 rbvc::bench::Table::num(thresh),
                 gap ? rbvc::bench::Table::num(*gap) : "(empty)",
                 gap && *gap > eps ? "yes -> eps-agreement broken"
                                   : "no"});
    }
  }
  t.print("Forced Linf gap between processes 1 and 2");
  std::printf(
      "\nShape check: the gap is 0 below the paper's threshold and exceeds\n"
      "eps above it -- hence n = d+2 is insufficient and n >= (d+2)f+1 is\n"
      "necessary for constant-delta asynchronous consensus (Theorem 6).\n");
}

void BM_AppendixCGap(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(forced_gap(d, 2.0 * double(d), 0.2));
  }
}
BENCHMARK(BM_AppendixCGap)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

RBVC_BENCH_MAIN(report)
