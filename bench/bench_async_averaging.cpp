// E12 -- Relaxed Verified Averaging (paper Sec. 10) in the asynchronous
// simulator: epsilon-agreement vs averaging rounds, operation below the
// classic (d+2)f+1 bound, round-0 relaxation statistics, and the exact
// baseline for comparison.
#include "bench_util.h"

#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace {

using namespace rbvc;
using Rule = consensus::AsyncAveragingProcess::Round0Rule;

workload::AsyncOutcome run(std::size_t n, std::size_t f, std::size_t d,
                           std::size_t rounds, Rule rule,
                           workload::AsyncStrategy strat, std::uint64_t seed,
                           workload::SchedulerKind sched =
                               workload::SchedulerKind::kRandom) {
  Rng rng(seed);
  workload::AsyncExperiment e;
  e.prm.n = n;
  e.prm.f = f;
  e.prm.rounds = rounds;
  e.prm.rule = rule;
  e.d = d;
  e.honest_inputs = workload::gaussian_cloud(rng, n - 1, d);
  e.byzantine_ids = {n - 1};
  e.strategy = strat;
  e.scheduler = sched;
  e.seed = rng.next_u64();
  return workload::run_async_experiment(e);
}

void report() {
  std::printf("E12: Relaxed Verified Averaging (asynchronous)\n");

  // Convergence vs rounds (n = 4 < (d+2)f+1 = 5 for d = 3!).
  {
    rbvc::bench::Table t({"rounds", "max pairwise Linf", "mean round0 delta",
                          "deliveries", "validity excess (kappa=1)"});
    for (std::size_t rounds : {1u, 2u, 4u, 8u, 12u}) {
      const auto out = run(4, 1, 3, rounds, Rule::kRelaxedL2,
                           workload::AsyncStrategy::kOutlierInput, 4242);
      if (out.failed) {
        t.add_row({std::to_string(rounds), "FAILED", "-", "-", "-"});
        continue;
      }
      double mean_delta = 0.0;
      for (double dl : out.round0_deltas) mean_delta += dl;
      mean_delta /= double(out.round0_deltas.size());
      t.add_row(
          {std::to_string(rounds),
           rbvc::bench::Table::num(
               check_agreement(out.decisions).max_pairwise_linf),
           rbvc::bench::Table::num(mean_delta),
           std::to_string(out.stats.deliveries),
           rbvc::bench::Table::num(delta_p_validity_excess(
               out.decisions, out.honest_inputs,
               input_dependent_delta(out.honest_inputs, 1.0), 2.0))});
    }
    t.print("Convergence vs rounds (n=4, f=1, d=3 -- BELOW (d+2)f+1)");
  }

  // Strategy sweep at fixed rounds.
  {
    rbvc::bench::Table t({"strategy", "scheduler", "agreed to 0.05",
                          "validity excess", "deliveries"});
    for (auto strat : {workload::AsyncStrategy::kSilent,
                       workload::AsyncStrategy::kEquivocate,
                       workload::AsyncStrategy::kOutlierInput}) {
      for (auto sched : {workload::SchedulerKind::kRandom,
                         workload::SchedulerKind::kLaggard}) {
        const auto out = run(4, 1, 3, 8, Rule::kRelaxedL2, strat, 999, sched);
        if (out.failed) {
          t.add_row({workload::to_string(strat),
                     sched == workload::SchedulerKind::kRandom ? "random"
                                                               : "laggard",
                     "FAILED", "-", "-"});
          continue;
        }
        t.add_row(
            {workload::to_string(strat),
             sched == workload::SchedulerKind::kRandom ? "random" : "laggard",
             check_epsilon_agreement(out.decisions, 0.05) ? "yes" : "no",
             rbvc::bench::Table::num(delta_p_validity_excess(
                 out.decisions, out.honest_inputs,
                 input_dependent_delta(out.honest_inputs, 1.0), 2.0)),
             std::to_string(out.stats.deliveries)});
      }
    }
    t.print("Byzantine strategy x scheduler sweep (n=4, f=1, d=3)");
  }

  // Ablation: the witness exchange. Without the common-core wait, correct
  // processes may advance on views sharing as few as n-2f values; measure
  // what that costs in agreement quality and what it saves in traffic.
  {
    // n = 7, f = 2, a single averaging round, worst over 30 schedules: the
    // witness wait is what keeps divergent views from surfacing as spread.
    rbvc::bench::Table t({"witness", "rounds", "worst spread (30 seeds)",
                          "mean spread"});
    for (bool witness : {true, false}) {
      for (std::size_t rounds : {1u, 3u}) {
        double worst = 0.0, sum = 0.0;
        int ok = 0;
        for (std::uint64_t seed = 1; seed <= 30; ++seed) {
          Rng rng(seed);
          workload::AsyncExperiment e;
          e.prm.n = 7;
          e.prm.f = 2;
          e.prm.rounds = rounds;
          e.prm.rule = Rule::kRelaxedL2;
          e.prm.use_witness = witness;
          e.d = 3;
          e.honest_inputs = workload::gaussian_cloud(rng, 5, 3);
          e.byzantine_ids = {1, 4};
          e.strategy = workload::AsyncStrategy::kOutlierInput;
          e.seed = seed * 31;
          const auto out = workload::run_async_experiment(e);
          if (out.failed) continue;
          const double s = check_agreement(out.decisions).max_pairwise_linf;
          worst = std::max(worst, s);
          sum += s;
          ++ok;
        }
        t.add_row({witness ? "on" : "OFF", std::to_string(rounds),
                   rbvc::bench::Table::num(worst),
                   rbvc::bench::Table::num(sum / std::max(1, ok))});
      }
    }
    t.print("Ablation: witness exchange on/off (n=7, f=2, two Byzantine "
            "outliers)");
  }

  // Relaxed vs exact baseline across n.
  {
    rbvc::bench::Table t({"n", "rule", "outcome", "mean round0 delta"});
    for (std::size_t n : {4u, 5u, 6u}) {
      for (Rule rule : {Rule::kRelaxedL2, Rule::kExactGamma}) {
        const auto out = run(n, 1, 3, 6, rule,
                             workload::AsyncStrategy::kOutlierInput, 31415);
        std::string outcome;
        double mean_delta = 0.0;
        if (out.failed) {
          outcome = "FAILS";
        } else {
          outcome = "succeeds";
          for (double dl : out.round0_deltas) mean_delta += dl;
          mean_delta /= double(std::max<std::size_t>(
              1, out.round0_deltas.size()));
        }
        t.add_row({std::to_string(n),
                   rule == Rule::kExactGamma ? "exact Gamma" : "relaxed L2",
                   outcome, rbvc::bench::Table::num(mean_delta)});
      }
    }
    t.print("Who wins: exact baseline needs n >= (d+2)f+1 = 5; relaxed "
            "works from n = 3f+1 = 4");
  }
}

void BM_AsyncRun(benchmark::State& state) {
  const std::size_t rounds = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(4, 1, 3, rounds, Rule::kRelaxedL2,
                                 workload::AsyncStrategy::kSilent, seed++));
  }
}
BENCHMARK(BM_AsyncRun)->Arg(2)->Arg(6);

// Episode sweep across the worker pool (see bench_algo_end2end.cpp): the
// async harness fan-out, timed at --jobs N.
void BM_AsyncEpisodeSweep(benchmark::State& state) {
  const std::size_t episodes = static_cast<std::size_t>(state.range(0));
  const std::size_t jobs = rbvc::bench::bench_jobs();
  exec::ParallelExecutor pool(jobs);
  for (auto _ : state) {
    pool.parallel_for(episodes, [](std::size_t ep) {
      benchmark::DoNotOptimize(run(4, 1, 3, 6, Rule::kRelaxedL2,
                                   workload::AsyncStrategy::kOutlierInput,
                                   seed_sequence(777, ep)));
    });
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["episodes_per_s"] = benchmark::Counter(
      static_cast<double>(episodes), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_AsyncEpisodeSweep)->Arg(32)->UseRealTime();

}  // namespace

RBVC_BENCH_MAIN(report)
