// E3 -- Empirical probe of Conjectures 1-3 (paper Sec. 9.2.2/9.3):
//
//   Conjecture 1: for 3f+1 <= n < (d+1)f,
//       delta*(S) < max-edge(E+) / (floor(n/f) - 2).
//   Conjecture 3: the Lp version with the d^(1/2-1/p) factor.
//
// For each grid point we sample random and clustered inputs, compute
// delta*(S) numerically, take the worst case over all C(n,f) faulty-set
// choices for E+, and report the maximum observed ratio. Ratios below 1
// are (empirical) support; a ratio above 1 would be a counterexample.
#include "bench_util.h"

#include <cmath>

#include "geometry/simplex_geometry.h"
#include "hull/delta_star.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

double worst_honest_maxedge(const std::vector<Vec>& s, std::size_t f,
                            double p) {
  const std::size_t n = s.size();
  double worst = kInfNorm;
  // Enumerate index subsets of size f (f <= 3 here).
  std::vector<std::size_t> comb(f);
  for (std::size_t i = 0; i < f; ++i) comb[i] = i;
  while (true) {
    std::vector<Vec> honest;
    for (std::size_t i = 0; i < n; ++i) {
      bool faulty = false;
      for (std::size_t c : comb) faulty = faulty || (c == i);
      if (!faulty) honest.push_back(s[i]);
    }
    worst = std::min(worst, edge_extremes(honest, p).max_edge);
    // next combination
    std::size_t i = f;
    while (i-- > 0) {
      if (comb[i] != i + n - f) {
        ++comb[i];
        for (std::size_t j = i + 1; j < f; ++j) comb[j] = comb[j - 1] + 1;
        break;
      }
      if (i == 0) return worst;
    }
  }
}

void report() {
  std::printf(
      "E3: Conjecture 1 probe -- delta* vs max-edge(E+)/(floor(n/f)-2)\n");
  {
    rbvc::bench::Table t(
        {"d", "f", "n", "workload", "reps", "max ratio", "verdict"});
    Rng rng(31337);
    struct Case {
      std::size_t d, f, n;
    };
    const Case cases[] = {
        {5, 2, 7},  {5, 2, 9},  {5, 2, 11}, {6, 2, 7},
        {6, 2, 10}, {4, 3, 10}, {4, 3, 11},
    };
    for (const auto& c : cases) {
      for (const char* wl : {"gaussian", "clustered"}) {
        const int reps = 5;
        double max_ratio = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
          const auto s = (wl[0] == 'g')
                             ? workload::gaussian_cloud(rng, c.n, c.d)
                             : workload::clustered(rng, c.n, c.d, 3.0);
          MinimaxOptions opts;
          opts.iters = 1200;
          opts.polish_iters = 300;
          const auto ds = delta_star_2(s, c.f, kTol, opts);
          const double denom = double(c.n / c.f) - 2.0;
          const double bound = worst_honest_maxedge(s, c.f, 2.0) / denom;
          max_ratio = std::max(max_ratio, ds.value / bound);
        }
        t.add_row({std::to_string(c.d), std::to_string(c.f),
                   std::to_string(c.n), wl, std::to_string(reps),
                   rbvc::bench::Table::num(max_ratio),
                   max_ratio < 1.0 ? "supports" : "COUNTEREXAMPLE?"});
      }
    }
    t.print("Conjecture 1: 3f+1 <= n < (d+1)f");
  }

  // Conjecture 3: Lp scaling, p in {3, 4}.
  {
    rbvc::bench::Table t({"d", "f", "n", "p", "max ratio", "verdict"});
    Rng rng(271828);
    for (double p : {3.0, 4.0}) {
      const std::size_t d = 5, f = 2, n = 9;
      double max_ratio = 0.0;
      for (int rep = 0; rep < 4; ++rep) {
        const auto s = workload::gaussian_cloud(rng, n, d);
        MinimaxOptions opts;
        opts.iters = 800;
        opts.polish_iters = 200;
        const auto ds = delta_star_p(s, f, p, kTol, opts);
        const double denom = double(n / f) - 2.0;
        const double factor = std::pow(double(d), 0.5 - 1.0 / p);
        const double bound =
            factor * worst_honest_maxedge(s, f, p) / denom;
        max_ratio = std::max(max_ratio, ds.value / bound);
      }
      t.add_row({std::to_string(d), std::to_string(f), std::to_string(n),
                 rbvc::bench::Table::num(p, 2),
                 rbvc::bench::Table::num(max_ratio),
                 max_ratio < 1.0 ? "supports" : "COUNTEREXAMPLE?"});
    }
    t.print("Conjecture 3: Lp version with d^(1/2-1/p) factor");
  }
}

void BM_ConjectureGridPoint(benchmark::State& state) {
  Rng rng(5);
  const std::size_t d = 5, f = 2, n = static_cast<std::size_t>(state.range(0));
  const auto s = workload::gaussian_cloud(rng, n, d);
  MinimaxOptions opts;
  opts.iters = 400;
  opts.polish_iters = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_star_2(s, f, kTol, opts).value);
  }
}
BENCHMARK(BM_ConjectureGridPoint)->Arg(7)->Arg(9)->Arg(11);

}  // namespace

RBVC_BENCH_MAIN(report)
