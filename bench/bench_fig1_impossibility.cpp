// E5 -- Figure 1 / Lemma 10: (delta,p)-relaxed BVC is impossible with
// n <= 3f, reproduced as an executable scenario.
//
// The proof joins two copies of a 3-process system into a hexagonal ring
// p0 q0 r0 p1 q1 r1 with inputs 0,0,0,1,1,1. Every adjacent pair's local
// view is indistinguishable from a genuine 3-process execution in which the
// third process is Byzantine (it "bridges" the two ring halves). Hence:
//   * pairs whose inputs agree must, by (delta,p)-relaxed validity with
//     input-dependent delta (= kappa * 0 here), decide exactly their common
//     input;
//   * every adjacent pair must agree (exact consensus).
// Chasing these constraints around the ring forces 0 = 1. We run the ring
// with a concrete deterministic decision rule and print which constraints
// break -- for ANY rule at least one must.
#include "bench_util.h"

#include "hull/delta_star.h"
#include "linalg/vec.h"
#include "protocols/bracha_rbc.h"
#include "protocols/om_broadcast.h"

namespace {

using namespace rbvc;

constexpr std::size_t kD = 2;  // vector dimension for the demo

Vec ring_decide(const Vec& left, const Vec& own, const Vec& right) {
  // The candidate algorithm under test: ALGO's step-2 geometry on the
  // 3-value multiset with f = 1 (any deterministic rule would do).
  return delta_star_2({left, own, right}, 1).point;
}

void report() {
  std::printf(
      "E5: Figure 1 hexagon -- impossibility of (delta,p)-relaxed consensus "
      "with n = 3, f = 1\n");

  const Vec zero = zeros(kD);
  const Vec one(kD, 1.0);
  const char* names[6] = {"p0", "q0", "r0", "p1", "q1", "r1"};
  const Vec inputs[6] = {zero, zero, zero, one, one, one};

  // Full-information ring execution: each process learns its two ring
  // neighbors' (honestly reported) inputs and decides.
  Vec decisions[6];
  for (int i = 0; i < 6; ++i) {
    const Vec& left = inputs[(i + 5) % 6];
    const Vec& right = inputs[(i + 1) % 6];
    decisions[i] = ring_decide(left, inputs[i], right);
  }

  {
    rbvc::bench::Table t({"process", "input", "decision"});
    for (int i = 0; i < 6; ++i) {
      t.add_row({names[i], to_string(inputs[i]), to_string(decisions[i])});
    }
    t.print("Ring execution (scenario A)");
  }

  // Constraint audit.
  rbvc::bench::Table t({"constraint", "from scenario", "status"});
  int violations = 0;
  auto check = [&](const std::string& label, const std::string& scenario,
                   bool ok) {
    t.add_row({label, scenario, ok ? "satisfied" : "VIOLATED"});
    if (!ok) ++violations;
  };
  // Validity constraints: same-input adjacent pairs must output the input
  // (their pair scenario has identical honest inputs -> max-edge(E+) = 0 ->
  // the relaxation budget collapses to delta = 0).
  const int same_pairs[4][2] = {{0, 1}, {1, 2}, {3, 4}, {4, 5}};
  for (const auto& pr : same_pairs) {
    const bool ok =
        approx_equal(decisions[pr[0]], inputs[pr[0]], 1e-9) &&
        approx_equal(decisions[pr[1]], inputs[pr[1]], 1e-9);
    check(std::string("validity: ") + names[pr[0]] + "," + names[pr[1]] +
              " -> " + to_string(inputs[pr[0]]),
          std::string("B-like (third process Byzantine)"), ok);
  }
  // Agreement constraints: every adjacent pair must decide identically.
  for (int i = 0; i < 6; ++i) {
    const int j = (i + 1) % 6;
    check(std::string("agreement: ") + names[i] + " == " + names[j],
          "C-like (middle process Byzantine)",
          approx_equal(decisions[i], decisions[j], 1e-9));
  }
  t.print("Indistinguishability constraint audit");
  std::printf(
      "\n%d constraint(s) violated -- as Lemma 10 proves, no deterministic "
      "rule can satisfy all of them at n = 3f.\n",
      violations);

  // The protocol layer enforces the same bound up front: both broadcast
  // primitives refuse n = 3, f = 1.
  rbvc::bench::Table guard({"primitive", "n", "f", "construction"});
  auto probe = [&](const char* name, auto make) {
    try {
      make();
      guard.add_row({name, "3", "1", "accepted (BUG)"});
    } catch (const invalid_argument&) {
      guard.add_row({name, "3", "1", "rejected: needs n >= 3f+1"});
    }
  };
  probe("EIG broadcast", [] {
    protocols::EigConsensusProcess p(3, 1, 0, zeros(kD), zeros(kD),
                                     [](const std::vector<Vec>& s) {
                                       return s.front();
                                     });
  });
  probe("Bracha RBC", [] { protocols::BrachaRbc rbc(3, 1, 0); });
  guard.print("Protocol-level guardrails");
}

void BM_RingDecision(benchmark::State& state) {
  const Vec a = zeros(kD), b(kD, 1.0), c(kD, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring_decide(a, b, c));
  }
}
BENCHMARK(BM_RingDecision);

}  // namespace

RBVC_BENCH_MAIN(report)
