// E13 -- The feasibility frontier: for a grid of (d, f, n), which consensus
// variants are solvable? This regenerates the paper's Section 1 story as a
// single matrix:
//   exact BVC            needs n >= max(3f+1, (d+1)f+1)   [Thm 1]
//   k-relaxed, 2<=k<d    needs n >= (d+1)f+1              [Thm 3]
//   1-relaxed            needs n >= 3f+1                  [Sec. 5.3]
//   (delta,p) const dlt  needs n >= (d+1)f+1              [Thm 5]
//   input-dependent dlt  needs n >= 3f+1                  [Thm 9/12, ALGO]
//
// "Solvable" is decided operationally: run the decision rule on worst-case
// inputs (the paper's constructions where available, random simplex-style
// otherwise) and observe success or certified infeasibility.
#include "bench_util.h"

#include "consensus/algo_relaxed.h"
#include "consensus/exact_bvc.h"
#include "consensus/k_relaxed.h"
#include "geometry/tverberg.h"
#include "hull/gamma.h"
#include "hull/psi.h"
#include "workload/adversarial_inputs.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace {

using namespace rbvc;

// Worst-case-ish inputs for a given (n, d): the Thm 3 matrix when n = d+1,
// otherwise a mix of moment-curve points (general position).
std::vector<Vec> hard_inputs(std::size_t n, std::size_t d) {
  if (n == d + 1 && d >= 3) return workload::thm3_inputs(d, 1.0, 0.5);
  return moment_curve_points(n, d);
}

const char* solvable_exact(const std::vector<Vec>& s, std::size_t f) {
  return gamma_point(s, f).has_value() ? "yes" : "NO";
}

const char* solvable_k(const std::vector<Vec>& s, std::size_t f,
                       std::size_t k) {
  if (gamma_point(s, f).has_value()) return "yes";
  return psi_k_point(s, f, k).has_value() ? "yes" : "NO";
}

void report() {
  std::printf("E13: feasibility frontier on worst-case inputs\n");
  rbvc::bench::Table t({"d", "f", "n", "exact BVC", "k=2 relaxed",
                        "k=1 relaxed", "input-dep delta (ALGO)",
                        "achieved delta*"});
  for (std::size_t d : {3u, 4u, 5u}) {
    const std::size_t f = 1;
    for (std::size_t n : {3 * f + 1, d + 1, (d + 1) * f + 1}) {
      if (n < 3 * f + 1) continue;
      const auto s = hard_inputs(n, d);
      const auto ds = delta_star_2(s, f);
      t.add_row({std::to_string(d), std::to_string(f), std::to_string(n),
                 solvable_exact(s, f), solvable_k(s, f, 2),
                 "yes",  // coordinate-median always applies at n >= 3f+1
                 "yes",  // ALGO always decides; delta* says at what cost
                 rbvc::bench::Table::num(ds.value)});
    }
  }
  t.print("Frontier (f = 1; inputs: Thm-3 matrix at n = d+1, moment curve "
          "otherwise)");

  // Footnote 3: with an authenticated broadcast channel the 3f+1 floor
  // disappears -- ALGO runs end-to-end at n = 3, f = 1.
  {
    rbvc::bench::Table t2({"backend", "n", "f", "run", "agreed"});
    Rng rng(4711);
    workload::SyncExperiment e;
    e.n = 3;
    e.f = 1;
    e.honest_inputs = workload::gaussian_cloud(rng, 2, 2);
    e.byzantine_ids = {1};
    e.strategy = workload::SyncStrategy::kOutlierInput;
    e.decision = consensus::algo_decision(1);
    e.backend = workload::SyncBackend::kDolevStrong;
    const auto out = workload::run_sync_experiment(e);
    t2.add_row({"Dolev-Strong (signatures)", "3", "1",
                out.decision_failed ? "FAILS" : "succeeds",
                out.decisions.size() == 2 &&
                        out.decisions[0] == out.decisions[1]
                    ? "yes"
                    : "no"});
    t2.add_row({"EIG (unauthenticated)", "3", "1",
                "impossible (Lemma 10 / n >= 3f+1)", "-"});
    t2.print("Footnote 3: broadcast channel removes the 3f+1 floor");
  }
  std::printf(
      "\nReading: exact BVC and k>=2 relaxed consensus flip from NO to yes\n"
      "exactly at n = (d+1)f+1, while 1-relaxed and input-dependent-delta\n"
      "consensus stay solvable all the way down to n = 3f+1 -- the paper's\n"
      "central message (relaxation helps only when delta depends on the\n"
      "inputs, or when k = 1).\n");
}

void BM_FrontierPoint(benchmark::State& state) {
  const std::size_t d = 4;
  const auto s = hard_inputs(d + 1, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gamma_point(s, 1).has_value());
    benchmark::DoNotOptimize(psi_k_point(s, 1, 2).has_value());
  }
}
BENCHMARK(BM_FrontierPoint);

}  // namespace

RBVC_BENCH_MAIN(report)
