// E14 -- Ablation of the geometry engines: the three point-to-hull distance
// paths (Wolfe exact L2, LP exact L1/Linf, Frank-Wolfe iterative), the
// delta* paths (closed-form inradius vs LP bisection vs minimax), and the
// Psi encodings (halfplane fast path vs barycentric lambda-LP). Accuracy
// agreement is printed first; timings follow.
#include "bench_util.h"

#include <chrono>
#include <cmath>

#include "geometry/simplex_geometry.h"
#include "hull/delta_star.h"
#include "hull/gamma.h"
#include "geometry/hull.h"
#include "hull/psi.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

// The pre-warm-start delta* algorithm: gamma precheck, then a fresh
// Gamma_delta LP built and cold-solved per bisection probe, with the
// initial upper bound also computed via per-subset cold LPs (no shared
// solver). Kept here as the baseline the warm-started delta_star_linear
// is measured against; it must not touch the lp.warm.* counters.
double gamma_excess_cold(const Vec& u, const std::vector<Vec>& y,
                         std::size_t f, double p) {
  double worst = 0.0;
  for (const auto& t : drop_f_subsets(y, f)) {
    worst = std::max(worst,
                     detail::lp_projection_via_lp(u, t, p, kTol).distance);
  }
  return worst;
}

double delta_star_linear_cold(const std::vector<Vec>& s, std::size_t f,
                              double p) {
  if (gamma_point(s, f)) return 0.0;
  double lo = 0.0;
  double hi = gamma_excess_cold(mean(s), s, f, p);
  const double scale = std::max(1.0, hi);
  while (hi - lo > kTol * scale) {
    const double mid = 0.5 * (lo + hi);
    if (gamma_delta_point_linear(s, f, mid, p)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

void report() {
  std::printf("E14: geometry-engine ablation (accuracy cross-checks)\n");

  {
    rbvc::bench::Table t({"d", "n", "Wolfe L2", "FW L2 (2k iters)",
                          "|diff|", "LP Linf", "Wolfe-lower-bounds-Linf"});
    Rng rng(55);
    for (std::size_t d : {3u, 6u, 10u}) {
      const auto pts = workload::gaussian_cloud(rng, d + 3, d);
      const Vec u = scale(3.0, rng.normal_vec(d));
      const double w = detail::wolfe_min_norm(u, pts, kTol).distance;
      const double fw =
          detail::lp_projection_frank_wolfe(u, pts, 2.0).distance;
      const double li =
          detail::lp_projection_via_lp(u, pts, kInfNorm, kTol).distance;
      t.add_row({std::to_string(d), std::to_string(d + 3),
                 rbvc::bench::Table::num(w), rbvc::bench::Table::num(fw),
                 rbvc::bench::Table::num(std::abs(w - fw)),
                 rbvc::bench::Table::num(li),
                 li <= w + 1e-9 ? "yes" : "NO"});
    }
    t.print("Distance engines on identical instances");
  }

  {
    rbvc::bench::Table t({"d", "inradius (closed form)",
                          "minimax (numerical)", "rel err"});
    Rng rng(66);
    for (std::size_t d : {3u, 5u, 7u}) {
      const auto s = workload::random_simplex(rng, d);
      const auto g = SimplexGeometry::build(s);
      MinimaxOptions opts;
      opts.iters = 2000;
      opts.polish_iters = 400;
      const auto mm = min_max_hull_distance(drop_f_subsets(s, 1), mean(s),
                                            opts);
      t.add_row({std::to_string(d), rbvc::bench::Table::num(g->inradius()),
                 rbvc::bench::Table::num(mm.value),
                 rbvc::bench::Table::num(
                     std::abs(mm.value - g->inradius()) / g->inradius())});
    }
    t.print("delta* closed form vs numerical minimax");
  }

  {
    // Warm-started bisection vs the cold baseline, sequential episodes
    // (the --jobs 1 configuration of the episode sweeps). This runs in the
    // report phase so lp.warm.* counters land in the metrics JSON even
    // when the timed iterations are filtered out.
    constexpr std::size_t kEpisodes = 32;
    Rng rng(77);
    std::vector<std::vector<Vec>> episodes;
    episodes.reserve(kEpisodes);
    for (std::size_t i = 0; i < kEpisodes; ++i) {
      episodes.push_back(workload::random_simplex(rng, 4));
    }

    using clock = std::chrono::steady_clock;
    auto seconds = [](clock::duration dur) {
      return std::chrono::duration<double>(dur).count();
    };

    const auto cold_t0 = clock::now();
    double cold_acc = 0.0;
    for (const auto& s : episodes) {
      cold_acc += delta_star_linear_cold(s, 1, kInfNorm);
    }
    const double cold_s = seconds(clock::now() - cold_t0);

    obs::Registry& reg = obs::global();
    const std::uint64_t attempts0 = reg.counter("lp.warm.attempts").value();
    const std::uint64_t hits0 = reg.counter("lp.warm.hits").value();
    const auto warm_t0 = clock::now();
    double warm_acc = 0.0;
    for (const auto& s : episodes) {
      warm_acc += delta_star_linear(s, 1, kInfNorm).value;
    }
    const double warm_s = seconds(clock::now() - warm_t0);
    const std::uint64_t attempts =
        reg.counter("lp.warm.attempts").value() - attempts0;
    const std::uint64_t hits = reg.counter("lp.warm.hits").value() - hits0;
    const double hit_rate =
        attempts ? static_cast<double>(hits) / static_cast<double>(attempts)
                 : 0.0;
    // Workload-scoped copies of the counters, so the metrics JSON reports
    // the delta*-bisection hit rate separately from whatever else in the
    // process touched the warm solver.
    reg.counter("bench.delta_star_bisection.warm.attempts").inc(attempts);
    reg.counter("bench.delta_star_bisection.warm.hits").inc(hits);

    rbvc::bench::Table t(
        {"path", "episodes", "time (s)", "episodes/s", "warm hit rate"});
    t.add_row({"cold per-probe LP", std::to_string(kEpisodes),
               rbvc::bench::Table::num(cold_s),
               rbvc::bench::Table::num(kEpisodes / cold_s), "-"});
    t.add_row({"warm bisection", std::to_string(kEpisodes),
               rbvc::bench::Table::num(warm_s),
               rbvc::bench::Table::num(kEpisodes / warm_s),
               rbvc::bench::Table::num(hit_rate)});
    t.print("delta* Linf bisection episodes, --jobs 1");
    std::printf("warm-vs-cold speedup: %.2fx   |sum diff|: %.3g\n",
                cold_s / warm_s, std::abs(cold_acc - warm_acc));
  }
}

void BM_WolfeProjection(benchmark::State& state) {
  Rng rng(1);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto pts = workload::gaussian_cloud(rng, d + 4, d);
  const Vec u = scale(3.0, rng.normal_vec(d));
  for (auto _ : state) {
    benchmark::DoNotOptimize(detail::wolfe_min_norm(u, pts, kTol).distance);
  }
}
BENCHMARK(BM_WolfeProjection)->Arg(3)->Arg(6)->Arg(12);

void BM_LpProjectionLinf(benchmark::State& state) {
  Rng rng(2);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto pts = workload::gaussian_cloud(rng, d + 4, d);
  const Vec u = scale(3.0, rng.normal_vec(d));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detail::lp_projection_via_lp(u, pts, kInfNorm, kTol).distance);
  }
}
BENCHMARK(BM_LpProjectionLinf)->Arg(3)->Arg(6)->Arg(12);

void BM_FrankWolfe(benchmark::State& state) {
  Rng rng(3);
  const auto pts = workload::gaussian_cloud(rng, 10, 6);
  const Vec u = scale(3.0, rng.normal_vec(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detail::lp_projection_frank_wolfe(
            u, pts, 3.0, static_cast<std::size_t>(state.range(0)))
            .distance);
  }
}
BENCHMARK(BM_FrankWolfe)->Arg(200)->Arg(2000);

void BM_HullMembership(benchmark::State& state) {
  Rng rng(4);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto pts = workload::gaussian_cloud(rng, 2 * d, d);
  const Vec u = rng.normal_vec(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in_hull(u, pts));
  }
}
BENCHMARK(BM_HullMembership)->Arg(3)->Arg(6)->Arg(12);

void BM_PsiHalfplanePath(benchmark::State& state) {
  Rng rng(5);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto y = workload::gaussian_cloud(rng, d + 2, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi_k_point(y, 1, 2).has_value());
  }
}
BENCHMARK(BM_PsiHalfplanePath)->Arg(3)->Arg(5)->Arg(7);

void BM_PsiLambdaPath(benchmark::State& state) {
  Rng rng(6);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto y = workload::gaussian_cloud(rng, d + 2, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi_k_point(y, 1, 3).has_value());
  }
}
BENCHMARK(BM_PsiLambdaPath)->Arg(3)->Arg(5);

void BM_DeltaStarBisectionWarm(benchmark::State& state) {
  Rng rng(8);
  const auto s = workload::random_simplex(
      rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_star_linear(s, 1, kInfNorm).value);
  }
}
BENCHMARK(BM_DeltaStarBisectionWarm)->Arg(3)->Arg(5)->Arg(7);

void BM_DeltaStarBisectionCold(benchmark::State& state) {
  Rng rng(8);
  const auto s = workload::random_simplex(
      rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_star_linear_cold(s, 1, kInfNorm));
  }
}
BENCHMARK(BM_DeltaStarBisectionCold)->Arg(3)->Arg(5)->Arg(7);

void BM_SimplexInradius(benchmark::State& state) {
  Rng rng(7);
  const auto s = workload::random_simplex(
      rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimplexGeometry::build(s)->inradius());
  }
}
BENCHMARK(BM_SimplexInradius)->Arg(3)->Arg(8)->Arg(16);

}  // namespace

RBVC_BENCH_MAIN(report)
