// E14 -- Ablation of the geometry engines: the three point-to-hull distance
// paths (Wolfe exact L2, LP exact L1/Linf, Frank-Wolfe iterative), the
// delta* paths (closed-form inradius vs LP bisection vs minimax), and the
// Psi encodings (halfplane fast path vs barycentric lambda-LP). Accuracy
// agreement is printed first; timings follow.
#include "bench_util.h"

#include <cmath>

#include "geometry/simplex_geometry.h"
#include "hull/delta_star.h"
#include "geometry/hull.h"
#include "hull/psi.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

void report() {
  std::printf("E14: geometry-engine ablation (accuracy cross-checks)\n");

  {
    rbvc::bench::Table t({"d", "n", "Wolfe L2", "FW L2 (2k iters)",
                          "|diff|", "LP Linf", "Wolfe-lower-bounds-Linf"});
    Rng rng(55);
    for (std::size_t d : {3u, 6u, 10u}) {
      const auto pts = workload::gaussian_cloud(rng, d + 3, d);
      const Vec u = scale(3.0, rng.normal_vec(d));
      const double w = detail::wolfe_min_norm(u, pts, kTol).distance;
      const double fw =
          detail::lp_projection_frank_wolfe(u, pts, 2.0).distance;
      const double li =
          detail::lp_projection_via_lp(u, pts, kInfNorm, kTol).distance;
      t.add_row({std::to_string(d), std::to_string(d + 3),
                 rbvc::bench::Table::num(w), rbvc::bench::Table::num(fw),
                 rbvc::bench::Table::num(std::abs(w - fw)),
                 rbvc::bench::Table::num(li),
                 li <= w + 1e-9 ? "yes" : "NO"});
    }
    t.print("Distance engines on identical instances");
  }

  {
    rbvc::bench::Table t({"d", "inradius (closed form)",
                          "minimax (numerical)", "rel err"});
    Rng rng(66);
    for (std::size_t d : {3u, 5u, 7u}) {
      const auto s = workload::random_simplex(rng, d);
      const auto g = SimplexGeometry::build(s);
      MinimaxOptions opts;
      opts.iters = 2000;
      opts.polish_iters = 400;
      const auto mm = min_max_hull_distance(drop_f_subsets(s, 1), mean(s),
                                            opts);
      t.add_row({std::to_string(d), rbvc::bench::Table::num(g->inradius()),
                 rbvc::bench::Table::num(mm.value),
                 rbvc::bench::Table::num(
                     std::abs(mm.value - g->inradius()) / g->inradius())});
    }
    t.print("delta* closed form vs numerical minimax");
  }
}

void BM_WolfeProjection(benchmark::State& state) {
  Rng rng(1);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto pts = workload::gaussian_cloud(rng, d + 4, d);
  const Vec u = scale(3.0, rng.normal_vec(d));
  for (auto _ : state) {
    benchmark::DoNotOptimize(detail::wolfe_min_norm(u, pts, kTol).distance);
  }
}
BENCHMARK(BM_WolfeProjection)->Arg(3)->Arg(6)->Arg(12);

void BM_LpProjectionLinf(benchmark::State& state) {
  Rng rng(2);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto pts = workload::gaussian_cloud(rng, d + 4, d);
  const Vec u = scale(3.0, rng.normal_vec(d));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detail::lp_projection_via_lp(u, pts, kInfNorm, kTol).distance);
  }
}
BENCHMARK(BM_LpProjectionLinf)->Arg(3)->Arg(6)->Arg(12);

void BM_FrankWolfe(benchmark::State& state) {
  Rng rng(3);
  const auto pts = workload::gaussian_cloud(rng, 10, 6);
  const Vec u = scale(3.0, rng.normal_vec(6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detail::lp_projection_frank_wolfe(
            u, pts, 3.0, static_cast<std::size_t>(state.range(0)))
            .distance);
  }
}
BENCHMARK(BM_FrankWolfe)->Arg(200)->Arg(2000);

void BM_HullMembership(benchmark::State& state) {
  Rng rng(4);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto pts = workload::gaussian_cloud(rng, 2 * d, d);
  const Vec u = rng.normal_vec(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(in_hull(u, pts));
  }
}
BENCHMARK(BM_HullMembership)->Arg(3)->Arg(6)->Arg(12);

void BM_PsiHalfplanePath(benchmark::State& state) {
  Rng rng(5);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto y = workload::gaussian_cloud(rng, d + 2, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi_k_point(y, 1, 2).has_value());
  }
}
BENCHMARK(BM_PsiHalfplanePath)->Arg(3)->Arg(5)->Arg(7);

void BM_PsiLambdaPath(benchmark::State& state) {
  Rng rng(6);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto y = workload::gaussian_cloud(rng, d + 2, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi_k_point(y, 1, 3).has_value());
  }
}
BENCHMARK(BM_PsiLambdaPath)->Arg(3)->Arg(5);

void BM_SimplexInradius(benchmark::State& state) {
  Rng rng(7);
  const auto s = workload::random_simplex(
      rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimplexGeometry::build(s)->inradius());
  }
}
BENCHMARK(BM_SimplexInradius)->Arg(3)->Arg(8)->Arg(16);

}  // namespace

RBVC_BENCH_MAIN(report)
