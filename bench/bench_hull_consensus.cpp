// E16 -- Convex Hull Consensus baseline (Tseng-Vaidya [16], the paper's
// related work, d = 2): the processes agree on the entire safe polygon
// Gamma(S). The bench regenerates the related-work claim that its tight
// bound matches exact BVC -- n >= (d+1)f + 1 = 3f + 1 for d = 2 -- and
// charts how the agreed polygon's area shrinks as f grows (the price of
// tolerating more faults is a smaller safe output region).
#include "bench_util.h"

#include "consensus/hull_consensus.h"
#include "hull/gamma.h"
#include "geometry/tverberg.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

void report() {
  std::printf("E16: 2-D convex hull consensus (related-work baseline)\n");

  {
    rbvc::bench::Table t({"f", "n", "inputs", "Gamma polygon", "area"});
    Rng rng(2718);
    for (std::size_t f : {1u, 2u}) {
      // At the bound and one below, on worst-case (moment curve) inputs.
      for (std::size_t n : {3 * f, 3 * f + 1, 3 * f + 3}) {
        if (n < f + 1) continue;
        const auto pts = moment_curve_points(n, 2);
        const auto poly = consensus::gamma_polygon(pts, f);
        t.add_row({std::to_string(f), std::to_string(n), "moment curve",
                   poly ? "non-empty" : "EMPTY",
                   poly ? rbvc::bench::Table::num(polygon_area(*poly))
                        : "-"});
      }
    }
    t.print("Feasibility flips at n = 3f+1 (d = 2)");
  }

  {
    rbvc::bench::Table t({"n", "f", "polygon area", "input hull area",
                          "area ratio"});
    Rng rng(3141);
    const auto pts = workload::gaussian_cloud(rng, 12, 2);
    std::vector<Point2> pts2;
    for (const Vec& p : pts) pts2.push_back({p[0], p[1]});
    const double full = polygon_area(convex_hull_2d(pts2));
    for (std::size_t f : {1u, 2u, 3u}) {
      const auto poly = consensus::gamma_polygon(pts, f);
      const double area = poly ? polygon_area(*poly) : 0.0;
      t.add_row({"12", std::to_string(f), rbvc::bench::Table::num(area),
                 rbvc::bench::Table::num(full),
                 rbvc::bench::Table::num(area / full)});
    }
    t.print("Safe-polygon shrinkage vs tolerated faults (12 random inputs)");
  }
  std::printf(
      "\nShape: the safe polygon loses area monotonically as f grows and\n"
      "vanishes exactly below n = 3f+1 -- the related work's bound equals\n"
      "the exact-BVC bound, supporting the paper's point that hull-valued\n"
      "outputs do not reduce n either.\n");
}

void BM_GammaPolygon(benchmark::State& state) {
  Rng rng(4);
  const auto pts = workload::gaussian_cloud(
      rng, static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(consensus::gamma_polygon(pts, 1));
  }
}
BENCHMARK(BM_GammaPolygon)->Arg(5)->Arg(8)->Arg(12);

void BM_GammaPolygonVsLp(benchmark::State& state) {
  // The polygon route vs the LP point route on the same instance.
  Rng rng(5);
  const auto pts = workload::gaussian_cloud(rng, 8, 2);
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(consensus::gamma_polygon(pts, 1));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(gamma_point(pts, 1));
    }
  }
}
BENCHMARK(BM_GammaPolygonVsLp)->Arg(0)->Arg(1);

}  // namespace

RBVC_BENCH_MAIN(report)
