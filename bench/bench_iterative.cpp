// E17 -- Iterative approximate BVC (related-work model, Vaidya [18]) vs
// the paper's full-information ALGO: convergence rate, message cost, and
// the price of the iterative model (needs the full (d+1)f+1 processes and
// only reaches epsilon-agreement).
#include "bench_util.h"

#include <cmath>

#include "consensus/algo_relaxed.h"
#include "consensus/iterative_bvc.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "sim/rng.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace {

using namespace rbvc;
using consensus::IterativeBvcProcess;

struct IterRun {
  double spread = 0.0;
  bool valid = false;
  std::size_t messages = 0;
};

IterRun run_iterative(std::size_t n, std::size_t f, std::size_t d,
                      std::size_t rounds, std::uint64_t seed) {
  Rng rng(seed);
  IterativeBvcProcess::Params prm;
  prm.n = n;
  prm.f = f;
  prm.rounds = rounds;
  sim::SyncEngine engine;
  std::vector<Vec> honest;
  std::vector<sim::ProcessId> correct;
  for (std::size_t id = 0; id < n; ++id) {
    if (id == 0 && f > 0) {
      // A silent fault (worst for liveness of the safe area).
      engine.add(std::make_unique<workload::SilentSyncProcess>());
    } else {
      honest.push_back(rng.normal_vec(d));
      engine.add(
          std::make_unique<IterativeBvcProcess>(prm, id, honest.back()));
      correct.push_back(id);
    }
  }
  const auto stats = engine.run(rounds + 2);
  IterRun out;
  std::vector<Vec> decisions;
  for (auto id : correct) {
    decisions.push_back(
        dynamic_cast<IterativeBvcProcess&>(engine.process(id)).decision());
  }
  out.spread = check_agreement(decisions).max_pairwise_linf;
  out.valid = check_exact_validity(decisions, honest, 1e-4);
  out.messages = stats.messages;
  return out;
}

void report() {
  std::printf("E17: iterative approximate BVC (related-work model)\n");

  {
    // With an OMISSION fault only n-1 values circulate each round, so the
    // safe area needs n - f >= (d+1)f + 1, i.e. n >= (d+2)f + 1 -- the
    // asynchronous bound resurfaces in the iterative model. At n = 5 the
    // processes hold (validity intact, zero progress); at n = 6 they
    // contract geometrically.
    rbvc::bench::Table t({"n", "rounds", "spread (Linf)", "valid",
                          "messages", "note"});
    for (std::size_t n : {5u, 6u}) {
      for (std::size_t rounds : {1u, 4u, 8u, 16u}) {
        const auto r = run_iterative(n, 1, 3, rounds, 424);
        t.add_row({std::to_string(n), std::to_string(rounds),
                   rbvc::bench::Table::num(r.spread),
                   r.valid ? "yes" : "NO", std::to_string(r.messages),
                   n == 5 ? "safe area empty: holds" : "contracts"});
      }
    }
    t.print("Contraction vs n under one silent fault (f=1, d=3): omission "
            "faults push the iterative model to n >= (d+2)f+1");
  }

  {
    // Cost/latency comparison with the paper's ALGO at the same (n, f, d).
    rbvc::bench::Table t({"algorithm", "agreement", "rounds", "messages",
                          "n needed"});
    Rng rng(707);
    workload::SyncExperiment e;
    e.n = 5;
    e.f = 1;
    e.honest_inputs = workload::gaussian_cloud(rng, 4, 3);
    e.byzantine_ids = {0};
    e.strategy = workload::SyncStrategy::kSilent;
    e.decision = consensus::algo_decision(1);
    const auto algo = workload::run_sync_experiment(e);
    t.add_row({"ALGO (full information)", "exact (bitwise)",
               std::to_string(algo.stats.rounds),
               std::to_string(algo.stats.messages), "3f+1"});
    const auto iter = run_iterative(6, 1, 3, 8, 909);
    t.add_row({"iterative safe-area (n=6)", "epsilon (" +
                   rbvc::bench::Table::num(iter.spread) + ")",
               "8", std::to_string(iter.messages), "(d+2)f+1 w/ omission"});
    t.print("ALGO (n=5) vs iterative (n=6) at f=1, d=3");
  }
  std::printf(
      "\nShape: the iterative model trades exact agreement for O(n^2)\n"
      "per-round traffic, and cannot use the paper's input-dependent\n"
      "relaxation (no common multiset ever exists) -- consistent with the\n"
      "gap Vaidya [18] reports between its necessary and sufficient\n"
      "conditions.\n");
}

void BM_IterativeRound(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_iterative(5, 1, 3, static_cast<std::size_t>(state.range(0)),
                      seed++));
  }
}
BENCHMARK(BM_IterativeRound)->Arg(2)->Arg(8);

}  // namespace

RBVC_BENCH_MAIN(report)
