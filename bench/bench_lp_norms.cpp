// E4 -- Theorem 14 / Conjecture 3: how delta* scales with the norm order p.
//
// For f = 1, n = d+1 random simplices the paper gives
//   delta*_p <= delta*_2 < kappa(n,f,d,2) max-edge_2
// and Theorem 14 converts the L2 bound to Lp with the factor d^(1/2-1/p).
// The table reports delta*_p across p together with both bound forms; the
// "shape" claim is monotone decrease in p and ratios below 1.
#include "bench_util.h"

#include <cmath>

#include "geometry/simplex_geometry.h"
#include "hull/delta_star.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

void report() {
  std::printf("E4: Lp-norm scaling of delta* (Theorem 14)\n");
  rbvc::bench::Table t({"d", "p", "mean delta*_p", "mean delta*_2",
                        "max ratio vs Thm14 bound", "monotone in p"});
  Rng rng(16180);
  for (std::size_t d : {3u, 4u, 5u}) {
    const int reps = 10;
    std::vector<double> prev_vals(reps, kInfNorm);
    // Regenerate identical simplices for every p via a fixed per-d seed.
    for (double p : {2.0, 3.0, 4.0, kInfNorm}) {
      Rng local(d * 977);
      double sum_p = 0.0, sum_2 = 0.0, max_ratio = 0.0;
      bool monotone = true;
      for (int rep = 0; rep < reps; ++rep) {
        const auto s = workload::random_simplex(local, d);
        const auto d2 = delta_star_2(s, 1);
        MinimaxOptions opts;
        opts.iters = 600;
        opts.polish_iters = 150;
        const auto dp = delta_star_p(s, 1, p, kTol, opts);
        sum_p += dp.value;
        sum_2 += d2.value;
        // Theorem 14: delta*_p < d^(1/2-1/p) kappa maxedge_p with
        // kappa = 1/(n-2) = 1/(d-1) (Theorem 9's second bound).
        const double factor = (p >= kInfNorm)
                                  ? std::sqrt(double(d))
                                  : std::pow(double(d), 0.5 - 1.0 / p);
        const double bound = factor *
                             edge_extremes(s, p).max_edge /
                             double(d - 1);
        max_ratio = std::max(max_ratio, dp.value / bound);
        // Tolerance covers the Frank-Wolfe accuracy of the general-p path.
        if (dp.value > prev_vals[rep] * 1.03 + 5e-3) monotone = false;
        prev_vals[rep] = dp.value;
      }
      t.add_row({std::to_string(d),
                 p >= kInfNorm ? "inf" : rbvc::bench::Table::num(p, 2),
                 rbvc::bench::Table::num(sum_p / reps),
                 rbvc::bench::Table::num(sum_2 / reps),
                 rbvc::bench::Table::num(max_ratio),
                 monotone ? "yes" : "NO"});
    }
  }
  t.print("delta*_p across p (f=1, n=d+1 random simplices)");
  std::printf(
      "\nNote: delta*_p is non-increasing in p (norm ordering); all ratios\n"
      "stay below 1, matching Theorem 14's scaled bound.\n");
}

void BM_DeltaStarByNorm(benchmark::State& state) {
  Rng rng(6);
  const auto s = workload::random_simplex(rng, 4);
  const double p = state.range(0) == 0 ? kInfNorm
                                       : static_cast<double>(state.range(0));
  MinimaxOptions opts;
  opts.iters = 300;
  opts.polish_iters = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_star_p(s, 1, p, kTol, opts).value);
  }
}
BENCHMARK(BM_DeltaStarByNorm)->Arg(1)->Arg(2)->Arg(3)->Arg(0);

}  // namespace

RBVC_BENCH_MAIN(report)
