// E16 -- Bounded model checking costs: states and runs explored by the
// exhaustive explorer (src/mc) on small RBC and sync instances, the
// sleep-set reduction ratio as the event bound deepens, and raw
// states-per-second throughput at several frontier widths.
#include "bench_util.h"

#include "harness/exhaustive.h"
#include "harness/property.h"
#include "workload/runner.h"

namespace {

using namespace rbvc;

/// Commuting-heavy Bracha instance (one broadcaster, one silent fault):
/// the depth knob is the event bound, so the tree grows geometrically and
/// sleep-set reduction compounds with depth.
workload::RbcExperiment rbc_instance(std::size_t max_events) {
  workload::RbcExperiment e;
  e.n = 4;
  e.f = 1;
  e.byzantine_ids = {3};
  e.strategy = workload::AsyncStrategy::kSilent;
  e.honest_inputs = {Vec{1.0}, Vec{2.0}, Vec{3.0}};
  e.broadcasters = {0};
  e.max_events = max_events;
  e.seed = 11;
  return e;
}

harness::ExhaustiveProperty<harness::RbcRunner> rbc_property(
    std::size_t max_events, bool por, std::size_t jobs) {
  harness::ExhaustiveProperty<harness::RbcRunner> prop;
  prop.name = "bench_mc_rbc";
  prop.experiment = rbc_instance(max_events);
  prop.oracle = harness::rbc_safety_oracle();
  prop.judge_truncated = true;  // safety clauses are prefix-sound
  prop.options.por = por;
  prop.options.jobs = jobs;
  return prop;
}

void report() {
  std::printf("E16: bounded model checking (src/mc) costs\n");

  {
    // The reduction ratio vs depth: naive enumeration against sleep sets
    // on the same instance. This is the ISSUE's >= 5x claim, measured.
    rbvc::bench::Table t({"max_events", "naive states", "naive runs",
                          "POR states", "POR runs", "state ratio"});
    for (std::size_t depth : {3u, 4u, 5u}) {
      const auto naive =
          harness::check_property_exhaustive(rbc_property(depth, false, 1));
      const auto por =
          harness::check_property_exhaustive(rbc_property(depth, true, 1));
      t.add_row({std::to_string(depth), std::to_string(naive.stats.states),
                 std::to_string(naive.stats.runs),
                 std::to_string(por.stats.states),
                 std::to_string(por.stats.runs),
                 rbvc::bench::Table::num(double(naive.stats.states) /
                                         double(por.stats.states))});
    }
    t.print("sleep-set reduction vs event bound (Bracha RBC, n=4 f=1)");
  }

  {
    // The sync boundary proof from the mc test suite: the whole adversary
    // space of a choice-driven equivocator is 2^(n-1) leaves, so states
    // count the decision-tree edges, not schedulings.
    rbvc::bench::Table t({"n", "runs", "states", "verdict"});
    for (std::size_t n : {4u, 5u, 6u}) {
      workload::SyncExperiment e;
      e.n = n;
      e.f = 1;
      e.backend = workload::SyncBackend::kDolevStrong;
      e.strategy = workload::SyncStrategy::kChoiceEquivocate;
      e.rule = workload::SyncRule::kKRelaxed;
      e.k = 2;
      e.byzantine_ids = {n - 1};
      for (std::size_t i = 0; i + 1 < n; ++i) {
        e.honest_inputs.push_back(Vec{double(10 * (i == 0)),
                                      double(10 * (i == 1))});
      }
      e.seed = 7;
      harness::ExhaustiveProperty<harness::SyncRunner> prop;
      prop.name = "bench_mc_sync";
      prop.experiment = e;
      prop.oracle = harness::sync_decide_agree_valid_oracle(1e-9, 1.0);
      const auto res = harness::check_property_exhaustive(prop);
      t.add_row({std::to_string(n), std::to_string(res.stats.runs),
                 std::to_string(res.stats.states),
                 res.passed ? "proved" : "violated"});
    }
    t.print("sync equivocator enumeration at the (d+1)f+1 boundary");
  }
}

/// Raw explorer throughput: full exhaustive sweeps of the RBC instance,
/// counting every explored state (tree edge) against real time.
void BM_McStatesPerSecond(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  const bool por = state.range(1) != 0;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto res =
        harness::check_property_exhaustive(rbc_property(depth, por, 1));
    states += res.stats.states;
    benchmark::DoNotOptimize(res);
  }
  state.counters["states"] = static_cast<double>(states) /
                             static_cast<double>(state.iterations());
  state.counters["states_per_s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McStatesPerSecond)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->UseRealTime();

/// Frontier parallelism: the same exhaustive sweep with the DFS frontier
/// fanned across the worker pool (subtree-per-worker, pinned roots).
void BM_McFrontierSweep(benchmark::State& state) {
  const std::size_t depth = 5;
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto res =
        harness::check_property_exhaustive(rbc_property(depth, false, jobs));
    states += res.stats.states;
    benchmark::DoNotOptimize(res);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["states_per_s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McFrontierSweep)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

RBVC_BENCH_MAIN(report)
