// E17 -- Cluster throughput: decided-instances/s and decision latency
// (p50/p99) for a 4-node consensus cluster under pipelined client load,
// over loopback TCP (real sockets + wire codec) and over the in-process
// LocalBus (upper bound: transport cost only). The table quantifies what
// the network layer costs relative to the protocol itself; the metrics
// gauges land in BENCH_e2e.json for trajectory diffing.
//
// `--trace` adds a flight-recorder overhead pass: after the table runs
// above have warmed the process, the TCP load runs with the event recorder
// disabled (obs::events::set_enabled(false)) and then enabled, best of 3
// each, and the decided-instances/s delta lands in
// net.bench.trace_overhead_pct. The recorder's budget is a few relaxed
// stores per event, so the target is < 5%.
#include "bench_util.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "net/load.h"
#include "net/local_bus.h"
#include "net/node.h"
#include "net/tcp_transport.h"
#include "obs/events.h"

namespace {

using namespace rbvc;

constexpr std::size_t kNodes = 4;
constexpr std::size_t kFaults = 1;

net::ConsensusNode::Params node_params() {
  net::ConsensusNode::Params p;
  p.prm.n = kNodes;
  p.prm.f = kFaults;
  p.prm.rounds = 2;
  return p;
}

/// Runs the node fleet on real threads while `body(client)` drives load.
template <class Body>
void with_fleet(std::vector<net::Transport*> endpoints, Body body) {
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<net::ConsensusNode>> nodes;
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < kNodes; ++id) {
    nodes.push_back(
        std::make_unique<net::ConsensusNode>(node_params(), *endpoints[id]));
    threads.emplace_back([node = nodes.back().get(), &stop] {
      node->serve(stop);
    });
  }
  net::ClusterClient client(*endpoints[kNodes], kNodes);
  body(client);
  stop.store(true);
  for (auto& t : threads) t.join();
}

net::LoadResult run_tcp_load(const net::LoadOptions& opt) {
  auto cluster = net::TcpTransport::make_local_cluster(kNodes + 1);
  for (std::size_t id = 0; id < kNodes; ++id) {
    cluster[id]->wait_connected(kNodes - 1, 10000);
  }
  std::vector<net::Transport*> eps;
  for (auto& t : cluster) eps.push_back(t.get());
  net::LoadResult res;
  with_fleet(eps, [&](net::ClusterClient& c) { res = run_pipelined_load(c, opt); });
  for (auto& t : cluster) t->close();
  return res;
}

net::LoadResult run_bus_load(const net::LoadOptions& opt) {
  net::LocalBus bus(kNodes + 1);
  std::vector<net::Transport*> eps;
  for (std::size_t id = 0; id <= kNodes; ++id) eps.push_back(&bus.endpoint(id));
  net::LoadResult res;
  with_fleet(eps, [&](net::ClusterClient& c) { res = run_pipelined_load(c, opt); });
  return res;
}

void report() {
  std::printf("E17: 4-node cluster, pipelined consensus instance stream\n");

  net::LoadOptions opt;
  opt.nodes = kNodes;
  opt.instances = 40;
  opt.window = 8;
  opt.quorum = kNodes - kFaults;
  opt.dim = 2;
  opt.seed = 17;
  opt.decision_timeout_ms = 60000;

  rbvc::bench::Table t({"transport", "instances", "window", "decided",
                        "decided/s", "p50 ms", "p99 ms"});
  obs::Registry& reg = obs::global();

  const auto tcp = run_tcp_load(opt);
  t.add_row({"tcp-loopback", std::to_string(opt.instances),
             std::to_string(opt.window), std::to_string(tcp.decided),
             rbvc::bench::Table::num(tcp.throughput_per_s()),
             rbvc::bench::Table::num(tcp.latency_percentile(0.50)),
             rbvc::bench::Table::num(tcp.latency_percentile(0.99))});
  reg.counter("net.bench.tcp_instances_decided")
      .inc(static_cast<std::uint64_t>(tcp.decided));
  reg.gauge("net.bench.tcp_throughput_per_s").set(tcp.throughput_per_s());
  reg.gauge("net.bench.tcp_p50_ms").set(tcp.latency_percentile(0.50));
  reg.gauge("net.bench.tcp_p99_ms").set(tcp.latency_percentile(0.99));

  const auto bus = run_bus_load(opt);
  t.add_row({"localbus", std::to_string(opt.instances),
             std::to_string(opt.window), std::to_string(bus.decided),
             rbvc::bench::Table::num(bus.throughput_per_s()),
             rbvc::bench::Table::num(bus.latency_percentile(0.50)),
             rbvc::bench::Table::num(bus.latency_percentile(0.99))});
  reg.counter("net.bench.localbus_instances_decided")
      .inc(static_cast<std::uint64_t>(bus.decided));
  reg.gauge("net.bench.localbus_throughput_per_s").set(bus.throughput_per_s());
  reg.gauge("net.bench.localbus_p50_ms").set(bus.latency_percentile(0.50));
  reg.gauge("net.bench.localbus_p99_ms").set(bus.latency_percentile(0.99));

  if (rbvc::bench::trace_flag_slot()) {
    // Overhead pass: the TCP load with the recorder off vs on. Two things
    // make the naive A/B comparison lie at this scale: the 40-instance
    // table run lasts ~100 ms, so mesh setup + thread spawn dominate and
    // the noise floor is ~+-10%; and loopback-TCP throughput drifts run to
    // run (scheduler noise, TIME_WAIT buildup). So the pass runs a longer
    // stream (5x instances, amortizing setup) and interleaves the two
    // sides pairwise -- off, on, off, on, ... -- taking each side's best,
    // which cancels monotonic drift instead of charging it to whichever
    // side happened to run later. The table runs above double as warmup.
    net::LoadOptions oopt = opt;
    oopt.instances = opt.instances * 5;
    double base = 0.0;
    double traced = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      obs::events::set_enabled(false);
      base = std::max(base, run_tcp_load(oopt).throughput_per_s());
      obs::events::set_enabled(true);
      traced = std::max(traced, run_tcp_load(oopt).throughput_per_s());
    }
    const double overhead_pct =
        base > 0 ? 100.0 * (base - traced) / base : 0.0;
    reg.gauge("net.bench.untraced_throughput_per_s").set(base);
    reg.gauge("net.bench.traced_throughput_per_s").set(traced);
    reg.gauge("net.bench.trace_overhead_pct").set(overhead_pct);
    std::printf("flight-recorder overhead: %.2f%% of decided-instances/s "
                "(untraced %.1f/s vs traced %.1f/s, target < 5%%)\n",
                overhead_pct, base, traced);
  }

  t.print("pipelined decided-instance throughput and latency");
}

// Timed iterations: one full propose -> quorum-decided cycle per iteration
// over the LocalBus (protocol + runtime cost, no sockets).
void BM_LocalBusDecideInstance(benchmark::State& state) {
  net::LocalBus busnet(kNodes + 1);
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<net::ConsensusNode>> nodes;
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < kNodes; ++id) {
    nodes.push_back(std::make_unique<net::ConsensusNode>(
        node_params(), busnet.endpoint(id)));
    threads.emplace_back(
        [node = nodes.back().get(), &stop] { node->serve(stop); });
  }
  net::ClusterClient client(busnet.endpoint(kNodes), kNodes);
  const std::vector<Vec> inputs{
      {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  int instance = 0;
  for (auto _ : state) {
    client.propose(instance, inputs);
    std::size_t ok = 0;
    while (ok < kNodes - kFaults) {
      auto ev = client.next_decision(60000);
      if (!ev) {
        state.SkipWithError("cluster stalled");
        break;
      }
      if (ev->instance == instance && ev->ok) ++ok;
    }
    ++instance;
  }
  state.SetItemsProcessed(state.iterations());
  stop.store(true);
  for (auto& t : threads) t.join();
}
BENCHMARK(BM_LocalBusDecideInstance)->Unit(benchmark::kMillisecond);

}  // namespace

RBVC_BENCH_MAIN(report)
