// E15 -- Protocol costs: EIG interactive-consistency message counts vs
// (n, f) (the O(n^(f+2)) growth the Lamport-Shostak-Pease pattern implies),
// Bracha RBC message counts, and raw engine throughput.
#include "bench_util.h"

#include "consensus/algo_relaxed.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace {

using namespace rbvc;

void report() {
  std::printf("E15: protocol and simulator costs\n");

  {
    rbvc::bench::Table t({"n", "f", "rounds", "messages (fault-free IC)",
                          "msgs per process"});
    Rng rng(33);
    struct Case {
      std::size_t n, f;
    };
    for (const auto c : {Case{4, 1}, Case{5, 1}, Case{7, 1}, Case{7, 2},
                         Case{8, 2}, Case{10, 3}}) {
      workload::SyncExperiment e;
      e.n = c.n;
      e.f = c.f;
      e.honest_inputs = workload::gaussian_cloud(rng, c.n, 2);
      e.byzantine_ids = {};
      e.decision = consensus::algo_decision(c.f);
      const auto out = workload::run_sync_experiment(e);
      t.add_row({std::to_string(c.n), std::to_string(c.f),
                 std::to_string(out.stats.rounds),
                 std::to_string(out.stats.messages),
                 rbvc::bench::Table::num(
                     double(out.stats.messages) / double(c.n))});
    }
    t.print("EIG interactive consistency message complexity");
  }

  {
    // EIG (unauthenticated, n >= 3f+1) vs Dolev-Strong (signatures,
    // n >= f+2): message counts and minimum viable n side by side.
    rbvc::bench::Table t({"n", "f", "backend", "feasible", "messages"});
    Rng rng(55);
    struct Case {
      std::size_t n, f;
    };
    for (const auto c : {Case{3, 1}, Case{4, 1}, Case{7, 2}, Case{5, 2},
                         Case{6, 4}}) {
      for (const auto backend : {workload::SyncBackend::kEig,
                                 workload::SyncBackend::kDolevStrong}) {
        const char* name =
            backend == workload::SyncBackend::kEig ? "EIG" : "Dolev-Strong";
        const bool feasible = backend == workload::SyncBackend::kEig
                                  ? c.n >= 3 * c.f + 1
                                  : c.n >= c.f + 2;
        if (!feasible) {
          t.add_row({std::to_string(c.n), std::to_string(c.f), name,
                     "no (below bound)", "-"});
          continue;
        }
        workload::SyncExperiment e;
        e.n = c.n;
        e.f = c.f;
        e.honest_inputs = workload::gaussian_cloud(rng, c.n, 2);
        e.byzantine_ids = {};
        e.decision = consensus::algo_decision(c.f);
        e.backend = backend;
        const auto out = workload::run_sync_experiment(e);
        t.add_row({std::to_string(c.n), std::to_string(c.f), name, "yes",
                   std::to_string(out.stats.messages)});
      }
    }
    t.print("EIG vs authenticated Dolev-Strong (paper footnote 3)");
  }

  {
    rbvc::bench::Table t({"n", "f", "deliveries", "sends",
                          "rounds (averaging)"});
    Rng rng(44);
    for (std::size_t n : {4u, 5u, 7u}) {
      workload::AsyncExperiment e;
      e.prm.n = n;
      e.prm.f = 1;
      e.prm.rounds = 4;
      e.d = 3;
      e.honest_inputs = workload::gaussian_cloud(rng, n, 3);
      e.byzantine_ids = {};
      e.seed = rng.next_u64();
      const auto out = workload::run_async_experiment(e);
      t.add_row({std::to_string(n), "1", std::to_string(out.stats.deliveries),
                 std::to_string(out.stats.sends), "4"});
    }
    t.print("Relaxed Verified Averaging traffic (fault-free)");
  }
}

void BM_InteractiveConsistency(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = static_cast<std::size_t>(state.range(1));
  Rng rng(n * 10 + f);
  workload::SyncExperiment e;
  e.n = n;
  e.f = f;
  e.honest_inputs = workload::gaussian_cloud(rng, n, 3);
  e.byzantine_ids = {};
  e.decision = consensus::algo_decision(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::run_sync_experiment(e));
  }
}
BENCHMARK(BM_InteractiveConsistency)->Args({4, 1})->Args({7, 2});

void BM_AsyncAveragingRun(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  workload::AsyncExperiment e;
  e.prm.n = n;
  e.prm.f = 1;
  e.prm.rounds = 3;
  e.d = 3;
  e.honest_inputs = workload::gaussian_cloud(rng, n, 3);
  e.byzantine_ids = {};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    e.seed = seed++;
    benchmark::DoNotOptimize(workload::run_async_experiment(e));
  }
}
BENCHMARK(BM_AsyncAveragingRun)->Arg(4)->Arg(6);

// Episode sweep across the worker pool: interactive-consistency runs fanned
// out the way the property harness does, timed at --jobs N.
void BM_ProtocolEpisodeSweep(benchmark::State& state) {
  const std::size_t episodes = static_cast<std::size_t>(state.range(0));
  const std::size_t jobs = rbvc::bench::bench_jobs();
  exec::ParallelExecutor pool(jobs);
  for (auto _ : state) {
    pool.parallel_for(episodes, [](std::size_t ep) {
      Rng rng(seed_sequence(555, ep));
      workload::SyncExperiment e;
      e.n = 7;
      e.f = 2;
      e.honest_inputs = workload::gaussian_cloud(rng, e.n, 3);
      e.byzantine_ids = {};
      e.decision = consensus::algo_decision(e.f);
      e.seed = rng.next_u64();
      benchmark::DoNotOptimize(workload::run_sync_experiment(e));
    });
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["episodes_per_s"] = benchmark::Counter(
      static_cast<double>(episodes), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ProtocolEpisodeSweep)->Arg(32)->UseRealTime();

}  // namespace

RBVC_BENCH_MAIN(report)
