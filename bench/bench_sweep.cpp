// Fleet sweep throughput: episodes/s as the worker-process count grows
// (docs/FLEET.md). The report table runs the same healthy async-consensus
// workload rbvc-sweep ships at 1/2/4 workers and prints throughput plus
// the speedup over the single-process run -- CI's sweep-smoke job checks
// the 4-worker row clears 2x. The google-benchmark timings then measure
// the forked sweep end to end (fork + shard + merge + reap) per worker
// count, so protocol overhead shows up as the gap between 1 worker and
// the in-process baseline.
//
// Workers are forked processes, each running a 1-thread pool here
// (--jobs is deliberately pinned to 1): the point is to measure fleet
// fan-out, not to contend with the in-process pool for cores.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fleet/spawn.h"
#include "harness/property.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

constexpr std::size_t kEpisodes = 96;

harness::AsyncProperty sweep_property() {
  harness::AsyncProperty prop;
  prop.name = "bench_sweep_healthy";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = 4;
    e.d = 2;
    e.honest_inputs = workload::gaussian_cloud(rng, 3, 2);
    e.byzantine_ids = {rng.below(4)};
    e.strategy = workload::AsyncStrategy::kOutlierInput;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = kEpisodes;
  return prop;
}

fleet::WorkerJob sweep_job(const harness::AsyncProperty& prop) {
  fleet::WorkerJob job;
  job.jobs = 1;  // fan out across processes, not threads
  job.episode = [&prop](std::size_t ep) {
    return harness::detail::episode_fails(prop, ep);
  };
  job.failure_report = [&prop](std::size_t failing) {
    const harness::detail::FailureTail t =
        harness::detail::failure_tail(prop, failing);
    fleet::FailureReport rep;
    rep.episode = failing;
    rep.original_len = t.original_len;
    rep.shrunk_len = t.shrunk_len;
    rep.message = t.failure;
    rep.repro_text = t.repro_text;
    return rep;
  };
  return job;
}

double forked_episodes_per_s(std::size_t workers) {
  const harness::AsyncProperty prop = sweep_property();
  fleet::SweepConfig cfg;
  cfg.episodes = prop.episodes;
  cfg.workers = workers;
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::SweepOutcome sw = fleet::run_forked_sweep(cfg, sweep_job(prop));
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return s > 0 ? static_cast<double>(sw.episodes) / s : 0.0;
}

void report() {
  bench::Table table({"workers", "episodes", "episodes/s", "speedup"});
  double base = 0;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const double eps = forked_episodes_per_s(workers);
    if (workers == 1) base = eps;
    table.add_row({std::to_string(workers), std::to_string(kEpisodes),
                   bench::Table::num(eps, 5),
                   bench::Table::num(base > 0 ? eps / base : 0.0, 3)});
    obs::global()
        .gauge("fleet.bench.episodes_per_s.w" + std::to_string(workers))
        .set(eps);
  }
  table.print("fleet sweep throughput (healthy async workload)");
}

void BM_ForkedSweep(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const harness::AsyncProperty prop = sweep_property();
  std::uint64_t episodes = 0;
  for (auto _ : state) {
    fleet::SweepConfig cfg;
    cfg.episodes = prop.episodes;
    cfg.workers = workers;
    const fleet::SweepOutcome sw =
        fleet::run_forked_sweep(cfg, sweep_job(prop));
    episodes += sw.episodes;
    benchmark::DoNotOptimize(sw.stats.shards_completed);
  }
  state.counters["episodes/s"] = benchmark::Counter(
      static_cast<double>(episodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ForkedSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

RBVC_BENCH_MAIN(report)
