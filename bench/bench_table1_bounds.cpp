// E1 / E2 -- Paper Table 1 ("Summary of upper bounds", Sec. 9.2.3):
//
//   f = 1, n = d+1      delta* < min( min-edge(E+)/2, max-edge(E+)/(n-2) )
//   f >= 2, n = (d+1)f  delta* < max-edge(E+)/(d-1)
//
// We regenerate the table empirically: sample random inputs, compute
// delta*(S) (exact inradius path for the simplex case, numerical minimax
// otherwise), and report the worst observed ratio delta*/bound -- the paper
// predicts every ratio stays below 1.
#include "bench_util.h"

#include <cmath>

#include "geometry/simplex_geometry.h"
#include "hull/delta_star.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

double worst_honest_bound_f1(const std::vector<Vec>& s) {
  // min over faulty choices of min(min-edge(E+)/2, max-edge(E+)/(n-2)).
  double worst = kInfNorm;
  const std::size_t n = s.size();
  for (std::size_t faulty = 0; faulty < n; ++faulty) {
    std::vector<Vec> honest;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != faulty) honest.push_back(s[i]);
    }
    const auto ee = edge_extremes(honest);
    worst = std::min(worst, std::min(ee.min_edge / 2.0,
                                     ee.max_edge / double(n - 2)));
  }
  return worst;
}

double worst_honest_maxedge(const std::vector<Vec>& s, std::size_t f) {
  // min over faulty index sets of max-edge(E+): brute force for f <= 2.
  const std::size_t n = s.size();
  double worst = kInfNorm;
  if (f == 1) {
    for (std::size_t a = 0; a < n; ++a) {
      std::vector<Vec> honest;
      for (std::size_t i = 0; i < n; ++i) {
        if (i != a) honest.push_back(s[i]);
      }
      worst = std::min(worst, edge_extremes(honest).max_edge);
    }
    return worst;
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      std::vector<Vec> honest;
      for (std::size_t i = 0; i < n; ++i) {
        if (i != a && i != b) honest.push_back(s[i]);
      }
      worst = std::min(worst, edge_extremes(honest).max_edge);
    }
  }
  return worst;
}

void report() {
  std::printf("E1/E2: paper Table 1 -- input-dependent delta upper bounds\n");
  std::printf("(every ratio delta*/bound must be < 1)\n");

  // --- Row 1, f = 1, n = d+1 (Theorem 9, exact inradius path). ---
  {
    rbvc::bench::Table t({"d", "n", "reps", "mean delta*", "max ratio",
                          "bound form"});
    Rng rng(2024);
    for (std::size_t d = 3; d <= 8; ++d) {
      const int reps = 40;
      double sum = 0.0, max_ratio = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        const auto s = workload::random_simplex(rng, d);
        const auto ds = delta_star_2(s, 1);
        sum += ds.value;
        max_ratio = std::max(max_ratio, ds.value / worst_honest_bound_f1(s));
      }
      t.add_row({std::to_string(d), std::to_string(d + 1),
                 std::to_string(reps), rbvc::bench::Table::num(sum / reps),
                 rbvc::bench::Table::num(max_ratio),
                 "min(minE+/2, maxE+/(n-2))"});
    }
    t.print("Theorem 9: f=1, n=d+1 (random simplices)");
  }

  // --- Row 1, f >= 2, n = (d+1)f (Theorem 12, numerical minimax path). ---
  {
    rbvc::bench::Table t({"d", "f", "n", "reps", "mean delta*", "max ratio",
                          "bound form"});
    Rng rng(4048);
    struct Case {
      std::size_t d, f;
    };
    for (const auto c : {Case{3, 2}, Case{4, 2}, Case{3, 3}}) {
      const std::size_t n = (c.d + 1) * c.f;
      const int reps = 6;
      for (const char* wl : {"gaussian", "dup-simplex"}) {
        double sum = 0.0, max_ratio = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
          // Duplicated-simplex inputs are the tight instance: Gamma is
          // empty by construction, so delta* is genuinely positive.
          const auto s = (wl[0] == 'g')
                             ? workload::gaussian_cloud(rng, n, c.d)
                             : workload::duplicated_simplex(rng, c.d, c.f);
          MinimaxOptions opts;
          opts.iters = 1500;
          opts.polish_iters = 300;
          const auto ds = delta_star_2(s, c.f, kTol, opts);
          sum += ds.value;
          const double bound =
              worst_honest_maxedge(s, c.f) / double(c.d - 1);
          max_ratio = std::max(max_ratio, ds.value / bound);
        }
        t.add_row({std::to_string(c.d), std::to_string(c.f),
                   std::to_string(n) + " " + wl, std::to_string(reps),
                   rbvc::bench::Table::num(sum / reps),
                   rbvc::bench::Table::num(max_ratio), "maxE+/(d-1)"});
      }
    }
    t.print("Theorem 12: f>=2, n=(d+1)f (random clouds + tight instances)");
  }

  // --- Degenerate inputs (Theorem 8): delta* = 0. ---
  {
    rbvc::bench::Table t({"d", "n", "subspace dim", "delta*", "method"});
    Rng rng(8086);
    for (std::size_t sub : {2u, 3u}) {
      const auto s = workload::degenerate_subspace(rng, 6, 6, sub);
      const auto ds = delta_star_2(s, 1);
      t.add_row({"6", "6", std::to_string(sub),
                 rbvc::bench::Table::num(ds.value),
                 ds.method == DeltaStarResult::Method::kGammaNonempty
                     ? "Gamma nonempty"
                     : "other"});
    }
    t.print("Theorem 8: affinely dependent inputs -> delta* = 0");
  }
}

void BM_DeltaStarSimplex(benchmark::State& state) {
  Rng rng(1);
  const auto s = workload::random_simplex(rng, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_star_2(s, 1).value);
  }
}
BENCHMARK(BM_DeltaStarSimplex)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

void BM_DeltaStarNumerical(benchmark::State& state) {
  Rng rng(2);
  const std::size_t f = 2, d = 3;
  const auto s = workload::gaussian_cloud(rng, (d + 1) * f, d);
  MinimaxOptions opts;
  opts.iters = static_cast<std::size_t>(state.range(0));
  opts.polish_iters = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_star_2(s, f, kTol, opts).value);
  }
}
BENCHMARK(BM_DeltaStarNumerical)->Arg(200)->Arg(800);

}  // namespace

RBVC_BENCH_MAIN(report)
