// E6 -- Theorem 3's impossibility construction (synchronous k-relaxed,
// f = 1, k = 2): the gamma/epsilon input matrix makes Psi_2(Y) empty at
// n = d+1, certifying that n >= (d+1)f + 1 is necessary. The control rows
// show the same machinery reporting non-empty Psi for n = d+2 inputs --
// the bound is exactly tight.
#include "bench_util.h"

#include <chrono>

#include "hull/psi.h"
#include "workload/adversarial_inputs.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

void report() {
  std::printf("E6: Theorem 3 construction -- Psi_2 emptiness at n = d+1\n");
  rbvc::bench::Table t({"d", "n", "inputs", "k", "Psi_k", "verdict",
                        "LP time (ms)"});
  Rng rng(1009);
  for (std::size_t d = 3; d <= 8; ++d) {
    {
      const auto y = workload::thm3_inputs(d, 1.0, 0.5);
      const auto t0 = std::chrono::steady_clock::now();
      const bool nonempty = psi_k_point(y, 1, 2).has_value();
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      t.add_row({std::to_string(d), std::to_string(d + 1), "paper matrix",
                 "2", nonempty ? "non-empty" : "EMPTY",
                 nonempty ? "UNEXPECTED" : "matches Thm 3",
                 rbvc::bench::Table::num(ms, 3)});
    }
    {
      const auto y = workload::gaussian_cloud(rng, d + 2, d);
      const auto t0 = std::chrono::steady_clock::now();
      const bool nonempty = psi_k_point(y, 1, 2).has_value();
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      t.add_row({std::to_string(d), std::to_string(d + 2), "random control",
                 "2", nonempty ? "non-empty" : "EMPTY",
                 nonempty ? "matches tightness" : "UNEXPECTED",
                 rbvc::bench::Table::num(ms, 3)});
    }
  }
  t.print("Psi_2 feasibility at and above the bound");

  // Lemma 2 lift: emptiness propagates from k = 2 upward.
  rbvc::bench::Table t2({"d", "k", "Psi_k of paper matrix"});
  for (std::size_t k : {2u, 3u, 4u}) {
    const std::size_t d = 4;
    const auto y = workload::thm3_inputs(d, 1.0, 0.5);
    t2.add_row({std::to_string(d), std::to_string(k),
                psi_k_point(y, 1, k).has_value() ? "non-empty (UNEXPECTED)"
                                                 : "EMPTY (Lemma 2)"});
  }
  t2.print("Lemma 2: emptiness lifts to larger k");

  // k = 1 stays solvable at n = d+1 (Sec. 5.3).
  const auto y = workload::thm3_inputs(4, 1.0, 0.5);
  std::printf("\nk = 1 on the same inputs: Psi_1 %s (k=1 needs only 3f+1)\n",
              psi_k_point(y, 1, 1).has_value() ? "non-empty" : "EMPTY");
}

void BM_PsiAdversarial(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto y = workload::thm3_inputs(d, 1.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi_k_point(y, 1, 2).has_value());
  }
}
BENCHMARK(BM_PsiAdversarial)->Arg(3)->Arg(5)->Arg(7);

void BM_PsiRandomControl(benchmark::State& state) {
  Rng rng(7);
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto y = workload::gaussian_cloud(rng, d + 2, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi_k_point(y, 1, 2).has_value());
  }
}
BENCHMARK(BM_PsiRandomControl)->Arg(3)->Arg(5)->Arg(7);

}  // namespace

RBVC_BENCH_MAIN(report)
