// E8 -- Theorem 5's construction (synchronous (delta,inf)-relaxed, f = 1,
// n = d+1): scaled-basis inputs make Gamma_(delta,inf) empty exactly when
// the scale x exceeds a threshold the paper bounds by 2*d*delta. We locate
// the empirical threshold by bisection and compare its shape against the
// paper's bound across d and delta.
#include "bench_util.h"

#include <cmath>

#include "hull/gamma.h"
#include "workload/adversarial_inputs.h"

namespace {

using namespace rbvc;

bool feasible(std::size_t d, double x, double delta) {
  return gamma_delta_point_linear(workload::thm5_inputs(d, x), 1, delta,
                                  kInfNorm)
      .has_value();
}

double threshold_x(std::size_t d, double delta) {
  // x = 0 collapses all inputs to the origin (feasible); feasibility is
  // monotone in x, so bisect for the flip point.
  double lo = 0.0, hi = 4.0 * double(d) * delta + 1.0;
  for (int it = 0; it < 48; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(d, mid, delta)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

void report() {
  std::printf(
      "E8: Theorem 5 construction -- emptiness threshold of "
      "Gamma_(delta,inf)\n");
  rbvc::bench::Table t({"d", "delta", "empirical threshold x*",
                        "paper bound 2*d*delta", "x*/(2 d delta)"});
  for (std::size_t d : {2u, 3u, 4u, 6u, 8u}) {
    for (double delta : {0.1, 0.25, 0.5}) {
      const double x_star = threshold_x(d, delta);
      const double paper = 2.0 * double(d) * delta;
      t.add_row({std::to_string(d), rbvc::bench::Table::num(delta, 3),
                 rbvc::bench::Table::num(x_star),
                 rbvc::bench::Table::num(paper),
                 rbvc::bench::Table::num(x_star / paper)});
    }
  }
  t.print("Empirical feasibility threshold vs paper's x > 2 d delta");
  std::printf(
      "\nThe paper's proof needs x > 2*d*delta for the contradiction; the\n"
      "empirical threshold matching (ratio = 1) shows the construction is\n"
      "tight. Above x* the relaxed safe area is empty at n = d+1, so the\n"
      "constant-delta relaxation cannot reduce n below (d+1)f+1 (Thm 5).\n");

  // Observation-level certificate at a single grid point.
  const std::size_t d = 3;
  const double delta = 0.25;
  const double x = 2.0 * d * delta * 1.2;
  const auto s = workload::thm5_inputs(d, x);
  rbvc::bench::Table t2({"dropped input", "implied constraint",
                         "coordinate bound"});
  for (std::size_t i = 0; i < d; ++i) {
    t2.add_row({"s" + std::to_string(i + 1),
                "coord " + std::to_string(i + 1) + " of output <= delta",
                rbvc::bench::Table::num(delta, 3)});
  }
  t2.add_row({"s" + std::to_string(d + 1), "some coord >= x/d - delta",
              rbvc::bench::Table::num(x / double(d) - delta)});
  t2.print("Observations 1-2 (d=3, delta=0.25, x=1.8)");
  std::printf("Since x/d - delta = %.3f > delta = %.3f, no point satisfies "
              "all constraints.\n",
              x / double(d) - delta, delta);
}

void BM_Thm5Feasibility(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const auto s = workload::thm5_inputs(d, double(d));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gamma_delta_point_linear(s, 1, 0.25, kInfNorm).has_value());
  }
}
BENCHMARK(BM_Thm5Feasibility)->Arg(2)->Arg(4)->Arg(8);

void BM_Thm5Threshold(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold_x(d, 0.25));
  }
}
BENCHMARK(BM_Thm5Threshold)->Arg(2)->Arg(4);

}  // namespace

RBVC_BENCH_MAIN(report)
