// E10 -- Section 8: Tverberg's theorem and its tightness under the relaxed
// hulls. Three exhibits:
//   (a) n = (d+1)f + 1 random points always admit a Tverberg partition
//       (exhaustive search + LP certificates);
//   (b) n = (d+1)f moment-curve points admit none -- tightness;
//   (c) tightness survives when H is replaced by H_k or H_(delta,p) with
//       small delta (the paper's observation), and breaks for huge delta.
#include "bench_util.h"

#include <chrono>

#include "geometry/tverberg.h"
#include "hull/psi.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

IntersectionOracle k_oracle(std::size_t k) {
  return [k](const std::vector<std::vector<Vec>>& parts) {
    RelaxedIntersectionSpec spec;
    spec.parts = parts;
    spec.k = k;
    return relaxed_intersection_point(spec).has_value();
  };
}

IntersectionOracle delta_oracle(double delta) {
  return [delta](const std::vector<std::vector<Vec>>& parts) {
    RelaxedIntersectionSpec spec;
    spec.parts = parts;
    spec.k = 0;
    spec.delta = delta;
    spec.p = kInfNorm;
    return relaxed_intersection_point(spec).has_value();
  };
}

void report() {
  std::printf("E10: Tverberg partitions (paper Sec. 8)\n");

  // (a) Guaranteed partitions at the bound.
  {
    rbvc::bench::Table t({"d", "f", "n", "partitions (Stirling)",
                          "partition found", "time (ms)"});
    Rng rng(9001);
    struct Case {
      std::size_t d, f;
    };
    for (const auto c : {Case{2, 1}, Case{3, 1}, Case{4, 1}, Case{2, 2},
                         Case{3, 2}}) {
      const std::size_t n = (c.d + 1) * c.f + 1;
      const auto pts = workload::gaussian_cloud(rng, n, c.d);
      const auto t0 = std::chrono::steady_clock::now();
      const auto part = find_tverberg_partition(pts, c.f + 1);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      t.add_row({std::to_string(c.d), std::to_string(c.f), std::to_string(n),
                 rbvc::bench::Table::num(stirling2(n, c.f + 1), 6),
                 part ? "yes" : "NO (violates Tverberg!)",
                 rbvc::bench::Table::num(ms, 3)});
    }
    t.print("(a) n = (d+1)f + 1 random points");
  }

  // (b) Tightness below the bound (moment curve).
  {
    rbvc::bench::Table t({"d", "f", "n", "partition found"});
    for (std::size_t d : {2u, 3u, 4u}) {
      const std::size_t f = 1, n = (d + 1) * f;
      const auto pts = moment_curve_points(n, d);
      t.add_row({std::to_string(d), std::to_string(f), std::to_string(n),
                 find_tverberg_partition(pts, f + 1)
                     ? "yes (UNEXPECTED)"
                     : "none -- bound tight"});
    }
    const auto pts6 = moment_curve_points(6, 2);
    t.add_row({"2", "2", "6",
               find_tverberg_partition(pts6, 3) ? "yes (UNEXPECTED)"
                                                : "none -- bound tight"});
    t.print("(b) n = (d+1)f moment-curve points");
  }

  // (c) Relaxed hulls keep the bound tight (small relaxation), and a large
  // relaxation eventually admits partitions.
  {
    rbvc::bench::Table t({"hull", "relaxation", "partition at n=(d+1)f"});
    const auto pts = moment_curve_points(4, 3);
    t.add_row({"H_k", "k = 2",
               find_tverberg_partition(pts, 2, k_oracle(2))
                   ? "yes (UNEXPECTED)"
                   : "none -- Thm 3 keeps it tight"});
    t.add_row({"H_(delta,inf)", "delta = 1e-6",
               find_tverberg_partition(pts, 2, delta_oracle(1e-6))
                   ? "yes (UNEXPECTED)"
                   : "none -- Thm 5 keeps it tight"});
    t.add_row({"H_(delta,inf)", "delta = 1e3",
               find_tverberg_partition(pts, 2, delta_oracle(1e3))
                   ? "yes -- huge delta trivializes validity"
                   : "none (UNEXPECTED)"});
    t.print("(c) relaxed-hull Tverberg tightness (d = 3, f = 1)");
  }
}

void BM_TverbergSearch(benchmark::State& state) {
  Rng rng(17);
  const std::size_t d = 2, f = static_cast<std::size_t>(state.range(0));
  const auto pts = workload::gaussian_cloud(rng, (d + 1) * f + 1, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_tverberg_partition(pts, f + 1));
  }
}
BENCHMARK(BM_TverbergSearch)->Arg(1)->Arg(2);

void BM_HullsIntersect(benchmark::State& state) {
  Rng rng(19);
  const auto a = workload::gaussian_cloud(rng, 4, 3);
  const auto b = workload::gaussian_cloud(rng, 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hulls_intersect(std::vector<PointView>{a, b}));
  }
}
BENCHMARK(BM_HullsIntersect);

}  // namespace

RBVC_BENCH_MAIN(report)
