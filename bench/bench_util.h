// Shared helpers for the experiment benches: fixed-width table printing and
// a standard main() that first regenerates the experiment's paper-style
// table, then runs the registered google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace rbvc::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  static std::string num(double v, int precision = 4) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return buf;
  }

  void print(const char* title) const {
    std::printf("\n== %s ==\n", title);
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("| %-*s ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("|\n");
    };
    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("|%s", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("|\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rbvc::bench

/// Defines a main() that prints the experiment report, then runs timings.
#define RBVC_BENCH_MAIN(report_fn)                      \
  int main(int argc, char** argv) {                     \
    report_fn();                                        \
    ::benchmark::Initialize(&argc, argv);               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();              \
    ::benchmark::Shutdown();                            \
    return 0;                                           \
  }
