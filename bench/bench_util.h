// Shared helpers for the experiment benches: fixed-width table printing and
// a standard main() that first regenerates the experiment's paper-style
// table, then runs the registered google-benchmark timings. Every bench
// also accepts `--json <path>` (or `--json=<path>`): after the run, the
// process-wide metrics registry (obs/metrics.h) -- counters, histograms,
// and kernel timings accumulated by the report and the timed iterations --
// is dumped there as stable JSON, so BENCH_*.json files capture a
// machine-diffable trajectory next to the human tables.
//
// Benches with episode-sweep timings also accept `--jobs N` (or
// `--jobs=N`): the worker count handed to exec::ParallelExecutor for the
// BM_*EpisodeSweep benchmarks. Default: RBVC_JOBS, else
// hardware_concurrency (exec::default_jobs()).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exec/parallel_executor.h"
#include "obs/metrics.h"

namespace rbvc::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  static std::string num(double v, int precision = 4) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return buf;
  }

  void print(const char* title) const {
    std::printf("\n== %s ==\n", title);
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("| %-*s ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("|\n");
    };
    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("|%s", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("|\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Extracts `--json <path>` / `--json=<path>` from argv (removing it, so
/// google-benchmark never sees the flag) and returns the path, or "".
inline std::string extract_json_flag(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0 && r + 1 < argc) {
      path = argv[++r];
    } else if (std::strncmp(argv[r], "--json=", 7) == 0) {
      path = argv[r] + 7;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

/// Writes the global metrics registry to `path` when non-empty.
inline void write_json_metrics(const std::string& path) {
  if (path.empty()) return;
  rbvc::obs::export_global(path);
  std::printf("\nmetrics written: %s\n", path.c_str());
}

/// Worker count for episode-sweep benchmarks. 0 = not set on the command
/// line; bench_jobs() then falls back to exec::default_jobs().
inline std::size_t& jobs_flag_slot() {
  static std::size_t jobs = 0;
  return jobs;
}

/// Extracts `--jobs N` / `--jobs=N` from argv (removing it, so
/// google-benchmark never sees the flag) and stores it in jobs_flag_slot().
inline void extract_jobs_flag(int& argc, char** argv) {
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const char* val = nullptr;
    if (std::strcmp(argv[r], "--jobs") == 0 && r + 1 < argc) {
      val = argv[++r];
    } else if (std::strncmp(argv[r], "--jobs=", 7) == 0) {
      val = argv[r] + 7;
    } else {
      argv[w++] = argv[r];
      continue;
    }
    const long parsed = std::strtol(val, nullptr, 10);
    if (parsed > 0) jobs_flag_slot() = static_cast<std::size_t>(parsed);
  }
  argc = w;
}

/// The effective worker count: --jobs if given, else RBVC_JOBS, else
/// hardware_concurrency.
inline std::size_t bench_jobs() {
  const std::size_t flag = jobs_flag_slot();
  return flag ? flag : rbvc::exec::default_jobs();
}

/// `--trace` on the command line. Benches that measure the flight
/// recorder's overhead (bench_net_cluster) check this and add an
/// events-disabled comparison pass when set.
inline bool& trace_flag_slot() {
  static bool trace = false;
  return trace;
}

/// Extracts `--trace` from argv (removing it, so google-benchmark never
/// sees the flag) and stores it in trace_flag_slot().
inline void extract_trace_flag(int& argc, char** argv) {
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--trace") == 0) {
      trace_flag_slot() = true;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
}

}  // namespace rbvc::bench

/// Defines a main() that prints the experiment report, runs timings, and
/// honors `--json <path>` by dumping the metrics registry afterwards.
#define RBVC_BENCH_MAIN(report_fn)                      \
  int main(int argc, char** argv) {                     \
    const std::string rbvc_json_path =                  \
        ::rbvc::bench::extract_json_flag(argc, argv);   \
    ::rbvc::bench::extract_jobs_flag(argc, argv);       \
    ::rbvc::bench::extract_trace_flag(argc, argv);      \
    report_fn();                                        \
    ::benchmark::Initialize(&argc, argv);               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();              \
    ::benchmark::Shutdown();                            \
    ::rbvc::bench::write_json_metrics(rbvc_json_path);  \
    return 0;                                           \
  }
