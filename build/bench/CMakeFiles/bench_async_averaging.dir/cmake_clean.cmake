file(REMOVE_RECURSE
  "CMakeFiles/bench_async_averaging.dir/bench_async_averaging.cpp.o"
  "CMakeFiles/bench_async_averaging.dir/bench_async_averaging.cpp.o.d"
  "bench_async_averaging"
  "bench_async_averaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_averaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
