# Empty dependencies file for bench_async_averaging.
# This may be replaced when dependencies are built.
