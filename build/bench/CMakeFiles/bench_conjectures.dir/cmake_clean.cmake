file(REMOVE_RECURSE
  "CMakeFiles/bench_conjectures.dir/bench_conjectures.cpp.o"
  "CMakeFiles/bench_conjectures.dir/bench_conjectures.cpp.o.d"
  "bench_conjectures"
  "bench_conjectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conjectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
