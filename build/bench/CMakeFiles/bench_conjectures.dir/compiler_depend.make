# Empty compiler generated dependencies file for bench_conjectures.
# This may be replaced when dependencies are built.
