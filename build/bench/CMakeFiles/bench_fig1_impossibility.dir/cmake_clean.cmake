file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_impossibility.dir/bench_fig1_impossibility.cpp.o"
  "CMakeFiles/bench_fig1_impossibility.dir/bench_fig1_impossibility.cpp.o.d"
  "bench_fig1_impossibility"
  "bench_fig1_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
