# Empty dependencies file for bench_fig1_impossibility.
# This may be replaced when dependencies are built.
