file(REMOVE_RECURSE
  "CMakeFiles/bench_geometry_perf.dir/bench_geometry_perf.cpp.o"
  "CMakeFiles/bench_geometry_perf.dir/bench_geometry_perf.cpp.o.d"
  "bench_geometry_perf"
  "bench_geometry_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geometry_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
