# Empty dependencies file for bench_geometry_perf.
# This may be replaced when dependencies are built.
