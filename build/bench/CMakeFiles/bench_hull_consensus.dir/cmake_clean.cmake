file(REMOVE_RECURSE
  "CMakeFiles/bench_hull_consensus.dir/bench_hull_consensus.cpp.o"
  "CMakeFiles/bench_hull_consensus.dir/bench_hull_consensus.cpp.o.d"
  "bench_hull_consensus"
  "bench_hull_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hull_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
