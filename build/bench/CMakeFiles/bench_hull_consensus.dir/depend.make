# Empty dependencies file for bench_hull_consensus.
# This may be replaced when dependencies are built.
