file(REMOVE_RECURSE
  "CMakeFiles/bench_iterative.dir/bench_iterative.cpp.o"
  "CMakeFiles/bench_iterative.dir/bench_iterative.cpp.o.d"
  "bench_iterative"
  "bench_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
