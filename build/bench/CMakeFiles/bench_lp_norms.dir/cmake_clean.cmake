file(REMOVE_RECURSE
  "CMakeFiles/bench_lp_norms.dir/bench_lp_norms.cpp.o"
  "CMakeFiles/bench_lp_norms.dir/bench_lp_norms.cpp.o.d"
  "bench_lp_norms"
  "bench_lp_norms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_norms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
