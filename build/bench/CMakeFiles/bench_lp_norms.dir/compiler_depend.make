# Empty compiler generated dependencies file for bench_lp_norms.
# This may be replaced when dependencies are built.
