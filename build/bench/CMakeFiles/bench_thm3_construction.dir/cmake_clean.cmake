file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_construction.dir/bench_thm3_construction.cpp.o"
  "CMakeFiles/bench_thm3_construction.dir/bench_thm3_construction.cpp.o.d"
  "bench_thm3_construction"
  "bench_thm3_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
