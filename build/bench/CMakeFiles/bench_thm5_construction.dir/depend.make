# Empty dependencies file for bench_thm5_construction.
# This may be replaced when dependencies are built.
