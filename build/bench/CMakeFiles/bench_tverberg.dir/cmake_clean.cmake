file(REMOVE_RECURSE
  "CMakeFiles/bench_tverberg.dir/bench_tverberg.cpp.o"
  "CMakeFiles/bench_tverberg.dir/bench_tverberg.cpp.o.d"
  "bench_tverberg"
  "bench_tverberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tverberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
