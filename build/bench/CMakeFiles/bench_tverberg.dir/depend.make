# Empty dependencies file for bench_tverberg.
# This may be replaced when dependencies are built.
