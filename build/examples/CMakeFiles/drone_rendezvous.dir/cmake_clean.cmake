file(REMOVE_RECURSE
  "CMakeFiles/drone_rendezvous.dir/drone_rendezvous.cpp.o"
  "CMakeFiles/drone_rendezvous.dir/drone_rendezvous.cpp.o.d"
  "drone_rendezvous"
  "drone_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
