# Empty compiler generated dependencies file for drone_rendezvous.
# This may be replaced when dependencies are built.
