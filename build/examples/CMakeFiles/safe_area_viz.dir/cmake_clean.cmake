file(REMOVE_RECURSE
  "CMakeFiles/safe_area_viz.dir/safe_area_viz.cpp.o"
  "CMakeFiles/safe_area_viz.dir/safe_area_viz.cpp.o.d"
  "safe_area_viz"
  "safe_area_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_area_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
