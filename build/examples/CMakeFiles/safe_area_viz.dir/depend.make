# Empty dependencies file for safe_area_viz.
# This may be replaced when dependencies are built.
