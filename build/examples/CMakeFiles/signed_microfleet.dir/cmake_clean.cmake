file(REMOVE_RECURSE
  "CMakeFiles/signed_microfleet.dir/signed_microfleet.cpp.o"
  "CMakeFiles/signed_microfleet.dir/signed_microfleet.cpp.o.d"
  "signed_microfleet"
  "signed_microfleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signed_microfleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
