# Empty dependencies file for signed_microfleet.
# This may be replaced when dependencies are built.
