
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/algo_relaxed.cpp" "src/CMakeFiles/rbvc_consensus.dir/consensus/algo_relaxed.cpp.o" "gcc" "src/CMakeFiles/rbvc_consensus.dir/consensus/algo_relaxed.cpp.o.d"
  "/root/repo/src/consensus/async_averaging.cpp" "src/CMakeFiles/rbvc_consensus.dir/consensus/async_averaging.cpp.o" "gcc" "src/CMakeFiles/rbvc_consensus.dir/consensus/async_averaging.cpp.o.d"
  "/root/repo/src/consensus/exact_bvc.cpp" "src/CMakeFiles/rbvc_consensus.dir/consensus/exact_bvc.cpp.o" "gcc" "src/CMakeFiles/rbvc_consensus.dir/consensus/exact_bvc.cpp.o.d"
  "/root/repo/src/consensus/hull_consensus.cpp" "src/CMakeFiles/rbvc_consensus.dir/consensus/hull_consensus.cpp.o" "gcc" "src/CMakeFiles/rbvc_consensus.dir/consensus/hull_consensus.cpp.o.d"
  "/root/repo/src/consensus/iterative_bvc.cpp" "src/CMakeFiles/rbvc_consensus.dir/consensus/iterative_bvc.cpp.o" "gcc" "src/CMakeFiles/rbvc_consensus.dir/consensus/iterative_bvc.cpp.o.d"
  "/root/repo/src/consensus/k_relaxed.cpp" "src/CMakeFiles/rbvc_consensus.dir/consensus/k_relaxed.cpp.o" "gcc" "src/CMakeFiles/rbvc_consensus.dir/consensus/k_relaxed.cpp.o.d"
  "/root/repo/src/consensus/verifier.cpp" "src/CMakeFiles/rbvc_consensus.dir/consensus/verifier.cpp.o" "gcc" "src/CMakeFiles/rbvc_consensus.dir/consensus/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rbvc_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_hull.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
