file(REMOVE_RECURSE
  "CMakeFiles/rbvc_consensus.dir/consensus/algo_relaxed.cpp.o"
  "CMakeFiles/rbvc_consensus.dir/consensus/algo_relaxed.cpp.o.d"
  "CMakeFiles/rbvc_consensus.dir/consensus/async_averaging.cpp.o"
  "CMakeFiles/rbvc_consensus.dir/consensus/async_averaging.cpp.o.d"
  "CMakeFiles/rbvc_consensus.dir/consensus/exact_bvc.cpp.o"
  "CMakeFiles/rbvc_consensus.dir/consensus/exact_bvc.cpp.o.d"
  "CMakeFiles/rbvc_consensus.dir/consensus/hull_consensus.cpp.o"
  "CMakeFiles/rbvc_consensus.dir/consensus/hull_consensus.cpp.o.d"
  "CMakeFiles/rbvc_consensus.dir/consensus/iterative_bvc.cpp.o"
  "CMakeFiles/rbvc_consensus.dir/consensus/iterative_bvc.cpp.o.d"
  "CMakeFiles/rbvc_consensus.dir/consensus/k_relaxed.cpp.o"
  "CMakeFiles/rbvc_consensus.dir/consensus/k_relaxed.cpp.o.d"
  "CMakeFiles/rbvc_consensus.dir/consensus/verifier.cpp.o"
  "CMakeFiles/rbvc_consensus.dir/consensus/verifier.cpp.o.d"
  "librbvc_consensus.a"
  "librbvc_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
