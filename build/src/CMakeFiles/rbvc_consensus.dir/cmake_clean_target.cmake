file(REMOVE_RECURSE
  "librbvc_consensus.a"
)
