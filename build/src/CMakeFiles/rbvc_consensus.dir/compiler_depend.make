# Empty compiler generated dependencies file for rbvc_consensus.
# This may be replaced when dependencies are built.
