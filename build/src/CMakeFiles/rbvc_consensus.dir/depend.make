# Empty dependencies file for rbvc_consensus.
# This may be replaced when dependencies are built.
