
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/caratheodory.cpp" "src/CMakeFiles/rbvc_geometry.dir/geometry/caratheodory.cpp.o" "gcc" "src/CMakeFiles/rbvc_geometry.dir/geometry/caratheodory.cpp.o.d"
  "/root/repo/src/geometry/distance.cpp" "src/CMakeFiles/rbvc_geometry.dir/geometry/distance.cpp.o" "gcc" "src/CMakeFiles/rbvc_geometry.dir/geometry/distance.cpp.o.d"
  "/root/repo/src/geometry/hull.cpp" "src/CMakeFiles/rbvc_geometry.dir/geometry/hull.cpp.o" "gcc" "src/CMakeFiles/rbvc_geometry.dir/geometry/hull.cpp.o.d"
  "/root/repo/src/geometry/poly2d.cpp" "src/CMakeFiles/rbvc_geometry.dir/geometry/poly2d.cpp.o" "gcc" "src/CMakeFiles/rbvc_geometry.dir/geometry/poly2d.cpp.o.d"
  "/root/repo/src/geometry/projection.cpp" "src/CMakeFiles/rbvc_geometry.dir/geometry/projection.cpp.o" "gcc" "src/CMakeFiles/rbvc_geometry.dir/geometry/projection.cpp.o.d"
  "/root/repo/src/geometry/simplex_geometry.cpp" "src/CMakeFiles/rbvc_geometry.dir/geometry/simplex_geometry.cpp.o" "gcc" "src/CMakeFiles/rbvc_geometry.dir/geometry/simplex_geometry.cpp.o.d"
  "/root/repo/src/geometry/tverberg.cpp" "src/CMakeFiles/rbvc_geometry.dir/geometry/tverberg.cpp.o" "gcc" "src/CMakeFiles/rbvc_geometry.dir/geometry/tverberg.cpp.o.d"
  "/root/repo/src/geometry/wolfe.cpp" "src/CMakeFiles/rbvc_geometry.dir/geometry/wolfe.cpp.o" "gcc" "src/CMakeFiles/rbvc_geometry.dir/geometry/wolfe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rbvc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
