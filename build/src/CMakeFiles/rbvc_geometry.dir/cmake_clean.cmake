file(REMOVE_RECURSE
  "CMakeFiles/rbvc_geometry.dir/geometry/caratheodory.cpp.o"
  "CMakeFiles/rbvc_geometry.dir/geometry/caratheodory.cpp.o.d"
  "CMakeFiles/rbvc_geometry.dir/geometry/distance.cpp.o"
  "CMakeFiles/rbvc_geometry.dir/geometry/distance.cpp.o.d"
  "CMakeFiles/rbvc_geometry.dir/geometry/hull.cpp.o"
  "CMakeFiles/rbvc_geometry.dir/geometry/hull.cpp.o.d"
  "CMakeFiles/rbvc_geometry.dir/geometry/poly2d.cpp.o"
  "CMakeFiles/rbvc_geometry.dir/geometry/poly2d.cpp.o.d"
  "CMakeFiles/rbvc_geometry.dir/geometry/projection.cpp.o"
  "CMakeFiles/rbvc_geometry.dir/geometry/projection.cpp.o.d"
  "CMakeFiles/rbvc_geometry.dir/geometry/simplex_geometry.cpp.o"
  "CMakeFiles/rbvc_geometry.dir/geometry/simplex_geometry.cpp.o.d"
  "CMakeFiles/rbvc_geometry.dir/geometry/tverberg.cpp.o"
  "CMakeFiles/rbvc_geometry.dir/geometry/tverberg.cpp.o.d"
  "CMakeFiles/rbvc_geometry.dir/geometry/wolfe.cpp.o"
  "CMakeFiles/rbvc_geometry.dir/geometry/wolfe.cpp.o.d"
  "librbvc_geometry.a"
  "librbvc_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
