file(REMOVE_RECURSE
  "librbvc_geometry.a"
)
