# Empty compiler generated dependencies file for rbvc_geometry.
# This may be replaced when dependencies are built.
