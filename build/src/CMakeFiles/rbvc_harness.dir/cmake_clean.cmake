file(REMOVE_RECURSE
  "CMakeFiles/rbvc_harness.dir/harness/property.cpp.o"
  "CMakeFiles/rbvc_harness.dir/harness/property.cpp.o.d"
  "CMakeFiles/rbvc_harness.dir/harness/repro.cpp.o"
  "CMakeFiles/rbvc_harness.dir/harness/repro.cpp.o.d"
  "CMakeFiles/rbvc_harness.dir/harness/shrinker.cpp.o"
  "CMakeFiles/rbvc_harness.dir/harness/shrinker.cpp.o.d"
  "librbvc_harness.a"
  "librbvc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
