file(REMOVE_RECURSE
  "librbvc_harness.a"
)
