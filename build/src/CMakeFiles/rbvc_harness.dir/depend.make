# Empty dependencies file for rbvc_harness.
# This may be replaced when dependencies are built.
