
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hull/delta_star.cpp" "src/CMakeFiles/rbvc_hull.dir/hull/delta_star.cpp.o" "gcc" "src/CMakeFiles/rbvc_hull.dir/hull/delta_star.cpp.o.d"
  "/root/repo/src/hull/gamma.cpp" "src/CMakeFiles/rbvc_hull.dir/hull/gamma.cpp.o" "gcc" "src/CMakeFiles/rbvc_hull.dir/hull/gamma.cpp.o.d"
  "/root/repo/src/hull/psi.cpp" "src/CMakeFiles/rbvc_hull.dir/hull/psi.cpp.o" "gcc" "src/CMakeFiles/rbvc_hull.dir/hull/psi.cpp.o.d"
  "/root/repo/src/hull/relaxed_hull.cpp" "src/CMakeFiles/rbvc_hull.dir/hull/relaxed_hull.cpp.o" "gcc" "src/CMakeFiles/rbvc_hull.dir/hull/relaxed_hull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rbvc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
