file(REMOVE_RECURSE
  "CMakeFiles/rbvc_hull.dir/hull/delta_star.cpp.o"
  "CMakeFiles/rbvc_hull.dir/hull/delta_star.cpp.o.d"
  "CMakeFiles/rbvc_hull.dir/hull/gamma.cpp.o"
  "CMakeFiles/rbvc_hull.dir/hull/gamma.cpp.o.d"
  "CMakeFiles/rbvc_hull.dir/hull/psi.cpp.o"
  "CMakeFiles/rbvc_hull.dir/hull/psi.cpp.o.d"
  "CMakeFiles/rbvc_hull.dir/hull/relaxed_hull.cpp.o"
  "CMakeFiles/rbvc_hull.dir/hull/relaxed_hull.cpp.o.d"
  "librbvc_hull.a"
  "librbvc_hull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_hull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
