file(REMOVE_RECURSE
  "librbvc_hull.a"
)
