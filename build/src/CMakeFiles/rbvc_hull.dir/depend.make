# Empty dependencies file for rbvc_hull.
# This may be replaced when dependencies are built.
