file(REMOVE_RECURSE
  "CMakeFiles/rbvc_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/rbvc_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/rbvc_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/rbvc_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/rbvc_linalg.dir/linalg/qr.cpp.o"
  "CMakeFiles/rbvc_linalg.dir/linalg/qr.cpp.o.d"
  "CMakeFiles/rbvc_linalg.dir/linalg/vec.cpp.o"
  "CMakeFiles/rbvc_linalg.dir/linalg/vec.cpp.o.d"
  "librbvc_linalg.a"
  "librbvc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
