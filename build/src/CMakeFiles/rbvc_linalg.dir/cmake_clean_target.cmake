file(REMOVE_RECURSE
  "librbvc_linalg.a"
)
