# Empty compiler generated dependencies file for rbvc_linalg.
# This may be replaced when dependencies are built.
