file(REMOVE_RECURSE
  "CMakeFiles/rbvc_lp.dir/lp/model.cpp.o"
  "CMakeFiles/rbvc_lp.dir/lp/model.cpp.o.d"
  "CMakeFiles/rbvc_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/rbvc_lp.dir/lp/simplex.cpp.o.d"
  "librbvc_lp.a"
  "librbvc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
