file(REMOVE_RECURSE
  "librbvc_lp.a"
)
