# Empty compiler generated dependencies file for rbvc_lp.
# This may be replaced when dependencies are built.
