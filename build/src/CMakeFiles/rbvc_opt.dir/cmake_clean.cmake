file(REMOVE_RECURSE
  "CMakeFiles/rbvc_opt.dir/opt/minimax.cpp.o"
  "CMakeFiles/rbvc_opt.dir/opt/minimax.cpp.o.d"
  "CMakeFiles/rbvc_opt.dir/opt/pocs.cpp.o"
  "CMakeFiles/rbvc_opt.dir/opt/pocs.cpp.o.d"
  "librbvc_opt.a"
  "librbvc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
