file(REMOVE_RECURSE
  "librbvc_opt.a"
)
