# Empty dependencies file for rbvc_opt.
# This may be replaced when dependencies are built.
