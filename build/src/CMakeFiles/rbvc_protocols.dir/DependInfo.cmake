
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/bracha_rbc.cpp" "src/CMakeFiles/rbvc_protocols.dir/protocols/bracha_rbc.cpp.o" "gcc" "src/CMakeFiles/rbvc_protocols.dir/protocols/bracha_rbc.cpp.o.d"
  "/root/repo/src/protocols/dolev_strong.cpp" "src/CMakeFiles/rbvc_protocols.dir/protocols/dolev_strong.cpp.o" "gcc" "src/CMakeFiles/rbvc_protocols.dir/protocols/dolev_strong.cpp.o.d"
  "/root/repo/src/protocols/om_broadcast.cpp" "src/CMakeFiles/rbvc_protocols.dir/protocols/om_broadcast.cpp.o" "gcc" "src/CMakeFiles/rbvc_protocols.dir/protocols/om_broadcast.cpp.o.d"
  "/root/repo/src/protocols/scalar_consensus.cpp" "src/CMakeFiles/rbvc_protocols.dir/protocols/scalar_consensus.cpp.o" "gcc" "src/CMakeFiles/rbvc_protocols.dir/protocols/scalar_consensus.cpp.o.d"
  "/root/repo/src/protocols/witness.cpp" "src/CMakeFiles/rbvc_protocols.dir/protocols/witness.cpp.o" "gcc" "src/CMakeFiles/rbvc_protocols.dir/protocols/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rbvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
