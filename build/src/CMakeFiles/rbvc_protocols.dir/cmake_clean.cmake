file(REMOVE_RECURSE
  "CMakeFiles/rbvc_protocols.dir/protocols/bracha_rbc.cpp.o"
  "CMakeFiles/rbvc_protocols.dir/protocols/bracha_rbc.cpp.o.d"
  "CMakeFiles/rbvc_protocols.dir/protocols/dolev_strong.cpp.o"
  "CMakeFiles/rbvc_protocols.dir/protocols/dolev_strong.cpp.o.d"
  "CMakeFiles/rbvc_protocols.dir/protocols/om_broadcast.cpp.o"
  "CMakeFiles/rbvc_protocols.dir/protocols/om_broadcast.cpp.o.d"
  "CMakeFiles/rbvc_protocols.dir/protocols/scalar_consensus.cpp.o"
  "CMakeFiles/rbvc_protocols.dir/protocols/scalar_consensus.cpp.o.d"
  "CMakeFiles/rbvc_protocols.dir/protocols/witness.cpp.o"
  "CMakeFiles/rbvc_protocols.dir/protocols/witness.cpp.o.d"
  "librbvc_protocols.a"
  "librbvc_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
