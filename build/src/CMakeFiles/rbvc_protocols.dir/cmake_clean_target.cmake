file(REMOVE_RECURSE
  "librbvc_protocols.a"
)
