# Empty compiler generated dependencies file for rbvc_protocols.
# This may be replaced when dependencies are built.
