
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async_engine.cpp" "src/CMakeFiles/rbvc_sim.dir/sim/async_engine.cpp.o" "gcc" "src/CMakeFiles/rbvc_sim.dir/sim/async_engine.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/rbvc_sim.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/rbvc_sim.dir/sim/message.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/rbvc_sim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/rbvc_sim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/schedule_log.cpp" "src/CMakeFiles/rbvc_sim.dir/sim/schedule_log.cpp.o" "gcc" "src/CMakeFiles/rbvc_sim.dir/sim/schedule_log.cpp.o.d"
  "/root/repo/src/sim/signatures.cpp" "src/CMakeFiles/rbvc_sim.dir/sim/signatures.cpp.o" "gcc" "src/CMakeFiles/rbvc_sim.dir/sim/signatures.cpp.o.d"
  "/root/repo/src/sim/sync_engine.cpp" "src/CMakeFiles/rbvc_sim.dir/sim/sync_engine.cpp.o" "gcc" "src/CMakeFiles/rbvc_sim.dir/sim/sync_engine.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/rbvc_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/rbvc_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rbvc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
