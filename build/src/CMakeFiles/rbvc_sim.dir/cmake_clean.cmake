file(REMOVE_RECURSE
  "CMakeFiles/rbvc_sim.dir/sim/async_engine.cpp.o"
  "CMakeFiles/rbvc_sim.dir/sim/async_engine.cpp.o.d"
  "CMakeFiles/rbvc_sim.dir/sim/message.cpp.o"
  "CMakeFiles/rbvc_sim.dir/sim/message.cpp.o.d"
  "CMakeFiles/rbvc_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/rbvc_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/rbvc_sim.dir/sim/schedule_log.cpp.o"
  "CMakeFiles/rbvc_sim.dir/sim/schedule_log.cpp.o.d"
  "CMakeFiles/rbvc_sim.dir/sim/signatures.cpp.o"
  "CMakeFiles/rbvc_sim.dir/sim/signatures.cpp.o.d"
  "CMakeFiles/rbvc_sim.dir/sim/sync_engine.cpp.o"
  "CMakeFiles/rbvc_sim.dir/sim/sync_engine.cpp.o.d"
  "CMakeFiles/rbvc_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/rbvc_sim.dir/sim/trace.cpp.o.d"
  "librbvc_sim.a"
  "librbvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
