file(REMOVE_RECURSE
  "librbvc_sim.a"
)
