# Empty compiler generated dependencies file for rbvc_sim.
# This may be replaced when dependencies are built.
