file(REMOVE_RECURSE
  "CMakeFiles/rbvc_workload.dir/workload/adversarial_inputs.cpp.o"
  "CMakeFiles/rbvc_workload.dir/workload/adversarial_inputs.cpp.o.d"
  "CMakeFiles/rbvc_workload.dir/workload/byzantine_strategies.cpp.o"
  "CMakeFiles/rbvc_workload.dir/workload/byzantine_strategies.cpp.o.d"
  "CMakeFiles/rbvc_workload.dir/workload/generators.cpp.o"
  "CMakeFiles/rbvc_workload.dir/workload/generators.cpp.o.d"
  "CMakeFiles/rbvc_workload.dir/workload/runner.cpp.o"
  "CMakeFiles/rbvc_workload.dir/workload/runner.cpp.o.d"
  "CMakeFiles/rbvc_workload.dir/workload/svg.cpp.o"
  "CMakeFiles/rbvc_workload.dir/workload/svg.cpp.o.d"
  "librbvc_workload.a"
  "librbvc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbvc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
