file(REMOVE_RECURSE
  "librbvc_workload.a"
)
