# Empty dependencies file for rbvc_workload.
# This may be replaced when dependencies are built.
