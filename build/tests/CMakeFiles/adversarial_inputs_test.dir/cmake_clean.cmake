file(REMOVE_RECURSE
  "CMakeFiles/adversarial_inputs_test.dir/adversarial_inputs_test.cpp.o"
  "CMakeFiles/adversarial_inputs_test.dir/adversarial_inputs_test.cpp.o.d"
  "adversarial_inputs_test"
  "adversarial_inputs_test.pdb"
  "adversarial_inputs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_inputs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
