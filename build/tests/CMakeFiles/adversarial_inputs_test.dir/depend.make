# Empty dependencies file for adversarial_inputs_test.
# This may be replaced when dependencies are built.
