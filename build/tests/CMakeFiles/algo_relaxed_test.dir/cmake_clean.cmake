file(REMOVE_RECURSE
  "CMakeFiles/algo_relaxed_test.dir/algo_relaxed_test.cpp.o"
  "CMakeFiles/algo_relaxed_test.dir/algo_relaxed_test.cpp.o.d"
  "algo_relaxed_test"
  "algo_relaxed_test.pdb"
  "algo_relaxed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_relaxed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
