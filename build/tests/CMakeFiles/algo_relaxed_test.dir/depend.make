# Empty dependencies file for algo_relaxed_test.
# This may be replaced when dependencies are built.
