file(REMOVE_RECURSE
  "CMakeFiles/async_averaging_test.dir/async_averaging_test.cpp.o"
  "CMakeFiles/async_averaging_test.dir/async_averaging_test.cpp.o.d"
  "async_averaging_test"
  "async_averaging_test.pdb"
  "async_averaging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_averaging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
