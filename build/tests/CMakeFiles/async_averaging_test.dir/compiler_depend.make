# Empty compiler generated dependencies file for async_averaging_test.
# This may be replaced when dependencies are built.
