file(REMOVE_RECURSE
  "CMakeFiles/async_f2_test.dir/async_f2_test.cpp.o"
  "CMakeFiles/async_f2_test.dir/async_f2_test.cpp.o.d"
  "async_f2_test"
  "async_f2_test.pdb"
  "async_f2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_f2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
