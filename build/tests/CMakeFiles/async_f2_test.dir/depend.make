# Empty dependencies file for async_f2_test.
# This may be replaced when dependencies are built.
