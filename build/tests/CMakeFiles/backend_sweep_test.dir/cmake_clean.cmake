file(REMOVE_RECURSE
  "CMakeFiles/backend_sweep_test.dir/backend_sweep_test.cpp.o"
  "CMakeFiles/backend_sweep_test.dir/backend_sweep_test.cpp.o.d"
  "backend_sweep_test"
  "backend_sweep_test.pdb"
  "backend_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
