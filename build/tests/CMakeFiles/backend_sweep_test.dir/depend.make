# Empty dependencies file for backend_sweep_test.
# This may be replaced when dependencies are built.
