file(REMOVE_RECURSE
  "CMakeFiles/bracha_rbc_test.dir/bracha_rbc_test.cpp.o"
  "CMakeFiles/bracha_rbc_test.dir/bracha_rbc_test.cpp.o.d"
  "bracha_rbc_test"
  "bracha_rbc_test.pdb"
  "bracha_rbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bracha_rbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
