# Empty compiler generated dependencies file for bracha_rbc_test.
# This may be replaced when dependencies are built.
