file(REMOVE_RECURSE
  "CMakeFiles/byzantine_strategies_test.dir/byzantine_strategies_test.cpp.o"
  "CMakeFiles/byzantine_strategies_test.dir/byzantine_strategies_test.cpp.o.d"
  "byzantine_strategies_test"
  "byzantine_strategies_test.pdb"
  "byzantine_strategies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
