# Empty compiler generated dependencies file for byzantine_strategies_test.
# This may be replaced when dependencies are built.
