file(REMOVE_RECURSE
  "CMakeFiles/caratheodory_test.dir/caratheodory_test.cpp.o"
  "CMakeFiles/caratheodory_test.dir/caratheodory_test.cpp.o.d"
  "caratheodory_test"
  "caratheodory_test.pdb"
  "caratheodory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caratheodory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
