# Empty compiler generated dependencies file for caratheodory_test.
# This may be replaced when dependencies are built.
