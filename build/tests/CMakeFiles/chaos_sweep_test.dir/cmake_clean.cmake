file(REMOVE_RECURSE
  "CMakeFiles/chaos_sweep_test.dir/chaos_sweep_test.cpp.o"
  "CMakeFiles/chaos_sweep_test.dir/chaos_sweep_test.cpp.o.d"
  "chaos_sweep_test"
  "chaos_sweep_test.pdb"
  "chaos_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
