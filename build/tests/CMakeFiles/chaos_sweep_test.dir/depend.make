# Empty dependencies file for chaos_sweep_test.
# This may be replaced when dependencies are built.
