file(REMOVE_RECURSE
  "CMakeFiles/crash_faults_test.dir/crash_faults_test.cpp.o"
  "CMakeFiles/crash_faults_test.dir/crash_faults_test.cpp.o.d"
  "crash_faults_test"
  "crash_faults_test.pdb"
  "crash_faults_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_faults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
