# Empty dependencies file for crash_faults_test.
# This may be replaced when dependencies are built.
