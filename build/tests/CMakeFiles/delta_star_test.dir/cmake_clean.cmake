file(REMOVE_RECURSE
  "CMakeFiles/delta_star_test.dir/delta_star_test.cpp.o"
  "CMakeFiles/delta_star_test.dir/delta_star_test.cpp.o.d"
  "delta_star_test"
  "delta_star_test.pdb"
  "delta_star_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
