# Empty compiler generated dependencies file for delta_star_test.
# This may be replaced when dependencies are built.
