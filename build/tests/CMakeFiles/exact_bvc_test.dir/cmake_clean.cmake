file(REMOVE_RECURSE
  "CMakeFiles/exact_bvc_test.dir/exact_bvc_test.cpp.o"
  "CMakeFiles/exact_bvc_test.dir/exact_bvc_test.cpp.o.d"
  "exact_bvc_test"
  "exact_bvc_test.pdb"
  "exact_bvc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_bvc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
