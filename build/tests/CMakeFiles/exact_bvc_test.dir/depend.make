# Empty dependencies file for exact_bvc_test.
# This may be replaced when dependencies are built.
