file(REMOVE_RECURSE
  "CMakeFiles/gamma_test.dir/gamma_test.cpp.o"
  "CMakeFiles/gamma_test.dir/gamma_test.cpp.o.d"
  "gamma_test"
  "gamma_test.pdb"
  "gamma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
