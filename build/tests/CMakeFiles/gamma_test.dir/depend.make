# Empty dependencies file for gamma_test.
# This may be replaced when dependencies are built.
