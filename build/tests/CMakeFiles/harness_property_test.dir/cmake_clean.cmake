file(REMOVE_RECURSE
  "CMakeFiles/harness_property_test.dir/harness_property_test.cpp.o"
  "CMakeFiles/harness_property_test.dir/harness_property_test.cpp.o.d"
  "harness_property_test"
  "harness_property_test.pdb"
  "harness_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
