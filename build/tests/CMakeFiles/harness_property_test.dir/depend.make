# Empty dependencies file for harness_property_test.
# This may be replaced when dependencies are built.
