file(REMOVE_RECURSE
  "CMakeFiles/hull_consensus_test.dir/hull_consensus_test.cpp.o"
  "CMakeFiles/hull_consensus_test.dir/hull_consensus_test.cpp.o.d"
  "hull_consensus_test"
  "hull_consensus_test.pdb"
  "hull_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hull_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
