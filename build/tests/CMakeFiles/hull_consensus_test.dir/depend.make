# Empty dependencies file for hull_consensus_test.
# This may be replaced when dependencies are built.
