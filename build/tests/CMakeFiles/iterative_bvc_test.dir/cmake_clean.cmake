file(REMOVE_RECURSE
  "CMakeFiles/iterative_bvc_test.dir/iterative_bvc_test.cpp.o"
  "CMakeFiles/iterative_bvc_test.dir/iterative_bvc_test.cpp.o.d"
  "iterative_bvc_test"
  "iterative_bvc_test.pdb"
  "iterative_bvc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_bvc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
