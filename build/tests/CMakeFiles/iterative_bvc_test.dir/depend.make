# Empty dependencies file for iterative_bvc_test.
# This may be replaced when dependencies are built.
