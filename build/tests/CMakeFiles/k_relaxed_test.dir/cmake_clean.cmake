file(REMOVE_RECURSE
  "CMakeFiles/k_relaxed_test.dir/k_relaxed_test.cpp.o"
  "CMakeFiles/k_relaxed_test.dir/k_relaxed_test.cpp.o.d"
  "k_relaxed_test"
  "k_relaxed_test.pdb"
  "k_relaxed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k_relaxed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
