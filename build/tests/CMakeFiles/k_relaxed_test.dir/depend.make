# Empty dependencies file for k_relaxed_test.
# This may be replaced when dependencies are built.
