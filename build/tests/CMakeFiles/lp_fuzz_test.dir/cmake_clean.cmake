file(REMOVE_RECURSE
  "CMakeFiles/lp_fuzz_test.dir/lp_fuzz_test.cpp.o"
  "CMakeFiles/lp_fuzz_test.dir/lp_fuzz_test.cpp.o.d"
  "lp_fuzz_test"
  "lp_fuzz_test.pdb"
  "lp_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
