file(REMOVE_RECURSE
  "CMakeFiles/om_broadcast_test.dir/om_broadcast_test.cpp.o"
  "CMakeFiles/om_broadcast_test.dir/om_broadcast_test.cpp.o.d"
  "om_broadcast_test"
  "om_broadcast_test.pdb"
  "om_broadcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/om_broadcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
