file(REMOVE_RECURSE
  "CMakeFiles/paper_constructions_test.dir/paper_constructions_test.cpp.o"
  "CMakeFiles/paper_constructions_test.dir/paper_constructions_test.cpp.o.d"
  "paper_constructions_test"
  "paper_constructions_test.pdb"
  "paper_constructions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_constructions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
