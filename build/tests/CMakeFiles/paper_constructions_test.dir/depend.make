# Empty dependencies file for paper_constructions_test.
# This may be replaced when dependencies are built.
