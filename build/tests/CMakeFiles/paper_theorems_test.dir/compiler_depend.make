# Empty compiler generated dependencies file for paper_theorems_test.
# This may be replaced when dependencies are built.
