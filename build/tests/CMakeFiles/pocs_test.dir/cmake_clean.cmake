file(REMOVE_RECURSE
  "CMakeFiles/pocs_test.dir/pocs_test.cpp.o"
  "CMakeFiles/pocs_test.dir/pocs_test.cpp.o.d"
  "pocs_test"
  "pocs_test.pdb"
  "pocs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
