# Empty compiler generated dependencies file for pocs_test.
# This may be replaced when dependencies are built.
