file(REMOVE_RECURSE
  "CMakeFiles/poly2d_test.dir/poly2d_test.cpp.o"
  "CMakeFiles/poly2d_test.dir/poly2d_test.cpp.o.d"
  "poly2d_test"
  "poly2d_test.pdb"
  "poly2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
