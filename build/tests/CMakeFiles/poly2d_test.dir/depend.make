# Empty dependencies file for poly2d_test.
# This may be replaced when dependencies are built.
