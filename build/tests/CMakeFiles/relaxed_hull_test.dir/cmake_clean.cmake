file(REMOVE_RECURSE
  "CMakeFiles/relaxed_hull_test.dir/relaxed_hull_test.cpp.o"
  "CMakeFiles/relaxed_hull_test.dir/relaxed_hull_test.cpp.o.d"
  "relaxed_hull_test"
  "relaxed_hull_test.pdb"
  "relaxed_hull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxed_hull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
