# Empty dependencies file for relaxed_hull_test.
# This may be replaced when dependencies are built.
