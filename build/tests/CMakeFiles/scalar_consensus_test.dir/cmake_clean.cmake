file(REMOVE_RECURSE
  "CMakeFiles/scalar_consensus_test.dir/scalar_consensus_test.cpp.o"
  "CMakeFiles/scalar_consensus_test.dir/scalar_consensus_test.cpp.o.d"
  "scalar_consensus_test"
  "scalar_consensus_test.pdb"
  "scalar_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
