# Empty dependencies file for scalar_consensus_test.
# This may be replaced when dependencies are built.
