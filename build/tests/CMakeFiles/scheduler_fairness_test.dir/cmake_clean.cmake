file(REMOVE_RECURSE
  "CMakeFiles/scheduler_fairness_test.dir/scheduler_fairness_test.cpp.o"
  "CMakeFiles/scheduler_fairness_test.dir/scheduler_fairness_test.cpp.o.d"
  "scheduler_fairness_test"
  "scheduler_fairness_test.pdb"
  "scheduler_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
