# Empty dependencies file for scheduler_fairness_test.
# This may be replaced when dependencies are built.
