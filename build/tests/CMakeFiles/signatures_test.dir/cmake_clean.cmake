file(REMOVE_RECURSE
  "CMakeFiles/signatures_test.dir/signatures_test.cpp.o"
  "CMakeFiles/signatures_test.dir/signatures_test.cpp.o.d"
  "signatures_test"
  "signatures_test.pdb"
  "signatures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signatures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
