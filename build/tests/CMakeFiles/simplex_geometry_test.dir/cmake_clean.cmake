file(REMOVE_RECURSE
  "CMakeFiles/simplex_geometry_test.dir/simplex_geometry_test.cpp.o"
  "CMakeFiles/simplex_geometry_test.dir/simplex_geometry_test.cpp.o.d"
  "simplex_geometry_test"
  "simplex_geometry_test.pdb"
  "simplex_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
