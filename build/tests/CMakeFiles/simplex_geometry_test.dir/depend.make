# Empty dependencies file for simplex_geometry_test.
# This may be replaced when dependencies are built.
