file(REMOVE_RECURSE
  "CMakeFiles/simplex_lp_test.dir/simplex_lp_test.cpp.o"
  "CMakeFiles/simplex_lp_test.dir/simplex_lp_test.cpp.o.d"
  "simplex_lp_test"
  "simplex_lp_test.pdb"
  "simplex_lp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_lp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
