# Empty dependencies file for simplex_lp_test.
# This may be replaced when dependencies are built.
