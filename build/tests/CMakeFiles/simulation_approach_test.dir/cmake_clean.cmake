file(REMOVE_RECURSE
  "CMakeFiles/simulation_approach_test.dir/simulation_approach_test.cpp.o"
  "CMakeFiles/simulation_approach_test.dir/simulation_approach_test.cpp.o.d"
  "simulation_approach_test"
  "simulation_approach_test.pdb"
  "simulation_approach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_approach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
