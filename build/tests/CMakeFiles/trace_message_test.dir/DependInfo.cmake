
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_message_test.cpp" "tests/CMakeFiles/trace_message_test.dir/trace_message_test.cpp.o" "gcc" "tests/CMakeFiles/trace_message_test.dir/trace_message_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rbvc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_hull.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rbvc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
