file(REMOVE_RECURSE
  "CMakeFiles/trace_message_test.dir/trace_message_test.cpp.o"
  "CMakeFiles/trace_message_test.dir/trace_message_test.cpp.o.d"
  "trace_message_test"
  "trace_message_test.pdb"
  "trace_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
