# Empty dependencies file for trace_message_test.
# This may be replaced when dependencies are built.
