file(REMOVE_RECURSE
  "CMakeFiles/tverberg_test.dir/tverberg_test.cpp.o"
  "CMakeFiles/tverberg_test.dir/tverberg_test.cpp.o.d"
  "tverberg_test"
  "tverberg_test.pdb"
  "tverberg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tverberg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
