# Empty compiler generated dependencies file for tverberg_test.
# This may be replaced when dependencies are built.
