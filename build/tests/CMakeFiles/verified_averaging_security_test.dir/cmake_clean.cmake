file(REMOVE_RECURSE
  "CMakeFiles/verified_averaging_security_test.dir/verified_averaging_security_test.cpp.o"
  "CMakeFiles/verified_averaging_security_test.dir/verified_averaging_security_test.cpp.o.d"
  "verified_averaging_security_test"
  "verified_averaging_security_test.pdb"
  "verified_averaging_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_averaging_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
