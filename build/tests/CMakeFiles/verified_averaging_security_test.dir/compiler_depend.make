# Empty compiler generated dependencies file for verified_averaging_security_test.
# This may be replaced when dependencies are built.
