file(REMOVE_RECURSE
  "CMakeFiles/wolfe_test.dir/wolfe_test.cpp.o"
  "CMakeFiles/wolfe_test.dir/wolfe_test.cpp.o.d"
  "wolfe_test"
  "wolfe_test.pdb"
  "wolfe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolfe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
