# Empty dependencies file for wolfe_test.
# This may be replaced when dependencies are built.
