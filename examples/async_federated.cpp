// Asynchronous federated aggregation with stragglers and Byzantine workers.
//
// n workers hold d-dimensional model-parameter vectors and must converge on
// a common vector without any timing assumptions: messages can be delayed
// arbitrarily (stragglers), and up to f workers are Byzantine. This is
// approximate Byzantine vector consensus; the classic bound demands
// n >= (d+2)f+1 workers, which for d = 8, f = 1 means 11 workers. The
// paper's Relaxed Verified Averaging (Sec. 10) runs with just 3f+1 = 4,
// trading exact hull validity for an input-dependent tolerance.
#include <cstdio>

#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

int main() {
  using namespace rbvc;
  constexpr std::size_t kD = 8;
  constexpr std::size_t kF = 1;
  Rng rng(777);

  // Honest workers' parameters cluster around the "true" model.
  const Vec true_model = scale(0.5, rng.normal_vec(kD));
  auto params = [&](std::size_t count) {
    std::vector<Vec> ps;
    for (std::size_t i = 0; i < count; ++i) {
      Vec p = true_model;
      axpy(0.1, rng.normal_vec(kD), p);
      ps.push_back(std::move(p));
    }
    return ps;
  };

  std::printf("async federated aggregation: d=%zu, f=%zu\n", kD, kF);
  std::printf("classic bound (d+2)f+1 = %zu workers; relaxed bound 3f+1 = "
              "%zu\n\n", (kD + 2) * kF + 1, 3 * kF + 1);

  // Run Relaxed Verified Averaging with only 4 workers, one Byzantine,
  // under an adversarial scheduler that starves one correct worker.
  workload::AsyncExperiment e;
  e.prm.n = 4;
  e.prm.f = kF;
  e.prm.rounds = 10;
  e.prm.rule = consensus::AsyncAveragingProcess::Round0Rule::kRelaxedL2;
  e.d = kD;
  e.honest_inputs = params(3);
  e.byzantine_ids = {1};
  e.strategy = workload::AsyncStrategy::kOutlierInput;
  e.scheduler = workload::SchedulerKind::kLaggard;
  e.seed = 31;

  const auto out = workload::run_async_experiment(e);
  if (out.failed) {
    std::printf("aggregation failed to terminate\n");
    return 1;
  }

  std::printf("correct workers' aggregated models:\n");
  for (const Vec& d : out.decisions) {
    std::printf("  %s\n", to_string(d).c_str());
  }

  const auto agree = check_agreement(out.decisions);
  std::printf("\nepsilon-agreement: max pairwise Linf = %.3g after %zu "
              "averaging rounds\n", agree.max_pairwise_linf, e.prm.rounds);

  double max_dist = 0.0;
  for (const Vec& d : out.decisions) {
    max_dist = std::max(max_dist,
                        distance_to_hull(d, out.honest_inputs, 2.0));
  }
  const double budget = input_dependent_delta(out.honest_inputs, 1.0);
  std::printf("validity: aggregate within %.4f of the honest-parameter hull "
              "(honest spread budget %.4f) -> %s\n", max_dist, budget,
              max_dist <= budget + 1e-9 ? "OK" : "VIOLATED");
  for (std::size_t i = 0; i < out.round0_deltas.size(); ++i) {
    std::printf("  worker %zu round-0 relaxation delta: %.4f\n", i,
                out.round0_deltas[i]);
  }
  std::printf("\nmessages: %zu sends, %zu deliveries (straggler-adversarial "
              "schedule)\n", out.stats.sends, out.stats.deliveries);
  std::printf("error vs true model: %.4f (honest workers' own noise ~0.1)\n",
              dist2(out.decisions.front(), true_model));
  return 0;
}
