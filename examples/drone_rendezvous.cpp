// Drone rendezvous with hijacked fleet members.
//
// A fleet of drones must agree on a single 3-D rendezvous point. Each drone
// proposes its preferred point; up to f drones are hijacked and behave
// arbitrarily (lying differently to different peers, proposing far-away
// points, or going silent). Safety requires the agreed point to be close to
// the hull of the honest proposals -- a hijacker must not be able to drag
// the fleet to an ambush site.
//
// The demo sweeps hijack strategies and fleet sizes, comparing exact BVC
// (n >= 4f+1 drones for d = 3) against ALGO (n >= 3f+1), and showing the
// ambush distance stays bounded by the honest-proposal spread.
#include <cstdio>

#include "consensus/algo_relaxed.h"
#include "consensus/exact_bvc.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

int main() {
  using namespace rbvc;
  constexpr std::size_t kD = 3;
  Rng rng(1234);

  // Honest drones propose points near the mission area centered at (10, 5, 2).
  const Vec mission_center = {10.0, 5.0, 2.0};
  auto propose = [&](std::size_t count, double spread) {
    std::vector<Vec> ps;
    for (std::size_t i = 0; i < count; ++i) {
      Vec p = mission_center;
      axpy(spread, rng.normal_vec(kD), p);
      ps.push_back(std::move(p));
    }
    return ps;
  };

  std::printf("drone rendezvous: d = 3, hijack budget f, mission center %s\n",
              to_string(mission_center).c_str());

  const workload::SyncStrategy attacks[] = {
      workload::SyncStrategy::kOutlierInput,  // propose an ambush site
      workload::SyncStrategy::kEquivocate,    // tell each drone different
      workload::SyncStrategy::kLyingRelay,    // corrupt relayed gossip
      workload::SyncStrategy::kSilent,        // jammed / destroyed
  };

  std::printf("\n%-14s %-8s %-10s %-12s %-14s %s\n", "attack", "fleet",
              "algorithm", "agreed?", "dist-to-hull", "rendezvous");
  for (const auto attack : attacks) {
    // Minimal fleet for ALGO: n = 3f+1 = 4 with f = 1.
    {
      workload::SyncExperiment e;
      e.n = 4;
      e.f = 1;
      e.honest_inputs = propose(3, 0.5);
      e.byzantine_ids = {2};
      e.strategy = attack;
      e.decision = consensus::algo_decision(1);
      e.seed = rng.next_u64();
      const auto out = workload::run_sync_experiment(e);
      if (out.decision_failed) {
        std::printf("%-14s %-8s %-10s FAILED: %s\n",
                    workload::to_string(attack), "4", "ALGO",
                    out.failure.c_str());
        continue;
      }
      const double drift =
          distance_to_hull(out.decisions.front(), out.honest_inputs, 2.0);
      std::printf("%-14s %-8d %-10s %-12s %-14.4f %s\n",
                  workload::to_string(attack), 4, "ALGO",
                  check_agreement(out.decisions).identical ? "yes" : "NO",
                  drift, to_string(out.decisions.front()).c_str());
    }
    // Exact fleet: n = 4f+1 = 5.
    {
      workload::SyncExperiment e;
      e.n = 5;
      e.f = 1;
      e.honest_inputs = propose(4, 0.5);
      e.byzantine_ids = {2};
      e.strategy = attack;
      e.decision = consensus::exact_bvc_decision(1);
      e.seed = rng.next_u64();
      const auto out = workload::run_sync_experiment(e);
      if (out.decision_failed) {
        std::printf("%-14s %-8s %-10s FAILED: %s\n",
                    workload::to_string(attack), "5", "exact",
                    out.failure.c_str());
        continue;
      }
      const double drift =
          distance_to_hull(out.decisions.front(), out.honest_inputs, 2.0);
      std::printf("%-14s %-8d %-10s %-12s %-14.4f %s\n",
                  workload::to_string(attack), 5, "exact",
                  check_agreement(out.decisions).identical ? "yes" : "NO",
                  drift, to_string(out.decisions.front()).c_str());
    }
  }

  // Safety claim: the ambush drift of ALGO is bounded by the honest spread.
  std::printf(
      "\nSafety: ALGO's distance-to-honest-hull never exceeds\n"
      "min(min-edge/2, max-edge/(n-2)) of the honest proposals (Thm 9) --\n"
      "a hijacker cannot move the rendezvous further than the fleet's own\n"
      "disagreement, no matter the attack.\n");
  return 0;
}
