// Quickstart: run ALGO -- relaxed Byzantine vector consensus with an
// input-dependent delta (paper Sec. 9) -- on a 5-process system with one
// equivocating Byzantine process and 4-dimensional inputs, then verify
// agreement and the Theorem 9 validity bound.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "consensus/algo_relaxed.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "obs/metrics.h"
#include "workload/generators.h"
#include "workload/runner.h"

int main() {
  using namespace rbvc;

  // --- 1. Describe the system: n = 5 processes, up to f = 1 Byzantine,
  //        d = 4 dimensional inputs. Note n = d+1 < (d+1)f+1 = 6: exact
  //        Byzantine vector consensus is impossible here; ALGO is not.
  constexpr std::size_t kN = 5, kF = 1, kD = 4;
  Rng rng(/*seed=*/2016);

  workload::SyncExperiment experiment;
  experiment.n = kN;
  experiment.f = kF;
  experiment.honest_inputs = workload::gaussian_cloud(rng, kN - 1, kD);
  experiment.byzantine_ids = {2};  // process 2 is Byzantine
  experiment.strategy = workload::SyncStrategy::kEquivocate;
  experiment.decision = consensus::algo_decision(kF);
  experiment.seed = 7;

  std::printf("rbvc quickstart: n=%zu f=%zu d=%zu, process 2 equivocates\n\n",
              kN, kF, kD);
  for (std::size_t i = 0; i < experiment.honest_inputs.size(); ++i) {
    std::printf("  honest input %zu: %s\n", i,
                to_string(experiment.honest_inputs[i]).c_str());
  }

  // --- 2. Run the synchronous protocol (EIG broadcast + ALGO step 2).
  const auto outcome = workload::run_sync_experiment(experiment);
  if (outcome.decision_failed) {
    std::printf("consensus failed: %s\n", outcome.failure.c_str());
    return 1;
  }

  std::printf("\nDecisions of the %zu correct processes:\n",
              outcome.decisions.size());
  for (const Vec& d : outcome.decisions) {
    std::printf("  %s\n", to_string(d).c_str());
  }

  // --- 3. Verify the paper's guarantees.
  const auto agreement = check_agreement(outcome.decisions);
  std::printf("\nagreement: %s (max pairwise Linf %.3g)\n",
              agreement.identical ? "EXACT" : "VIOLATED",
              agreement.max_pairwise_linf);

  const auto edges = edge_extremes(outcome.honest_inputs);
  const double budget = std::min(edges.min_edge / 2.0,
                                 edges.max_edge / double(kN - 2));
  const double excess = delta_p_validity_excess(
      outcome.decisions, outcome.honest_inputs, budget, 2.0);
  double achieved = 0.0;
  for (const Vec& d : outcome.decisions) {
    achieved = std::max(
        achieved, distance_to_hull(d, outcome.honest_inputs, 2.0));
  }
  std::printf("validity: decision is %.4f from the honest hull "
              "(Theorem 9 budget %.4f) -> %s\n",
              achieved, budget, excess <= 1e-9 ? "SATISFIED" : "VIOLATED");
  std::printf("\nprotocol cost: %zu messages over %zu rounds\n",
              outcome.stats.messages, outcome.stats.rounds);

  // --- 4. Run telemetry: with RBVC_METRICS_OUT=<path> set, the metrics
  //        the run accumulated (engine/protocol counters, LP and geometry
  //        kernel timings) are exported as stable JSON.
  const std::string metrics_path = obs::export_global();
  if (!metrics_path.empty()) {
    std::printf("metrics written: %s (%zu metrics)\n", metrics_path.c_str(),
                obs::global().size());
  }
  return excess <= 1e-9 && agreement.identical ? 0 : 1;
}
