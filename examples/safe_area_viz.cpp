// Safe-area visualizer: renders the geometry behind the algorithms as an
// SVG -- the 2-D inputs, their convex hull, the Byzantine-safe polygons
// Gamma(S) for f = 1 and f = 2, and ALGO's decision point. Open the output
// in any browser to see how the safe region shrinks as the fault budget
// grows, and where the decision lands.
//
//   ./build/examples/safe_area_viz [output.svg]
#include <cstdio>

#include "consensus/algo_relaxed.h"
#include "consensus/hull_consensus.h"
#include "workload/generators.h"
#include "workload/svg.h"

int main(int argc, char** argv) {
  using namespace rbvc;
  const std::string path = argc > 1 ? argv[1] : "safe_area.svg";

  Rng rng(20160130);  // the paper's arXiv date, why not
  const auto inputs = workload::gaussian_cloud(rng, 9, 2);

  workload::SvgScene scene(720);
  scene.add_hull(inputs, "#9467bd", "hull of all 9 inputs");
  scene.add_points(inputs, "#333333", "process inputs");

  for (std::size_t f : {1u, 2u}) {
    const auto poly = consensus::gamma_polygon(inputs, f);
    if (!poly) {
      std::printf("Gamma(S) empty for f = %zu\n", f);
      continue;
    }
    scene.add_polygon(*poly, f == 1 ? "#2ca02c" : "#d62728",
                      "Gamma(S), f = " + std::to_string(f));
    std::printf("f = %zu: safe polygon with %zu vertices, area %.4f\n", f,
                poly->size(), polygon_area(*poly));
  }

  const Vec decision = consensus::algo_decision(2)(inputs);
  scene.add_marker(decision, "#ff7f0e", "ALGO decision (f = 2)");
  std::printf("ALGO (f = 2) decision: %s\n", to_string(decision).c_str());

  if (!scene.write_file(path)) {
    std::printf("failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s -- open it in a browser\n", path.c_str());
  return 0;
}
