// Sensor fusion with compromised sensors.
//
// A plant is monitored by n sensor nodes, each producing a d-dimensional
// state estimate (temperature, pressure, flow, vibration, ...). Up to f
// nodes may be compromised and report arbitrary values -- possibly
// different values to different peers. The nodes must agree on one fused
// state estimate that is meaningfully close to the honest measurements.
//
// This is Byzantine vector consensus verbatim. The demo contrasts:
//   * exact BVC     -- needs n >= (d+1)f+1 sensors, exact validity;
//   * ALGO          -- works from n = 3f+1 sensors, validity within an
//                      input-dependent delta (tiny when sensors agree);
//   * 1-relaxed     -- per-axis median, box validity.
// The punchline mirrors the paper: with d = 6 and f = 1 you'd need 8
// sensors for exact fusion, but 4 suffice once the validity condition is
// relaxed -- and because honest measurements cluster tightly, the relaxed
// output is still within sensor noise of the truth.
#include <cstdio>

#include "consensus/algo_relaxed.h"
#include "consensus/exact_bvc.h"
#include "consensus/k_relaxed.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

int main() {
  using namespace rbvc;
  constexpr std::size_t kD = 6;  // state dimension
  constexpr std::size_t kF = 1;  // compromised-sensor budget
  Rng rng(99);

  // Honest sensors measure the true state plus noise.
  const Vec true_state = {450.0, 2.1, 13.7, 0.02, 96.0, 7.4};
  auto measure = [&](std::size_t count) {
    std::vector<Vec> ms;
    for (std::size_t i = 0; i < count; ++i) {
      Vec m = true_state;
      axpy(0.05, rng.normal_vec(kD), m);  // sensor noise
      ms.push_back(std::move(m));
    }
    return ms;
  };

  std::printf("sensor fusion: d=%zu state, f=%zu compromised sensor\n",
              kD, kF);
  std::printf("true state: %s\n\n", to_string(true_state).c_str());

  // --- Attempt 1: exact BVC with only 4 sensors (below its bound of 8).
  {
    workload::SyncExperiment e;
    e.n = 4;
    e.f = kF;
    e.honest_inputs = measure(3);
    e.byzantine_ids = {1};
    e.strategy = workload::SyncStrategy::kOutlierInput;
    e.decision = consensus::exact_bvc_decision(kF);
    e.seed = 5;
    const auto out = workload::run_sync_experiment(e);
    std::printf("[4 sensors] exact BVC: %s\n",
                out.decision_failed ? out.failure.c_str() : "succeeded");
  }

  // --- Attempt 2: ALGO with the same 4 sensors.
  {
    workload::SyncExperiment e;
    e.n = 4;
    e.f = kF;
    e.honest_inputs = measure(3);
    e.byzantine_ids = {1};
    e.strategy = workload::SyncStrategy::kOutlierInput;
    e.decision = consensus::algo_decision(kF);
    e.seed = 5;
    const auto out = workload::run_sync_experiment(e);
    if (out.decision_failed) {
      std::printf("[4 sensors] ALGO: unexpectedly failed\n");
      return 1;
    }
    const Vec& fused = out.decisions.front();
    const double err = dist2(fused, true_state);
    const double budget = input_dependent_delta(out.honest_inputs, 0.5);
    std::printf("[4 sensors] ALGO fused estimate: %s\n",
                to_string(fused).c_str());
    std::printf("            error vs true state: %.4f "
                "(honest sensors span %.4f; relaxation budget %.4f)\n",
                err, edge_extremes(out.honest_inputs).max_edge, budget);
    std::printf("            agreement: %s\n",
                check_agreement(out.decisions).identical ? "exact"
                                                         : "VIOLATED");
  }

  // --- Attempt 3: per-axis median (1-relaxed) with 4 sensors.
  {
    workload::SyncExperiment e;
    e.n = 4;
    e.f = kF;
    e.honest_inputs = measure(3);
    e.byzantine_ids = {0};
    e.strategy = workload::SyncStrategy::kEquivocate;
    e.decision = consensus::k_relaxed_decision(kF, 1);
    e.seed = 6;
    const auto out = workload::run_sync_experiment(e);
    std::printf("[4 sensors] per-axis median estimate: %s (err %.4f)\n",
                to_string(out.decisions.front()).c_str(),
                dist2(out.decisions.front(), true_state));
  }

  // --- Reference: exact BVC with the full 8-sensor array.
  {
    workload::SyncExperiment e;
    e.n = (kD + 1) * kF + 1;  // 8
    e.f = kF;
    e.honest_inputs = measure(e.n - 1);
    e.byzantine_ids = {4};
    e.strategy = workload::SyncStrategy::kOutlierInput;
    e.decision = consensus::exact_bvc_decision(kF);
    e.seed = 7;
    const auto out = workload::run_sync_experiment(e);
    if (out.decision_failed) {
      std::printf("[8 sensors] exact BVC failed unexpectedly\n");
      return 1;
    }
    std::printf("[8 sensors] exact BVC estimate:  %s (err %.4f)\n",
                to_string(out.decisions.front()).c_str(),
                dist2(out.decisions.front(), true_state));
  }

  std::printf("\nTakeaway: relaxed validity halves the sensor count, and the\n"
              "relaxation budget scales with honest-sensor disagreement --\n"
              "tightly clustered sensors lose almost nothing.\n");
  return 0;
}
