// Signed micro-fleet: consensus with just THREE nodes and one of them
// Byzantine.
//
// Unauthenticated Byzantine consensus needs n >= 3f+1 = 4 processes
// (Lemma 10 / the classic Fischer-Lynch-Merritt bound) -- a three-node
// deployment is provably out of reach. But the paper's footnote 3 observes
// the floor comes from the broadcast substrate, not the vector geometry:
// give the nodes digital signatures (Dolev-Strong broadcast) and ALGO runs
// fine at n = 3, f = 1.
//
// The demo runs the same 3-node scenario on both backends: EIG refuses at
// construction; Dolev-Strong reaches exact agreement with bounded validity
// even against a double-signing equivocator.
#include <cstdio>

#include "consensus/algo_relaxed.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

int main() {
  using namespace rbvc;
  constexpr std::size_t kD = 2;
  Rng rng(333);

  workload::SyncExperiment e;
  e.n = 3;
  e.f = 1;
  e.honest_inputs = {rng.normal_vec(kD), rng.normal_vec(kD)};
  e.byzantine_ids = {2};
  e.strategy = workload::SyncStrategy::kEquivocate;
  e.decision = consensus::algo_decision(1);
  e.seed = 12;

  std::printf("signed micro-fleet: n = 3 nodes, f = 1 Byzantine, d = %zu\n\n",
              kD);
  std::printf("honest inputs: %s, %s\n",
              to_string(e.honest_inputs[0]).c_str(),
              to_string(e.honest_inputs[1]).c_str());

  // --- Attempt 1: unauthenticated (EIG) backend.
  std::printf("\n[unauthenticated broadcast] ");
  try {
    e.backend = workload::SyncBackend::kEig;
    (void)workload::run_sync_experiment(e);
    std::printf("unexpectedly ran!\n");
    return 1;
  } catch (const invalid_argument& ex) {
    std::printf("refused as the theory demands:\n  %s\n", ex.what());
  }

  // --- Attempt 2: authenticated (Dolev-Strong) backend.
  e.backend = workload::SyncBackend::kDolevStrong;
  const auto out = workload::run_sync_experiment(e);
  if (out.decision_failed) {
    std::printf("\n[signed broadcast] failed: %s\n", out.failure.c_str());
    return 1;
  }
  std::printf("\n[signed broadcast] decisions:\n");
  for (const Vec& d : out.decisions) {
    std::printf("  %s\n", to_string(d).c_str());
  }
  const auto agree = check_agreement(out.decisions);
  std::printf("agreement: %s\n", agree.identical ? "EXACT" : "VIOLATED");

  double drift = 0.0;
  for (const Vec& d : out.decisions) {
    drift = std::max(drift, distance_to_hull(d, out.honest_inputs, 2.0));
  }
  const double spread = edge_extremes(out.honest_inputs).max_edge;
  std::printf("validity: decision %.4f from the honest segment "
              "(honest spread %.4f) -> %s\n",
              drift, spread, drift <= spread + 1e-9 ? "bounded" : "VIOLATED");
  std::printf("\nmessages: %zu in %zu rounds (Dolev-Strong is O(n^2 f) -- "
              "cheap at this scale)\n",
              out.stats.messages, out.stats.rounds);
  std::printf(
      "\nTakeaway: the 3f+1 floor is a property of unauthenticated\n"
      "channels; with signatures, relaxed vector consensus deploys on the\n"
      "smallest fleet that can out-vote one traitor.\n");
  return agree.identical ? 0 : 1;
}
