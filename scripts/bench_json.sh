#!/usr/bin/env bash
# Builds the benches in Release mode, runs every bench_* with `--json`, and
# aggregates the per-bench metric registries into BENCH_e2e.json (one
# top-level key per bench) so future PRs can diff the perf trajectory.
#
# Usage:
#   scripts/bench_json.sh [out.json]
#
# Env knobs:
#   RBVC_BENCH_BUILD_DIR   build directory (default: build-bench)
#   RBVC_BENCH_FILTER      --benchmark_filter regex passed to each bench
#                          (default: ^$ -- report phase + metrics only, no
#                          timed iterations, so the sweep stays fast; set
#                          to '.' for full timings)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_e2e.json}"
BUILD_DIR="${RBVC_BENCH_BUILD_DIR:-build-bench}"
FILTER="${RBVC_BENCH_FILTER:-^\$}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

benches=()
for exe in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$exe" ] || continue
  benches+=("$exe")
done
[ "${#benches[@]}" -gt 0 ] || { echo "no benches under $BUILD_DIR/bench"; exit 1; }

for exe in "${benches[@]}"; do
  name="$(basename "$exe")"
  echo "== $name =="
  status=0
  "$exe" --benchmark_filter="$FILTER" --json "$TMP_DIR/$name.json" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "bench_json.sh: FATAL: $name exited with status $status" >&2
    exit 1
  fi
  if [ ! -s "$TMP_DIR/$name.json" ]; then
    echo "bench_json.sh: FATAL: $name wrote no metrics JSON" >&2
    exit 1
  fi
  # A truncated or interleaved dump must fail HERE, naming the bench --
  # not later as an unparseable aggregate nobody can attribute.
  if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
      "$TMP_DIR/$name.json"; then
    echo "bench_json.sh: FATAL: $name emitted malformed metrics JSON" >&2
    exit 1
  fi
done

# Aggregate: { "<bench>": <registry dump>, ... } -- each registry dump is
# already valid JSON (obs::Registry::dump_json), embedded verbatim.
{
  printf '{\n'
  first=1
  for exe in "${benches[@]}"; do
    name="$(basename "$exe")"
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    printf '"%s": ' "$name"
    cat "$TMP_DIR/$name.json"
  done
  printf '}\n'
} > "$OUT"

# Belt and braces: the aggregate must itself parse, and every bench that
# ran (bench_sweep, bench_net_cluster, ...) must appear as its own key.
python3 - "$OUT" "${benches[@]}" <<'EOF'
import json, os, sys
out = sys.argv[1]
agg = json.load(open(out))
missing = [os.path.basename(b) for b in sys.argv[2:]
           if os.path.basename(b) not in agg]
if missing:
    sys.exit(f"bench_json.sh: FATAL: {out} is missing keys: {missing}")
EOF

echo "aggregated ${#benches[@]} bench registries into $OUT"
