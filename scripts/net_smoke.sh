#!/usr/bin/env bash
# End-to-end cluster smoke: boots a real 4-node loopback-TCP cluster
# (rbvc-node), crash-faults one node partway (--crash-after), and drives
# 100 pipelined consensus instances through rbvc-client, requiring every
# instance to reach a 3-node quorum (f = 1).
#
# Usage:
#   scripts/net_smoke.sh [build-dir] [instances]
#
# Env knobs:
#   RBVC_SMOKE_PORT_BASE   first TCP port (default 7421)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
INSTANCES="${2:-100}"
PORT_BASE="${RBVC_SMOKE_PORT_BASE:-7421}"

NODE_BIN="$BUILD_DIR/tools/rbvc-node"
CLIENT_BIN="$BUILD_DIR/tools/rbvc-client"
for bin in "$NODE_BIN" "$CLIENT_BIN"; do
  [ -x "$bin" ] || { echo "net_smoke.sh: missing $bin (build first)"; exit 1; }
done

CLUSTER=""
for i in 0 1 2 3 4; do
  CLUSTER="${CLUSTER:+$CLUSTER,}127.0.0.1:$((PORT_BASE + i))"
done

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== starting 4 nodes (node 3 crash-faults after 20 decisions) =="
for i in 0 1 2 3; do
  crash=0
  [ "$i" -eq 3 ] && crash=20
  "$NODE_BIN" --id "$i" --cluster "$CLUSTER" --nodes 4 --f 1 --rounds 2 \
    --crash-after "$crash" &
  pids+=("$!")
done

echo "== driving $INSTANCES pipelined instances (quorum 3) =="
"$CLIENT_BIN" --cluster "$CLUSTER" --nodes 4 --instances "$INSTANCES" \
  --window 8 --quorum 3 --timeout-ms 60000

echo "net_smoke.sh: OK ($INSTANCES instances decided with a crashed node)"
