#!/usr/bin/env bash
# End-to-end cluster smoke: boots a real 4-node loopback-TCP cluster
# (rbvc-node), crash-faults one node partway (--crash-after), and drives
# 100 pipelined consensus instances through rbvc-client, requiring every
# instance to reach a 3-node quorum (f = 1).
#
# Observability pass (docs/OBSERVABILITY.md): every process writes a
# flight-recorder JSONL log (--trace-out), each node exposes its admin
# endpoint (--admin-port; checked mid-run via rbvc-client --status), and
# after the run rbvc-trace merges all logs into one causally ordered
# timeline, asserting zero Lamport violations and >= INSTANCES decided
# instances. The merged log and Perfetto export land in TRACE_DIR.
#
# Usage:
#   scripts/net_smoke.sh [build-dir] [instances]
#
# Env knobs:
#   RBVC_SMOKE_PORT_BASE   first TCP port (default 7421; admin ports are
#                          PORT_BASE+100..PORT_BASE+103)
#   RBVC_SMOKE_TRACE_DIR   where the trace logs go (default: a mktemp dir)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
INSTANCES="${2:-100}"
PORT_BASE="${RBVC_SMOKE_PORT_BASE:-7421}"
TRACE_DIR="${RBVC_SMOKE_TRACE_DIR:-$(mktemp -d)}"
mkdir -p "$TRACE_DIR"

NODE_BIN="$BUILD_DIR/tools/rbvc-node"
CLIENT_BIN="$BUILD_DIR/tools/rbvc-client"
TRACE_BIN="$BUILD_DIR/tools/rbvc-trace"
for bin in "$NODE_BIN" "$CLIENT_BIN" "$TRACE_BIN"; do
  [ -x "$bin" ] || { echo "net_smoke.sh: missing $bin (build first)"; exit 1; }
done

CLUSTER=""
for i in 0 1 2 3 4; do
  CLUSTER="${CLUSTER:+$CLUSTER,}127.0.0.1:$((PORT_BASE + i))"
done
ADMIN=""
for i in 0 1 2 3; do
  ADMIN="${ADMIN:+$ADMIN,}127.0.0.1:$((PORT_BASE + 100 + i))"
done

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Headroom for a full run's events: the default 8192-slot rings would wrap
# away the early instances' frames and undercount decided instances.
export RBVC_TRACE_RING=65536

echo "== starting 4 nodes (node 3 crash-faults after 20 decisions) =="
for i in 0 1 2 3; do
  crash=0
  [ "$i" -eq 3 ] && crash=20
  "$NODE_BIN" --id "$i" --cluster "$CLUSTER" --nodes 4 --f 1 --rounds 2 \
    --crash-after "$crash" --admin-port $((PORT_BASE + 100 + i)) \
    --trace-out "$TRACE_DIR/node$i.jsonl" &
  pids+=("$!")
done

echo "== driving $INSTANCES pipelined instances (quorum 3) =="
"$CLIENT_BIN" --cluster "$CLUSTER" --nodes 4 --instances "$INSTANCES" \
  --window 8 --quorum 3 --timeout-ms 60000 \
  --trace-out "$TRACE_DIR/client.jsonl"

echo "== querying live admin endpoints =="
# Node 3 has crashed by now and its process may have exited; require the
# three survivors to answer with sane JSON.
STATUS="$("$CLIENT_BIN" --status --admin "$ADMIN" || true)"
echo "$STATUS"
for i in 0 1 2; do
  echo "$STATUS" | grep -q "^node $i {\"backlogged\"" \
    || { echo "net_smoke.sh: node $i admin status missing"; exit 1; }
done
echo "$STATUS" | grep -q '"decided":0' \
  && { echo "net_smoke.sh: a live node reports zero decisions"; exit 1; }

echo "== stopping nodes (flushes --trace-out logs) =="
for pid in "${pids[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${pids[@]}"; do
  wait "$pid" 2>/dev/null || true
done
pids=()

echo "== merging per-node traces (causal check, >= $INSTANCES decided) =="
logs=("$TRACE_DIR/client.jsonl")
for i in 0 1 2 3; do
  [ -s "$TRACE_DIR/node$i.jsonl" ] && logs+=("$TRACE_DIR/node$i.jsonl")
done
"$TRACE_BIN" --require-decided "$INSTANCES" \
  --out "$TRACE_DIR/merged.jsonl" --perfetto "$TRACE_DIR/trace.json" \
  "${logs[@]}"

echo "net_smoke.sh: OK ($INSTANCES instances decided with a crashed node;"
echo "  causal timeline verified, traces in $TRACE_DIR)"
