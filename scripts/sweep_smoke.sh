#!/usr/bin/env bash
# End-to-end smoke of the distributed episode fan-out (docs/FLEET.md),
# driven by CI's sweep-smoke job:
#
#   1. The planted failing workload at --workers 1 (the in-process harness
#      path) and --workers 4 (a forked fleet): both must FAIL on the same
#      episode and the two repro files must be BYTE-identical.
#   2. The same fleet sweep with a worker SIGKILLed mid-run
#      (--kill-worker-after): the orphaned range must be reassigned (the
#      metrics dump proves a death + reassignment happened) and the
#      verdict/repro must not move.
#   3. A healthy multi-worker sweep must pass.
#   4. On runners with >= 4 cores, bench_sweep's throughput table must
#      show > 2x episodes/s at 4 workers vs 1 (skipped below 4 cores,
#      where the speedup is physically impossible).
#
# Usage: scripts/sweep_smoke.sh [build_dir] [out_dir]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-sweep-smoke}"
SWEEP="$BUILD_DIR/tools/rbvc-sweep"
BENCH="$BUILD_DIR/bench/bench_sweep"

[ -x "$SWEEP" ] || { echo "sweep_smoke: $SWEEP not built"; exit 1; }
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR/w1" "$OUT_DIR/w4" "$OUT_DIR/kill"

echo "== planted sweep, workers=1 (in-process reference) =="
"$SWEEP" --workload planted --workers 1 --repro-out "$OUT_DIR/w1" \
  --json "$OUT_DIR/w1/summary.json"

echo "== planted sweep, workers=4 (forked fleet) =="
"$SWEEP" --workload planted --workers 4 --repro-out "$OUT_DIR/w4" \
  --json "$OUT_DIR/w4/summary.json"

REPRO=rbvc_repro_sweep_planted.txt
cmp "$OUT_DIR/w1/$REPRO" "$OUT_DIR/w4/$REPRO"
echo "repro files byte-identical at 1 vs 4 workers"

echo "== planted sweep, workers=4, one worker killed mid-sweep =="
"$SWEEP" --workload planted --workers 4 --kill-worker-after 2 \
  --repro-out "$OUT_DIR/kill" --json "$OUT_DIR/kill/summary.json"
cmp "$OUT_DIR/w1/$REPRO" "$OUT_DIR/kill/$REPRO"
echo "repro file unchanged across a worker death"

python3 - "$OUT_DIR" <<'EOF'
import json, sys
out = sys.argv[1]
kill = json.load(open(f"{out}/kill/summary.json"))
counters = kill["counters"]
deaths = counters.get("fleet.workers.deaths", 0)
reassigned = counters.get("fleet.shards.reassigned", 0)
restarts = counters.get("fleet.workers.restarts", 0)
print(f"fleet.workers.deaths={deaths} fleet.shards.reassigned={reassigned} "
      f"fleet.workers.restarts={restarts}")
if deaths < 1:
    sys.exit("chaos kill did not register a worker death")
if reassigned < 1:
    sys.exit("the killed worker's range was never reassigned")
for run in ("w1", "w4", "kill"):
    summary = json.load(open(f"{out}/{run}/summary.json"))
    if summary["gauges"].get("sweep.failed") != 1.0:
        sys.exit(f"{run}: planted workload did not fail")
EOF

echo "== healthy sweep, workers=4 =="
"$SWEEP" --workload healthy --workers 4 --repro-out "$OUT_DIR" \
  --json "$OUT_DIR/healthy_summary.json"
python3 - "$OUT_DIR/healthy_summary.json" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
if summary["gauges"].get("sweep.failed") != 0.0:
    sys.exit("healthy workload failed")
EOF

if [ "$(nproc)" -ge 4 ] && [ -x "$BENCH" ]; then
  echo "== throughput probe: bench_sweep, 4 workers must clear 2x =="
  "$BENCH" --benchmark_filter='^$' --json "$OUT_DIR/bench_sweep.json"
  python3 - "$OUT_DIR/bench_sweep.json" <<'EOF'
import json, sys
gauges = json.load(open(sys.argv[1]))["gauges"]
w1 = gauges.get("fleet.bench.episodes_per_s.w1", 0)
w4 = gauges.get("fleet.bench.episodes_per_s.w4", 0)
speedup = w4 / w1 if w1 > 0 else 0
print(f"episodes/s: w1={w1:.1f} w4={w4:.1f} speedup={speedup:.2f}x")
if speedup <= 2.0:
    sys.exit(f"4-worker sweep speedup {speedup:.2f}x is not > 2x")
EOF
else
  echo "== throughput probe skipped ($(nproc) cores < 4 or bench missing) =="
fi

echo "sweep smoke passed; summaries in $OUT_DIR/"
