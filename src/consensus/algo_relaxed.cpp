#include "consensus/algo_relaxed.h"

namespace rbvc::consensus {

protocols::DecisionFn algo_decision(std::size_t f, double tol,
                                    MinimaxOptions opts) {
  // The lambda may be shared across concurrently-executing episodes, so it
  // picks up the executing thread's workspace rather than capturing one.
  return [f, tol, opts](const std::vector<Vec>& s) -> Vec {
    return delta_star_2(s, f, tol, opts, GeometryWorkspace::local()).point;
  };
}

protocols::DecisionFn algo_decision_linear(std::size_t f, double p,
                                           double tol) {
  return [f, p, tol](const std::vector<Vec>& s) -> Vec {
    return delta_star_linear(s, f, p, tol, GeometryWorkspace::local()).point;
  };
}

}  // namespace rbvc::consensus
