// ALGO (paper Sec. 9): the input-dependent (delta,p)-relaxed exact BVC
// algorithm that works with only n >= 3f + 1 processes.
//
//   Step 1: Byzantine-broadcast every input (interactive consistency).
//   Step 2: with the agreed multiset S, find the smallest delta for which
//           Gamma_(delta,p)(S) is non-empty and deterministically pick a
//           point of it (for p = 2: the simplex incenter when S is a full
//           simplex with f = 1, an LP point when Gamma(S) is non-empty, a
//           minimax point otherwise).
//
// Theorems 9 and 12 bound the resulting delta by the honest-edge lengths;
// the verifier recomputes the achieved delta to check those bounds.
#pragma once

#include "hull/delta_star.h"
#include "protocols/om_broadcast.h"

namespace rbvc::consensus {

/// Decision rule implementing ALGO Step 2 under the L2 norm.
protocols::DecisionFn algo_decision(std::size_t f, double tol = kTol,
                                    MinimaxOptions opts = {});

/// ALGO Step 2 under L1 / Linf (exact LP bisection).
protocols::DecisionFn algo_decision_linear(std::size_t f, double p,
                                           double tol = kTol);

/// Convenience process: a correct ALGO participant.
class AlgoProcess final : public protocols::EigConsensusProcess {
 public:
  AlgoProcess(std::size_t n, std::size_t f, protocols::ProcessId self,
              Vec input, Vec default_value)
      : EigConsensusProcess(n, f, self, std::move(input),
                            std::move(default_value), algo_decision(f)) {}
};

}  // namespace rbvc::consensus
