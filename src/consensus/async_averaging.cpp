#include "consensus/async_averaging.h"

#include <algorithm>

#include "hull/gamma.h"

namespace rbvc::consensus {

using protocols::ProcessId;

AsyncAveragingProcess::AsyncAveragingProcess(Params prm, ProcessId self,
                                             Vec input)
    : prm_(prm),
      self_(self),
      input_(std::move(input)),
      rbc_(prm.n, prm.f, self),
      witness_(prm.n, prm.f, self) {
  RBVC_REQUIRE(prm_.rounds >= 1, "async averaging: need rounds >= 1");
  RBVC_REQUIRE(prm_.n >= 3 * prm_.f + 1, "async averaging: need n >= 3f+1");
  history_.push_back(input_);
}

void AsyncAveragingProcess::init(protocols::Outbox& out) {
  rbc_.broadcast(0, input_, out);
}

void AsyncAveragingProcess::on_message(const sim::Message& m,
                                       protocols::Outbox& out) {
  if (protocols::BrachaRbc::is_rbc(m)) {
    for (auto& d : rbc_.on_message(m, out)) {
      PendingDelivery pd;
      pd.value = std::move(d.value);
      pd.view.reserve(d.extra.size());
      bool ok = true;
      for (int id : d.extra) {
        if (id < 0 || static_cast<std::size_t>(id) >= prm_.n) ok = false;
        pd.view.push_back(static_cast<ProcessId>(id));
      }
      if (!ok) {
        ++rejected_;
        continue;
      }
      unverified_[d.instance].emplace(d.source, std::move(pd));
    }
    try_verify(out);
    advance(out);
    return;
  }
  if (protocols::WitnessExchange::is_witness(m)) {
    witness_.on_message(m);
    advance(out);
  }
}

std::set<ProcessId> AsyncAveragingProcess::verified_ids(int round) const {
  std::set<ProcessId> ids;
  const auto it = verified_.find(round);
  if (it == verified_.end()) return ids;
  for (const auto& [src, v] : it->second) ids.insert(src);
  return ids;
}

std::vector<Vec> AsyncAveragingProcess::values_for(
    int round, const std::vector<ProcessId>& ids) const {
  std::vector<Vec> out;
  const auto it = verified_.find(round);
  RBVC_REQUIRE(it != verified_.end(), "values_for: unknown round");
  out.reserve(ids.size());
  for (ProcessId id : ids) {
    out.push_back(it->second.at(id));
  }
  return out;
}

Vec AsyncAveragingProcess::rule_value(
    const std::vector<Vec>& view_values) const {
  // Thread-local workspace: verification recomputes rule values on other
  // processes (possibly other threads), and the workspace contract keeps
  // results history-free, so both computations match bit-for-bit.
  GeometryWorkspace& ws = GeometryWorkspace::local();
  switch (prm_.rule) {
    case Round0Rule::kExactGamma: {
      auto g = gamma_point(view_values, prm_.f, prm_.tol, ws);
      if (!g) {
        throw numerical_error("async exact baseline: Gamma(view) empty");
      }
      return *g;
    }
    case Round0Rule::kRelaxedL2:
      return delta_star_2(view_values, prm_.f, prm_.tol, prm_.minimax, ws)
          .point;
    case Round0Rule::kRelaxedLinf:
      return delta_star_linear(view_values, prm_.f, kInfNorm, prm_.tol, ws)
          .point;
  }
  throw invalid_argument("unknown round-0 rule");
}

Vec AsyncAveragingProcess::mean_value(
    const std::vector<Vec>& view_values) const {
  return mean(view_values);
}

bool AsyncAveragingProcess::verify_one(int round, ProcessId src,
                                       const PendingDelivery& pd) {
  // Round-0 values are inputs: nothing to verify.
  if (round == 0) {
    verified_[0][src] = pd.value;
    return true;
  }
  // Structural checks on the view (reject outright when malformed).
  if (pd.view.size() < quorum() ||
      !std::is_sorted(pd.view.begin(), pd.view.end()) ||
      std::adjacent_find(pd.view.begin(), pd.view.end()) != pd.view.end()) {
    ++rejected_;
    unverified_[round].erase(src);
    return false;
  }
  // All prerequisite values must be verified at this process first.
  const auto& prev = verified_[round - 1];
  for (ProcessId id : pd.view) {
    if (!prev.count(id)) return false;  // stay pending
  }
  const std::vector<Vec> base = values_for(round - 1, pd.view);
  Vec expect;
  try {
    expect = (round == 1) ? rule_value(base) : mean_value(base);
  } catch (const numerical_error&) {
    // The claimed view makes the deterministic rule fail -> invalid value.
    ++rejected_;
    unverified_[round].erase(src);
    return false;
  }
  if (!approx_equal(expect, pd.value, 1e-7)) {
    ++rejected_;
    unverified_[round].erase(src);
    return false;
  }
  verified_[round][src] = pd.value;
  unverified_[round].erase(src);
  return true;
}

void AsyncAveragingProcess::try_verify(protocols::Outbox&) {
  // Verification of round t can unblock round t+1; sweep until stable.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [round, pending] : unverified_) {
      // Collect candidates first: verify_one mutates the pending map.
      std::vector<ProcessId> srcs;
      srcs.reserve(pending.size());
      for (const auto& [src, pd] : pending) srcs.push_back(src);
      for (ProcessId src : srcs) {
        const auto it = pending.find(src);
        if (it == pending.end()) continue;
        const PendingDelivery pd = it->second;
        if (verified_[round].count(src)) {
          pending.erase(src);
          continue;
        }
        if (verify_one(round, src, pd)) progress = true;
      }
    }
  }
}

void AsyncAveragingProcess::advance(protocols::Outbox& out) {
  while (!decided_) {
    const auto ids = verified_ids(cur_);
    if (ids.size() < quorum()) return;
    if (prm_.use_witness) {
      if (!reported_cur_) {
        witness_.send_report(cur_, ids, out);
        reported_cur_ = true;
      }
      if (!witness_.ready(cur_, ids)) return;
    }

    // Compute the next value from the current verified view.
    std::vector<ProcessId> view(ids.begin(), ids.end());
    const std::vector<Vec> base = values_for(cur_, view);
    Vec next;
    try {
      next = (cur_ == 0) ? rule_value(base) : mean_value(base);
    } catch (const numerical_error&) {
      failed_ = true;   // exact baseline below its n bound
      decided_ = true;
      return;
    }
    if (cur_ == 0 && prm_.rule != Round0Rule::kExactGamma) {
      round0_delta_ = gamma_excess(
          next, base, prm_.f,
          prm_.rule == Round0Rule::kRelaxedL2 ? 2.0 : kInfNorm, prm_.tol,
          GeometryWorkspace::local());
    }
    history_.push_back(next);

    if (static_cast<std::size_t>(cur_) == prm_.rounds) {
      decision_ = next;
      decided_ = true;
      return;
    }
    ++cur_;
    reported_cur_ = false;
    std::vector<int> extra;
    extra.reserve(view.size());
    for (ProcessId id : view) extra.push_back(static_cast<int>(id));
    rbc_.broadcast(cur_, next, out, extra);
  }
}

const Vec& AsyncAveragingProcess::decision() const {
  RBVC_REQUIRE(decided_ && !failed_, "decision(): not decided (or failed)");
  return decision_;
}

}  // namespace rbvc::consensus
