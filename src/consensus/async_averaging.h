// Relaxed Verified Averaging (paper Sec. 10) and the exact-safe-area
// asynchronous baseline, over Bracha RBC + witness exchange.
//
// Round structure (per correct process):
//   init     : reliably broadcast the input as the round-0 value.
//   round t  : collect verified round-t values until n-f of them are held
//              AND n-f witnesses confirm a common core, then compute the
//              round-(t+1) value:
//                t = 0 : the paper's H_(delta,p)(V,0) rule -- a point of
//                        the smallest non-empty Gamma_(delta,p) of the view
//                        (kRelaxedL2 / kRelaxedLinf), or a Gamma(view) point
//                        (kExactGamma baseline, needs n >= (d+2)f+1);
//                t >= 1: the mean of the verified view (paper's step 3).
//              The value is broadcast together with its *view* (the source
//              ids it was computed from).
//   decide   : after `rounds` averaging rounds, output the final mean.
//
// Verification (the "Verified" in Verified Averaging [15], reproduced by
// recomputation): a received round-(t+1) value is accepted only once the
// receiver holds all round-t values named in its view and the value equals
// the deterministic rule applied to that view. A Byzantine process's only
// freedom beyond its round-0 input is thus *which* legal view it uses --
// exactly the property the paper's Theorem 15 proof relies on (every
// verified value lies in Gamma_(delta,p) of a legal view, hence within
// delta of the honest inputs' hull).
#pragma once

#include <map>
#include <set>

#include "hull/delta_star.h"
#include "protocols/bracha_rbc.h"
#include "protocols/witness.h"

namespace rbvc::consensus {

class AsyncAveragingProcess : public sim::AsyncProcess {
 public:
  enum class Round0Rule {
    kExactGamma,   // baseline: point of Gamma(view); fails when empty
    kRelaxedL2,    // ALGO-style: delta*_2 point (Relaxed Verified Averaging)
    kRelaxedLinf,  // delta*_inf point (LP-certified)
  };

  struct Params {
    std::size_t n = 0;
    std::size_t f = 0;
    std::size_t rounds = 8;  // averaging rounds R >= 1
    Round0Rule rule = Round0Rule::kRelaxedL2;
    // Ablation toggle: when false, a process advances as soon as it holds
    // n-f verified values, WITHOUT waiting for the witness common core.
    // Convergence can then stall or slow because two correct processes may
    // share as few as n-2f values per round (see bench_async_averaging).
    bool use_witness = true;
    // Test-only fault injection for the record/replay/shrink harness: when
    // nonzero, processes advance on (and accept views of) this many values
    // instead of n-f. Any value below n-f breaks the overlap property that
    // agreement rests on, planting a real, schedule-dependent bug for the
    // harness to find and minimize. Production runs leave it 0.
    std::size_t quorum_override = 0;
    double tol = kTol;
    // Deterministic minimax budget (identical at sender and verifier, so
    // recomputation matches bit-for-bit; accuracy only affects delta).
    MinimaxOptions minimax{600, 200, kTol, 2.0};
  };

  AsyncAveragingProcess(Params prm, protocols::ProcessId self, Vec input);

  void init(protocols::Outbox& out) override;
  void on_message(const sim::Message& m, protocols::Outbox& out) override;
  bool decided() const override { return decided_; }

  const Vec& decision() const;
  bool failed() const { return failed_; }
  /// The delta chosen by the round-0 rule (0 for the exact baseline).
  double round0_delta() const { return round0_delta_; }
  /// This process's value at the start of each round (h[0] = input, ...).
  const std::vector<Vec>& history() const { return history_; }
  /// Deliveries whose verification failed outright (Byzantine evidence).
  std::size_t rejected() const { return rejected_; }

 private:
  struct PendingDelivery {
    Vec value;
    std::vector<protocols::ProcessId> view;
  };

  std::size_t quorum() const {
    return prm_.quorum_override ? prm_.quorum_override : prm_.n - prm_.f;
  }
  void advance(protocols::Outbox& out);
  void try_verify(protocols::Outbox& out);
  bool verify_one(int round, protocols::ProcessId src,
                  const PendingDelivery& pd);
  Vec rule_value(const std::vector<Vec>& view_values) const;
  Vec mean_value(const std::vector<Vec>& view_values) const;
  std::set<protocols::ProcessId> verified_ids(int round) const;
  std::vector<Vec> values_for(
      int round, const std::vector<protocols::ProcessId>& ids) const;

  Params prm_;
  protocols::ProcessId self_;
  Vec input_;
  protocols::BrachaRbc rbc_;
  protocols::WitnessExchange witness_;

  // verified_[t][src] = accepted round-t value.
  std::map<int, std::map<protocols::ProcessId, Vec>> verified_;
  // unverified_[t][src] = delivered but not yet verifiable.
  std::map<int, std::map<protocols::ProcessId, PendingDelivery>> unverified_;

  int cur_ = 0;
  bool reported_cur_ = false;
  std::vector<Vec> history_;
  Vec decision_;
  bool decided_ = false;
  bool failed_ = false;
  double round0_delta_ = 0.0;
  std::size_t rejected_ = 0;
};

}  // namespace rbvc::consensus
