#include "consensus/exact_bvc.h"

#include "hull/gamma.h"

namespace rbvc::consensus {

protocols::DecisionFn exact_bvc_decision(std::size_t f, double tol) {
  return [f, tol](const std::vector<Vec>& s) -> Vec {
    auto p = gamma_point(s, f, tol, GeometryWorkspace::local());
    if (!p) {
      throw infeasible_instance(
          "exact BVC: Gamma(S) is empty (n <= (d+1)f for this input)");
    }
    return *p;
  };
}

}  // namespace rbvc::consensus
