// Exact Byzantine vector consensus baseline (Vaidya-Garg [19]):
// interactive consistency gives every correct process the identical multiset
// S; the decision is a deterministic point of the safe area
// Gamma(S) = intersection of H(T) over the drop-f sub-multisets, which
// Tverberg guarantees non-empty whenever n >= (d+1)f + 1.
#pragma once

#include "protocols/om_broadcast.h"

namespace rbvc::consensus {

/// Thrown by a decision rule when its feasibility precondition fails (for
/// instance, exact BVC invoked with n <= (d+1)f: Gamma(S) can be empty).
class infeasible_instance : public numerical_error {
 public:
  using numerical_error::numerical_error;
};

/// Decision rule: a deterministic point of Gamma(S). Throws
/// infeasible_instance when Gamma(S) is empty.
protocols::DecisionFn exact_bvc_decision(std::size_t f, double tol = kTol);

}  // namespace rbvc::consensus
