#include "consensus/hull_consensus.h"

#include "consensus/exact_bvc.h"
#include "hull/relaxed_hull.h"

namespace rbvc::consensus {

namespace {

std::vector<Point2> to_points2(const std::vector<Vec>& pts) {
  std::vector<Point2> out;
  out.reserve(pts.size());
  for (const Vec& p : pts) {
    RBVC_REQUIRE(p.size() == 2, "hull consensus: inputs must be 2-D");
    out.push_back({p[0], p[1]});
  }
  return out;
}

}  // namespace

std::optional<HullDecision> gamma_polygon(const std::vector<Vec>& s,
                                          std::size_t f, double tol) {
  const auto subsets = drop_f_subsets(s, f);
  HullDecision poly = convex_hull_2d(to_points2(subsets.front()), tol);
  for (std::size_t i = 1; i < subsets.size() && !poly.empty(); ++i) {
    poly = intersect_convex(poly, convex_hull_2d(to_points2(subsets[i]), tol),
                            tol);
  }
  if (poly.empty()) return std::nullopt;
  return poly;
}

bool polygon_in_hull(const HullDecision& poly, const std::vector<Vec>& pts,
                     double tol) {
  const auto hull_pts = to_points2(pts);
  for (const Point2& v : poly) {
    if (!in_hull_2d(v, hull_pts, tol)) return false;
  }
  return true;
}

protocols::DecisionFn HullConsensusProcess::make_decision(std::size_t f,
                                                          HullDecision* slot) {
  return [f, slot](const std::vector<Vec>& s) -> Vec {
    auto poly = gamma_polygon(s, f);
    if (!poly) {
      throw infeasible_instance(
          "hull consensus: Gamma(S) is empty (n <= 3f for 2-D inputs)");
    }
    *slot = *poly;
    // Representative point: the vertex centroid (deterministic).
    Vec c = zeros(2);
    for (const Point2& v : *poly) {
      c[0] += v.x / static_cast<double>(poly->size());
      c[1] += v.y / static_cast<double>(poly->size());
    }
    return c;
  };
}

HullConsensusProcess::HullConsensusProcess(std::size_t n, std::size_t f,
                                           protocols::ProcessId self,
                                           Vec input, Vec default_value)
    : EigConsensusProcess(n, f, self, std::move(input),
                          std::move(default_value),
                          make_decision(f, &polygon_)) {}

const HullDecision& HullConsensusProcess::hull_decision() const {
  RBVC_REQUIRE(decided(), "hull_decision(): process has not decided yet");
  return polygon_;
}

}  // namespace rbvc::consensus
