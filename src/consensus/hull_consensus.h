// Convex Hull Consensus (Tseng-Vaidya [16], the paper's related work):
// instead of agreeing on a single vector, the processes agree on an entire
// convex *polytope* that is contained in the hull of the correct inputs --
// the largest thing they can safely output. Implemented here for d = 2
// (the polygon algebra is exact via poly2d): after interactive consistency
// the processes all hold the identical multiset S and deterministically
// compute the safe polygon
//
//     Gamma(S) = intersection over |T| = |S|-f of H(T),
//
// which is non-empty whenever n >= (d+1)f + 1 = 3f + 1 (d = 2). The same
// tight bound as exact BVC -- the paper cites this as evidence that even
// the hull-valued generalization does not reduce n.
#pragma once

#include <optional>

#include "geometry/poly2d.h"
#include "protocols/om_broadcast.h"

namespace rbvc::consensus {

/// The agreed polygon (CCW vertex list; may be degenerate: a segment or a
/// single point, encoded by 2 or 1 vertices).
using HullDecision = std::vector<Point2>;

/// Deterministically computes Gamma(S) for 2-D inputs as a polygon, or
/// nullopt when the intersection is empty. Exact up to clipping tolerance.
std::optional<HullDecision> gamma_polygon(const std::vector<Vec>& s,
                                          std::size_t f, double tol = kTol);

/// True iff `poly` is contained in the convex hull of `pts` (within tol).
bool polygon_in_hull(const HullDecision& poly, const std::vector<Vec>& pts,
                     double tol = kTol);

/// Synchronous convex-hull-consensus participant: interactive consistency
/// via EIG, then the Gamma polygon. decision() returns the centroid (a
/// plain Vec, so the SyncProcess plumbing is reusable); hull_decision()
/// returns the full polygon.
class HullConsensusProcess final : public protocols::EigConsensusProcess {
 public:
  HullConsensusProcess(std::size_t n, std::size_t f, protocols::ProcessId self,
                       Vec input, Vec default_value);

  /// The agreed polygon; empty() when Gamma(S) was empty (n <= 3f).
  const HullDecision& hull_decision() const;

 private:
  static protocols::DecisionFn make_decision(std::size_t f,
                                             HullDecision* slot);
  HullDecision polygon_;
};

}  // namespace rbvc::consensus
