#include "consensus/iterative_bvc.h"

#include "hull/gamma.h"
#include "protocols/scalar_consensus.h"

namespace rbvc::consensus {

namespace {
constexpr const char* kKind = "iter";
}

IterativeBvcProcess::IterativeBvcProcess(Params prm, sim::ProcessId self,
                                         Vec input)
    : prm_(prm), self_(self), value_(std::move(input)) {
  RBVC_REQUIRE(prm_.n >= 2, "iterative BVC: need n >= 2");
  RBVC_REQUIRE(prm_.rounds >= 1, "iterative BVC: need rounds >= 1");
  RBVC_REQUIRE(self_ < prm_.n, "process id out of range");
  history_.push_back(value_);
}

Vec IterativeBvcProcess::value_for(sim::ProcessId, std::size_t) {
  return value_;
}

void IterativeBvcProcess::send_all(std::size_t round_no, sim::Outbox& out) {
  for (sim::ProcessId r = 0; r < prm_.n; ++r) {
    if (r == self_) continue;
    sim::Message m;
    m.kind = kKind;
    m.meta = {static_cast<int>(round_no)};
    m.payload = value_for(r, round_no);
    out.send(r, std::move(m));
  }
}

Vec IterativeBvcProcess::update(const std::vector<Vec>& received) const {
  // Safe-area move: a deterministic point of Gamma_f(received). The
  // received multiset includes our own current value, so |received| is
  // usually n; if the LP finds the intersection empty (too few values or a
  // degenerate round) the process holds its value -- holding is always
  // valid.
  if (received.size() > prm_.f) {
    if (auto g = gamma_point(received, prm_.f, prm_.tol,
                             GeometryWorkspace::local())) {
      return *g;
    }
  }
  return value_;
}

void IterativeBvcProcess::round(std::size_t round_no,
                                const std::vector<sim::Message>& inbox,
                                sim::Outbox& out) {
  if (decided_) return;
  if (round_no == 0) {
    send_all(0, out);
    return;
  }

  // Collect this round's values: first message per sender wins, malformed
  // payloads dropped, plus our own current value.
  std::vector<bool> seen(prm_.n, false);
  std::vector<Vec> received;
  received.reserve(prm_.n);
  received.push_back(value_);
  seen[self_] = true;
  for (const sim::Message& m : inbox) {
    if (m.kind != kKind || m.meta.size() != 1) continue;
    if (m.meta[0] != static_cast<int>(round_no - 1)) continue;
    if (m.payload.size() != value_.size()) continue;
    if (m.from >= prm_.n || seen[m.from]) continue;
    seen[m.from] = true;
    received.push_back(m.payload);
  }

  value_ = update(received);
  history_.push_back(value_);

  if (round_no >= prm_.rounds) {
    decided_ = true;
    return;
  }
  send_all(round_no, out);
}

const Vec& IterativeBvcProcess::decision() const {
  RBVC_REQUIRE(decided_, "decision(): process has not decided yet");
  return value_;
}

}  // namespace rbvc::consensus
