// Iterative approximate Byzantine vector consensus (the related-work model
// of Vaidya [18]): processes do NOT run a broadcast primitive or keep
// message histories. Each synchronous round every process sends its current
// value to everyone, collects the received values (a Byzantine process may
// send a different value to every receiver, every round), and moves to a
// point of the safe area
//
//     Gamma_f(received) = intersection over drop-f subsets of H(T),
//
// which is contained in the hull of the correct senders' current values, so
// validity is preserved round over round while the spread contracts toward
// epsilon-agreement. Requires n >= (d+1)f + 1 for the safe area to be
// non-empty (by Tverberg); when a round's safe area is numerically empty
// (e.g. messages missing), the process holds its value.
//
// This contrasts with the paper's ALGO on both axes: cheaper per round
// (O(n^2) messages, no EIG blowup) but only epsilon-agreement after R
// rounds rather than exact agreement after f+2, and it needs the full
// (d+1)f+1 processes -- the iterative model cannot exploit the
// input-dependent delta relaxation (no common multiset ever exists).
#pragma once

#include "sim/sync_engine.h"

namespace rbvc::consensus {

class IterativeBvcProcess : public sim::SyncProcess {
 public:
  struct Params {
    std::size_t n = 0;
    std::size_t f = 0;
    std::size_t rounds = 10;  // exchange rounds R >= 1
    double tol = kTol;
  };

  IterativeBvcProcess(Params prm, sim::ProcessId self, Vec input);

  void round(std::size_t round_no, const std::vector<sim::Message>& inbox,
             sim::Outbox& out) final;
  bool decided() const override { return decided_; }

  const Vec& decision() const;
  const Vec& current() const { return value_; }
  /// Value at the start of each round (h[0] = input).
  const std::vector<Vec>& history() const { return history_; }

 protected:
  /// Hook: the value to send to `recipient` this round. Correct processes
  /// send current(); Byzantine subclasses equivocate.
  virtual Vec value_for(sim::ProcessId recipient, std::size_t round_no);

  Params prm_;
  sim::ProcessId self_;

 private:
  Vec update(const std::vector<Vec>& received) const;
  void send_all(std::size_t round_no, sim::Outbox& out);

  Vec value_;
  std::vector<Vec> history_;
  bool decided_ = false;
};

}  // namespace rbvc::consensus
