#include "consensus/k_relaxed.h"

#include "consensus/exact_bvc.h"
#include "hull/gamma.h"
#include "hull/psi.h"
#include "protocols/scalar_consensus.h"

namespace rbvc::consensus {

protocols::DecisionFn k_relaxed_decision(std::size_t f, std::size_t k,
                                         double tol) {
  RBVC_REQUIRE(k >= 1, "k_relaxed_decision: k must be >= 1");
  if (k == 1) {
    return [](const std::vector<Vec>& s) -> Vec {
      return protocols::coordinatewise_median(s);
    };
  }
  return [f, k, tol](const std::vector<Vec>& s) -> Vec {
    // Gamma(S) is a subset of Psi_k(S): prefer it (it certifies the
    // stronger, exact validity) and fall back to the relaxed set.
    if (auto g = gamma_point(s, f, tol, GeometryWorkspace::local())) return *g;
    if (auto p = psi_k_point(s, f, k, tol)) return *p;
    throw infeasible_instance(
        "k-relaxed BVC: Psi_k(S) is empty (n below the (d+1)f+1 bound)");
  };
}

}  // namespace rbvc::consensus
