// k-relaxed Byzantine vector consensus (paper Sec. 6).
//
//   k = 1:          per-coordinate scalar consensus (median of the agreed
//                   multiset) -- needs only n >= 3f + 1 (the paper's Sec.
//                   5.3 reduction).
//   2 <= k <= d:    the tight bound is unchanged from exact BVC,
//                   n >= (d+1)f + 1 (Thm 3); the decision is a point of
//                   Gamma(S) when non-empty, falling back to a Psi_k(S)
//                   point (which contains Gamma(S), so the fallback can
//                   only widen feasibility below the bound).
#pragma once

#include "protocols/om_broadcast.h"

namespace rbvc::consensus {

/// Decision rule for k-relaxed exact BVC. Throws infeasible_instance when
/// even Psi_k(S) is empty (possible iff n is below the Thm 3 bound).
protocols::DecisionFn k_relaxed_decision(std::size_t f, std::size_t k,
                                         double tol = kTol);

}  // namespace rbvc::consensus
