#include "consensus/verifier.h"

#include <algorithm>

#include "geometry/hull.h"
#include "geometry/simplex_geometry.h"

namespace rbvc {

AgreementCheck check_agreement(const std::vector<Vec>& decisions, double tol) {
  AgreementCheck out;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    for (std::size_t j = i + 1; j < decisions.size(); ++j) {
      out.max_pairwise_linf = std::max(
          out.max_pairwise_linf, lp_dist(decisions[i], decisions[j], kInfNorm));
    }
  }
  out.identical = out.max_pairwise_linf <= tol;
  return out;
}

bool check_epsilon_agreement(const std::vector<Vec>& decisions, double eps) {
  return check_agreement(decisions, eps).max_pairwise_linf <= eps;
}

bool check_exact_validity(const std::vector<Vec>& decisions,
                          const std::vector<Vec>& honest_inputs, double tol) {
  for (const Vec& v : decisions) {
    if (!in_hull(v, honest_inputs, tol)) return false;
  }
  return true;
}

bool check_k_validity(const std::vector<Vec>& decisions,
                      const std::vector<Vec>& honest_inputs, std::size_t k,
                      double tol) {
  for (const Vec& v : decisions) {
    if (!in_k_relaxed_hull(v, honest_inputs, k, tol)) return false;
  }
  return true;
}

double delta_p_validity_excess(const std::vector<Vec>& decisions,
                               const std::vector<Vec>& honest_inputs,
                               double delta, double p, double tol) {
  double worst = 0.0;
  for (const Vec& v : decisions) {
    const double dist = hull_distance(v, honest_inputs, p, tol);
    worst = std::max(worst, dist - delta);
  }
  return std::max(0.0, worst);
}

double input_dependent_delta(const std::vector<Vec>& honest_inputs,
                             double kappa, double p) {
  return kappa * edge_extremes(honest_inputs, p).max_edge;
}

}  // namespace rbvc
