// Outcome checking for consensus executions: agreement, epsilon-agreement,
// and each of the paper's validity conditions (exact, k-relaxed, and
// (delta,p)-relaxed). Used by tests, benches, and examples to certify runs.
#pragma once

#include <vector>

#include "hull/relaxed_hull.h"

namespace rbvc {

struct AgreementCheck {
  bool identical = false;       // exact agreement (within tol)
  double max_pairwise_linf = 0; // worst pairwise Linf distance
};

/// Agreement across the correct processes' decisions.
AgreementCheck check_agreement(const std::vector<Vec>& decisions,
                               double tol = kTol);

/// Epsilon-agreement: max pairwise Linf distance <= eps.
bool check_epsilon_agreement(const std::vector<Vec>& decisions, double eps);

/// Exact validity: every decision lies in H(honest_inputs).
bool check_exact_validity(const std::vector<Vec>& decisions,
                          const std::vector<Vec>& honest_inputs,
                          double tol = kTol);

/// k-relaxed validity (Definition 7): every decision lies in
/// H_k(honest_inputs).
bool check_k_validity(const std::vector<Vec>& decisions,
                      const std::vector<Vec>& honest_inputs, std::size_t k,
                      double tol = kTol);

/// (delta,p)-relaxed validity (Definition 10): every decision within
/// Lp-distance delta of H(honest_inputs). Returns the worst excess
/// (max over decisions of dist - delta, clamped at 0): 0 means valid.
double delta_p_validity_excess(const std::vector<Vec>& decisions,
                               const std::vector<Vec>& honest_inputs,
                               double delta, double p, double tol = kTol);

/// The paper's input-dependent delta budget (Sec. 9):
///   kappa * max edge between honest inputs, measured in Lp.
double input_dependent_delta(const std::vector<Vec>& honest_inputs,
                             double kappa, double p = 2.0);

}  // namespace rbvc
