#include "exec/parallel_executor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"

namespace rbvc::exec {

namespace {

/// Backstop against absurd RBVC_JOBS values: more workers than this only
/// adds scheduling noise, never throughput.
constexpr std::size_t kMaxJobs = 256;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::size_t env_jobs() {
  const char* env = std::getenv("RBVC_JOBS");
  if (!env || !*env) return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

std::size_t default_jobs() {
  if (const std::size_t e = env_jobs()) return e;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ParallelExecutor::ParallelExecutor(std::size_t jobs)
    : jobs_(std::min(jobs ? jobs : default_jobs(), kMaxJobs)) {
  // Mint every exec.* metric up front, whatever the width: the registry
  // never erases entries, so the set of metric names -- and with it the
  // byte layout of any registry snapshot (e.g. the one embedded in repro
  // files) -- must not depend on how many workers ran.
  obs::Registry& reg = obs::global();
  reg.gauge("exec.jobs").set(static_cast<double>(jobs_));
  reg.counter("exec.batches");
  reg.counter("exec.tasks");
  reg.counter("exec.tasks_skipped");
  reg.counter("exec.steals");
  reg.histogram("exec.queue_depth", obs::count_buckets());
  reg.histogram("exec.worker_busy_seconds", obs::time_buckets());
  if (jobs_ <= 1) return;  // inline mode: no queues, no threads
  queues_.reserve(jobs_);
  for (std::size_t w = 0; w < jobs_; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(jobs_);
  for (std::size_t w = 0; w < jobs_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelExecutor::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& task) {
  const std::function<bool(std::size_t)> body = [&task](std::size_t i) {
    task(i);
    return false;
  };
  run_batch(n, body, /*early_exit=*/false);
}

std::size_t ParallelExecutor::find_first(
    std::size_t n, const std::function<bool(std::size_t)>& pred) {
  return run_batch(n, pred, /*early_exit=*/true);
}

std::size_t ParallelExecutor::run_batch(
    std::size_t n, const std::function<bool(std::size_t)>& body,
    bool early_exit) {
  if (n == 0) return kNoIndex;
  obs::Registry& reg = obs::global();
  reg.counter("exec.batches").inc();
  if (jobs_ <= 1 || threads_.empty() || n == 1) {
    // Inline serial path: index order, caller's thread, no pool machinery.
    obs::Counter& tasks = reg.counter("exec.tasks");
    std::size_t hit = kNoIndex;
    for (std::size_t i = 0; i < n; ++i) {
      tasks.inc();
      if (body(i)) {
        if (hit == kNoIndex) hit = i;
        if (early_exit) break;
      }
    }
    return hit;
  }

  std::unique_lock<std::mutex> lock(mu_);
  // A straggler that woke up late for the previous batch may still be
  // inside drain(); queues must not be republished under it.
  done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
  best_.store(kNoIndex, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  remaining_.store(n, std::memory_order_release);
  for (std::size_t i = 0; i < n; ++i) {
    // Round-robin so low indices spread across workers and (popped from the
    // deque fronts) run early -- find_first cancels more work that way.
    WorkerQueue& wq = *queues_[i % jobs_];
    std::lock_guard<std::mutex> ql(wq.mu);
    wq.q.push_back(i);
  }
  ++batch_id_;
  body_ = &body;
  early_exit_ = early_exit;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] {
    return remaining_.load(std::memory_order_acquire) == 0 &&
           busy_workers_ == 0;
  });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
  return best_.load(std::memory_order_relaxed);
}

void ParallelExecutor::worker_main(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<bool(std::size_t)>* body = nullptr;
    bool early = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || batch_id_ != seen; });
      if (shutdown_) return;
      seen = batch_id_;
      body = body_;
      early = early_exit_;
      if (body == nullptr) continue;  // batch already fully drained
      ++busy_workers_;
    }
    drain(w, *body, early);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_workers_;
    }
    done_cv_.notify_all();
  }
}

void ParallelExecutor::drain(std::size_t w,
                             const std::function<bool(std::size_t)>& body,
                             bool early_exit) {
  obs::Registry& reg = obs::global();
  obs::Counter& tasks = reg.counter("exec.tasks");
  obs::Counter& skips = reg.counter("exec.tasks_skipped");
  obs::Histogram& busy =
      reg.histogram("exec.worker_busy_seconds", obs::time_buckets());
  double busy_seconds = 0.0;
  std::size_t idx = 0;
  while (acquire(w, idx)) {
    const bool skip =
        abort_.load(std::memory_order_relaxed) ||
        (early_exit && idx > best_.load(std::memory_order_relaxed));
    if (skip) {
      skips.inc();
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      try {
        if (body(idx) && early_exit) {
          // CAS-min: idx becomes the lowest hit unless a lower one is known.
          std::size_t cur = best_.load(std::memory_order_relaxed);
          while (idx < cur &&
                 !best_.compare_exchange_weak(cur, idx,
                                              std::memory_order_relaxed)) {
          }
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!error_) error_ = std::current_exception();
        }
        abort_.store(true, std::memory_order_relaxed);
      }
      busy_seconds += seconds_since(t0);
      tasks.inc();
    }
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
  busy.observe(busy_seconds);
}

bool ParallelExecutor::acquire(std::size_t w, std::size_t& idx) {
  obs::Registry& reg = obs::global();
  {
    WorkerQueue& mine = *queues_[w];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.q.empty()) {
      reg.histogram("exec.queue_depth", obs::count_buckets())
          .observe(static_cast<double>(mine.q.size()));
      idx = mine.q.front();
      mine.q.pop_front();
      return true;
    }
  }
  for (std::size_t off = 1; off < jobs_; ++off) {
    WorkerQueue& victim = *queues_[(w + off) % jobs_];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.q.empty()) {
      // Steal from the back: the victim keeps its low (soon-run) indices.
      idx = victim.q.back();
      victim.q.pop_back();
      reg.counter("exec.steals").inc();
      return true;
    }
  }
  return false;
}

}  // namespace rbvc::exec
