// Work-stealing thread-pool episode executor. The property harness, the
// randomized sweeps, and the episode-loop benches all have the same shape --
// N independent, seeded episodes whose results must not depend on execution
// order -- and this pool fans them out across threads while preserving that
// contract:
//
//   * parallel_for(n, task) runs task(i) for every i in [0, n) exactly once.
//   * find_first(n, pred) runs pred(i) over [0, n) and returns the LOWEST
//     index for which pred returned true, regardless of completion order:
//     once a hit at index k is known, only indices above k may be skipped,
//     so every index below the returned one has provably run and missed.
//     This is what makes a parallel fuzz sweep report the same failing
//     episode as a serial one.
//
// Width comes from the RBVC_JOBS env knob (default: hardware_concurrency).
// With jobs == 1 no threads are spawned and work runs inline on the caller,
// so the serial path stays byte-identical to the pre-pool behavior. Tasks
// must be independent (no ordering between indices) and thread-safe; the
// harness guarantees this by deriving each episode's RNG stream from
// seed_sequence(base_seed, episode_idx) with no shared generator state.
//
// Scheduling is work-stealing: worker w owns a deque seeded with the
// indices w, w+jobs, w+2*jobs, ... and pops from its front (so low indices
// run early globally -- the find_first early-exit likes that); an idle
// worker steals from the back of a victim's deque. The pool records
// exec.* metrics (tasks, steals, skips, queue depth, per-worker busy time)
// into the global registry, whose counters are shard-per-thread and safe
// under this pool (see obs/metrics.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rbvc::exec {

/// Returned by find_first when no index satisfied the predicate.
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// RBVC_JOBS as a positive integer, else 0 (= "knob unset").
std::size_t env_jobs();

/// Pool width when the caller does not pin one: RBVC_JOBS if set, else
/// hardware_concurrency (at least 1).
std::size_t default_jobs();

class ParallelExecutor {
 public:
  /// jobs == 0 means default_jobs(). With an effective width of 1 the
  /// executor spawns no threads and runs batches inline on the caller.
  explicit ParallelExecutor(std::size_t jobs = 0);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Runs task(i) for every i in [0, n) exactly once. The first exception
  /// thrown by a task is rethrown on the caller after the batch drains
  /// (remaining indices are skipped, not run).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& task);

  /// Runs pred(i) over [0, n) and returns the lowest hitting index, or
  /// kNoIndex. Every index below the returned one is guaranteed to have
  /// been executed (and missed); indices above it may be skipped.
  std::size_t find_first(std::size_t n,
                         const std::function<bool(std::size_t)>& pred);

 private:
  struct alignas(64) WorkerQueue {
    std::mutex mu;
    std::deque<std::size_t> q;
  };

  std::size_t run_batch(std::size_t n,
                        const std::function<bool(std::size_t)>& body,
                        bool early_exit);
  void worker_main(std::size_t w);
  void drain(std::size_t w, const std::function<bool(std::size_t)>& body,
             bool early_exit);
  bool acquire(std::size_t w, std::size_t& idx);

  std::size_t jobs_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // Batch lifecycle. The mutable batch description (body_, early_exit_,
  // batch_id_) is written by run_batch and read by workers only under mu_;
  // progress (remaining_, best_, abort_) is lock-free.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t batch_id_ = 0;
  bool shutdown_ = false;
  const std::function<bool(std::size_t)>* body_ = nullptr;
  bool early_exit_ = false;
  std::exception_ptr error_;              // first task exception, under mu_
  std::size_t busy_workers_ = 0;          // workers inside drain(), under mu_
  std::atomic<std::size_t> remaining_{0};  // indices not yet accounted
  std::atomic<std::size_t> best_{kNoIndex};
  std::atomic<bool> abort_{false};
};

}  // namespace rbvc::exec
