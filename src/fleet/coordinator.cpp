#include "fleet/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/metrics.h"

namespace rbvc::fleet {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Episodes actually run in a shard, from the worker's snapshot; falls
/// back to the range size when the snapshot does not parse (a worker bug
/// must not take the sweep down).
std::uint64_t snapshot_episodes(const ShardResult& res) {
  try {
    const obs::Registry reg = obs::Registry::parse(res.metrics_json);
    if (const obs::Counter* c = reg.find_counter("fleet.shard.episodes")) {
      return c->value();
    }
  } catch (const std::exception&) {
  }
  return res.end - res.begin;
}

}  // namespace

Coordinator::Coordinator(const SweepConfig& cfg)
    : cfg_(cfg),
      merge_(cfg.episodes),
      restarts_left_(cfg.max_restarts ? cfg.max_restarts : cfg.workers) {
  cfg_.min_shard = std::max<std::uint64_t>(1, cfg_.min_shard);
  cfg_.max_shard = std::max(cfg_.min_shard, cfg_.max_shard);
  cfg_.oversubscribe = std::max<std::uint64_t>(1, cfg_.oversubscribe);
}

Coordinator::~Coordinator() {
  for (Worker& w : workers_) {
    if (w.fd >= 0) ::close(w.fd);
    if (w.pid > 0 && !w.reaped) {
      ::kill(static_cast<pid_t>(w.pid), SIGKILL);
      ::waitpid(static_cast<pid_t>(w.pid), nullptr, 0);
    }
  }
}

void Coordinator::add_worker(int fd, long pid) {
  Worker w;
  w.fd = fd;
  w.pid = pid;
  w.id = workers_.size();
  w.last_frame_ms = now_ms();
  workers_.push_back(std::move(w));
  ++stats_.workers_spawned;
}

std::optional<Assign> Coordinator::next_range() {
  // Drop orphans the merge already covers (a reassignment raced its
  // presumed-dead owner and both completed).
  while (!orphans_.empty() &&
         orphans_.begin()->second <= merge_.covered_upto()) {
    orphans_.erase(orphans_.begin());
  }
  if (!orphans_.empty()) {
    const auto [begin, end] = *orphans_.begin();
    if (merge_.needs(begin)) {
      orphans_.erase(orphans_.begin());
      return Assign{next_shard_id_++, begin, end};
    }
    return std::nullopt;  // sorted: every orphan is above the candidate
  }
  // Fresh ranges always start above every completed shard, so once a
  // candidate failure exists they can never lower it -- stop issuing.
  if (merge_.has_candidate() || next_fresh_ >= cfg_.episodes) {
    return std::nullopt;
  }
  const std::uint64_t remaining = cfg_.episodes - next_fresh_;
  const std::uint64_t target =
      remaining / (static_cast<std::uint64_t>(cfg_.workers) *
                   cfg_.oversubscribe);
  const std::uint64_t chunk = std::min(
      remaining, std::clamp(target, cfg_.min_shard, cfg_.max_shard));
  const Assign a{next_shard_id_++, next_fresh_, next_fresh_ + chunk};
  next_fresh_ += chunk;
  return a;
}

void Coordinator::issue(Worker& w) {
  if (!w.alive || !w.hello || w.outstanding) return;
  const auto a = next_range();
  if (!a) return;
  if (!send_all(w.fd, frame_assign(*a))) {
    // Hand the range straight back before marking the death, so the
    // requeue in mark_dead does not double-count it.
    orphans_[a->begin] = std::max(orphans_[a->begin], a->end);
    mark_dead(w, "assign write failed");
    return;
  }
  w.outstanding = *a;
  ++stats_.shards_issued;
}

void Coordinator::complete_shard(Worker& w, const ShardResult& res) {
  ++stats_.shards_completed;
  stats_.episodes_run += snapshot_episodes(res);
  merge_.complete(res.begin, res.end, res.failing);
  w.outstanding.reset();
  w.pending_result.reset();
}

void Coordinator::handle_frame(Worker& w, const net::wire::Frame& f) {
  using net::wire::FrameType;
  w.last_frame_ms = now_ms();
  switch (f.type) {
    case FrameType::kFleetHello: {
      (void)decode_hello(f.body);
      w.hello = true;
      break;
    }
    case FrameType::kFleetHeartbeat: {
      w.episodes_done = decode_heartbeat(f.body).episodes_done;
      ++stats_.heartbeats;
      break;
    }
    case FrameType::kFleetResult: {
      const ShardResult res = decode_result(f.body);
      if (!w.outstanding || w.outstanding->shard_id != res.shard_id) {
        throw net::wire::WireError("wire: fleet result for unknown shard");
      }
      if (res.failing == kNoEpisode) {
        complete_shard(w, res);
      } else {
        if (first_candidate_ms_ < 0) first_candidate_ms_ = now_ms();
        // Park until the failure report lands; a death in between
        // requeues the whole range (mark_dead), keeping the merge exact.
        w.pending_result = res;
      }
      break;
    }
    case FrameType::kFleetFailure: {
      FailureReport rep = decode_failure(f.body);
      if (!w.pending_result || w.pending_result->failing != rep.episode) {
        throw net::wire::WireError(
            "wire: fleet failure report without matching result");
      }
      ++stats_.failures_reported;
      reports_.emplace(rep.episode, std::move(rep));
      complete_shard(w, *w.pending_result);
      break;
    }
    default:
      throw net::wire::WireError(
          "wire: unexpected fleet frame type " +
          std::to_string(static_cast<unsigned>(f.type)) + " at coordinator");
  }
}

void Coordinator::mark_dead(Worker& w, const char* why) {
  if (!w.alive) return;
  w.alive = false;
  ++stats_.worker_deaths;
  std::fprintf(stderr, "fleet: worker %llu (pid %ld) dead: %s\n",
               static_cast<unsigned long long>(w.id), w.pid, why);
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0) {
    ::kill(static_cast<pid_t>(w.pid), SIGKILL);  // no-op if already gone
    if (::waitpid(static_cast<pid_t>(w.pid), nullptr, WNOHANG) > 0) {
      w.reaped = true;
    }
  }
  if (w.outstanding) {
    // Orphaned: the range (result pending or not) must re-run for the
    // merge to cover it. Requeue whole; next_range() reissues in order.
    orphans_[w.outstanding->begin] =
        std::max(orphans_[w.outstanding->begin], w.outstanding->end);
    ++stats_.shards_reassigned;
    w.outstanding.reset();
    w.pending_result.reset();
  }
  if (restarts_left_ > 0 && respawn_) {
    const auto [fd, pid] = respawn_();
    if (fd >= 0) {
      --restarts_left_;
      ++stats_.worker_restarts;
      add_worker(fd, pid);
    }
  }
}

void Coordinator::maybe_chaos_kill() {
  if (chaos_killed_ || cfg_.chaos_kill_after_shards == 0 ||
      stats_.shards_completed < cfg_.chaos_kill_after_shards) {
    return;
  }
  Worker* victim = nullptr;
  for (Worker& w : workers_) {
    if (!w.alive || w.pid <= 0) continue;
    if (!victim) victim = &w;
    if (w.outstanding) {  // prefer exercising the reassignment path
      victim = &w;
      break;
    }
  }
  if (!victim) return;
  chaos_killed_ = true;
  std::fprintf(stderr, "fleet: chaos kill of worker %llu (pid %ld)\n",
               static_cast<unsigned long long>(victim->id), victim->pid);
  ::kill(static_cast<pid_t>(victim->pid), SIGKILL);
  // Death is then observed through the normal channels (EOF / timeout).
}

bool Coordinator::done() const {
  if (!merge_.decided()) return false;
  return !merge_.has_candidate() ||
         reports_.count(merge_.candidate()) > 0;
}

SweepOutcome Coordinator::run() {
  const std::int64_t t_start_ms = now_ms();
  std::int64_t decided_ms = -1;
  while (!done()) {
    bool any_alive = false;
    for (Worker& w : workers_) {
      if (w.alive) {
        issue(w);
        any_alive = w.alive || any_alive;  // issue() may kill w
      }
    }
    for (const Worker& w : workers_) any_alive = any_alive || w.alive;
    if (!any_alive) {
      if (cfg_.publish_metrics) publish_metrics();
      throw std::runtime_error(
          "fleet: every worker died with episodes uncovered (deaths=" +
          std::to_string(stats_.worker_deaths) + ")");
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      fds.push_back(pollfd{workers_[i].fd, POLLIN, 0});
      idx.push_back(i);
    }
    const int rc = ::poll(fds.data(), fds.size(),
                          cfg_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error("fleet: poll failed");
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Worker& w = workers_[idx[k]];
      if (!w.alive) continue;
      char chunk[65536];
      const ssize_t n = ::recv(w.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n == 0 || (n < 0 && errno == ECONNRESET)) {
        mark_dead(w, "hangup");
        continue;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        mark_dead(w, "read error");
        continue;
      }
      w.rdbuf.append(chunk, static_cast<std::size_t>(n));
      try {
        while (auto f = net::wire::try_unframe(w.rdbuf)) {
          handle_frame(w, *f);
          if (done()) break;
        }
      } catch (const net::wire::WireError& e) {
        // Poisoned stream: this worker is gone as far as the sweep is
        // concerned; its range gets reassigned like any other death.
        mark_dead(w, e.what());
      }
      if (done()) break;
    }

    // Heartbeat timeouts: only workers that owe us something (a shard in
    // flight, or the initial hello) can go silent-dead; idle workers are
    // legitimately quiet.
    const std::int64_t now = now_ms();
    for (Worker& w : workers_) {
      if (!w.alive || (!w.outstanding && w.hello)) continue;
      if (now - w.last_frame_ms > cfg_.heartbeat_timeout_ms) {
        mark_dead(w, "heartbeat timeout");
      }
    }
    maybe_chaos_kill();
  }
  decided_ms = now_ms();

  SweepOutcome out;
  out.stats = stats_;  // filled further below
  if (merge_.has_candidate()) {
    const FailureReport& rep = reports_.at(merge_.candidate());
    out.failed = true;
    out.failing_episode = merge_.candidate();
    out.failure = rep.message;
    out.repro_text = rep.repro_text;
    out.original_len = rep.original_len;
    out.shrunk_len = rep.shrunk_len;
    out.episodes = merge_.candidate() + 1;
    out.stats.merge_latency_us =
        first_candidate_ms_ >= 0
            ? 1000.0 * static_cast<double>(decided_ms - first_candidate_ms_)
            : 0.0;
  } else {
    out.episodes = cfg_.episodes;
  }
  (void)t_start_ms;
  stats_.merge_latency_us = out.stats.merge_latency_us;
  finalize_fleet();
  if (cfg_.publish_metrics) publish_metrics();
  out.stats = stats_;
  return out;
}

void Coordinator::finalize_fleet() {
  // Polite shutdown for idle workers; SIGKILL for any still mid-shard
  // (their work is above the candidate and can never matter).
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    if (w.fd >= 0) (void)send_all(w.fd, frame_shutdown());
    if (w.outstanding && w.pid > 0) {
      ::kill(static_cast<pid_t>(w.pid), SIGKILL);
    }
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
    w.alive = false;
  }
  for (Worker& w : workers_) {
    if (w.pid > 0 && !w.reaped) {
      // Bounded patience: idle workers exit on shutdown/EOF promptly; a
      // wedged one gets the axe.
      const std::int64_t deadline = now_ms() + 2000;
      for (;;) {
        const pid_t r =
            ::waitpid(static_cast<pid_t>(w.pid), nullptr, WNOHANG);
        if (r != 0) break;  // reaped (or ECHILD: someone else did)
        if (now_ms() > deadline) {
          ::kill(static_cast<pid_t>(w.pid), SIGKILL);
          ::waitpid(static_cast<pid_t>(w.pid), nullptr, 0);
          break;
        }
        ::usleep(2000);
      }
      w.reaped = true;
    }
  }
}

void Coordinator::publish_metrics() const {
  // The single registry touch-point of the fleet layer, reached only with
  // cfg_.publish_metrics set; see the header's byte-identity rationale for
  // why it is opt-in and must stay at end-of-sweep.
  obs::Registry& reg = obs::global();
  reg.counter("fleet.shards.issued").inc(stats_.shards_issued);
  reg.counter("fleet.shards.completed").inc(stats_.shards_completed);
  reg.counter("fleet.shards.reassigned").inc(stats_.shards_reassigned);
  reg.counter("fleet.workers.spawned").inc(stats_.workers_spawned);
  reg.counter("fleet.workers.deaths").inc(stats_.worker_deaths);
  reg.counter("fleet.workers.restarts").inc(stats_.worker_restarts);
  reg.counter("fleet.episodes.completed").inc(stats_.episodes_run);
  reg.counter("fleet.heartbeats").inc(stats_.heartbeats);
  reg.counter("fleet.failures.reported").inc(stats_.failures_reported);
  reg.gauge("fleet.merge.latency_us").set(stats_.merge_latency_us);
}

}  // namespace rbvc::fleet
