// Sweep coordinator: shards an episode range across worker processes and
// merges per-shard results into the single verdict a serial run would
// produce (docs/FLEET.md).
//
// The coordinator is a single-threaded poll loop over one fd per worker
// (fork-mode socketpairs or accepted TCP connections -- the protocol is
// identical). It hands out episode ranges adaptively (large chunks while
// the range is long, shrinking as it drains so stragglers cannot pin the
// tail), detects worker death three ways -- EOF/reset on the fd, a
// poisoned frame stream, and a heartbeat timeout while a shard is
// outstanding -- and requeues the orphaned range for reassignment.
// Optionally it respawns replacements up to a restart budget.
//
// Determinism contract (the point of the design): the verdict is the
// globally lowest failing episode, final only once every episode below it
// is covered by a completed shard (fleet/merge.h), and the repro bytes
// shipped with the winning failure report were produced by the same
// failure-tail code a single-process run executes -- so the merged repro
// file is byte-identical to a `--workers 1` run at any worker count, even
// across worker deaths and reassignment.
//
// Metrics: the coordinator publishes fleet.* counters/gauges into the
// process-global registry ONLY when SweepConfig::publish_metrics is set
// (the rbvc-sweep tool and bench_sweep opt in; the check_property fleet
// path never does), and then ONCE, after the verdict. Fork-mode workers
// inherit the parent's registry key set at spawn time, and the repro's
// embedded metrics snapshot dumps every key ever minted in the producing
// process -- so any fleet.* key minted before a fork leaks into worker
// snapshots and breaks repro byte-identity against single-process runs
// and across back-to-back sweeps (docs/OBSERVABILITY.md). Tool processes
// exit after one sweep, so their opt-in cannot pollute a later fork.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "fleet/merge.h"
#include "fleet/protocol.h"

namespace rbvc::fleet {

struct SweepConfig {
  std::uint64_t episodes = 0;
  std::size_t workers = 1;
  // Adaptive shard sizing: chunk = clamp(remaining / (workers *
  // oversubscribe), min_shard, max_shard). Early chunks are big (low
  // protocol overhead), the tail is fine-grained (no straggler pins the
  // verdict).
  std::uint64_t min_shard = 1;
  std::uint64_t max_shard = 4096;
  std::uint64_t oversubscribe = 4;
  int poll_interval_ms = 50;
  // A worker with an outstanding shard (or one that never said hello)
  // that stays silent this long is declared dead. Workers heartbeat
  // between episodes (and while minimizing a failure), so only a truly
  // hung or killed worker trips this. Generous default: CI sanitizer
  // builds are slow.
  int heartbeat_timeout_ms = 10000;
  // Replacement workers forked (via the respawn hook) after a death.
  // Default 0 means "workers" (one budget per original worker).
  std::size_t max_restarts = 0;
  // Test/CI chaos hook: once this many shards have completed, SIGKILL one
  // live worker (preferring one with an outstanding shard, so the
  // reassignment path is exercised). 0 = off.
  std::uint64_t chaos_kill_after_shards = 0;
  // Publish fleet.* metrics into the process-global registry after the
  // verdict. Off by default: minting fleet.* keys poisons the registry
  // snapshot embedded in repros produced by any LATER fork in the same
  // process (see the header comment), so only single-sweep tool processes
  // (rbvc-sweep, bench_sweep) turn this on.
  bool publish_metrics = false;
};

struct SweepStats {
  std::uint64_t shards_issued = 0;
  std::uint64_t shards_completed = 0;
  std::uint64_t shards_reassigned = 0;  // orphaned by a death and requeued
  std::uint64_t workers_spawned = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t episodes_run = 0;  // sum of per-shard snapshot counts
  std::uint64_t heartbeats = 0;
  std::uint64_t failures_reported = 0;
  // Time from the first failing shard result to the final merged verdict
  // (waiting out coverage below the candidate); 0 for clean sweeps.
  double merge_latency_us = 0;
};

/// Mirrors harness::PropertyResult semantics: on failure `episodes` is
/// failing_episode + 1 (episodes provably at-or-below the hit), otherwise
/// the full sweep size.
struct SweepOutcome {
  bool failed = false;
  std::uint64_t failing_episode = 0;
  std::string failure;     // oracle message from the winning report
  std::string repro_text;  // complete repro file bytes, written verbatim
  std::uint64_t original_len = 0;
  std::uint64_t shrunk_len = 0;
  std::uint64_t episodes = 0;
  SweepStats stats;
};

class Coordinator {
 public:
  /// Respawn hook: returns a fresh worker (fd, pid), or fd < 0 when no
  /// replacement can be made. The fork-mode spawner installs one.
  using RespawnFn = std::function<std::pair<int, long>()>;

  explicit Coordinator(const SweepConfig& cfg);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Registers a connected worker. Takes ownership of `fd`; `pid` > 0
  /// enables SIGKILL/reap handling (fork mode), <= 0 marks an external
  /// (e.g. TCP) worker the coordinator can only hang up on.
  void add_worker(int fd, long pid);

  void set_respawn(RespawnFn fn) { respawn_ = std::move(fn); }

  /// Runs the sweep to its merged verdict, then shuts the fleet down and
  /// publishes fleet.* metrics. Throws std::runtime_error if every worker
  /// (including respawns) dies while episodes remain uncovered.
  SweepOutcome run();

 private:
  struct Worker {
    int fd = -1;
    long pid = 0;
    std::uint64_t id = 0;
    bool alive = true;
    bool hello = false;
    bool reaped = false;
    std::string rdbuf;
    std::optional<Assign> outstanding;
    // A failing ShardResult parks here until its FailureReport lands; the
    // shard only counts as complete (and merges) once both arrived, so a
    // death in between requeues the whole range.
    std::optional<ShardResult> pending_result;
    std::int64_t last_frame_ms = 0;
    std::uint64_t episodes_done = 0;
  };

  std::optional<Assign> next_range();
  void issue(Worker& w);
  void handle_frame(Worker& w, const net::wire::Frame& f);
  void complete_shard(Worker& w, const ShardResult& res);
  void mark_dead(Worker& w, const char* why);
  void maybe_chaos_kill();
  bool done() const;
  void finalize_fleet();
  void publish_metrics() const;

  SweepConfig cfg_;
  MergeState merge_;
  SweepStats stats_;
  std::deque<Worker> workers_;  // deque: stable refs across respawns
  std::map<std::uint64_t, FailureReport> reports_;
  // Orphaned ranges awaiting reassignment, lowest begin first.
  std::map<std::uint64_t, std::uint64_t> orphans_;
  std::uint64_t next_fresh_ = 0;
  std::uint64_t next_shard_id_ = 0;
  std::size_t restarts_left_;
  bool chaos_killed_ = false;
  std::int64_t first_candidate_ms_ = -1;
  RespawnFn respawn_;
};

}  // namespace rbvc::fleet
