// Lowest-index-failure merge for the sweep coordinator (docs/FLEET.md).
//
// Shards complete in arbitrary order (workers race, die, get reassigned);
// this tracker decides WHEN the sweep's verdict is final and WHAT it is,
// under the same contract the in-process executor's find_first gives:
//
//   * The reported failure is the globally lowest failing episode index.
//   * The verdict "failed at k" is final only once every episode below k
//     is covered by a completed shard -- a straggler or reassigned shard
//     below k could still fail lower.
//   * The verdict "passed" is final only once [0, episodes) is fully
//     covered.
//
// A failing shard counts as covering its whole range: within a shard the
// worker's find_first guarantees everything below the hit ran and missed,
// and indices above the hit are above the (candidate) global minimum, so
// their execution can never change the verdict. Pure bookkeeping, no I/O;
// tests/fleet_sweep_test.cpp drives it with out-of-order completions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>

#include "fleet/protocol.h"

namespace rbvc::fleet {

class MergeState {
 public:
  explicit MergeState(std::uint64_t episodes) : episodes_(episodes) {}

  /// Record a completed shard [begin, end) whose lowest failing episode
  /// was `failing` (kNoEpisode for a clean shard). Ranges may arrive in
  /// any order; overlapping re-completions (a reassigned shard racing its
  /// presumed-dead owner) are harmless.
  void complete(std::uint64_t begin, std::uint64_t end,
                std::uint64_t failing = kNoEpisode) {
    if (failing != kNoEpisode) candidate_ = std::min(candidate_, failing);
    if (end <= covered_upto_) return;
    begin = std::max(begin, covered_upto_);
    if (begin > covered_upto_) {
      // Detached: stash, coalescing with any overlapping stashed ranges.
      auto it = pending_.lower_bound(begin);
      if (it != pending_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= begin) {
          begin = prev->first;
          end = std::max(end, prev->second);
          it = pending_.erase(prev);
        }
      }
      while (it != pending_.end() && it->first <= end) {
        end = std::max(end, it->second);
        it = pending_.erase(it);
      }
      pending_[begin] = end;
      return;
    }
    // Extends the covered prefix; absorb any stashed ranges it now touches.
    covered_upto_ = end;
    auto it = pending_.begin();
    while (it != pending_.end() && it->first <= covered_upto_) {
      covered_upto_ = std::max(covered_upto_, it->second);
      it = pending_.erase(it);
    }
  }

  /// First episode index not yet covered by a completed shard.
  std::uint64_t covered_upto() const { return covered_upto_; }

  /// The lowest failing episode seen so far (kNoEpisode when none).
  std::uint64_t candidate() const { return candidate_; }
  bool has_candidate() const { return candidate_ != kNoEpisode; }

  /// True once the verdict can no longer change: either a candidate
  /// failure with everything below it covered, or full clean coverage.
  bool decided() const {
    if (has_candidate()) return covered_upto_ > candidate_;
    return covered_upto_ >= episodes_;
  }

  /// A completed-or-stashed range starting at or below `idx` can still
  /// lower the candidate only if it is NOT yet covered; the coordinator
  /// uses this to decide whether an orphaned shard still needs re-running.
  bool needs(std::uint64_t begin) const {
    if (!has_candidate()) return true;
    return begin <= candidate_;
  }

  std::uint64_t episodes() const { return episodes_; }

 private:
  std::uint64_t episodes_;
  std::uint64_t covered_upto_ = 0;
  std::uint64_t candidate_ = kNoEpisode;
  // Completed ranges detached from the covered prefix: begin -> end,
  // disjoint and non-adjacent after coalescing.
  std::map<std::uint64_t, std::uint64_t> pending_;
};

}  // namespace rbvc::fleet
