#include "fleet/protocol.h"

#include <cerrno>
#include <cstring>
#include <system_error>

#include <sys/socket.h>
#include <unistd.h>

namespace rbvc::fleet {

using net::wire::Frame;
using net::wire::FrameType;
using net::wire::kMaxBody;
using net::wire::WireError;

namespace {

// Little-endian primitive writers/readers, the same shape as the
// Message/Trace codec internals (net/wire.cpp): readers consume from a
// cursor and throw WireError past the end, so every composite decoder
// inherits bounds checking.

template <class T>
void put_uint(std::string& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_bytes(std::string& out, std::string_view s) {
  put_uint<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Cursor {
  std::string_view rest;

  template <class T>
  T take_uint() {
    if (rest.size() < sizeof(T)) throw WireError("wire: truncated body");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(rest[i])) << (8 * i);
    }
    rest.remove_prefix(sizeof(T));
    return v;
  }

  std::string take_bytes() {
    const std::uint32_t len = take_uint<std::uint32_t>();
    if (len > kMaxBody || rest.size() < len) {
      throw WireError("wire: truncated body");
    }
    std::string s(rest.substr(0, len));
    rest.remove_prefix(len);
    return s;
  }

  void expect_done() const {
    if (!rest.empty()) throw WireError("wire: trailing garbage");
  }
};

}  // namespace

std::string encode_hello(const Hello& h) {
  std::string out;
  put_uint<std::uint64_t>(out, h.pid);
  put_uint<std::uint64_t>(out, h.jobs);
  return out;
}

Hello decode_hello(std::string_view body) {
  Cursor c{body};
  Hello h;
  h.pid = c.take_uint<std::uint64_t>();
  h.jobs = c.take_uint<std::uint64_t>();
  c.expect_done();
  return h;
}

std::string encode_assign(const Assign& a) {
  std::string out;
  put_uint<std::uint64_t>(out, a.shard_id);
  put_uint<std::uint64_t>(out, a.begin);
  put_uint<std::uint64_t>(out, a.end);
  return out;
}

Assign decode_assign(std::string_view body) {
  Cursor c{body};
  Assign a;
  a.shard_id = c.take_uint<std::uint64_t>();
  a.begin = c.take_uint<std::uint64_t>();
  a.end = c.take_uint<std::uint64_t>();
  if (a.end < a.begin) throw WireError("wire: fleet assign range reversed");
  c.expect_done();
  return a;
}

std::string encode_result(const ShardResult& r) {
  std::string out;
  put_uint<std::uint64_t>(out, r.shard_id);
  put_uint<std::uint64_t>(out, r.begin);
  put_uint<std::uint64_t>(out, r.end);
  put_uint<std::uint64_t>(out, r.failing);
  put_bytes(out, r.metrics_json);
  return out;
}

ShardResult decode_result(std::string_view body) {
  Cursor c{body};
  ShardResult r;
  r.shard_id = c.take_uint<std::uint64_t>();
  r.begin = c.take_uint<std::uint64_t>();
  r.end = c.take_uint<std::uint64_t>();
  r.failing = c.take_uint<std::uint64_t>();
  if (r.end < r.begin) throw WireError("wire: fleet result range reversed");
  if (r.failing != kNoEpisode && (r.failing < r.begin || r.failing >= r.end)) {
    throw WireError("wire: fleet result failing index outside its shard");
  }
  r.metrics_json = c.take_bytes();
  c.expect_done();
  return r;
}

std::string encode_failure(const FailureReport& f) {
  std::string out;
  put_uint<std::uint64_t>(out, f.episode);
  put_uint<std::uint64_t>(out, f.original_len);
  put_uint<std::uint64_t>(out, f.shrunk_len);
  put_bytes(out, f.message);
  put_bytes(out, f.repro_text);
  return out;
}

FailureReport decode_failure(std::string_view body) {
  Cursor c{body};
  FailureReport f;
  f.episode = c.take_uint<std::uint64_t>();
  f.original_len = c.take_uint<std::uint64_t>();
  f.shrunk_len = c.take_uint<std::uint64_t>();
  f.message = c.take_bytes();
  f.repro_text = c.take_bytes();
  c.expect_done();
  return f;
}

std::string encode_heartbeat(const Heartbeat& h) {
  std::string out;
  put_uint<std::uint64_t>(out, h.episodes_done);
  return out;
}

Heartbeat decode_heartbeat(std::string_view body) {
  Cursor c{body};
  Heartbeat h;
  h.episodes_done = c.take_uint<std::uint64_t>();
  c.expect_done();
  return h;
}

std::string frame_hello(const Hello& h) {
  return net::wire::frame(FrameType::kFleetHello, encode_hello(h));
}
std::string frame_assign(const Assign& a) {
  return net::wire::frame(FrameType::kFleetAssign, encode_assign(a));
}
std::string frame_result(const ShardResult& r) {
  return net::wire::frame(FrameType::kFleetResult, encode_result(r));
}
std::string frame_failure(const FailureReport& f) {
  return net::wire::frame(FrameType::kFleetFailure, encode_failure(f));
}
std::string frame_heartbeat(const Heartbeat& h) {
  return net::wire::frame(FrameType::kFleetHeartbeat, encode_heartbeat(h));
}
std::string frame_shutdown() {
  return net::wire::frame(FrameType::kFleetShutdown, {});
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    throw std::system_error(errno, std::generic_category(), "fleet: send");
  }
  return true;
}

std::optional<net::wire::Frame> read_frame(int fd, std::string& buffer) {
  for (;;) {
    if (auto f = net::wire::try_unframe(buffer)) return f;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return std::nullopt;  // clean EOF
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return std::nullopt;
    throw std::system_error(errno, std::generic_category(), "fleet: recv");
  }
}

}  // namespace rbvc::fleet
