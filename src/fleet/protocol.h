// Coordinator<->worker protocol for the distributed episode fan-out
// (docs/FLEET.md). A sweep coordinator shards an episode range [0, N)
// across worker processes; this header defines the message bodies the two
// sides exchange and reuses the length-prefixed frame format from
// net/wire.h (magic / version / type / length), so framing hardening --
// bad magic, unknown version, oversized length, truncation -- is inherited
// from the transport layer and the fleet codec only owns body layouts.
//
// Frame types (wire::FrameType::kFleet*):
//   Hello      worker -> coordinator  announces pid + episode-pool width.
//   Assign     coordinator -> worker  one shard: episode range [begin,end).
//   Result     worker -> coordinator  per-shard verdict: lowest failing
//                                     episode in the shard (or none) plus a
//                                     metrics snapshot (obs::Registry JSON:
//                                     episodes actually run, wall time).
//   Failure    worker -> coordinator  the failure report for one episode:
//                                     oracle message + the serialized repro
//                                     file bytes, produced by the exact
//                                     failure-tail code a single-process
//                                     run uses, so the coordinator can
//                                     write them verbatim and stay
//                                     byte-identical at any worker count.
//   Heartbeat  worker -> coordinator  liveness + episodes-done progress,
//                                     sent between episodes.
//   Shutdown   coordinator -> worker  drain and exit.
//
// Like the Message/Trace codecs, encode/decode are an exact fixpoint both
// ways and decoders reject truncated bodies, forged counts, and trailing
// garbage with a WireError naming the defect (tests/fleet_protocol_test).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.h"

namespace rbvc::fleet {

/// "No failing episode" sentinel in ShardResult::failing.
inline constexpr std::uint64_t kNoEpisode = ~std::uint64_t{0};

/// Worker -> coordinator, first frame on a fresh connection.
struct Hello {
  std::uint64_t pid = 0;   // worker process id (0 when unknown)
  std::uint64_t jobs = 0;  // episode-pool width the worker will run
  bool operator==(const Hello&) const = default;
};

/// Coordinator -> worker: run episodes [begin, end) as shard `shard_id`.
struct Assign {
  std::uint64_t shard_id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  bool operator==(const Assign&) const = default;
};

/// Worker -> coordinator: the shard's verdict. `failing` is the LOWEST
/// failing episode index in [begin, end), or kNoEpisode; every episode
/// below a reported failure is guaranteed to have run and passed (the
/// find_first contract, exec/parallel_executor.h). `metrics_json` is a
/// small obs::Registry dump (fleet.shard.* entries) snapshotting the
/// shard's execution: episodes run, wall milliseconds.
struct ShardResult {
  std::uint64_t shard_id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t failing = kNoEpisode;
  std::string metrics_json;
  bool operator==(const ShardResult&) const = default;
};

/// Worker -> coordinator, immediately after a failing ShardResult: the
/// full failure report for that episode. `repro_text` is the serialized
/// schema-v3 repro file produced by the shared failure tail
/// (harness/property.h), shipped verbatim.
struct FailureReport {
  std::uint64_t episode = 0;
  std::uint64_t original_len = 0;  // recorded schedule entries
  std::uint64_t shrunk_len = 0;    // after shrinking
  std::string message;             // oracle violation text
  std::string repro_text;          // complete repro file bytes
  bool operator==(const FailureReport&) const = default;
};

/// Worker -> coordinator: liveness plus cumulative episodes executed.
struct Heartbeat {
  std::uint64_t episodes_done = 0;
  bool operator==(const Heartbeat&) const = default;
};

// --- body codecs (exact fixpoint; WireError on malformed input) ------------

std::string encode_hello(const Hello& h);
Hello decode_hello(std::string_view body);

std::string encode_assign(const Assign& a);
Assign decode_assign(std::string_view body);

std::string encode_result(const ShardResult& r);
ShardResult decode_result(std::string_view body);

std::string encode_failure(const FailureReport& f);
FailureReport decode_failure(std::string_view body);

std::string encode_heartbeat(const Heartbeat& h);
Heartbeat decode_heartbeat(std::string_view body);

// --- framed convenience ----------------------------------------------------

std::string frame_hello(const Hello& h);
std::string frame_assign(const Assign& a);
std::string frame_result(const ShardResult& r);
std::string frame_failure(const FailureReport& f);
std::string frame_heartbeat(const Heartbeat& h);
std::string frame_shutdown();  // empty body

// --- blocking fd I/O -------------------------------------------------------
// Shared by the fork-mode socketpairs and the rbvc-sweep TCP path. Sends
// never raise SIGPIPE (MSG_NOSIGNAL); a peer hangup surfaces as `false`.

/// Writes all of `data`; false on EPIPE/reset (peer gone), throws
/// std::system_error on other errors.
bool send_all(int fd, std::string_view data);

/// Reads until `buffer` yields one complete frame. Returns the frame, or
/// nullopt on clean EOF / peer reset. Throws WireError on malformed bytes.
std::optional<net::wire::Frame> read_frame(int fd, std::string& buffer);

}  // namespace rbvc::fleet
