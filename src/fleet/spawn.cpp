#include "fleet/spawn.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace rbvc::fleet {

namespace {

/// Forks one worker. Returns {parent-side fd, child pid}, or {-1, 0} when
/// fork/socketpair fails (the coordinator treats that as "no replacement").
std::pair<int, long> fork_worker(const WorkerJob& job,
                                 const WorkerOptions& opts) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return {-1, 0};
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return {-1, 0};
  }
  if (pid == 0) {
    // Child: if the coordinator dies without reaping us, die with it
    // rather than orphan-running episodes nobody will merge.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) ::_exit(1);  // parent died before prctl armed
    ::close(sv[0]);
    int rc = 1;
    try {
      rc = run_worker(sv[1], job, opts);
    } catch (...) {
      rc = 2;
    }
    // _exit, not exit: atexit sinks (metrics/trace dumps) belong to the
    // parent process only.
    ::_exit(rc);
  }
  ::close(sv[1]);
  return {sv[0], static_cast<long>(pid)};
}

}  // namespace

std::size_t env_workers() {
  const char* env = std::getenv("RBVC_WORKERS");
  if (!env || !*env) return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || (end && *end)) return 0;
  return static_cast<std::size_t>(v);
}

SweepOutcome run_forked_sweep(SweepConfig cfg, const WorkerJob& job,
                              const WorkerOptions& opts) {
  if (cfg.episodes == 0) {
    SweepOutcome out;
    out.episodes = 0;
    return out;
  }
  cfg.workers = std::max<std::size_t>(
      1, std::min<std::size_t>(cfg.workers,
                               static_cast<std::size_t>(cfg.episodes)));
  Coordinator coord(cfg);
  for (std::size_t i = 0; i < cfg.workers; ++i) {
    const auto [fd, pid] = fork_worker(job, opts);
    if (fd < 0) {
      throw std::runtime_error("fleet: failed to fork worker " +
                               std::to_string(i));
    }
    coord.add_worker(fd, pid);
  }
  coord.set_respawn([&job, opts] { return fork_worker(job, opts); });
  return coord.run();
}

}  // namespace rbvc::fleet
