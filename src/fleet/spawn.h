// Fork-mode fleet spawner: turns a WorkerJob into a local multi-process
// sweep (docs/FLEET.md). Each worker is a fork of the current process
// connected to the coordinator over a socketpair; the child runs
// run_worker() and _exit()s without unwinding (so atexit metric/trace
// sinks fire only in the parent, keeping worker processes silent).
//
// Fork safety: callers must invoke run_forked_sweep() from a
// single-threaded state -- the harness does (check_property forks before
// constructing any pool), and the children construct their own pools
// after the fork. Children arm PR_SET_PDEATHSIG so a dying coordinator
// cannot strand them.
#pragma once

#include <cstddef>

#include "fleet/coordinator.h"
#include "fleet/worker.h"

namespace rbvc::fleet {

/// Worker-count override from RBVC_WORKERS (0 / unset / garbage = 0,
/// meaning "no fleet -- run in-process"). Mirrors exec::env_jobs().
std::size_t env_workers();

/// Forks `cfg.workers` children (capped at cfg.episodes), runs the sweep
/// to its merged verdict, reaps the fleet, and returns the outcome.
/// Respawn-on-death is wired up with the same fork path. Throws
/// std::runtime_error when the fleet dies entirely with work remaining.
SweepOutcome run_forked_sweep(SweepConfig cfg, const WorkerJob& job,
                              const WorkerOptions& opts = WorkerOptions{});

}  // namespace rbvc::fleet
