#include "fleet/worker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "exec/parallel_executor.h"
#include "obs/metrics.h"

namespace rbvc::fleet {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Per-shard telemetry as a detached registry dump: never touches the
/// process-global registry (see the header's byte-identity invariant).
std::string shard_metrics_json(std::uint64_t episodes_run, double wall_ms) {
  obs::Registry reg;
  reg.counter("fleet.shard.episodes").inc(episodes_run);
  reg.gauge("fleet.shard.wall_ms").set(wall_ms);
  reg.gauge("fleet.shard.episodes_per_s")
      .set(wall_ms > 0 ? 1000.0 * static_cast<double>(episodes_run) / wall_ms
                       : 0.0);
  return reg.dump_json();
}

}  // namespace

int run_worker(int fd, const WorkerJob& job, const WorkerOptions& opts) {
  if (!job.episode || !job.failure_report) {
    throw std::invalid_argument("fleet: worker job requires both closures");
  }
  // One pool for the whole session: shards reuse the threads, and the
  // exec.* registry entries are minted once up front exactly as a
  // single-process sweep would mint them.
  exec::ParallelExecutor pool(job.jobs);

  std::mutex send_mu;
  auto send_frame = [&](const std::string& bytes) {
    std::lock_guard<std::mutex> lk(send_mu);
    return send_all(fd, bytes);
  };

  if (!send_frame(frame_hello(
          Hello{static_cast<std::uint64_t>(::getpid()), pool.jobs()}))) {
    return 1;
  }

  std::atomic<std::uint64_t> episodes_done{0};
  std::atomic<std::int64_t> last_heartbeat_ms{now_ms()};
  std::atomic<bool> peer_gone{false};

  // Heartbeats ride between episodes: any pool thread that notices the
  // interval elapsed elects itself via compare_exchange and sends one.
  // A hung episode therefore stops the heartbeat stream, which is exactly
  // what lets the coordinator's timeout declare this worker dead.
  auto maybe_heartbeat = [&] {
    const std::int64_t now = now_ms();
    std::int64_t last = last_heartbeat_ms.load(std::memory_order_relaxed);
    if (now - last < opts.heartbeat_interval_ms) return;
    if (!last_heartbeat_ms.compare_exchange_strong(last, now,
                                                   std::memory_order_relaxed)) {
      return;  // another thread is sending this one
    }
    if (!send_frame(frame_heartbeat(
            Heartbeat{episodes_done.load(std::memory_order_relaxed)}))) {
      peer_gone.store(true, std::memory_order_relaxed);
    }
  };

  std::string rdbuf;
  for (;;) {
    const auto frame = read_frame(fd, rdbuf);
    if (!frame) return 1;  // coordinator hung up
    switch (frame->type) {
      case net::wire::FrameType::kFleetShutdown:
        return 0;
      case net::wire::FrameType::kFleetAssign: {
        const Assign a = decode_assign(frame->body);
        const auto t0 = Clock::now();
        std::atomic<std::uint64_t> ran{0};
        const std::size_t local_hit = pool.find_first(
            static_cast<std::size_t>(a.end - a.begin), [&](std::size_t i) {
              maybe_heartbeat();
              ran.fetch_add(1, std::memory_order_relaxed);
              episodes_done.fetch_add(1, std::memory_order_relaxed);
              return job.episode(static_cast<std::size_t>(a.begin) + i);
            });
        const double wall_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();

        ShardResult res;
        res.shard_id = a.shard_id;
        res.begin = a.begin;
        res.end = a.end;
        res.failing = local_hit == exec::kNoIndex
                          ? kNoEpisode
                          : a.begin + static_cast<std::uint64_t>(local_hit);
        res.metrics_json = shard_metrics_json(
            ran.load(std::memory_order_relaxed), wall_ms);
        if (!send_frame(frame_result(res))) return 1;
        if (res.failing != kNoEpisode) {
          // The failure tail runs on this (single) thread, exactly like
          // the single-process path, and the report ships verbatim. A
          // minimize can replay for a while with no episodes ticking, so
          // a scoped thread keeps heartbeats flowing meanwhile.
          std::mutex hb_mu;
          std::condition_variable hb_cv;
          bool tail_done = false;
          std::thread hb([&] {
            std::unique_lock<std::mutex> lk(hb_mu);
            while (!hb_cv.wait_for(
                lk, std::chrono::milliseconds(opts.heartbeat_interval_ms),
                [&] { return tail_done; })) {
              lk.unlock();
              maybe_heartbeat();
              lk.lock();
            }
          });
          FailureReport rep =
              job.failure_report(static_cast<std::size_t>(res.failing));
          rep.episode = res.failing;
          {
            std::lock_guard<std::mutex> lk(hb_mu);
            tail_done = true;
          }
          hb_cv.notify_one();
          hb.join();
          if (!send_frame(frame_failure(rep))) return 1;
        }
        if (peer_gone.load(std::memory_order_relaxed)) return 1;
        break;
      }
      default:
        throw net::wire::WireError(
            "wire: unexpected fleet frame type " +
            std::to_string(static_cast<unsigned>(frame->type)) +
            " at worker");
    }
  }
}

}  // namespace rbvc::fleet
