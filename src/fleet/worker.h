// Fleet worker: the process-side loop that serves episode shards to a
// sweep coordinator (docs/FLEET.md). The worker side is deliberately
// workload-agnostic -- it is handed two closures:
//
//   episode(i)        runs episode i, returns true when it FAILS the
//                     property. Fanned across the process's own
//                     work-stealing pool (exec/parallel_executor.h) at
//                     RBVC_JOBS width, exactly like a single-process
//                     sweep, so per-shard find_first keeps the "lowest
//                     failing index, everything below ran" contract.
//   failure_report(i) the failure tail for episode i: re-generate from
//                     seed, minimize, serialize the schema-v3 repro file.
//                     This MUST be the same code a single-process run
//                     executes (harness/property.h failure_tail) -- that
//                     is what makes the coordinator's merged repro
//                     byte-identical at any worker count.
//
// Invariant: worker-side fleet code never records into the process-global
// metrics registry. The repro file embeds a snapshot of every key ever
// minted in the producing process, so a stray fleet.* counter here would
// break byte-identity against single-process runs. Per-shard telemetry
// travels to the coordinator as a detached local Registry dump instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fleet/protocol.h"

namespace rbvc::fleet {

/// The workload a worker serves. Both closures must be deterministic
/// functions of the episode index (the harness derives per-episode RNG
/// streams from seed_sequence(base_seed, i)); `episode` must additionally
/// be thread-safe, as shards fan across the worker's pool.
struct WorkerJob {
  std::function<bool(std::size_t)> episode;
  std::function<FailureReport(std::size_t)> failure_report;
  std::size_t jobs = 0;  // pool width; 0 = exec::default_jobs()
};

/// Options for the worker loop; the defaults suit both fork-mode
/// socketpairs and rbvc-sweep's TCP workers.
struct WorkerOptions {
  int heartbeat_interval_ms = 200;  // min gap between heartbeat frames
};

/// Serves shards over `fd` until a shutdown frame or coordinator hangup.
/// Returns 0 on clean shutdown, 1 when the coordinator vanished. Throws
/// only on local I/O errors or a workload exception escaping an episode
/// (fork-mode children turn that into a nonzero _exit, which the
/// coordinator sees as a death and handles by reassignment).
int run_worker(int fd, const WorkerJob& job,
               const WorkerOptions& opts = WorkerOptions{});

}  // namespace rbvc::fleet
