#include "geometry/caratheodory.h"

#include <algorithm>
#include <cmath>

#include "geometry/projection.h"
#include "linalg/qr.h"

namespace rbvc {

std::optional<CaratheodoryResult> caratheodory_reduce(
    const Vec& u, const std::vector<Vec>& s, double tol) {
  auto lambda_opt = hull_coefficients(u, s, tol);
  if (!lambda_opt) return std::nullopt;
  const std::size_t d = u.size();

  // Active support with positive weight.
  std::vector<std::size_t> support;
  std::vector<double> w;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if ((*lambda_opt)[i] > tol) {
      support.push_back(i);
      w.push_back((*lambda_opt)[i]);
    }
  }
  if (support.empty()) {  // u coincided with a vertex at weight ~1
    support.push_back(0);
    w.push_back(1.0);
  }

  // While more than d+1 points support u, they are affinely dependent:
  // find mu with sum mu_i v_i = 0 and sum mu_i = 0, then walk the weights
  // along -mu until one hits zero. The combination value and the weight sum
  // are invariant, and at least one support point drops each iteration.
  while (support.size() > d + 1) {
    Matrix a(d + 1, support.size());
    for (std::size_t j = 0; j < support.size(); ++j) {
      for (std::size_t r = 0; r < d; ++r) a(r, j) = s[support[j]][r];
      a(d, j) = 1.0;
    }
    auto mu_opt = nullspace_vector(a, tol);
    if (!mu_opt) break;  // numerically independent; accept current support
    Vec mu = *mu_opt;
    // Step length: largest t with w - t*mu >= 0, over mu_j > 0. Flip mu's
    // sign if needed so some component is positive.
    double max_pos = 0.0;
    for (double m : mu) max_pos = std::max(max_pos, m);
    if (max_pos <= 0.0) {
      for (double& m : mu) m = -m;
    }
    double t = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < mu.size(); ++j) {
      if (mu[j] > tol) t = std::min(t, w[j] / mu[j]);
    }
    if (!std::isfinite(t)) break;  // safety: cannot make progress
    for (std::size_t j = 0; j < w.size(); ++j) w[j] -= t * mu[j];
    // Drop zeroed entries.
    std::vector<std::size_t> nsupport;
    std::vector<double> nw;
    for (std::size_t j = 0; j < w.size(); ++j) {
      if (w[j] > tol) {
        nsupport.push_back(support[j]);
        nw.push_back(w[j]);
      }
    }
    if (nsupport.size() >= support.size()) break;  // no progress: bail out
    support = std::move(nsupport);
    w = std::move(nw);
  }

  // Renormalize (guards accumulated roundoff).
  double sum = 0.0;
  for (double x : w) sum += x;
  for (double& x : w) x /= sum;

  CaratheodoryResult out;
  out.support = std::move(support);
  out.coeffs = Vec(w.begin(), w.end());
  return out;
}

HellyCheck helly_check(const std::vector<std::vector<Vec>>& sets,
                       double tol) {
  RBVC_REQUIRE(!sets.empty(), "helly_check: no sets");
  const std::size_t d = sets.front().front().size();
  HellyCheck out;
  out.all_intersect = hulls_intersect(sets, tol);
  if (sets.size() <= d + 1) {
    out.every_d_plus_1_intersect = out.all_intersect;
    return out;
  }
  out.every_d_plus_1_intersect = true;
  for (const auto& idx : k_subsets(sets.size(), d + 1)) {
    std::vector<std::vector<Vec>> sub;
    sub.reserve(d + 1);
    for (std::size_t i : idx) sub.push_back(sets[i]);
    if (!hulls_intersect(sub, tol)) {
      out.every_d_plus_1_intersect = false;
      break;
    }
  }
  return out;
}

}  // namespace rbvc
