// Caratheodory reduction and a Helly verification harness (the two classic
// convexity theorems the paper's Theorem 12 proof leans on; Theorems 10-11
// in the paper's numbering).
#pragma once

#include <optional>

#include "geometry/hull.h"

namespace rbvc {

/// A point of H(S) expressed over at most d+1 support points.
struct CaratheodoryResult {
  std::vector<std::size_t> support;  // indices into the original multiset
  Vec coeffs;                        // positive, sum 1, aligned with support
};

/// Caratheodory's theorem, constructively: given u in H(S) (within tol),
/// returns coefficients over at most d+1 points of S reconstructing u.
/// nullopt when u is not in the hull. Works by repeatedly cancelling affine
/// dependencies among the support points.
std::optional<CaratheodoryResult> caratheodory_reduce(
    const Vec& u, const std::vector<Vec>& s, double tol = kTol);

/// Helly verification harness: checks the implication of Helly's theorem
/// on a concrete family of polytopes in R^d -- if every subfamily of size
/// d+1 has a common point, so does the whole family. Returns the observed
/// (premise, conclusion) pair; Helly guarantees premise implies conclusion,
/// which the property tests assert on random families.
struct HellyCheck {
  bool every_d_plus_1_intersect = false;
  bool all_intersect = false;
};
HellyCheck helly_check(const std::vector<std::vector<Vec>>& sets,
                       double tol = kTol);

}  // namespace rbvc
