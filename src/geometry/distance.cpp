#include "geometry/distance.h"

#include <algorithm>
#include <cmath>

#include "lp/model.h"

namespace rbvc {

namespace detail {

namespace {
HullProjection projection_from_coeffs(const Vec& u, PointView pts, Vec coeffs,
                                      double p) {
  HullProjection out;
  out.point = zeros(u.size());
  for (std::size_t j = 0; j < pts.size(); ++j) {
    axpy(coeffs[j], pts[j], out.point);
  }
  out.distance = lp_dist(u, out.point, p);
  out.coeffs = std::move(coeffs);
  return out;
}
}  // namespace

HullProjection lp_projection_via_lp(const Vec& u, PointView pts, double p,
                                    double tol, lp::IncrementalSolver* warm) {
  RBVC_REQUIRE(p == 1.0 || p >= kInfNorm,
               "lp_projection_via_lp: only L1 and Linf are linear");
  RBVC_REQUIRE(!pts.empty(), "lp_projection_via_lp: empty point set");
  const std::size_t d = u.size();
  lp::Model m;
  const auto lambda0 = m.add_vars(pts.size());
  // Residual magnitude variables: one shared bound t for Linf, d bounds for L1.
  const bool linf = p >= kInfNorm;
  const auto t0 = linf ? m.add_var(1.0) : m.add_vars(d, 1.0);
  // For each coordinate r:  -t_r <= u[r] - sum_j lambda_j pts[j][r] <= t_r.
  for (std::size_t r = 0; r < d; ++r) {
    const auto t = linf ? t0 : t0 + r;
    std::vector<lp::Model::Term> lo, hi;
    lo.push_back({t, 1.0});
    hi.push_back({t, 1.0});
    for (std::size_t j = 0; j < pts.size(); ++j) {
      lo.push_back({lambda0 + j, pts[j][r]});
      hi.push_back({lambda0 + j, -pts[j][r]});
    }
    m.add_constraint(lo, lp::Rel::kGe, u[r]);   // t + V_r lambda >= u[r]
    m.add_constraint(hi, lp::Rel::kGe, -u[r]);  // t - V_r lambda >= -u[r]
  }
  std::vector<lp::Model::Term> sum_row;
  for (std::size_t j = 0; j < pts.size(); ++j) sum_row.push_back({lambda0 + j, 1.0});
  m.add_constraint(sum_row, lp::Rel::kEq, 1.0);

  lp::SimplexOptions opts;
  opts.tol = std::min(tol, 1e-8);
  lp::Solution sol;
  if (warm) {
    warm->set_options(opts);
    sol = m.solve_incremental(*warm);
  } else {
    sol = m.solve(opts);
  }
  RBVC_REQUIRE(sol.status == lp::Status::kOptimal,
               "lp_projection_via_lp: solver failed");
  Vec coeffs(sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(pts.size()));
  return projection_from_coeffs(u, pts, std::move(coeffs), p);
}

HullProjection lp_projection_frank_wolfe(const Vec& u, PointView pts, double p,
                                         std::size_t max_iters) {
  RBVC_REQUIRE(p >= 1.0 && p < kInfNorm,
               "frank_wolfe: requires finite p >= 1");
  RBVC_REQUIRE(!pts.empty(), "frank_wolfe: empty point set");
  const std::size_t n = pts.size();
  const std::size_t d = u.size();

  // Minimize f(lambda) = ||u - V lambda||_p^p over the simplex; the p-th
  // power keeps the gradient smooth away from the optimum and the argmin is
  // the same point.
  Vec lambda(n, 1.0 / static_cast<double>(n));
  Vec r(d);
  auto residual = [&]() {
    for (std::size_t k = 0; k < d; ++k) {
      double s = u[k];
      for (std::size_t j = 0; j < n; ++j) s -= lambda[j] * pts[j][k];
      r[k] = s;
    }
  };
  residual();

  for (std::size_t it = 0; it < max_iters; ++it) {
    // grad_j f = -sum_k p |r_k|^{p-1} sign(r_k) pts[j][k]
    Vec g(d);
    for (std::size_t k = 0; k < d; ++k) {
      const double a = std::abs(r[k]);
      g[k] = (a == 0.0) ? 0.0
                        : p * std::pow(a, p - 1.0) * (r[k] > 0 ? 1.0 : -1.0);
    }
    std::size_t best = 0;
    double best_val = kInfNorm;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = -dot(g, pts[j]);  // gradient wrt lambda_j
      if (v < best_val) {
        best_val = v;
        best = j;
      }
    }
    const double gamma = 2.0 / (static_cast<double>(it) + 2.0);
    for (std::size_t j = 0; j < n; ++j) lambda[j] *= (1.0 - gamma);
    lambda[best] += gamma;
    residual();
  }
  return projection_from_coeffs(u, pts, std::move(lambda), p);
}

}  // namespace detail

HullProjection project_to_hull(const Vec& u, PointView pts, double tol) {
  return detail::wolfe_min_norm(u, pts, tol);
}

HullProjection project_to_hull_p(const Vec& u, PointView pts, double p,
                                 double tol) {
  RBVC_REQUIRE(p >= 1.0, "project_to_hull_p: p must be >= 1");
  if (p == 2.0) return detail::wolfe_min_norm(u, pts, tol);
  if (p == 1.0 || p >= kInfNorm) {
    return detail::lp_projection_via_lp(u, pts, p, tol);
  }
  return detail::lp_projection_frank_wolfe(u, pts, p);
}

double distance_to_hull(const Vec& u, PointView pts, double p, double tol) {
  return project_to_hull_p(u, pts, p, tol).distance;
}

}  // namespace rbvc
