// Point-to-convex-hull distances and projections in Lp norms.
//
//   p = 2        -> Wolfe's min-norm-point algorithm (exact up to tolerance)
//   p = 1, inf   -> exact linear programs
//   other p >= 1 -> Frank-Wolfe over the barycentric simplex (iterative)
//
// These back the (delta,p)-relaxed hull membership tests of paper Sec. 5.2
// and the delta* computations of Sec. 9. Point sets are taken by PointView
// (plain vector<Vec> converts implicitly), so drop-f subset queries avoid
// materializing each subset.
#pragma once

#include <vector>

#include "geometry/point_view.h"

namespace rbvc {

namespace lp {
class IncrementalSolver;
}  // namespace lp

/// Result of projecting a point onto a convex hull.
struct HullProjection {
  double distance = 0.0;  // ||u - point||_p
  Vec point;              // nearest (for p=2; near-nearest otherwise) hull point
  Vec coeffs;             // barycentric coefficients of `point` over S
};

/// Euclidean projection of u onto H(pts) via Wolfe's algorithm.
HullProjection project_to_hull(const Vec& u, PointView pts, double tol = kTol);

/// Lp projection of u onto H(pts): exact for p in {1, 2, inf} (LP / Wolfe),
/// iterative (Frank-Wolfe, accuracy ~ kLooseTol) for other p >= 1.
HullProjection project_to_hull_p(const Vec& u, PointView pts, double p,
                                 double tol = kTol);

/// Lp distance from u to H(pts) (see project_to_hull_p for exactness).
double distance_to_hull(const Vec& u, PointView pts, double p,
                        double tol = kTol);

/// Internal entry points, exposed for tests and the ablation bench (E14).
namespace detail {
HullProjection wolfe_min_norm(const Vec& u, PointView pts, double tol);
/// p in {1, inf}. When `warm` is non-null the LP is solved through it
/// (IncrementalSolver::resolve): cold on the first use after a reset, then
/// reusing the retained basis across same-shape subset swaps.
HullProjection lp_projection_via_lp(const Vec& u, PointView pts, double p,
                                    double tol,
                                    lp::IncrementalSolver* warm = nullptr);
HullProjection lp_projection_frank_wolfe(const Vec& u, PointView pts, double p,
                                         std::size_t max_iters = 2'000);
}  // namespace detail

}  // namespace rbvc
