#include "geometry/hull.h"

#include <algorithm>

#include "obs/metrics.h"

namespace rbvc {

namespace {

lp::SimplexOptions options_for(double tol) {
  lp::SimplexOptions o;
  o.tol = std::min(tol, 1e-8);
  return o;
}

}  // namespace

std::optional<Vec> hull_coefficients(const Vec& u, PointView pts, double tol) {
  RBVC_REQUIRE(!pts.empty(), "hull_coefficients: empty point set");
  obs::global().counter("geom.hull.membership_lps").inc();
  obs::ScopedTimer timer(obs::global(), "geom.hull.seconds");
  const std::size_t d = u.size();
  for (const Vec& p : pts) {
    RBVC_REQUIRE(p.size() == d, "hull_coefficients: dimension mismatch");
  }
  lp::Model m;
  const auto lambda0 = m.add_vars(pts.size());
  for (std::size_t r = 0; r < d; ++r) {
    std::vector<lp::Model::Term> terms;
    terms.reserve(pts.size());
    for (std::size_t j = 0; j < pts.size(); ++j) {
      terms.push_back({lambda0 + j, pts[j][r]});
    }
    m.add_constraint(terms, lp::Rel::kEq, u[r]);
  }
  std::vector<lp::Model::Term> sum_row;
  for (std::size_t j = 0; j < pts.size(); ++j) sum_row.push_back({lambda0 + j, 1.0});
  m.add_constraint(sum_row, lp::Rel::kEq, 1.0);

  const lp::Solution sol = m.solve(options_for(tol));
  if (sol.status != lp::Status::kOptimal) return std::nullopt;
  return sol.x;
}

bool in_hull(const Vec& u, PointView pts, double tol) {
  return hull_coefficients(u, pts, tol).has_value();
}

std::optional<Vec> hull_intersection_point(const std::vector<PointView>& sets,
                                           double tol) {
  RBVC_REQUIRE(!sets.empty(), "hull_intersection_point: no sets");
  obs::global().counter("geom.hull.intersection_lps").inc();
  obs::ScopedTimer timer(obs::global(), "geom.hull.seconds");
  const std::size_t d = sets.front().front().size();
  lp::Model m;
  const auto u0 = m.add_vars(d, 0.0, /*free=*/true);
  for (const PointView& pts : sets) {
    RBVC_REQUIRE(!pts.empty(), "hull_intersection_point: empty set");
    const auto lambda0 = m.add_vars(pts.size());
    for (std::size_t r = 0; r < d; ++r) {
      std::vector<lp::Model::Term> terms;
      terms.push_back({u0 + r, -1.0});
      for (std::size_t j = 0; j < pts.size(); ++j) {
        RBVC_REQUIRE(pts[j].size() == d,
                     "hull_intersection_point: dimension mismatch");
        terms.push_back({lambda0 + j, pts[j][r]});
      }
      m.add_constraint(terms, lp::Rel::kEq, 0.0);
    }
    std::vector<lp::Model::Term> sum_row;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      sum_row.push_back({lambda0 + j, 1.0});
    }
    m.add_constraint(sum_row, lp::Rel::kEq, 1.0);
  }
  const lp::Solution sol = m.solve(options_for(tol));
  if (sol.status != lp::Status::kOptimal) return std::nullopt;
  return Vec(sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(d));
}

std::optional<Vec> hull_intersection_point(
    const std::vector<std::vector<Vec>>& sets, double tol) {
  return hull_intersection_point(std::vector<PointView>(sets.begin(), sets.end()),
                                 tol);
}

bool hulls_intersect(const std::vector<PointView>& sets, double tol) {
  return hull_intersection_point(sets, tol).has_value();
}

bool hulls_intersect(const std::vector<std::vector<Vec>>& sets, double tol) {
  return hull_intersection_point(sets, tol).has_value();
}

double support(const Vec& c, PointView pts) {
  RBVC_REQUIRE(!pts.empty(), "support: empty point set");
  // The support function of a polytope is attained at a vertex: just scan.
  double best = dot(c, pts.front());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    best = std::max(best, dot(c, pts[i]));
  }
  return best;
}

}  // namespace rbvc
