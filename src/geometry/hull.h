// Convex-hull oracles over finite point multisets, built on LP feasibility.
//
// A point u is in H(S) iff there exist lambda >= 0, sum lambda = 1, with
// V lambda = u (V = matrix of points). Everything here is exact up to LP
// tolerances; no explicit facet enumeration is ever needed.
//
// Point sets are taken by PointView, so the drop-f subset enumeration of the
// Gamma/Psi operators can pass index views into a shared point list without
// materializing each subset; plain `std::vector<Vec>` arguments convert
// implicitly.
#pragma once

#include <optional>
#include <vector>

#include "geometry/point_view.h"
#include "lp/model.h"

namespace rbvc {

/// True iff u lies in the convex hull of `pts` (within tol).
bool in_hull(const Vec& u, PointView pts, double tol = kTol);

/// A point in the intersection of the convex hulls of the given point sets,
/// or nullopt when the intersection is empty. All sets must be non-empty and
/// share the ambient dimension d. The returned point is deterministic for a
/// fixed input (simplex pivoting is deterministic).
std::optional<Vec> hull_intersection_point(const std::vector<PointView>& sets,
                                           double tol = kTol);
std::optional<Vec> hull_intersection_point(
    const std::vector<std::vector<Vec>>& sets, double tol = kTol);

/// Feasibility-only variant of hull_intersection_point.
bool hulls_intersect(const std::vector<PointView>& sets, double tol = kTol);
bool hulls_intersect(const std::vector<std::vector<Vec>>& sets,
                     double tol = kTol);

/// Linear optimization over H(S): returns max of <c, x> for x in H(S)
/// (the support function evaluated at c). S must be non-empty.
double support(const Vec& c, PointView pts);

/// Barycentric certificate: coefficients lambda (>= 0, summing to 1) with
/// V lambda ~= u, or nullopt when u is outside H(S).
std::optional<Vec> hull_coefficients(const Vec& u, PointView pts,
                                     double tol = kTol);

}  // namespace rbvc
