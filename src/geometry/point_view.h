// Non-owning views over point multisets.
//
// The geometry kernels operate on sub-multisets of a shared point list (the
// drop-f subsets of the Gamma/Psi operators). Materializing each subset as a
// `std::vector<Vec>` copies C(n, f) full point sets per query; a PointView
// instead indexes the original storage through a combination index list, so
// subset enumeration allocates nothing per subset.
//
// A PointView is valid only while the underlying vector<Vec> (and index
// list, if any) outlive it; kernels must not retain views past the call.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vec.h"

namespace rbvc {

class PointView {
 public:
  PointView() = default;

  /// View over a whole point list (implicit: lets every vector<Vec> caller
  /// use the view-based kernels unchanged).
  PointView(const std::vector<Vec>& pts)  // NOLINT(runtime/explicit)
      : base_(pts.data()), size_(pts.size()) {}

  /// View over base[idx[0]], base[idx[1]], ... (a drop-f subset).
  PointView(const std::vector<Vec>& base, const std::vector<std::size_t>& idx)
      : base_(base.data()), idx_(idx.data()), size_(idx.size()) {}

  const Vec& operator[](std::size_t i) const {
    return idx_ ? base_[idx_[i]] : base_[i];
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Vec& front() const { return (*this)[0]; }
  const Vec& back() const { return (*this)[size_ - 1]; }

  /// Copies the viewed points into an owning vector.
  std::vector<Vec> materialize() const {
    std::vector<Vec> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

  class iterator {
   public:
    using value_type = Vec;
    using difference_type = std::ptrdiff_t;
    using reference = const Vec&;

    iterator(const PointView* v, std::size_t i) : v_(v), i_(i) {}
    const Vec& operator*() const { return (*v_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const PointView* v_;
    std::size_t i_;
  };

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, size_); }

 private:
  const Vec* base_ = nullptr;
  const std::size_t* idx_ = nullptr;  // null: identity indexing
  std::size_t size_ = 0;
};

}  // namespace rbvc
