#include "geometry/poly2d.h"

#include <algorithm>
#include <cmath>

namespace rbvc {

namespace {

double cross(const Point2& o, const Point2& a, const Point2& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

double dist2d(const Point2& a, const Point2& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace

std::vector<Point2> convex_hull_2d(std::vector<Point2> pts, double tol) {
  if (pts.empty()) return {};
  std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end(),
                        [tol](const Point2& a, const Point2& b) {
                          return dist2d(a, b) <= tol;
                        }),
            pts.end());
  const std::size_t n = pts.size();
  if (n <= 2) return pts;

  std::vector<Point2> h(2 * n);
  std::size_t k = 0;
  // Scale cross-product tolerance by the data spread.
  double spread = 0.0;
  for (const Point2& p : pts) {
    spread = std::max({spread, std::abs(p.x), std::abs(p.y)});
  }
  const double ctol = tol * std::max(1.0, spread * spread);

  for (std::size_t i = 0; i < n; ++i) {  // lower chain
    while (k >= 2 && cross(h[k - 2], h[k - 1], pts[i]) <= ctol) --k;
    h[k++] = pts[i];
  }
  for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {  // upper chain
    while (k >= t && cross(h[k - 2], h[k - 1], pts[i]) <= ctol) --k;
    h[k++] = pts[i];
  }
  h.resize(k - 1);
  if (h.size() == 2 && dist2d(h[0], h[1]) <= tol) h.resize(1);
  return h;
}

std::vector<Halfplane> hull_halfplanes_2d(const std::vector<Point2>& pts,
                                          double tol) {
  const std::vector<Point2> hull = convex_hull_2d(pts, tol);
  std::vector<Halfplane> hs;
  if (hull.empty()) return hs;
  if (hull.size() == 1) {
    const Point2& p = hull.front();
    hs.push_back({1.0, 0.0, p.x});
    hs.push_back({-1.0, 0.0, -p.x});
    hs.push_back({0.0, 1.0, p.y});
    hs.push_back({0.0, -1.0, -p.y});
    return hs;
  }
  if (hull.size() == 2) {
    const Point2 &p = hull[0], &q = hull[1];
    const double dx = q.x - p.x, dy = q.y - p.y;
    const double len = std::hypot(dx, dy);
    const double tx = dx / len, ty = dy / len;   // unit tangent
    const double nx = -ty, ny = tx;              // unit normal
    // On the supporting line: n.u = n.p (two inequalities).
    hs.push_back({nx, ny, nx * p.x + ny * p.y});
    hs.push_back({-nx, -ny, -(nx * p.x + ny * p.y)});
    // Between the endpoints along the tangent.
    const double lo = tx * p.x + ty * p.y, hi = tx * q.x + ty * q.y;
    hs.push_back({tx, ty, std::max(lo, hi)});
    hs.push_back({-tx, -ty, -std::min(lo, hi)});
    return hs;
  }
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Point2& v = hull[i];
    const Point2& w = hull[(i + 1) % hull.size()];
    const double ex = w.x - v.x, ey = w.y - v.y;
    const double len = std::hypot(ex, ey);
    // Interior is to the left of the CCW edge: e.y*x - e.x*y <= e.y*vx - e.x*vy
    // Normalize so the halfplane slack is a geometric distance.
    const double a = ey / len, b = -ex / len;
    hs.push_back({a, b, a * v.x + b * v.y});
  }
  return hs;
}

bool in_hull_2d(const Point2& q, const std::vector<Point2>& pts, double tol) {
  for (const Halfplane& h : hull_halfplanes_2d(pts, tol)) {
    if (h.a * q.x + h.b * q.y > h.c + tol) return false;
  }
  return true;
}

std::vector<Point2> clip(const std::vector<Point2>& poly, const Halfplane& h,
                         double tol) {
  std::vector<Point2> out;
  const std::size_t n = poly.size();
  if (n == 0) return out;
  auto val = [&](const Point2& p) { return h.a * p.x + h.b * p.y - h.c; };
  for (std::size_t i = 0; i < n; ++i) {
    const Point2& cur = poly[i];
    const Point2& nxt = poly[(i + 1) % n];
    const double vc = val(cur), vn = val(nxt);
    if (vc <= tol) out.push_back(cur);
    if ((vc <= tol) != (vn <= tol)) {
      const double t = vc / (vc - vn);
      out.push_back({cur.x + t * (nxt.x - cur.x), cur.y + t * (nxt.y - cur.y)});
    }
  }
  return out;
}

std::vector<Point2> intersect_convex(const std::vector<Point2>& p,
                                     const std::vector<Point2>& q,
                                     double tol) {
  std::vector<Point2> out = p;
  for (const Halfplane& h : hull_halfplanes_2d(q, tol)) {
    out = clip(out, h, tol);
    if (out.empty()) break;
  }
  return out;
}

double polygon_area(const std::vector<Point2>& poly) {
  if (poly.size() < 3) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Point2& a = poly[i];
    const Point2& b = poly[(i + 1) % poly.size()];
    s += a.x * b.y - b.x * a.y;
  }
  return 0.5 * s;
}

}  // namespace rbvc
