// Exact-ish 2-D convex geometry used by the fast k=2 path of the k-relaxed
// hull oracle: planar convex hulls (monotone chain), halfplane extraction,
// convex clipping, and containment tests. Coordinates are the two projected
// components (u[i], u[j]) of the ambient d-dimensional vectors.
#pragma once

#include <vector>

#include "linalg/vec.h"

namespace rbvc {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Halfplane a*x + b*y <= c.
struct Halfplane {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// Convex hull via Andrew's monotone chain, counter-clockwise, collinear
/// points removed. Degenerate inputs yield 1 (all coincident) or 2 (all
/// collinear) vertices.
std::vector<Point2> convex_hull_2d(std::vector<Point2> pts,
                                   double tol = kTol);

/// Halfplane representation of the convex hull of `pts`, including the
/// degenerate segment/point cases (equalities become inequality pairs).
std::vector<Halfplane> hull_halfplanes_2d(const std::vector<Point2>& pts,
                                          double tol = kTol);

/// True iff q is within `tol` of the convex hull of `pts`.
bool in_hull_2d(const Point2& q, const std::vector<Point2>& pts,
                double tol = kTol);

/// Clips a convex CCW polygon against a halfplane (Sutherland-Hodgman step).
std::vector<Point2> clip(const std::vector<Point2>& poly, const Halfplane& h,
                         double tol = kTol);

/// Intersection of two convex CCW polygons (may be empty / degenerate).
std::vector<Point2> intersect_convex(const std::vector<Point2>& p,
                                     const std::vector<Point2>& q,
                                     double tol = kTol);

/// Signed area of a CCW polygon (0 for degenerate).
double polygon_area(const std::vector<Point2>& poly);

}  // namespace rbvc
