#include "geometry/projection.h"

namespace rbvc {

std::vector<std::vector<std::size_t>> k_subsets(std::size_t d,
                                                std::size_t k) {
  RBVC_REQUIRE(k >= 1 && k <= d, "k_subsets: need 1 <= k <= d");
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> cur(k);
  for (std::size_t i = 0; i < k; ++i) cur[i] = i;
  while (true) {
    out.push_back(cur);
    // Advance to the next lexicographic combination.
    std::size_t i = k;
    while (i-- > 0) {
      if (cur[i] != i + d - k) {
        ++cur[i];
        for (std::size_t j = i + 1; j < k; ++j) cur[j] = cur[j - 1] + 1;
        break;
      }
      if (i == 0) return out;
    }
  }
}

Vec project(const Vec& u, const std::vector<std::size_t>& d_set) {
  Vec v(d_set.size());
  for (std::size_t i = 0; i < d_set.size(); ++i) {
    RBVC_REQUIRE(d_set[i] < u.size(), "project: index out of range");
    v[i] = u[d_set[i]];
  }
  return v;
}

std::vector<Vec> project_all(const std::vector<Vec>& pts,
                             const std::vector<std::size_t>& d_set) {
  std::vector<Vec> out;
  out.reserve(pts.size());
  for (const Vec& p : pts) out.push_back(project(p, d_set));
  return out;
}

}  // namespace rbvc
