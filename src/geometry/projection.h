// Coordinate projections g_D (paper Definitions 1-5) and subset enumeration.
#pragma once

#include <vector>

#include "linalg/vec.h"

namespace rbvc {

/// All size-k subsets of {0, ..., d-1} in lexicographic order (the paper's
/// D_k, zero-indexed).
std::vector<std::vector<std::size_t>> k_subsets(std::size_t d, std::size_t k);

/// g_D(u): retains the coordinates of u listed in D (D must be sorted,
/// strictly increasing, with entries < u.size()).
Vec project(const Vec& u, const std::vector<std::size_t>& d_set);

/// g_D applied to a multiset of points.
std::vector<Vec> project_all(const std::vector<Vec>& pts,
                             const std::vector<std::size_t>& d_set);

}  // namespace rbvc
