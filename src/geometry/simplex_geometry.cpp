#include "geometry/simplex_geometry.h"

#include <cmath>
#include <limits>

#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace rbvc {

std::optional<SimplexGeometry> SimplexGeometry::build(
    const std::vector<Vec>& vertices, double tol) {
  if (vertices.empty()) return std::nullopt;
  const std::size_t d = vertices.front().size();
  if (vertices.size() != d + 1) return std::nullopt;

  // A = [a_1 - a_{d+1}, ..., a_d - a_{d+1}].
  Matrix a(d, d);
  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t r = 0; r < d; ++r) {
      a(r, c) = vertices[c][r] - vertices[d][r];
    }
  }
  auto ainv = inverse(a, tol);
  if (!ainv) return std::nullopt;  // affinely dependent

  SimplexGeometry g;
  g.verts_ = vertices;
  const Matrix b = ainv->transpose();
  g.b_.reserve(d + 1);
  Vec b_last = zeros(d);
  for (std::size_t c = 0; c < d; ++c) {
    Vec bc = b.col(c);
    axpy(-1.0, bc, b_last);
    g.b_.push_back(std::move(bc));
  }
  g.b_.push_back(std::move(b_last));  // b_{d+1} = -sum b_i

  double sum_norms = 0.0;
  for (const Vec& bi : g.b_) sum_norms += norm2(bi);
  g.inradius_ = 1.0 / sum_norms;
  g.incenter_ = zeros(d);
  for (std::size_t i = 0; i <= d; ++i) {
    axpy(norm2(g.b_[i]) / sum_norms, vertices[i], g.incenter_);
  }
  return g;
}

double SimplexGeometry::facet_inradius(std::size_t k) const {
  RBVC_REQUIRE(k < b_.size(), "facet_inradius: index out of range");
  // r_k = 1 / sum_{j != k} ||b_jk||, b_jk = b_j - (<b_j,b_k>/||b_k||^2) b_k.
  const Vec& bk = b_[k];
  const double bk2 = dot(bk, bk);
  double sum = 0.0;
  for (std::size_t j = 0; j < b_.size(); ++j) {
    if (j == k) continue;
    Vec bjk = b_[j];
    axpy(-dot(b_[j], bk) / bk2, bk, bjk);
    sum += norm2(bjk);
  }
  return 1.0 / sum;
}

double SimplexGeometry::distance_to_facet_plane(const Vec& x,
                                                std::size_t k) const {
  RBVC_REQUIRE(k < b_.size(), "distance_to_facet_plane: index out of range");
  // Facet pi_k contains every vertex a_j, j != k; b_k is its normal.
  const std::size_t j = (k == 0) ? 1 : 0;
  const Vec diff = sub(x, verts_[j]);
  return std::abs(dot(diff, b_[k])) / norm2(b_[k]);
}

EdgeExtremes edge_extremes(const std::vector<Vec>& pts, double p) {
  EdgeExtremes e;
  if (pts.size() < 2) return e;
  e.min_edge = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double dij = lp_dist(pts[i], pts[j], p);
      e.min_edge = std::min(e.min_edge, dij);
      e.max_edge = std::max(e.max_edge, dij);
    }
  }
  return e;
}

}  // namespace rbvc
