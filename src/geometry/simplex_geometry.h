// Geometry of d-simplices per the paper's Lemmas 11-15 (after Akira Toda):
// dual vectors b_i = columns of B = (A^{-1})^T, inradius r = 1 / sum ||b_i||,
// the incenter, and facet inradii r_k = 1 / sum_{j != k} ||b_jk|| with
// b_jk = b_j - (<b_j,b_k>/||b_k||^2) b_k.
//
// These closed forms give the exact delta*(S) for ALGO when f = 1 and
// n = d+1 (Lemma 13: delta* equals the inradius), and cross-check every
// numerical delta* path.
#pragma once

#include <optional>
#include <vector>

#include "linalg/vec.h"

namespace rbvc {

class SimplexGeometry {
 public:
  /// Builds the dual-vector structure for d+1 affinely independent points in
  /// R^d. Returns nullopt when the points are not a full-dimensional simplex
  /// (wrong count or affinely dependent within tol).
  static std::optional<SimplexGeometry> build(const std::vector<Vec>& vertices,
                                              double tol = kTol);

  /// Radius of the inscribed sphere: r = 1 / sum_i ||b_i||  (Lemma 12).
  double inradius() const { return inradius_; }

  /// Center of the inscribed sphere: sum_i ||b_i|| a_i / sum_i ||b_i||.
  const Vec& incenter() const { return incenter_; }

  /// Inradius of facet pi_k (all vertices except vertex k), measured inside
  /// the facet's own (d-1)-dimensional affine hull (Lemma 14 guarantees
  /// inradius() < facet_inradius(k) for every k).
  double facet_inradius(std::size_t k) const;

  /// Distance from x to the supporting hyperplane of facet pi_k.
  double distance_to_facet_plane(const Vec& x, std::size_t k) const;

  /// The dual vectors b_1..b_{d+1} (b_k is orthogonal to facet pi_k and
  /// satisfies <a_i - a_j, b_k> = delta_ik - delta_jk, Lemma 11).
  const std::vector<Vec>& dual_vectors() const { return b_; }

  const std::vector<Vec>& vertices() const { return verts_; }

 private:
  SimplexGeometry() = default;

  std::vector<Vec> verts_;
  std::vector<Vec> b_;
  double inradius_ = 0.0;
  Vec incenter_;
};

/// Minimum and maximum pairwise Lp distance over all index pairs i < j.
/// With fewer than two points both are 0.
struct EdgeExtremes {
  double min_edge = 0.0;
  double max_edge = 0.0;
};
EdgeExtremes edge_extremes(const std::vector<Vec>& pts, double p = 2.0);

}  // namespace rbvc
