#include "geometry/tverberg.h"

#include <cmath>

namespace rbvc {

IntersectionOracle exact_hull_oracle(double tol) {
  return [tol](const std::vector<std::vector<Vec>>& parts) {
    return hulls_intersect(parts, tol);
  };
}

namespace {

// Enumerates restricted growth strings a[0..n-1] (a[0]=0,
// a[i] <= 1 + max(a[0..i-1])) with values < max_blocks; yields each complete
// string to `visit`, which returns true to stop the enumeration.
bool enumerate_rgs(std::size_t n, std::size_t max_blocks,
                   std::vector<std::size_t>& a, std::size_t pos,
                   std::size_t used,
                   const std::function<bool(const std::vector<std::size_t>&,
                                            std::size_t)>& visit) {
  if (pos == n) return visit(a, used);
  const std::size_t limit = std::min(used + 1, max_blocks);
  for (std::size_t b = 0; b < limit; ++b) {
    a[pos] = b;
    if (enumerate_rgs(n, max_blocks, a, pos + 1, std::max(used, b + 1),
                      visit)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<std::vector<std::vector<std::size_t>>> find_tverberg_partition(
    const std::vector<Vec>& pts, std::size_t parts,
    const IntersectionOracle& oracle) {
  RBVC_REQUIRE(parts >= 1, "find_tverberg_partition: parts must be >= 1");
  if (pts.size() < parts) return std::nullopt;

  std::optional<std::vector<std::vector<std::size_t>>> found;
  std::vector<std::size_t> a(pts.size(), 0);
  enumerate_rgs(
      pts.size(), parts, a, 0, 0,
      [&](const std::vector<std::size_t>& assign, std::size_t used) {
        if (used != parts) return false;  // need exactly `parts` blocks
        std::vector<std::vector<std::size_t>> blocks(parts);
        std::vector<std::vector<Vec>> sets(parts);
        for (std::size_t i = 0; i < assign.size(); ++i) {
          blocks[assign[i]].push_back(i);
          sets[assign[i]].push_back(pts[i]);
        }
        if (!oracle(sets)) return false;
        found = std::move(blocks);
        return true;  // stop enumeration
      });
  return found;
}

std::optional<std::vector<std::vector<std::size_t>>> find_tverberg_partition(
    const std::vector<Vec>& pts, std::size_t parts, double tol) {
  return find_tverberg_partition(pts, parts, exact_hull_oracle(tol));
}

double stirling2(std::size_t n, std::size_t k) {
  if (k == 0) return n == 0 ? 1.0 : 0.0;
  if (k > n) return 0.0;
  std::vector<double> row(k + 1, 0.0);
  row[0] = 1.0;  // S(0, 0)
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = std::min(i, k); j-- > 0;) {
      // S(i, j+1) = (j+1) S(i-1, j+1) + S(i-1, j)
      row[j + 1] = static_cast<double>(j + 1) * row[j + 1] + row[j];
    }
    row[0] = 0.0;
  }
  return row[k];
}

std::vector<Vec> moment_curve_points(std::size_t count, std::size_t d) {
  std::vector<Vec> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = 1.0 + static_cast<double>(i);
    Vec v(d);
    double power = t;
    for (std::size_t j = 0; j < d; ++j) {
      v[j] = power;
      power *= t;
    }
    pts.push_back(std::move(v));
  }
  return pts;
}

}  // namespace rbvc
