// Exhaustive Tverberg partition search (paper Sec. 8).
//
// Tverberg's theorem: any multiset of >= (d+1)f + 1 points in R^d admits a
// partition into f+1 non-empty parts whose convex hulls share a point. The
// paper observes the bound stays tight when H is replaced by the relaxed
// hulls H_k or H_(delta,p); the search below therefore takes a pluggable
// intersection oracle so all three hull notions reuse one enumerator.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "geometry/hull.h"

namespace rbvc {

/// Given the parts of a candidate partition (as point multisets), decides
/// whether the chosen hulls of the parts have a common point.
using IntersectionOracle =
    std::function<bool(const std::vector<std::vector<Vec>>&)>;

/// The default oracle: ordinary convex hulls via LP feasibility.
IntersectionOracle exact_hull_oracle(double tol = kTol);

/// Searches every partition of `pts` into exactly `parts` non-empty blocks
/// (restricted-growth-string enumeration) and returns the first partition
/// whose hulls intersect, as index lists; nullopt when every partition has
/// empty intersection. Exponential in |pts| -- intended for the small
/// instances of the Tverberg experiments.
std::optional<std::vector<std::vector<std::size_t>>> find_tverberg_partition(
    const std::vector<Vec>& pts, std::size_t parts,
    const IntersectionOracle& oracle);

/// Convenience wrapper with the exact-hull oracle.
std::optional<std::vector<std::vector<std::size_t>>> find_tverberg_partition(
    const std::vector<Vec>& pts, std::size_t parts, double tol = kTol);

/// Number of partitions of an n-set into exactly k non-empty blocks
/// (Stirling number of the second kind), for reporting.
double stirling2(std::size_t n, std::size_t k);

/// Points on the moment curve t -> (t, t^2, ..., t^d): the classic witness
/// that (d+1)f points do NOT always admit a Tverberg partition into f+1
/// parts (general position, no degeneracies).
std::vector<Vec> moment_curve_points(std::size_t count, std::size_t d);

}  // namespace rbvc
