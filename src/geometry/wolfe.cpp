// Wolfe's algorithm (1976) for the minimum-norm point in a polytope,
// specialized to "project u onto conv(pts)": translate so u is the origin,
// find the min-norm point of conv(pts - u), translate back.
#include <algorithm>
#include <cmath>

#include "geometry/distance.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace rbvc::detail {

namespace {

// Affine minimizer: the point of minimum norm in the affine hull of the
// corral points, expressed as weights alpha with sum(alpha) = 1.
// Solves the KKT system  [Q e; e^T 0] [alpha; -mu] = [0; 1]  with Q the
// Gram matrix of the corral.
std::optional<Vec> affine_minimizer(const std::vector<Vec>& corral,
                                    double tol) {
  const std::size_t k = corral.size();
  Matrix kkt(k + 1, k + 1);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) {
      const double q = dot(corral[i], corral[j]);
      kkt(i, j) = q;
      kkt(j, i) = q;
    }
    kkt(i, k) = 1.0;
    kkt(k, i) = 1.0;
  }
  Vec rhs(k + 1, 0.0);
  rhs[k] = 1.0;
  auto sol = solve(kkt, rhs, tol);
  if (!sol) return std::nullopt;
  sol->resize(k);
  return sol;
}

}  // namespace

HullProjection wolfe_min_norm(const Vec& u, PointView pts, double tol) {
  RBVC_REQUIRE(!pts.empty(), "wolfe: empty point set");
  const std::size_t n = pts.size();

  // Work in the translated frame q_i = pts_i - u.
  std::vector<Vec> q(n);
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = sub(pts[i], u);
    scale = std::max(scale, dot(q[i], q[i]));
  }
  const double eps = tol * scale;

  // Start from the closest single point.
  std::size_t start = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (dot(q[i], q[i]) < dot(q[start], q[start])) start = i;
  }
  std::vector<std::size_t> corral = {start};
  Vec lambda = {1.0};
  Vec x = q[start];

  constexpr std::size_t kMaxMajor = 10'000;
  for (std::size_t major = 0; major < kMaxMajor; ++major) {
    // Optimality: x is the min-norm point iff <x, q_j> >= <x, x> for all j.
    const double xx = dot(x, x);
    std::size_t enter = n;
    double best = xx - eps;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = dot(x, q[j]);
      if (v < best) {
        best = v;
        enter = j;
      }
    }
    if (enter == n) break;
    if (std::find(corral.begin(), corral.end(), enter) != corral.end()) break;
    corral.push_back(enter);
    lambda.push_back(0.0);

    // Minor cycle: move to the affine minimizer of the corral, shrinking the
    // corral whenever the minimizer leaves the simplex.
    for (std::size_t minor = 0; minor < n + 2; ++minor) {
      std::vector<Vec> cpts;
      cpts.reserve(corral.size());
      for (std::size_t idx : corral) cpts.push_back(q[idx]);
      auto alpha_opt = affine_minimizer(cpts, tol);
      if (!alpha_opt) {
        // Degenerate corral (affinely dependent): drop the newest point.
        corral.pop_back();
        lambda.pop_back();
        break;
      }
      const Vec& alpha = *alpha_opt;
      const double inner_tol = 1e-12;
      bool interior = true;
      for (double a : alpha) {
        if (a <= inner_tol) {
          interior = false;
          break;
        }
      }
      if (interior) {
        lambda = alpha;
        break;
      }
      // Line search from lambda toward alpha: largest feasible step.
      double theta = 1.0;
      for (std::size_t i = 0; i < alpha.size(); ++i) {
        if (alpha[i] < inner_tol) {
          const double denom = lambda[i] - alpha[i];
          if (denom > 0.0) theta = std::min(theta, lambda[i] / denom);
        }
      }
      for (std::size_t i = 0; i < lambda.size(); ++i) {
        lambda[i] += theta * (alpha[i] - lambda[i]);
      }
      // Remove points whose weight hit zero.
      for (std::size_t i = lambda.size(); i-- > 0;) {
        if (lambda[i] <= inner_tol) {
          lambda.erase(lambda.begin() + static_cast<std::ptrdiff_t>(i));
          corral.erase(corral.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      if (corral.empty()) {  // numerical safety; cannot normally happen
        corral = {start};
        lambda = {1.0};
        break;
      }
    }

    // Recompute x from the corral weights.
    x = zeros(u.size());
    for (std::size_t i = 0; i < corral.size(); ++i) {
      axpy(lambda[i], q[corral[i]], x);
    }
  }

  HullProjection out;
  out.coeffs = zeros(n);
  for (std::size_t i = 0; i < corral.size(); ++i) {
    out.coeffs[corral[i]] = lambda[i];
  }
  out.point = add(u, x);
  out.distance = norm2(x);
  return out;
}

}  // namespace rbvc::detail
