#include "geometry/workspace.h"

#include "geometry/projection.h"
#include "obs/metrics.h"

namespace rbvc {

GeometryWorkspace::GeometryWorkspace() = default;

const std::vector<std::vector<std::size_t>>& GeometryWorkspace::drop_f_indices(
    std::size_t n, std::size_t f) {
  RBVC_REQUIRE(f < n, "drop_f_indices: need f < n");
  const auto key = std::make_pair(n, f);
  auto it = subsets_.find(key);
  if (it != subsets_.end()) {
    obs::global().counter("geom.workspace.subset_cache.hits").inc();
    return it->second;
  }
  obs::global().counter("geom.workspace.subset_cache.misses").inc();
  return subsets_.emplace(key, k_subsets(n, n - f)).first->second;
}

std::vector<PointView> GeometryWorkspace::drop_f_views(
    const std::vector<Vec>& s, std::size_t f) {
  const auto& idx = drop_f_indices(s.size(), f);
  std::vector<PointView> views;
  views.reserve(idx.size());
  for (const auto& combo : idx) views.emplace_back(s, combo);
  return views;
}

GeometryWorkspace& GeometryWorkspace::local() {
  static thread_local GeometryWorkspace ws;
  return ws;
}

}  // namespace rbvc
