// Per-episode scratch state for the geometry hot path.
//
// A GeometryWorkspace bundles everything the delta*/Gamma/hull kernels want
// to reuse across calls instead of reallocating per query:
//
//   * the drop-f combination index lists (pure function of (n, f), memoized)
//     and PointView subset enumeration built on them,
//   * two IncrementalSolver slots -- a general one for subset-swap warm
//     starts and a dedicated one for the delta* bisection probe,
//   * SpanFrame / vector scratch buffers.
//
// Determinism contract: the workspace never carries solver state across
// public geometry entry points -- each entry point resets the solver it uses
// before the first solve, so results are a pure function of the call's
// arguments (required by the verification-by-recomputation paths and the
// RBVC_JOBS byte-identity contract; see DESIGN.md "LP warm starts").
//
// Workspaces are not thread-safe; use one per thread. `local()` returns a
// thread-local instance for callers without a better scope to hang one on.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "geometry/point_view.h"
#include "lp/simplex.h"

namespace rbvc {

/// Isometric coordinates of a point set within its own affine span
/// (translate by the last point, express in an orthonormal basis). Valid for
/// the L2 paths only: orthogonal projection preserves Euclidean distances
/// inside the span but not other Lp norms.
struct SpanFrame {
  Vec origin;
  std::vector<Vec> basis;   // orthonormal
  std::vector<Vec> coords;  // projected points, dimension basis.size()

  Vec lift(const Vec& c) const {
    Vec x = origin;
    for (std::size_t j = 0; j < basis.size(); ++j) axpy(c[j], basis[j], x);
    return x;
  }
};

class GeometryWorkspace {
 public:
  GeometryWorkspace();
  GeometryWorkspace(const GeometryWorkspace&) = delete;
  GeometryWorkspace& operator=(const GeometryWorkspace&) = delete;

  /// The size-(n-f) combination index lists over {0..n-1} (the T's of the
  /// Gamma/Psi operators), memoized per (n, f). The returned reference is
  /// stable for the workspace's lifetime.
  const std::vector<std::vector<std::size_t>>& drop_f_indices(std::size_t n,
                                                              std::size_t f);

  /// PointViews over the drop-f subsets of `s` (no point copies). The views
  /// borrow `s` and the memoized index lists; they are invalidated by
  /// mutating or destroying `s`.
  std::vector<PointView> drop_f_views(const std::vector<Vec>& s,
                                      std::size_t f);

  /// General warm-start solver slot (subset-swap reuse in gamma_excess).
  lp::IncrementalSolver& solver() { return solver_; }

  /// Dedicated solver slot for the delta* bisection probe, so the probe's
  /// retained basis survives interleaved gamma_excess solves.
  lp::IncrementalSolver& bisect_solver() { return bisect_solver_; }

  /// Reusable SpanFrame storage (delta_star_2's span projection).
  SpanFrame& span_frame() { return frame_; }

  /// Reusable general-purpose vector scratch (mean buffers etc).
  Vec& scratch_vec() { return scratch_; }

  /// A thread-local workspace for callers without a better-scoped one.
  static GeometryWorkspace& local();

 private:
  std::map<std::pair<std::size_t, std::size_t>,
           std::vector<std::vector<std::size_t>>>
      subsets_;
  lp::IncrementalSolver solver_;
  lp::IncrementalSolver bisect_solver_;
  SpanFrame frame_;
  Vec scratch_;
};

}  // namespace rbvc
