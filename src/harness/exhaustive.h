// Exhaustive exploration mode for the property harness: instead of fuzzing
// N seeded episodes, enumerate EVERY schedule and adversary decision of one
// fixed experiment through the bounded model checker (mc/explorer.h).
//
// A passing result with `complete == true` and `stats.truncated_runs == 0`
// is a proof that the oracle holds on that instance over the whole bounded
// decision tree -- which for sync-model experiments (no event bound) means
// every behavior the choice-driven adversary spans. Async instances are cut
// at max_events; pair them with a prefix-sound oracle (rbc_safety_oracle)
// and judge_truncated = true, or accept that the proof covers only the
// bounded prefix space (see docs/MODELCHECK.md).
//
// Violations flow into the exact same counterexample pipeline as fuzzed
// properties: the witness schedule is re-verified outside the explorer,
// minimized by the mode's shrinker, and written as a standard schema-v3
// repro file that RBVC_REPLAY re-executes.
#pragma once

#include <filesystem>
#include <string>

#include "harness/property.h"
#include "mc/explorer.h"

namespace rbvc::harness {

/// One fixed experiment to explore exhaustively. The experiment's
/// record/replay/choices hooks are ignored (the explorer owns them); for
/// sync modes the decision rule must be a serializable SyncRule so the
/// repro can round-trip, exactly as for fuzzed properties.
template <class Runner>
struct ExhaustiveProperty {
  std::string name;  // identifies repro files; [a-zA-Z0-9_-] recommended
  typename Runner::Experiment experiment;
  Oracle<typename Runner::Experiment, typename Runner::Outcome> oracle;
  mc::ExploreOptions options;
  // Judge runs that hit their event bound. Off by default: a truncated run
  // never quiesced, so completion-shaped clauses (totality, liveness) would
  // fire spuriously. Turn on only with a prefix-sound oracle.
  bool judge_truncated = false;
  bool shrink = true;
  std::size_t shrink_budget = 400;  // max candidate re-runs while shrinking
  std::string repro_dir = ".";      // where the repro file is written
};

struct ExhaustiveResult {
  bool passed = true;
  bool complete = false;     // the bounded tree was exhausted (no caps hit)
  mc::ExploreStats stats;
  std::string failure;       // oracle message (empty when passed)
  std::string repro_path;    // written on failure ("" otherwise)
  std::size_t original_len = 0;  // witness schedule entries
  std::size_t shrunk_len = 0;    // after shrinking
};

namespace detail {

/// Whether the outcome hit the experiment's event bound. Async-model
/// experiments expose (max_events, stats.deliveries); sync-model runs are
/// round-bounded by construction and never truncate.
template <class Runner>
bool outcome_truncated(const typename Runner::Experiment& e,
                       const typename Runner::Outcome& out) {
  if constexpr (requires {
                  e.max_events;
                  out.stats.deliveries;
                }) {
    return out.stats.deliveries >= e.max_events;
  } else {
    (void)e;
    (void)out;
    return false;
  }
}

}  // namespace detail

/// Explores every decision path of `prop.experiment` and judges each
/// complete run with the oracle. On a violation, re-verifies the witness
/// through the ordinary replay path, minimizes it, and writes a standard
/// repro file. The reported counterexample is byte-identical at any
/// RBVC_JOBS (the explorer's determinism contract plus the single-threaded
/// minimize tail).
template <class Runner>
ExhaustiveResult check_property_exhaustive(
    const ExhaustiveProperty<Runner>& prop) {
  RBVC_REQUIRE(prop.oracle, "check_property_exhaustive: oracle is required");

  auto run_one = [&prop](mc::ChoiceSource& src) -> mc::RunVerdict {
    typename Runner::Experiment e = prop.experiment;
    e.record = nullptr;
    e.replay = nullptr;
    e.capture_trace = false;
    e.choices = &src;
    const typename Runner::Outcome out = Runner::run(e);
    mc::RunVerdict v;
    v.truncated = detail::outcome_truncated<Runner>(e, out);
    if (!v.truncated || prop.judge_truncated) v.failure = prop.oracle(e, out);
    return v;
  };
  const mc::ExploreResult er = mc::explore(run_one, prop.options);

  ExhaustiveResult r;
  r.stats = er.stats;
  r.complete = er.stats.complete;
  if (!er.found) return r;

  r.passed = false;
  r.failure = er.failure;
  r.original_len = er.witness.size();

  // The witness must reproduce through the ordinary replay machinery (the
  // same path RBVC_REPLAY takes), or the repro we are about to write would
  // be dead on arrival.
  typename Runner::Experiment exp = prop.experiment;
  exp.record = nullptr;
  exp.capture_trace = false;
  exp.choices = nullptr;
  exp.replay = &er.witness;
  {
    const typename Runner::Outcome out = Runner::run(exp);
    std::string refail;
    if (!detail::outcome_truncated<Runner>(exp, out) || prop.judge_truncated) {
      refail = prop.oracle(exp, out);
    }
    RBVC_REQUIRE(!refail.empty(),
                 "check_property_exhaustive: the witness schedule did not "
                 "reproduce the violation outside the explorer");
  }

  // Reuse the fuzz pipeline's minimizer + repro writer. The sync-model
  // minimizer carries exp.replay through its candidates (choice-dependent
  // violations stay reproducible); the async one replays each candidate
  // log directly.
  std::string trace_dump;
  std::string metrics_json;
  const sim::ScheduleLog best = Runner::minimize(
      exp, er.witness, prop.oracle, prop.shrink ? prop.shrink_budget : 0,
      &trace_dump, &metrics_json);
  exp.replay = nullptr;  // serialization-clean again
  r.shrunk_len = best.size();

  Repro<typename Runner::Experiment> rep;
  rep.property = prop.name;
  rep.failure = er.failure;
  rep.experiment = exp;
  rep.schedule = best;
  rep.trace_dump = trace_dump;
  rep.metrics_json = metrics_json;
  const auto path = std::filesystem::absolute(
      std::filesystem::path(prop.repro_dir) /
      ("rbvc_repro_" + prop.name + ".txt"));
  write_repro(path.string(), rep);
  r.repro_path = path.string();
  return r;
}

}  // namespace rbvc::harness
