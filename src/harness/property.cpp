#include "harness/property.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "consensus/verifier.h"

namespace rbvc::harness {

std::size_t fuzz_episodes(std::size_t fallback) {
  const char* env = std::getenv("RBVC_FUZZ_EPISODES");
  if (!env || !*env) return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

AsyncOracle decide_agree_valid_oracle(double eps, double kappa, double p) {
  return [eps, kappa, p](const workload::AsyncExperiment& e,
                         const workload::AsyncOutcome& out) -> std::string {
    if (out.failed || !out.stats.all_decided) {
      return "liveness: some correct process failed or did not decide";
    }
    const std::size_t correct = e.prm.n - e.byzantine_ids.size();
    if (out.decisions.size() != correct) {
      return "liveness: expected " + std::to_string(correct) +
             " decisions, got " + std::to_string(out.decisions.size());
    }
    if (!check_epsilon_agreement(out.decisions, eps)) {
      return "agreement: pairwise decision distance exceeds eps=" +
             std::to_string(eps);
    }
    const double budget =
        std::max(1e-9, input_dependent_delta(out.honest_inputs, kappa, p));
    const double excess =
        delta_p_validity_excess(out.decisions, out.honest_inputs, budget, p);
    if (excess > 1e-5) {
      return "validity: decision leaves the delta-relaxed hull by " +
             std::to_string(excess);
    }
    return "";
  };
}

namespace {

PropertyResult replay_from_env(const AsyncProperty& prop, const char* path) {
  PropertyResult r;
  r.replayed_from_file = true;
  r.episodes = 1;
  const AsyncRepro rep = load_async_repro(path);
  const auto out = replay_async_repro(rep);
  r.failure = prop.oracle(rep.experiment, out);
  r.passed = r.failure.empty();
  r.repro_path = path;
  r.original_len = r.shrunk_len = rep.schedule.size();
  return r;
}

}  // namespace

PropertyResult check_async_property(const AsyncProperty& prop) {
  RBVC_REQUIRE(prop.generate && prop.oracle,
               "check_async_property: generator and oracle are required");
  if (const char* env = std::getenv("RBVC_REPLAY"); env && *env) {
    // Replay mode targets one property; others run their normal episodes
    // so a multi-property binary still exercises the rest of its suite.
    const AsyncRepro rep = load_async_repro(env);
    if (rep.property == prop.name) return replay_from_env(prop, env);
  }

  PropertyResult r;
  const std::size_t episodes =
      prop.episodes ? prop.episodes : fuzz_episodes(kDefaultEpisodes);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    // Per-episode seed independent of previous episodes, so a failing
    // episode index is reproducible in isolation.
    Rng ep_rng(prop.base_seed + 0x9E3779B97F4A7C15ULL * (ep + 1));
    workload::AsyncExperiment exp = prop.generate(ep_rng);
    sim::ScheduleLog log;
    exp.record = &log;
    exp.replay = nullptr;
    const auto out = workload::run_async_experiment(exp);
    const std::string violation = prop.oracle(exp, out);
    if (violation.empty()) continue;

    r.passed = false;
    r.failure = violation;
    r.failing_episode = ep;
    r.episodes = ep + 1;
    r.original_len = log.size();

    workload::AsyncExperiment base = exp;
    base.record = nullptr;
    auto still_fails = [&](const sim::ScheduleLog& cand) {
      workload::AsyncExperiment rexp = base;
      rexp.replay = &cand;
      return !prop.oracle(rexp, workload::run_async_experiment(rexp)).empty();
    };
    sim::ScheduleLog best = log;
    if (prop.shrink && still_fails(log)) {
      best = shrink_schedule(log, still_fails, prop.shrink_budget);
    }
    r.shrunk_len = best.size();

    // One final replay captures the counterexample's trace for the file.
    workload::AsyncExperiment final_exp = base;
    final_exp.replay = &best;
    final_exp.capture_trace = true;
    const auto final_out = workload::run_async_experiment(final_exp);

    AsyncRepro rep;
    rep.property = prop.name;
    rep.failure = violation;
    rep.experiment = base;
    rep.experiment.replay = nullptr;
    rep.experiment.capture_trace = false;
    rep.schedule = best;
    rep.trace_dump = final_out.trace.dump();
    const auto path = std::filesystem::absolute(
        std::filesystem::path(prop.repro_dir) /
        ("rbvc_repro_" + prop.name + ".txt"));
    write_async_repro(path.string(), rep);
    r.repro_path = path.string();
    return r;
  }
  r.episodes = episodes;
  return r;
}

std::string describe(const PropertyResult& r) {
  if (r.passed) {
    return (r.replayed_from_file ? std::string("replayed counterexample: ")
                                 : std::string("property held over ")) +
           std::to_string(r.episodes) +
           (r.replayed_from_file ? " run(s), invariant now holds"
                                 : " episode(s)");
  }
  std::string out = "property FAILED (episode " +
                    std::to_string(r.failing_episode) + "): " + r.failure;
  if (!r.repro_path.empty() && !r.replayed_from_file) {
    out += "\nschedule shrunk " + std::to_string(r.original_len) + " -> " +
           std::to_string(r.shrunk_len) + " entries";
    out += "\nrepro written: " + r.repro_path;
    out += "\nre-run: RBVC_REPLAY=" + r.repro_path +
           " ctest -L fuzz --output-on-failure";
  }
  return out;
}

}  // namespace rbvc::harness
