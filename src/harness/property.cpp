#include "harness/property.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "consensus/verifier.h"
#include "obs/metrics.h"

namespace rbvc::harness {

std::size_t fuzz_episodes(std::size_t fallback) {
  const char* env = std::getenv("RBVC_FUZZ_EPISODES");
  if (!env || !*env) return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

// ---------------------------------------------------------------------------
// Stock oracles.
// ---------------------------------------------------------------------------

namespace {

/// Shared agreement+validity tail of the consensus oracles.
std::string agree_valid(const std::vector<Vec>& decisions,
                        const std::vector<Vec>& honest_inputs, double eps,
                        double kappa, double p) {
  if (!check_epsilon_agreement(decisions, eps)) {
    return "agreement: pairwise decision distance exceeds eps=" +
           std::to_string(eps);
  }
  const double budget =
      std::max(1e-9, input_dependent_delta(honest_inputs, kappa, p));
  const double excess =
      delta_p_validity_excess(decisions, honest_inputs, budget, p);
  if (excess > 1e-5) {
    return "validity: decision leaves the delta-relaxed hull by " +
           std::to_string(excess);
  }
  return "";
}

}  // namespace

AsyncOracle decide_agree_valid_oracle(double eps, double kappa, double p) {
  return [eps, kappa, p](const workload::AsyncExperiment& e,
                         const workload::AsyncOutcome& out) -> std::string {
    if (out.failed || !out.stats.all_decided) {
      return "liveness: some correct process failed or did not decide";
    }
    const std::size_t correct = e.prm.n - e.byzantine_ids.size();
    if (out.decisions.size() != correct) {
      return "liveness: expected " + std::to_string(correct) +
             " decisions, got " + std::to_string(out.decisions.size());
    }
    return agree_valid(out.decisions, out.honest_inputs, eps, kappa, p);
  };
}

Oracle<workload::SyncExperiment, workload::SyncOutcome>
sync_decide_agree_valid_oracle(double eps, double kappa, double p) {
  return [eps, kappa, p](const workload::SyncExperiment& e,
                         const workload::SyncOutcome& out) -> std::string {
    if (out.decision_failed) {
      return "decision rule failed: " + out.failure;
    }
    const std::size_t correct = e.n - e.byzantine_ids.size();
    if (out.decisions.size() != correct) {
      return "liveness: expected " + std::to_string(correct) +
             " decisions, got " + std::to_string(out.decisions.size());
    }
    return agree_valid(out.decisions, out.honest_inputs, eps, kappa, p);
  };
}

Oracle<workload::RbcExperiment, workload::RbcOutcome> rbc_contract_oracle() {
  return [](const workload::RbcExperiment& e,
            const workload::RbcOutcome& out) -> std::string {
    using Key = std::pair<std::size_t, int>;  // (source, instance)
    // Content agreed so far per instance, and who delivered it.
    std::map<Key, std::pair<Vec, std::vector<int>>> content;
    std::map<Key, std::set<std::size_t>> delivered_by;
    for (std::size_t i = 0; i < out.deliveries.size(); ++i) {
      const std::size_t pid = out.correct_ids.at(i);
      std::set<Key> mine;
      for (const auto& d : out.deliveries[i]) {
        const Key key{d.source, d.instance};
        if (!mine.insert(key).second) {
          return "duplicate delivery: process " + std::to_string(pid) +
                 " delivered instance (" + std::to_string(d.source) + "," +
                 std::to_string(d.instance) + ") twice";
        }
        const auto [it, fresh] =
            content.try_emplace(key, d.value, d.extra);
        if (!fresh &&
            (it->second.first != d.value || it->second.second != d.extra)) {
          return "equivocation delivered: correct processes delivered "
                 "different content for instance (" +
                 std::to_string(d.source) + "," + std::to_string(d.instance) +
                 ")";
        }
        delivered_by[key].insert(pid);
      }
    }
    // Totality: an instance delivered anywhere is delivered everywhere.
    for (const auto& [key, who] : delivered_by) {
      if (who.size() != out.correct_ids.size()) {
        return "totality: instance (" + std::to_string(key.first) + "," +
               std::to_string(key.second) + ") delivered by " +
               std::to_string(who.size()) + " of " +
               std::to_string(out.correct_ids.size()) +
               " correct processes";
      }
    }
    // Validity: every correct source's instance 0 delivers its input.
    for (std::size_t i = 0; i < out.correct_ids.size(); ++i) {
      const Key key{out.correct_ids[i], 0};
      const auto it = content.find(key);
      if (it == content.end()) {
        return "validity: correct source " +
               std::to_string(out.correct_ids[i]) +
               "'s broadcast was never delivered";
      }
      if (it->second.first != out.honest_inputs.at(i)) {
        return "validity: correct source " +
               std::to_string(out.correct_ids[i]) +
               "'s broadcast delivered a different value than its input";
      }
    }
    return "";
  };
}

Oracle<workload::RbcExperiment, workload::RbcOutcome> rbc_safety_oracle() {
  return [](const workload::RbcExperiment&,
            const workload::RbcOutcome& out) -> std::string {
    using Key = std::pair<std::size_t, int>;  // (source, instance)
    std::map<Key, std::pair<Vec, std::vector<int>>> content;
    for (std::size_t i = 0; i < out.deliveries.size(); ++i) {
      const std::size_t pid = out.correct_ids.at(i);
      std::set<Key> mine;
      for (const auto& d : out.deliveries[i]) {
        const Key key{d.source, d.instance};
        if (!mine.insert(key).second) {
          return "duplicate delivery: process " + std::to_string(pid) +
                 " delivered instance (" + std::to_string(d.source) + "," +
                 std::to_string(d.instance) + ") twice";
        }
        const auto [it, fresh] = content.try_emplace(key, d.value, d.extra);
        if (!fresh &&
            (it->second.first != d.value || it->second.second != d.extra)) {
          return "equivocation delivered: correct processes delivered "
                 "different content for instance (" +
                 std::to_string(d.source) + "," + std::to_string(d.instance) +
                 ")";
        }
      }
    }
    return "";
  };
}

Oracle<workload::BroadcastExperiment, workload::BroadcastOutcome>
broadcast_agreement_oracle() {
  return [](const workload::BroadcastExperiment& e,
            const workload::BroadcastOutcome& out) -> std::string {
    if (out.resolved.size() != out.correct_ids.size()) {
      return "liveness: expected " + std::to_string(out.correct_ids.size()) +
             " resolved multisets, got " + std::to_string(out.resolved.size());
    }
    for (std::size_t i = 0; i < out.resolved.size(); ++i) {
      if (out.resolved[i].size() != e.n) {
        return "liveness: process " + std::to_string(out.correct_ids[i]) +
               " resolved " + std::to_string(out.resolved[i].size()) +
               " of " + std::to_string(e.n) + " source instances";
      }
    }
    // The interactive-consistency lemma: extracted sets are identical.
    for (std::size_t i = 1; i < out.resolved.size(); ++i) {
      for (std::size_t s = 0; s < e.n; ++s) {
        if (out.resolved[i][s] != out.resolved[0][s]) {
          return "identical-extracted-sets: processes " +
                 std::to_string(out.correct_ids[0]) + " and " +
                 std::to_string(out.correct_ids[i]) +
                 " resolved different values for source " + std::to_string(s);
        }
      }
    }
    // Per-source validity at the correct sources.
    for (std::size_t i = 0; i < out.correct_ids.size(); ++i) {
      if (out.resolved[0][out.correct_ids[i]] != out.honest_inputs.at(i)) {
        return "validity: correct source " +
               std::to_string(out.correct_ids[i]) +
               "'s slot does not hold its input";
      }
    }
    return "";
  };
}

// ---------------------------------------------------------------------------
// Async-model runners (scheduler picks are the nondeterminism record).
// ---------------------------------------------------------------------------

namespace {

/// Shared implementation for AsyncRunner/RbcRunner: record, pick-shrink via
/// replay, final trace-capturing replay. `Run` re-executes an experiment.
template <class Exp, class Out, class Run>
struct PickModel {
  static Out run_recorded(Exp& e, sim::ScheduleLog& log, const Run& run) {
    e.record = &log;
    e.replay = nullptr;
    Out out = run(e);
    e.record = nullptr;
    return out;
  }

  static sim::ScheduleLog minimize(Exp& e, const sim::ScheduleLog& log,
                                   const Oracle<Exp, Out>& oracle,
                                   std::size_t budget, std::string* trace_dump,
                                   std::string* metrics_json,
                                   const Run& run) {
    Exp base = e;
    base.record = nullptr;
    base.replay = nullptr;
    base.choices = nullptr;  // candidates re-run choices from the log itself
    base.capture_trace = false;
    auto still_fails = [&](const sim::ScheduleLog& cand) {
      Exp rexp = base;
      // The candidate log replays both decision kinds: the scheduler pops
      // its kPick entries and the choice-driven adversary (if any) pops the
      // kChoice entries.
      rexp.replay = &cand;
      return !oracle(rexp, run(rexp)).empty();
    };
    sim::ScheduleLog best = log;
    if (budget > 0 && still_fails(log)) {
      best = shrink_schedule(log, still_fails, budget);
    }
    // One final replay captures the counterexample's trace for the file.
    // Zeroing the global registry right before it makes the snapshot cover
    // exactly the minimized failing episode.
    if (metrics_json) obs::global().reset_values();
    Exp fin = base;
    fin.replay = &best;
    fin.capture_trace = true;
    const Out out = run(fin);
    if (trace_dump) *trace_dump = out.trace.dump();
    if (metrics_json) {
      // Timings depend on the machine, not the episode; scrub them so the
      // repro is a deterministic artifact (the RBVC_JOBS byte-identity
      // contract covers this snapshot).
      obs::global().reset_wallclock_values();
      *metrics_json = obs::global().dump_json();
    }
    e = base;
    return best;
  }

  static std::string replay(const Repro<Exp>& rep,
                            const Oracle<Exp, Out>& oracle, const Run& run) {
    Exp rexp = rep.experiment;
    rexp.record = nullptr;
    rexp.replay = &rep.schedule;
    rexp.choices = nullptr;
    rexp.capture_trace = true;
    return oracle(rep.experiment, run(rexp));
  }
};

// ---------------------------------------------------------------------------
// Sync-model runners (deterministic; round checkpoints are a divergence
// detector, minimization edits the experiment itself).
// ---------------------------------------------------------------------------

/// Shared implementation for SyncRunner/DsRunner. Minimization order:
/// collapse the Byzantine strategy to silence, drop faulty ids (the freed
/// slot becomes a zero-input correct process), then zero/halve honest-input
/// coordinates; each accepted candidate must still fail the oracle. The
/// returned log holds the re-recorded checkpoints of the final experiment.
template <class Exp, class Out, class Run>
struct CheckpointModel {
  static Out run_recorded(Exp& e, sim::ScheduleLog& log, const Run& run) {
    e.record = &log;
    Out out = run(e);
    e.record = nullptr;
    return out;
  }

  static sim::ScheduleLog minimize(Exp& e, const sim::ScheduleLog&,
                                   const Oracle<Exp, Out>& oracle,
                                   std::size_t budget, std::string* trace_dump,
                                   std::string* metrics_json,
                                   const Run& run) {
    Exp base = e;
    base.record = nullptr;
    // A caller-set replay log carries through: sync runs are deterministic
    // given (config, adversary choices), so candidates and the final
    // re-record must keep replaying the witness's kChoice entries or a
    // choice-dependent violation would vanish mid-shrink. A live `choices`
    // source must not leak into candidates, though.
    base.choices = nullptr;
    base.capture_trace = false;
    std::size_t attempts_left = budget;
    auto fails = [&](const Exp& cand) {
      return !oracle(cand, run(cand)).empty();
    };
    if (budget > 0 && fails(base)) {
      --attempts_left;
      if (base.strategy != workload::SyncStrategy::kSilent &&
          attempts_left > 0) {
        Exp cand = base;
        cand.strategy = workload::SyncStrategy::kSilent;
        --attempts_left;
        if (fails(cand)) base = cand;
      }
      for (std::size_t i = 0;
           i < base.byzantine_ids.size() && attempts_left > 0;) {
        Exp cand = base;
        const std::size_t id = cand.byzantine_ids[i];
        cand.byzantine_ids.erase(cand.byzantine_ids.begin() + i);
        // The freed slot becomes a correct process; its honest input slots
        // in at the id's rank among the remaining correct ids.
        std::size_t rank = id;
        for (std::size_t b : cand.byzantine_ids) rank -= b < id;
        const std::size_t d =
            cand.honest_inputs.empty() ? 0 : cand.honest_inputs.front().size();
        cand.honest_inputs.insert(cand.honest_inputs.begin() + rank, zeros(d));
        --attempts_left;
        if (fails(cand)) {
          base = cand;
        } else {
          ++i;
        }
      }
      if (attempts_left > 0) {
        auto input_fails = [&](const std::vector<Vec>& inputs) {
          Exp cand = base;
          cand.honest_inputs = inputs;
          return fails(cand);
        };
        base.honest_inputs =
            shrink_inputs(base.honest_inputs, input_fails, attempts_left);
      }
    }
    // Re-record the checkpoints (and trace) of the minimized experiment --
    // they, not the original's, are what a replay must reproduce. Zeroing
    // the global registry first scopes the metrics snapshot to this run.
    if (metrics_json) obs::global().reset_values();
    sim::ScheduleLog rec;
    Exp fin = base;
    fin.record = &rec;
    fin.capture_trace = true;
    const Out out = run(fin);
    if (trace_dump) *trace_dump = out.trace.dump();
    if (metrics_json) {
      // Same scrub as PickModel::minimize: wall-clock values would break
      // the repro's byte-level determinism.
      obs::global().reset_wallclock_values();
      *metrics_json = obs::global().dump_json();
    }
    e = base;
    return rec;
  }

  static std::string replay(const Repro<Exp>& rep,
                            const Oracle<Exp, Out>& oracle, const Run& run) {
    sim::ScheduleLog rerun;
    Exp rexp = rep.experiment;
    rexp.record = &rerun;
    // Replay the recorded adversary choices (no-op for logs without kChoice
    // entries); the re-recorded log must then match the stored one exactly,
    // checkpoints and choices both.
    rexp.replay = &rep.schedule;
    rexp.choices = nullptr;
    rexp.capture_trace = true;
    const Out out = run(rexp);
    const std::string divergence =
        sim::describe_divergence(rep.schedule, rerun);
    if (!divergence.empty()) {
      return "replay did not reproduce the recorded run (mutated repro or "
             "changed code?): " +
             divergence;
    }
    return oracle(rep.experiment, out);
  }
};

constexpr auto kRunAsync = [](const workload::AsyncExperiment& e) {
  return workload::run_async_experiment(e);
};
constexpr auto kRunRbc = [](const workload::RbcExperiment& e) {
  return workload::run_rbc_experiment(e);
};
constexpr auto kRunSync = [](const workload::SyncExperiment& e) {
  return workload::run_sync_experiment(e);
};
constexpr auto kRunDs = [](const workload::BroadcastExperiment& e) {
  return workload::run_broadcast_experiment(e);
};

using AsyncModel = PickModel<workload::AsyncExperiment, workload::AsyncOutcome,
                             decltype(kRunAsync)>;
using RbcModel = PickModel<workload::RbcExperiment, workload::RbcOutcome,
                           decltype(kRunRbc)>;
using SyncModel = CheckpointModel<workload::SyncExperiment,
                                  workload::SyncOutcome, decltype(kRunSync)>;
using DsModel = CheckpointModel<workload::BroadcastExperiment,
                                workload::BroadcastOutcome, decltype(kRunDs)>;

}  // namespace

workload::AsyncOutcome AsyncRunner::run(const Experiment& e) {
  return kRunAsync(e);
}
workload::AsyncOutcome AsyncRunner::run_recorded(Experiment& e,
                                                 sim::ScheduleLog& log) {
  return AsyncModel::run_recorded(e, log, kRunAsync);
}
sim::ScheduleLog AsyncRunner::minimize(
    Experiment& e, const sim::ScheduleLog& log,
    const Oracle<Experiment, Outcome>& o, std::size_t budget,
    std::string* trace_dump, std::string* metrics_json) {
  return AsyncModel::minimize(e, log, o, budget, trace_dump,
                         metrics_json, kRunAsync);
}
Repro<workload::AsyncExperiment> AsyncRunner::load(const std::string& path) {
  return load_async_repro(path);
}
std::string AsyncRunner::replay(const Repro<Experiment>& rep,
                                const Oracle<Experiment, Outcome>& o) {
  return AsyncModel::replay(rep, o, kRunAsync);
}

workload::RbcOutcome RbcRunner::run(const Experiment& e) { return kRunRbc(e); }
workload::RbcOutcome RbcRunner::run_recorded(Experiment& e,
                                             sim::ScheduleLog& log) {
  return RbcModel::run_recorded(e, log, kRunRbc);
}
sim::ScheduleLog RbcRunner::minimize(
    Experiment& e, const sim::ScheduleLog& log,
    const Oracle<Experiment, Outcome>& o, std::size_t budget,
    std::string* trace_dump, std::string* metrics_json) {
  return RbcModel::minimize(e, log, o, budget, trace_dump,
                         metrics_json, kRunRbc);
}
Repro<workload::RbcExperiment> RbcRunner::load(const std::string& path) {
  return load_rbc_repro(path);
}
std::string RbcRunner::replay(const Repro<Experiment>& rep,
                              const Oracle<Experiment, Outcome>& o) {
  return RbcModel::replay(rep, o, kRunRbc);
}

workload::SyncOutcome SyncRunner::run(const Experiment& e) {
  return kRunSync(e);
}
workload::SyncOutcome SyncRunner::run_recorded(Experiment& e,
                                               sim::ScheduleLog& log) {
  return SyncModel::run_recorded(e, log, kRunSync);
}
sim::ScheduleLog SyncRunner::minimize(
    Experiment& e, const sim::ScheduleLog& log,
    const Oracle<Experiment, Outcome>& o, std::size_t budget,
    std::string* trace_dump, std::string* metrics_json) {
  return SyncModel::minimize(e, log, o, budget, trace_dump,
                         metrics_json, kRunSync);
}
Repro<workload::SyncExperiment> SyncRunner::load(const std::string& path) {
  return load_sync_repro(path);
}
std::string SyncRunner::replay(const Repro<Experiment>& rep,
                               const Oracle<Experiment, Outcome>& o) {
  return SyncModel::replay(rep, o, kRunSync);
}

workload::BroadcastOutcome DsRunner::run(const Experiment& e) {
  return kRunDs(e);
}
workload::BroadcastOutcome DsRunner::run_recorded(Experiment& e,
                                                  sim::ScheduleLog& log) {
  return DsModel::run_recorded(e, log, kRunDs);
}
sim::ScheduleLog DsRunner::minimize(
    Experiment& e, const sim::ScheduleLog& log,
    const Oracle<Experiment, Outcome>& o, std::size_t budget,
    std::string* trace_dump, std::string* metrics_json) {
  return DsModel::minimize(e, log, o, budget, trace_dump,
                         metrics_json, kRunDs);
}
Repro<workload::BroadcastExperiment> DsRunner::load(const std::string& path) {
  return load_ds_repro(path);
}
std::string DsRunner::replay(const Repro<Experiment>& rep,
                             const Oracle<Experiment, Outcome>& o) {
  return DsModel::replay(rep, o, kRunDs);
}

std::string describe(const PropertyResult& r) {
  if (r.passed) {
    return (r.replayed_from_file ? std::string("replayed counterexample: ")
                                 : std::string("property held over ")) +
           std::to_string(r.episodes) +
           (r.replayed_from_file ? " run(s), invariant now holds"
                                 : " episode(s)");
  }
  std::string out = "property FAILED (episode " +
                    std::to_string(r.failing_episode) + "): " + r.failure;
  if (!r.repro_path.empty() && !r.replayed_from_file) {
    out += "\nschedule shrunk " + std::to_string(r.original_len) + " -> " +
           std::to_string(r.shrunk_len) + " entries";
    out += "\nrepro written: " + r.repro_path;
    out += "\nre-run: RBVC_REPLAY=" + r.repro_path +
           " ctest -L fuzz --output-on-failure";
  }
  return out;
}

}  // namespace rbvc::harness
