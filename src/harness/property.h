// Property-test driver for asynchronous consensus runs: wraps an
// (experiment generator, invariant oracle) pair, runs N seeded episodes
// with schedule recording on, and on the first violation shrinks the
// failing schedule and writes a self-contained repro file. Setting
// RBVC_REPLAY=<file> re-executes that exact counterexample instead of
// fuzzing; RBVC_FUZZ_EPISODES scales episode counts for nightly sweeps.
#pragma once

#include <functional>
#include <string>

#include "harness/repro.h"
#include "harness/shrinker.h"

namespace rbvc::harness {

/// Invariant oracle: returns "" when the outcome is acceptable, otherwise a
/// one-line description of the violation. Must be deterministic.
using AsyncOracle = std::function<std::string(
    const workload::AsyncExperiment&, const workload::AsyncOutcome&)>;

/// Default episode count when neither the property nor the environment
/// overrides it -- small so tier-1 ctest stays fast.
inline constexpr std::size_t kDefaultEpisodes = 8;

struct AsyncProperty {
  std::string name;  // identifies repro files; [a-zA-Z0-9_-] recommended
  std::function<workload::AsyncExperiment(Rng&)> generate;
  AsyncOracle oracle;
  std::size_t episodes = 0;  // 0 = fuzz_episodes(kDefaultEpisodes)
  std::uint64_t base_seed = 20260806;
  bool shrink = true;
  std::size_t shrink_budget = 400;  // max candidate replays while shrinking
  std::string repro_dir = ".";      // where the repro file is written
};

struct PropertyResult {
  bool passed = true;
  bool replayed_from_file = false;  // RBVC_REPLAY path was taken
  std::size_t episodes = 0;         // episodes actually executed
  std::size_t failing_episode = 0;  // index of the first failure
  std::string failure;              // oracle message (empty when passed)
  std::string repro_path;           // written on failure ("" otherwise)
  std::size_t original_len = 0;     // recorded schedule entries
  std::size_t shrunk_len = 0;       // after shrinking (<= original_len)
};

/// RBVC_FUZZ_EPISODES as a positive integer, else `fallback`.
std::size_t fuzz_episodes(std::size_t fallback);

/// The standard oracle: every correct process decides, decisions are
/// eps-agreeing, and they satisfy the (delta,p)-relaxed validity budget
/// delta = kappa * honest input diameter (cf. consensus/verifier.h).
AsyncOracle decide_agree_valid_oracle(double eps, double kappa,
                                      double p = 2.0);

/// Runs the property. If RBVC_REPLAY names a repro file whose `property`
/// field matches `prop.name`, that single counterexample is re-executed
/// instead of fuzzing (episodes = 1, replayed_from_file = true).
PropertyResult check_async_property(const AsyncProperty& prop);

/// Human-readable report, including the one-line RBVC_REPLAY re-run hint
/// when a repro file was written. Suitable for gtest failure messages.
std::string describe(const PropertyResult& r);

}  // namespace rbvc::harness
