// Protocol-agnostic property-test driver: wraps an (experiment generator,
// invariant oracle) pair, runs N seeded episodes with nondeterminism
// recording on, and on the first violation minimizes the counterexample and
// writes a self-contained repro file (schema v3, see harness/repro.h)
// embedding the minimized episode's metrics snapshot (obs/metrics.h).
//
// The engine is one template, `check_property<Runner>`, instantiated for
// four episode runners:
//   AsyncRunner -- consensus over the async engine; the schedule log holds
//                  scheduler picks, replay re-executes them, and shrinking
//                  minimizes the pick sequence (harness/shrinker.h).
//   RbcRunner   -- standalone Bracha reliable broadcast, same async
//                  machinery with a broadcast-contract oracle.
//   SyncRunner  -- lockstep consensus (EIG or Dolev-Strong backend). Sync
//                  runs are deterministic given the config, so the log
//                  holds round checkpoints that act as divergence detectors
//                  on replay; shrinking collapses the Byzantine strategy,
//                  drops faulty ids, and zeroes input coordinates instead
//                  of editing scheduler picks.
//   DsRunner    -- standalone Dolev-Strong broadcast (sync model), with an
//                  identical-extracted-sets oracle.
//
// Setting RBVC_REPLAY=<file> re-executes that exact counterexample (any
// mode) instead of fuzzing; RBVC_FUZZ_EPISODES scales episode counts for
// nightly sweeps.
//
// Episodes fan out across the work-stealing pool (exec/parallel_executor.h)
// when RBVC_JOBS (default: hardware_concurrency) exceeds 1, under a strict
// determinism contract: results are bit-identical to a serial run. Each
// episode's RNG stream is seed_sequence(base_seed, episode_idx) -- no
// shared generator state -- the reported failure is always the LOWEST
// failing episode index regardless of completion order, and the failing
// episode is then re-executed, minimized, and written out on the calling
// thread alone, so the repro file (schedule, trace, metrics snapshot) is
// byte-identical at any job count. generate/oracle must therefore be
// thread-safe in addition to deterministic; every stock oracle and all
// in-repo generators are (stateless closures over the passed-in Rng).
//
// Setting RBVC_WORKERS=<n> (n > 1) escalates the fan-out one level: the
// sweep forks n worker processes (each running its own RBVC_JOBS-wide
// pool) and a coordinator shards the episode range across them
// (fleet/spawn.h, docs/FLEET.md). The same determinism contract holds
// across processes: the verdict is the globally lowest failing episode,
// the failure tail runs via the identical detail::failure_tail code
// inside the worker that found it, and the repro file the coordinator
// writes is byte-identical to a single-process run at any worker count.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>

#include "exec/parallel_executor.h"
#include "fleet/spawn.h"
#include "harness/repro.h"
#include "harness/shrinker.h"
#include "obs/events.h"
#include "sim/rng.h"

namespace rbvc::harness {

/// Invariant oracle: returns "" when the outcome is acceptable, otherwise a
/// one-line description of the violation. Must be deterministic.
template <class ExperimentT, class OutcomeT>
using Oracle = std::function<std::string(const ExperimentT&, const OutcomeT&)>;

/// Default episode count when neither the property nor the environment
/// overrides it -- small so tier-1 ctest stays fast.
inline constexpr std::size_t kDefaultEpisodes = 8;

/// A property over one episode runner. `generate` draws a random experiment,
/// `oracle` judges its outcome. Sync/ds experiments must use a serializable
/// SyncRule (not a raw DecisionFn closure) so the repro can round-trip.
template <class Runner>
struct Property {
  std::string name;  // identifies repro files; [a-zA-Z0-9_-] recommended
  std::function<typename Runner::Experiment(Rng&)> generate;
  Oracle<typename Runner::Experiment, typename Runner::Outcome> oracle;
  std::size_t episodes = 0;  // 0 = fuzz_episodes(kDefaultEpisodes)
  std::uint64_t base_seed = 20260806;
  bool shrink = true;
  std::size_t shrink_budget = 400;  // max candidate re-runs while shrinking
  std::string repro_dir = ".";      // where the repro file is written
};

struct PropertyResult {
  bool passed = true;
  bool replayed_from_file = false;  // RBVC_REPLAY path was taken
  std::size_t episodes = 0;         // episodes actually executed
  std::size_t failing_episode = 0;  // index of the first failure
  std::string failure;              // oracle message (empty when passed)
  std::string repro_path;           // written on failure ("" otherwise)
  std::size_t original_len = 0;     // recorded schedule entries
  std::size_t shrunk_len = 0;       // after shrinking
};

/// RBVC_FUZZ_EPISODES as a positive integer, else `fallback`.
std::size_t fuzz_episodes(std::size_t fallback);

// ---------------------------------------------------------------------------
// Episode runners. Each binds an experiment/outcome pair to a ReproMode and
// supplies the three mode-specific steps of the engine: a recorded run, a
// counterexample minimizer, and a repro replay. The minimizer leaves the
// experiment serialization-clean (record/replay hooks null, trace capture
// off), returns the schedule to embed in the repro, and snapshots the
// global metrics registry around its final replay so the repro carries the
// minimized episode's telemetry (`metrics_json`); `replay` returns the
// failure message for a re-executed repro ("" = invariant now holds), which
// for deterministic runners includes checkpoint-divergence detection.
// ---------------------------------------------------------------------------

struct AsyncRunner {
  using Experiment = workload::AsyncExperiment;
  using Outcome = workload::AsyncOutcome;
  static constexpr ReproMode kMode = ReproMode::kAsync;
  static Outcome run(const Experiment& e);  // one plain episode, as given
  static Outcome run_recorded(Experiment& e, sim::ScheduleLog& log);
  static sim::ScheduleLog minimize(Experiment& e, const sim::ScheduleLog& log,
                                   const Oracle<Experiment, Outcome>& oracle,
                                   std::size_t budget, std::string* trace_dump,
                                   std::string* metrics_json);
  static Repro<Experiment> load(const std::string& path);
  static std::string replay(const Repro<Experiment>& rep,
                            const Oracle<Experiment, Outcome>& oracle);
};

struct SyncRunner {
  using Experiment = workload::SyncExperiment;
  using Outcome = workload::SyncOutcome;
  static constexpr ReproMode kMode = ReproMode::kSync;
  static Outcome run(const Experiment& e);  // one plain episode, as given
  static Outcome run_recorded(Experiment& e, sim::ScheduleLog& log);
  static sim::ScheduleLog minimize(Experiment& e, const sim::ScheduleLog& log,
                                   const Oracle<Experiment, Outcome>& oracle,
                                   std::size_t budget, std::string* trace_dump,
                                   std::string* metrics_json);
  static Repro<Experiment> load(const std::string& path);
  static std::string replay(const Repro<Experiment>& rep,
                            const Oracle<Experiment, Outcome>& oracle);
};

struct RbcRunner {
  using Experiment = workload::RbcExperiment;
  using Outcome = workload::RbcOutcome;
  static constexpr ReproMode kMode = ReproMode::kRbc;
  static Outcome run(const Experiment& e);  // one plain episode, as given
  static Outcome run_recorded(Experiment& e, sim::ScheduleLog& log);
  static sim::ScheduleLog minimize(Experiment& e, const sim::ScheduleLog& log,
                                   const Oracle<Experiment, Outcome>& oracle,
                                   std::size_t budget, std::string* trace_dump,
                                   std::string* metrics_json);
  static Repro<Experiment> load(const std::string& path);
  static std::string replay(const Repro<Experiment>& rep,
                            const Oracle<Experiment, Outcome>& oracle);
};

struct DsRunner {
  using Experiment = workload::BroadcastExperiment;
  using Outcome = workload::BroadcastOutcome;
  static constexpr ReproMode kMode = ReproMode::kDs;
  static Outcome run(const Experiment& e);  // one plain episode, as given
  static Outcome run_recorded(Experiment& e, sim::ScheduleLog& log);
  static sim::ScheduleLog minimize(Experiment& e, const sim::ScheduleLog& log,
                                   const Oracle<Experiment, Outcome>& oracle,
                                   std::size_t budget, std::string* trace_dump,
                                   std::string* metrics_json);
  static Repro<Experiment> load(const std::string& path);
  static std::string replay(const Repro<Experiment>& rep,
                            const Oracle<Experiment, Outcome>& oracle);
};

using AsyncProperty = Property<AsyncRunner>;
using SyncProperty = Property<SyncRunner>;
using RbcProperty = Property<RbcRunner>;
using DsProperty = Property<DsRunner>;

// ---------------------------------------------------------------------------
// Stock oracles.
// ---------------------------------------------------------------------------

/// Shorthand for the async oracle signature.
using AsyncOracle = Oracle<workload::AsyncExperiment, workload::AsyncOutcome>;

/// The standard async oracle: every correct process decides, decisions are
/// eps-agreeing, and they satisfy the (delta,p)-relaxed validity budget
/// delta = kappa * honest input diameter (cf. consensus/verifier.h).
AsyncOracle decide_agree_valid_oracle(double eps, double kappa,
                                      double p = 2.0);

/// Sync-model counterpart: the decision rule succeeds at every correct
/// process, decisions eps-agree, and they satisfy the same relaxed-validity
/// budget as the async oracle.
Oracle<workload::SyncExperiment, workload::SyncOutcome>
sync_decide_agree_valid_oracle(double eps, double kappa, double p = 2.0);

/// Bracha RBC contract: no correct process delivers twice for one
/// (source, instance); any two correct deliveries for the same instance
/// carry identical content (no equivocation); every instance delivered
/// anywhere is delivered everywhere (totality); and a correct source's
/// broadcast delivers exactly its input at every correct process.
Oracle<workload::RbcExperiment, workload::RbcOutcome> rbc_contract_oracle();

/// Safety-only slice of the RBC contract: no duplicate deliveries, no
/// delivered equivocation. Unlike totality/validity these clauses are
/// prefix-sound -- true of a complete run iff true of every prefix -- so an
/// event-bounded (truncated) execution can be judged without false alarms.
/// This is the oracle exhaustive exploration should use on async instances,
/// where runs are cut at max_events (see harness/exhaustive.h).
Oracle<workload::RbcExperiment, workload::RbcOutcome> rbc_safety_oracle();

/// Dolev-Strong broadcast contract: every correct process resolves the full
/// multiset, the extracted multisets are identical across correct processes
/// (the interactive-consistency lemma), and the slot of each correct source
/// holds exactly that source's input.
Oracle<workload::BroadcastExperiment, workload::BroadcastOutcome>
broadcast_agreement_oracle();

/// Human-readable report, including the one-line RBVC_REPLAY re-run hint
/// when a repro file was written. Suitable for gtest failure messages.
std::string describe(const PropertyResult& r);

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

namespace detail {

/// One detection-phase episode: generate from seed_sequence(base_seed, ep),
/// run recorded, judge. Returns true when the property FAILS. Shared by the
/// in-process find_first sweep and fleet workers so both phases execute the
/// exact same code on an episode index.
template <class Runner>
bool episode_fails(const Property<Runner>& prop, std::size_t ep) {
  // Flight-recorder markers only: events never influence generation,
  // scheduling, or the repro file, so the RBVC_JOBS byte-identity
  // contract is untouched (pinned by tests/events_test.cpp).
  obs::events::emit(obs::events::Type::kEpisodeStart,
                    static_cast<std::int32_t>(ep));
  Rng ep_rng(seed_sequence(prop.base_seed, ep));
  typename Runner::Experiment exp = prop.generate(ep_rng);
  sim::ScheduleLog log;
  const auto out = Runner::run_recorded(exp, log);
  const bool failed = !prop.oracle(exp, out).empty();
  obs::events::emit(obs::events::Type::kEpisodeEnd,
                    static_cast<std::int32_t>(ep), failed ? 1 : 0);
  return failed;
}

/// What the failure tail produces for one failing episode. `repro_text` is
/// the complete serialized repro file -- the caller (or, in fleet mode, the
/// coordinator in another process) writes it verbatim, which is what makes
/// multi-process repro files byte-identical to single-process ones.
struct FailureTail {
  std::string failure;     // oracle message
  std::string repro_text;  // serialize_repro() of the minimized episode
  std::size_t original_len = 0;
  std::size_t shrunk_len = 0;
};

/// The failure tail: re-generate episode `failing` from its seed, re-run
/// recorded, minimize, serialize. Always runs single-threaded on the
/// calling thread, so the minimizer's replays and the metrics snapshot
/// embedded in the repro are identical at any job count. (The episode ran
/// once in the detection phase, discarded -- one duplicate run is noise
/// next to the shrink budget.)
template <class Runner>
FailureTail failure_tail(const Property<Runner>& prop, std::size_t failing) {
  Rng ep_rng(seed_sequence(prop.base_seed, failing));
  typename Runner::Experiment exp = prop.generate(ep_rng);
  sim::ScheduleLog log;
  const auto out = Runner::run_recorded(exp, log);
  const std::string violation = prop.oracle(exp, out);
  RBVC_REQUIRE(!violation.empty(),
               "check_property: episode " + std::to_string(failing) +
                   " failed in the detection phase but passed when re-run; "
                   "generate/oracle must be deterministic functions of the "
                   "episode seed");

  FailureTail t;
  t.failure = violation;
  t.original_len = log.size();

  std::string trace_dump;
  std::string metrics_json;
  const sim::ScheduleLog best = Runner::minimize(
      exp, log, prop.oracle, prop.shrink ? prop.shrink_budget : 0, &trace_dump,
      &metrics_json);
  t.shrunk_len = best.size();

  Repro<typename Runner::Experiment> rep;
  rep.property = prop.name;
  rep.failure = violation;
  rep.experiment = exp;  // minimize() left it serialization-clean
  rep.schedule = best;
  rep.trace_dump = trace_dump;
  rep.metrics_json = metrics_json;
  t.repro_text = serialize_repro(rep);
  return t;
}

/// Where the repro file for `prop` goes (same path in every execution mode).
template <class Runner>
std::string repro_file_path(const Property<Runner>& prop) {
  return std::filesystem::absolute(std::filesystem::path(prop.repro_dir) /
                                   ("rbvc_repro_" + prop.name + ".txt"))
      .string();
}

/// Fleet mode: fork `workers` processes and shard the sweep across them
/// (fleet/spawn.h). The workers run detail::episode_fails for detection and
/// detail::failure_tail for the tail -- the same code the in-process path
/// runs -- and the coordinator's lowest-index merge plus verbatim repro
/// write keep the result byte-identical to the in-process sweep.
template <class Runner>
PropertyResult check_property_fleet(const Property<Runner>& prop,
                                    std::size_t episodes,
                                    std::size_t workers) {
  fleet::SweepConfig cfg;
  cfg.episodes = episodes;
  cfg.workers = workers;

  fleet::WorkerJob job;
  job.episode = [&prop](std::size_t ep) {
    return episode_fails(prop, ep);
  };
  job.failure_report = [&prop](std::size_t failing) {
    const FailureTail t = failure_tail(prop, failing);
    fleet::FailureReport rep;
    rep.episode = failing;
    rep.original_len = t.original_len;
    rep.shrunk_len = t.shrunk_len;
    rep.message = t.failure;
    rep.repro_text = t.repro_text;
    return rep;
  };

  const fleet::SweepOutcome sw = fleet::run_forked_sweep(cfg, job);

  PropertyResult r;
  r.episodes = static_cast<std::size_t>(sw.episodes);
  if (sw.failed) {
    r.passed = false;
    r.failure = sw.failure;
    r.failing_episode = static_cast<std::size_t>(sw.failing_episode);
    r.original_len = static_cast<std::size_t>(sw.original_len);
    r.shrunk_len = static_cast<std::size_t>(sw.shrunk_len);
    const std::string path = repro_file_path(prop);
    write_repro_text(path, sw.repro_text);
    r.repro_path = path;
  }
  return r;
}

}  // namespace detail

/// Runs the property. If RBVC_REPLAY names a repro file whose `property`
/// field matches `prop.name`, that single counterexample is re-executed
/// instead of fuzzing (episodes = 1, replayed_from_file = true); the file's
/// mode must match the runner's, else invalid_argument. If RBVC_WORKERS
/// exceeds 1, the sweep runs in fleet mode (multi-process fan-out; see the
/// header comment) with an identical verdict and repro file.
template <class Runner>
PropertyResult check_property(const Property<Runner>& prop) {
  RBVC_REQUIRE(prop.generate && prop.oracle,
               "check_property: generator and oracle are required");
  if (const char* env = std::getenv("RBVC_REPLAY"); env && *env) {
    // Replay mode targets one property; others run their normal episodes
    // so a multi-property binary still exercises the rest of its suite.
    const ReproInfo info = peek_repro_file(env);
    if (info.property == prop.name) {
      RBVC_REQUIRE(info.mode == Runner::kMode,
                   std::string("RBVC_REPLAY: repro file is mode `") +
                       to_string(info.mode) + "` but property `" + prop.name +
                       "` runs mode `" + to_string(Runner::kMode) + "`");
      PropertyResult r;
      r.replayed_from_file = true;
      r.episodes = 1;
      const auto rep = Runner::load(env);
      r.failure = Runner::replay(rep, prop.oracle);
      r.passed = r.failure.empty();
      r.repro_path = env;
      r.original_len = r.shrunk_len = rep.schedule.size();
      return r;
    }
  }

  const std::size_t episodes =
      prop.episodes ? prop.episodes : fuzz_episodes(kDefaultEpisodes);

  // Fleet mode forks before any pool exists in this process, so workers
  // inherit a registry without exec.* keys and mint them exactly as a
  // fresh single-process run would.
  if (const std::size_t workers = fleet::env_workers();
      workers > 1 && episodes > 1) {
    return detail::check_property_fleet(prop, episodes, workers);
  }

  PropertyResult r;
  // Detection phase: find the lowest failing episode index. Each episode is
  // self-contained -- its RNG stream is seed_sequence(base_seed, ep) -- so
  // with >1 job the pool's find_first fans episodes across workers and still
  // returns exactly the index a serial scan would (every index below the hit
  // is guaranteed to have run and passed).
  //
  // The pool is constructed at any width (width 1 spawns no threads and
  // runs inline, in index order) so the exec.* metric entries -- and hence
  // the key set of any registry snapshot -- never depend on the job count.
  exec::ParallelExecutor pool(
      std::min<std::size_t>(exec::default_jobs(), episodes ? episodes : 1));
  const std::size_t failing = pool.find_first(episodes, [&prop](std::size_t ep) {
    return detail::episode_fails(prop, ep);
  });
  if (failing == exec::kNoIndex) {
    r.episodes = episodes;
    return r;
  }

  const detail::FailureTail t = detail::failure_tail(prop, failing);
  r.passed = false;
  r.failure = t.failure;
  r.failing_episode = failing;
  r.episodes = failing + 1;
  r.original_len = t.original_len;
  r.shrunk_len = t.shrunk_len;
  const std::string path = detail::repro_file_path(prop);
  write_repro_text(path, t.repro_text);
  r.repro_path = path;
  return r;
}

}  // namespace rbvc::harness
