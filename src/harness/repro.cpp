#include "harness/repro.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

#include "obs/metrics.h"
#include "sim/trace.h"

namespace rbvc::harness {

namespace {

constexpr const char* kHeaderV3 = "rbvc-repro v3";
constexpr const char* kHeaderV2 = "rbvc-repro v2";        // no metrics line
constexpr const char* kHeaderV1 = "rbvc-async-repro v1";  // legacy, async

std::string fmt_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string fmt_vec(const Vec& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ' ';
    out += fmt_double(v[i]);
  }
  return out;
}

std::vector<double> parse_doubles(const std::string& s) {
  std::vector<double> out;
  std::istringstream in(s);
  double x;
  while (in >> x) out.push_back(x);
  return out;
}

std::vector<std::size_t> parse_sizes(const std::string& s) {
  std::vector<std::size_t> out;
  std::istringstream in(s);
  std::uint64_t x;
  while (in >> x) out.push_back(static_cast<std::size_t>(x));
  return out;
}

std::uint64_t parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

int parse_header_version(const std::string& line) {
  if (line == kHeaderV3) return 3;
  if (line == kHeaderV2) return 2;
  if (line == kHeaderV1) return 1;
  throw invalid_argument("repro: unsupported header `" + line +
                         "` (this build reads `" + kHeaderV3 + "`, `" +
                         kHeaderV2 + "`, and legacy `" + kHeaderV1 + "`)");
}

// ---------------------------------------------------------------------------
// Envelope: everything outside the mode-specific experiment fields.
// ---------------------------------------------------------------------------

/// Per-mode experiment field reader: returns true when the key was
/// consumed. Unconsumed keys are ignored for forward compatibility.
template <class ExperimentT>
using FieldReader =
    std::function<bool(ExperimentT&, const std::string&, const std::string&)>;

template <class ExperimentT>
Repro<ExperimentT> parse_envelope(const std::string& text, ReproMode want,
                                  const FieldReader<ExperimentT>& field) {
  Repro<ExperimentT> r;
  std::istringstream in(text);
  std::string line;
  RBVC_REQUIRE(std::getline(in, line), "repro: empty input");
  const int version = parse_header_version(line);
  ReproMode mode = ReproMode::kAsync;
  bool mode_seen = version == 1;  // v1 files are implicitly async
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    const std::string key = line.substr(0, sp);
    const std::string val =
        sp == std::string::npos ? std::string() : line.substr(sp + 1);
    if (key == "mode") {
      const auto parsed = parse_repro_mode(val);
      RBVC_REQUIRE(parsed.has_value(), "repro: unknown mode `" + val + "`");
      mode = *parsed;
      mode_seen = true;
    } else if (key == "property") {
      r.property = val;
    } else if (key == "failure") {
      r.failure = sim::unescape_detail(val);
    } else if (key == "schedule") {
      r.schedule = sim::ScheduleLog::parse(val);
    } else if (key == "trace") {
      r.trace_dump = sim::unescape_detail(val);
    } else if (key == "metrics") {
      r.metrics_json = sim::unescape_detail(val);
      // Validate eagerly: a corrupt metrics snapshot should fail the load
      // with a line-level message, not blow up whoever dumps it later.
      // Unknown metric *names* are fine (forward compatibility); malformed
      // JSON or an unknown schema version is not.
      try {
        (void)obs::Registry::parse(r.metrics_json);
      } catch (const std::exception& ex) {
        throw invalid_argument(std::string("repro: bad metrics line: ") +
                               ex.what());
      }
    } else {
      field(r.experiment, key, val);  // unknown keys: skipped
    }
  }
  RBVC_REQUIRE(mode_seen, "repro: mode-tagged file is missing its `mode` line");
  RBVC_REQUIRE(mode == want,
               std::string("repro: file mode is `") + to_string(mode) +
                   "`, this parser expects `" + to_string(want) + "`");
  return r;
}

template <class ExperimentT>
std::string serialize_envelope(const Repro<ExperimentT>& r, ReproMode mode,
                               const std::string& experiment_fields) {
  std::string out;
  out += kHeaderV3;
  out += '\n';
  out += std::string("mode ") + to_string(mode) + "\n";
  out += "property " + r.property + "\n";
  out += "failure " + sim::escape_detail(r.failure) + "\n";
  out += experiment_fields;
  out += "schedule " + r.schedule.serialize() + "\n";
  if (!r.trace_dump.empty()) {
    out += "trace " + sim::escape_detail(r.trace_dump) + "\n";
  }
  if (!r.metrics_json.empty()) {
    out += "metrics " + sim::escape_detail(r.metrics_json) + "\n";
  }
  return out;
}

std::string common_tail(const std::vector<std::size_t>& byzantine,
                        const std::vector<Vec>& inputs) {
  std::string out;
  if (!byzantine.empty()) {
    out += "byzantine";
    for (std::size_t id : byzantine) out += " " + std::to_string(id);
    out += '\n';
  }
  for (const Vec& v : inputs) out += "input " + fmt_vec(v) + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Async experiment fields (the v1 key set, unchanged).
// ---------------------------------------------------------------------------

std::string async_fields(const workload::AsyncExperiment& e) {
  std::string out;
  out += "n " + std::to_string(e.prm.n) + "\n";
  out += "f " + std::to_string(e.prm.f) + "\n";
  out += "rounds " + std::to_string(e.prm.rounds) + "\n";
  out += "rule " + std::to_string(static_cast<int>(e.prm.rule)) + "\n";
  out += "use_witness " + std::to_string(e.prm.use_witness ? 1 : 0) + "\n";
  out += "quorum_override " + std::to_string(e.prm.quorum_override) + "\n";
  out += "tol " + fmt_double(e.prm.tol) + "\n";
  out += "minimax " + std::to_string(e.prm.minimax.iters) + " " +
         std::to_string(e.prm.minimax.polish_iters) + " " +
         fmt_double(e.prm.minimax.tol) + " " + fmt_double(e.prm.minimax.p) +
         "\n";
  out += "d " + std::to_string(e.d) + "\n";
  out += "strategy " + std::to_string(static_cast<int>(e.strategy)) + "\n";
  out += "scheduler " + std::to_string(static_cast<int>(e.scheduler)) + "\n";
  out += "seed " + std::to_string(e.seed) + "\n";
  out += "max_events " + std::to_string(e.max_events) + "\n";
  out += common_tail(e.byzantine_ids, e.honest_inputs);
  return out;
}

bool async_field(workload::AsyncExperiment& e, const std::string& key,
                 const std::string& val) {
  if (key == "n") {
    e.prm.n = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "f") {
    e.prm.f = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "rounds") {
    e.prm.rounds = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "rule") {
    e.prm.rule = static_cast<consensus::AsyncAveragingProcess::Round0Rule>(
        parse_u64(val));
  } else if (key == "use_witness") {
    e.prm.use_witness = parse_u64(val) != 0;
  } else if (key == "quorum_override") {
    e.prm.quorum_override = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "tol") {
    e.prm.tol = parse_doubles(val).at(0);
  } else if (key == "minimax") {
    const auto fields = parse_doubles(val);
    RBVC_REQUIRE(fields.size() == 4, "async repro: bad minimax line");
    e.prm.minimax.iters = static_cast<std::size_t>(fields[0]);
    e.prm.minimax.polish_iters = static_cast<std::size_t>(fields[1]);
    e.prm.minimax.tol = fields[2];
    e.prm.minimax.p = fields[3];
  } else if (key == "d") {
    e.d = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "strategy") {
    e.strategy = static_cast<workload::AsyncStrategy>(parse_u64(val));
  } else if (key == "scheduler") {
    e.scheduler = static_cast<workload::SchedulerKind>(parse_u64(val));
  } else if (key == "seed") {
    e.seed = parse_u64(val);
  } else if (key == "max_events") {
    e.max_events = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "byzantine") {
    e.byzantine_ids = parse_sizes(val);
  } else if (key == "input") {
    e.honest_inputs.push_back(parse_doubles(val));
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Sync experiment fields.
// ---------------------------------------------------------------------------

std::string sync_fields(const workload::SyncExperiment& e) {
  RBVC_REQUIRE(e.rule != workload::SyncRule::kCustom,
               "sync repro: a custom DecisionFn closure cannot be "
               "serialized; set SyncExperiment::rule instead");
  std::string out;
  out += "n " + std::to_string(e.n) + "\n";
  out += "f " + std::to_string(e.f) + "\n";
  out += "strategy " + std::to_string(static_cast<int>(e.strategy)) + "\n";
  out += "backend " + std::to_string(static_cast<int>(e.backend)) + "\n";
  out += "rule " + std::to_string(static_cast<int>(e.rule)) + "\n";
  out += "k " + std::to_string(e.k) + "\n";
  out += "validate_chains " + std::to_string(e.validate_chains ? 1 : 0) +
         "\n";
  out += "seed " + std::to_string(e.seed) + "\n";
  out += common_tail(e.byzantine_ids, e.honest_inputs);
  return out;
}

bool sync_field(workload::SyncExperiment& e, const std::string& key,
                const std::string& val) {
  if (key == "n") {
    e.n = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "f") {
    e.f = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "strategy") {
    e.strategy = static_cast<workload::SyncStrategy>(parse_u64(val));
  } else if (key == "backend") {
    e.backend = static_cast<workload::SyncBackend>(parse_u64(val));
  } else if (key == "rule") {
    e.rule = static_cast<workload::SyncRule>(parse_u64(val));
  } else if (key == "k") {
    e.k = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "validate_chains") {
    e.validate_chains = parse_u64(val) != 0;
  } else if (key == "seed") {
    e.seed = parse_u64(val);
  } else if (key == "byzantine") {
    e.byzantine_ids = parse_sizes(val);
  } else if (key == "input") {
    e.honest_inputs.push_back(parse_doubles(val));
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// RBC experiment fields.
// ---------------------------------------------------------------------------

std::string rbc_fields(const workload::RbcExperiment& e) {
  std::string out;
  out += "n " + std::to_string(e.n) + "\n";
  out += "f " + std::to_string(e.f) + "\n";
  out += "strategy " + std::to_string(static_cast<int>(e.strategy)) + "\n";
  out += "scheduler " + std::to_string(static_cast<int>(e.scheduler)) + "\n";
  out += "quorum_echo " + std::to_string(e.quorums.echo) + "\n";
  out += "quorum_amplify " + std::to_string(e.quorums.ready_amplify) + "\n";
  out += "quorum_deliver " + std::to_string(e.quorums.ready_deliver) + "\n";
  // Omitted for the default "everyone broadcasts" sentinel so pre-existing
  // repro files (and their byte-exact round-trips) are unchanged. An
  // explicit empty list serializes as a bare `broadcasters` line.
  const bool all_broadcast =
      e.broadcasters.size() == 1 &&
      e.broadcasters.front() == workload::RbcExperiment::kBroadcastAll;
  if (!all_broadcast) {
    out += "broadcasters";
    for (std::size_t id : e.broadcasters) out += " " + std::to_string(id);
    out += '\n';
  }
  out += "seed " + std::to_string(e.seed) + "\n";
  out += "max_events " + std::to_string(e.max_events) + "\n";
  out += common_tail(e.byzantine_ids, e.honest_inputs);
  return out;
}

bool rbc_field(workload::RbcExperiment& e, const std::string& key,
               const std::string& val) {
  if (key == "n") {
    e.n = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "f") {
    e.f = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "strategy") {
    e.strategy = static_cast<workload::AsyncStrategy>(parse_u64(val));
  } else if (key == "scheduler") {
    e.scheduler = static_cast<workload::SchedulerKind>(parse_u64(val));
  } else if (key == "quorum_echo") {
    e.quorums.echo = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "quorum_amplify") {
    e.quorums.ready_amplify = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "quorum_deliver") {
    e.quorums.ready_deliver = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "broadcasters") {
    e.broadcasters = parse_sizes(val);  // bare line -> explicit empty list
  } else if (key == "seed") {
    e.seed = parse_u64(val);
  } else if (key == "max_events") {
    e.max_events = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "byzantine") {
    e.byzantine_ids = parse_sizes(val);
  } else if (key == "input") {
    e.honest_inputs.push_back(parse_doubles(val));
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Dolev-Strong broadcast experiment fields.
// ---------------------------------------------------------------------------

std::string ds_fields(const workload::BroadcastExperiment& e) {
  std::string out;
  out += "n " + std::to_string(e.n) + "\n";
  out += "f " + std::to_string(e.f) + "\n";
  out += "strategy " + std::to_string(static_cast<int>(e.strategy)) + "\n";
  out += "validate_chains " + std::to_string(e.validate_chains ? 1 : 0) +
         "\n";
  out += "seed " + std::to_string(e.seed) + "\n";
  out += common_tail(e.byzantine_ids, e.honest_inputs);
  return out;
}

bool ds_field(workload::BroadcastExperiment& e, const std::string& key,
              const std::string& val) {
  if (key == "n") {
    e.n = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "f") {
    e.f = static_cast<std::size_t>(parse_u64(val));
  } else if (key == "strategy") {
    e.strategy = static_cast<workload::SyncStrategy>(parse_u64(val));
  } else if (key == "validate_chains") {
    e.validate_chains = parse_u64(val) != 0;
  } else if (key == "seed") {
    e.seed = parse_u64(val);
  } else if (key == "byzantine") {
    e.byzantine_ids = parse_sizes(val);
  } else if (key == "input") {
    e.honest_inputs.push_back(parse_doubles(val));
  } else {
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(ReproMode mode) {
  switch (mode) {
    case ReproMode::kAsync:
      return "async";
    case ReproMode::kSync:
      return "sync";
    case ReproMode::kRbc:
      return "rbc";
    case ReproMode::kDs:
      return "ds";
  }
  return "?";
}

std::optional<ReproMode> parse_repro_mode(const std::string& tag) {
  if (tag == "async") return ReproMode::kAsync;
  if (tag == "sync") return ReproMode::kSync;
  if (tag == "rbc") return ReproMode::kRbc;
  if (tag == "ds") return ReproMode::kDs;
  return std::nullopt;
}

ReproInfo peek_repro(const std::string& text) {
  ReproInfo info;
  std::istringstream in(text);
  std::string line;
  RBVC_REQUIRE(std::getline(in, line), "repro: empty input");
  info.version = parse_header_version(line);
  bool mode_seen = info.version == 1;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    const std::string key = line.substr(0, sp);
    const std::string val =
        sp == std::string::npos ? std::string() : line.substr(sp + 1);
    if (key == "mode") {
      const auto parsed = parse_repro_mode(val);
      RBVC_REQUIRE(parsed.has_value(), "repro: unknown mode `" + val + "`");
      info.mode = *parsed;
      mode_seen = true;
    } else if (key == "property") {
      info.property = val;
    }
  }
  RBVC_REQUIRE(mode_seen, "repro: mode-tagged file is missing its `mode` line");
  return info;
}

ReproInfo peek_repro_file(const std::string& path) {
  return peek_repro(read_repro_file(path));
}

std::string serialize_repro(const AsyncRepro& r) {
  return serialize_envelope(r, ReproMode::kAsync, async_fields(r.experiment));
}

std::string serialize_repro(const SyncRepro& r) {
  return serialize_envelope(r, ReproMode::kSync, sync_fields(r.experiment));
}

std::string serialize_repro(const RbcRepro& r) {
  return serialize_envelope(r, ReproMode::kRbc, rbc_fields(r.experiment));
}

std::string serialize_repro(const DsRepro& r) {
  return serialize_envelope(r, ReproMode::kDs, ds_fields(r.experiment));
}

AsyncRepro parse_async_repro(const std::string& text) {
  AsyncRepro r = parse_envelope<workload::AsyncExperiment>(
      text, ReproMode::kAsync, async_field);
  RBVC_REQUIRE(r.experiment.prm.n > 0, "async repro: missing n");
  return r;
}

SyncRepro parse_sync_repro(const std::string& text) {
  SyncRepro r = parse_envelope<workload::SyncExperiment>(
      text, ReproMode::kSync, sync_field);
  RBVC_REQUIRE(r.experiment.n > 0, "sync repro: missing n");
  RBVC_REQUIRE(r.experiment.rule != workload::SyncRule::kCustom,
               "sync repro: missing or custom decision rule");
  return r;
}

RbcRepro parse_rbc_repro(const std::string& text) {
  RbcRepro r = parse_envelope<workload::RbcExperiment>(text, ReproMode::kRbc,
                                                       rbc_field);
  RBVC_REQUIRE(r.experiment.n > 0, "rbc repro: missing n");
  return r;
}

DsRepro parse_ds_repro(const std::string& text) {
  DsRepro r = parse_envelope<workload::BroadcastExperiment>(
      text, ReproMode::kDs, ds_field);
  RBVC_REQUIRE(r.experiment.n > 0, "ds repro: missing n");
  return r;
}

void write_repro_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  RBVC_REQUIRE(out.good(), "write_repro: cannot open " + path);
  out << text;
  RBVC_REQUIRE(out.good(), "write_repro: write failed for " + path);
}

std::string read_repro_file(const std::string& path) {
  std::ifstream in(path);
  RBVC_REQUIRE(in.good(), "load_repro: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

AsyncRepro load_async_repro(const std::string& path) {
  return parse_async_repro(read_repro_file(path));
}

SyncRepro load_sync_repro(const std::string& path) {
  return parse_sync_repro(read_repro_file(path));
}

RbcRepro load_rbc_repro(const std::string& path) {
  return parse_rbc_repro(read_repro_file(path));
}

DsRepro load_ds_repro(const std::string& path) {
  return parse_ds_repro(read_repro_file(path));
}

workload::AsyncOutcome replay_async_repro(const AsyncRepro& r) {
  workload::AsyncExperiment e = r.experiment;
  e.record = nullptr;
  e.replay = &r.schedule;
  e.capture_trace = true;
  return workload::run_async_experiment(e);
}

}  // namespace rbvc::harness
