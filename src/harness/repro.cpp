#include "harness/repro.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/trace.h"

namespace rbvc::harness {

namespace {

constexpr const char* kHeader = "rbvc-async-repro v1";

std::string fmt_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string fmt_vec(const Vec& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ' ';
    out += fmt_double(v[i]);
  }
  return out;
}

std::vector<double> parse_doubles(const std::string& s) {
  std::vector<double> out;
  std::istringstream in(s);
  double x;
  while (in >> x) out.push_back(x);
  return out;
}

std::vector<std::size_t> parse_sizes(const std::string& s) {
  std::vector<std::size_t> out;
  std::istringstream in(s);
  std::uint64_t x;
  while (in >> x) out.push_back(static_cast<std::size_t>(x));
  return out;
}

std::uint64_t parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

std::string serialize_async_repro(const AsyncRepro& r) {
  const workload::AsyncExperiment& e = r.experiment;
  std::string out;
  out += kHeader;
  out += '\n';
  out += "property " + r.property + "\n";
  out += "failure " + sim::escape_detail(r.failure) + "\n";
  out += "n " + std::to_string(e.prm.n) + "\n";
  out += "f " + std::to_string(e.prm.f) + "\n";
  out += "rounds " + std::to_string(e.prm.rounds) + "\n";
  out += "rule " + std::to_string(static_cast<int>(e.prm.rule)) + "\n";
  out += "use_witness " + std::to_string(e.prm.use_witness ? 1 : 0) + "\n";
  out += "quorum_override " + std::to_string(e.prm.quorum_override) + "\n";
  out += "tol " + fmt_double(e.prm.tol) + "\n";
  out += "minimax " + std::to_string(e.prm.minimax.iters) + " " +
         std::to_string(e.prm.minimax.polish_iters) + " " +
         fmt_double(e.prm.minimax.tol) + " " + fmt_double(e.prm.minimax.p) +
         "\n";
  out += "d " + std::to_string(e.d) + "\n";
  out += "strategy " + std::to_string(static_cast<int>(e.strategy)) + "\n";
  out += "scheduler " + std::to_string(static_cast<int>(e.scheduler)) + "\n";
  out += "seed " + std::to_string(e.seed) + "\n";
  out += "max_events " + std::to_string(e.max_events) + "\n";
  if (!e.byzantine_ids.empty()) {
    out += "byzantine";
    for (std::size_t id : e.byzantine_ids) out += " " + std::to_string(id);
    out += '\n';
  }
  for (const Vec& v : e.honest_inputs) {
    out += "input " + fmt_vec(v) + "\n";
  }
  out += "schedule " + r.schedule.serialize() + "\n";
  if (!r.trace_dump.empty()) {
    out += "trace " + sim::escape_detail(r.trace_dump) + "\n";
  }
  return out;
}

AsyncRepro parse_async_repro(const std::string& text) {
  AsyncRepro r;
  std::istringstream in(text);
  std::string line;
  RBVC_REQUIRE(std::getline(in, line) && line == kHeader,
               "async repro: missing or unsupported header");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    const std::string key = line.substr(0, sp);
    const std::string val =
        sp == std::string::npos ? std::string() : line.substr(sp + 1);
    workload::AsyncExperiment& e = r.experiment;
    if (key == "property") {
      r.property = val;
    } else if (key == "failure") {
      r.failure = sim::unescape_detail(val);
    } else if (key == "n") {
      e.prm.n = static_cast<std::size_t>(parse_u64(val));
    } else if (key == "f") {
      e.prm.f = static_cast<std::size_t>(parse_u64(val));
    } else if (key == "rounds") {
      e.prm.rounds = static_cast<std::size_t>(parse_u64(val));
    } else if (key == "rule") {
      e.prm.rule = static_cast<consensus::AsyncAveragingProcess::Round0Rule>(
          parse_u64(val));
    } else if (key == "use_witness") {
      e.prm.use_witness = parse_u64(val) != 0;
    } else if (key == "quorum_override") {
      e.prm.quorum_override = static_cast<std::size_t>(parse_u64(val));
    } else if (key == "tol") {
      e.prm.tol = parse_doubles(val).at(0);
    } else if (key == "minimax") {
      const auto fields = parse_doubles(val);
      RBVC_REQUIRE(fields.size() == 4, "async repro: bad minimax line");
      e.prm.minimax.iters = static_cast<std::size_t>(fields[0]);
      e.prm.minimax.polish_iters = static_cast<std::size_t>(fields[1]);
      e.prm.minimax.tol = fields[2];
      e.prm.minimax.p = fields[3];
    } else if (key == "d") {
      e.d = static_cast<std::size_t>(parse_u64(val));
    } else if (key == "strategy") {
      e.strategy = static_cast<workload::AsyncStrategy>(parse_u64(val));
    } else if (key == "scheduler") {
      e.scheduler = static_cast<workload::SchedulerKind>(parse_u64(val));
    } else if (key == "seed") {
      e.seed = parse_u64(val);
    } else if (key == "max_events") {
      e.max_events = static_cast<std::size_t>(parse_u64(val));
    } else if (key == "byzantine") {
      e.byzantine_ids = parse_sizes(val);
    } else if (key == "input") {
      e.honest_inputs.push_back(parse_doubles(val));
    } else if (key == "schedule") {
      r.schedule = sim::ScheduleLog::parse(val);
    } else if (key == "trace") {
      r.trace_dump = sim::unescape_detail(val);
    }
    // Unknown keys: skipped for forward compatibility.
  }
  RBVC_REQUIRE(r.experiment.prm.n > 0, "async repro: missing n");
  return r;
}

void write_async_repro(const std::string& path, const AsyncRepro& r) {
  std::ofstream out(path, std::ios::trunc);
  RBVC_REQUIRE(out.good(), "write_async_repro: cannot open " + path);
  out << serialize_async_repro(r);
  RBVC_REQUIRE(out.good(), "write_async_repro: write failed for " + path);
}

AsyncRepro load_async_repro(const std::string& path) {
  std::ifstream in(path);
  RBVC_REQUIRE(in.good(), "load_async_repro: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_async_repro(buf.str());
}

workload::AsyncOutcome replay_async_repro(const AsyncRepro& r) {
  workload::AsyncExperiment e = r.experiment;
  e.record = nullptr;
  e.replay = &r.schedule;
  e.capture_trace = true;
  return workload::run_async_experiment(e);
}

}  // namespace rbvc::harness
