// Self-contained counterexample files: everything needed to re-execute a
// failing episode byte-for-byte -- the full experiment configuration
// (including seeds and numeric options) plus the recorded (usually shrunk)
// schedule -- in a line-oriented `key value` text format.
//
// Format v3 = the mode-tagged v2 envelope (`mode: sync|async|rbc|ds`, so
// RBVC_REPLAY can re-execute any experiment kind) plus an optional
// `metrics` line embedding the failing episode's obs::Registry snapshot as
// escaped JSON. Parsers reject unknown versions/modes with a diagnostic
// instead of misreplaying; v2 and legacy v1 files (async-only) still load.
// docs/HARNESS.md documents the format and the RBVC_REPLAY flow.
#pragma once

#include <optional>
#include <string>

#include "workload/runner.h"

namespace rbvc::harness {

/// Which experiment kind a repro file re-executes.
enum class ReproMode { kAsync, kSync, kRbc, kDs };

const char* to_string(ReproMode mode);
std::optional<ReproMode> parse_repro_mode(const std::string& tag);

/// Current schema version; parsers accept v1 (implicitly async), v2, v3.
inline constexpr int kReproVersion = 3;

/// One counterexample: the property it violates, the full experiment
/// config, and the complete nondeterminism record (scheduler picks for
/// async-model runs; round checkpoints for deterministic sync-model runs,
/// where they act as divergence detectors on re-execution).
template <class ExperimentT>
struct Repro {
  std::string property;    // name of the property that failed
  std::string failure;     // oracle's violation message at record time
  ExperimentT experiment;  // record/replay pointers left null
  sim::ScheduleLog schedule;
  std::string trace_dump;    // optional: Trace::dump() of the failing run
  std::string metrics_json;  // optional: obs::Registry::dump_json() snapshot
                             // of the minimized failing episode (v3+)
};

using AsyncRepro = Repro<workload::AsyncExperiment>;
using SyncRepro = Repro<workload::SyncExperiment>;
using RbcRepro = Repro<workload::RbcExperiment>;
using DsRepro = Repro<workload::BroadcastExperiment>;

/// The mode-independent envelope of a repro file, readable without knowing
/// the experiment type. Throws invalid_argument on unknown version or mode
/// -- the "reject, don't misreplay" contract.
struct ReproInfo {
  int version = 0;
  ReproMode mode = ReproMode::kAsync;
  std::string property;
};

ReproInfo peek_repro(const std::string& text);
ReproInfo peek_repro_file(const std::string& path);

/// Serializers (one overload per mode; the mode tag is derived from the
/// experiment type). Sync/ds experiments must use a serializable
/// SyncRule -- a raw DecisionFn closure is rejected.
std::string serialize_repro(const AsyncRepro& r);
std::string serialize_repro(const SyncRepro& r);
std::string serialize_repro(const RbcRepro& r);
std::string serialize_repro(const DsRepro& r);

/// Parsers. Unknown keys are ignored (old binaries read newer files);
/// unknown versions/modes and mode mismatches throw invalid_argument.
AsyncRepro parse_async_repro(const std::string& text);
SyncRepro parse_sync_repro(const std::string& text);
RbcRepro parse_rbc_repro(const std::string& text);
DsRepro parse_ds_repro(const std::string& text);

void write_repro_text(const std::string& path, const std::string& text);

template <class ExperimentT>
void write_repro(const std::string& path, const Repro<ExperimentT>& r) {
  write_repro_text(path, serialize_repro(r));
}

/// Reads a whole repro file (throws invalid_argument when unreadable).
std::string read_repro_file(const std::string& path);

AsyncRepro load_async_repro(const std::string& path);
SyncRepro load_sync_repro(const std::string& path);
RbcRepro load_rbc_repro(const std::string& path);
DsRepro load_ds_repro(const std::string& path);

/// Re-executes the repro's experiment under its schedule (trace captured).
workload::AsyncOutcome replay_async_repro(const AsyncRepro& r);

/// Deprecated PR-2 names, kept so existing call sites compile unchanged.
inline std::string serialize_async_repro(const AsyncRepro& r) {
  return serialize_repro(r);
}
inline void write_async_repro(const std::string& path, const AsyncRepro& r) {
  write_repro(path, r);
}

}  // namespace rbvc::harness
