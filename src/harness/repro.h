// Self-contained counterexample files for asynchronous runs: everything
// needed to re-execute a failing episode byte-for-byte -- the full
// experiment configuration (including seeds and numeric options) plus the
// recorded (usually shrunk) schedule -- in a line-oriented `key value` text
// format. docs/HARNESS.md documents the format and the RBVC_REPLAY flow.
#pragma once

#include <string>

#include "workload/runner.h"

namespace rbvc::harness {

struct AsyncRepro {
  std::string property;  // name of the property that failed
  std::string failure;   // oracle's violation message at record time
  workload::AsyncExperiment experiment;  // record/replay pointers left null
  sim::ScheduleLog schedule;             // the failing schedule
  std::string trace_dump;  // optional: Trace::dump() of the failing replay
};

std::string serialize_async_repro(const AsyncRepro& r);
/// Inverse of serialize_async_repro(); unknown keys are ignored so old
/// binaries can read newer files. Throws invalid_argument when malformed.
AsyncRepro parse_async_repro(const std::string& text);

void write_async_repro(const std::string& path, const AsyncRepro& r);
AsyncRepro load_async_repro(const std::string& path);

/// Re-executes the repro's experiment under its schedule (trace captured).
workload::AsyncOutcome replay_async_repro(const AsyncRepro& r);

}  // namespace rbvc::harness
