#include "harness/shrinker.h"

#include <algorithm>
#include <cmath>

namespace rbvc::harness {

sim::ScheduleLog shrink_schedule(const sim::ScheduleLog& failing,
                                 const FailurePredicate& still_fails,
                                 std::size_t max_attempts,
                                 ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  st = {};
  st.original_size = failing.size();

  sim::ScheduleLog cur = failing;
  auto attempt = [&](const sim::ScheduleLog& cand) {
    ++st.attempts;
    if (!still_fails(cand)) return false;
    ++st.accepted;
    cur = cand;
    return true;
  };

  // A trailing pick of 0 behaves exactly like the exhausted-log FIFO
  // fallback, and a trailing choice of 0 like the exhausted-log first-option
  // fallback (mc::ChoiceReplayer), so trimming such a suffix preserves the
  // replayed execution verbatim -- no oracle run needed.
  auto trim_trailing_fifo = [&] {
    std::size_t keep = cur.size();
    while (keep > 0) {
      const sim::ScheduleEntry& e = cur.entries()[keep - 1];
      const bool free_tail = (e.kind == sim::ScheduleEntryKind::kPick ||
                              e.kind == sim::ScheduleEntryKind::kChoice) &&
                             e.value == 0;
      if (!free_tail) break;
      --keep;
    }
    cur.erase_range(keep, cur.size() - keep);
  };
  trim_trailing_fifo();

  // Nothing left to edit (empty input, or a pure fallback-equivalent tail):
  // the log is already minimal and the predicate never needs to run.
  if (cur.empty()) {
    st.final_size = 0;
    return cur;
  }

  bool changed = true;
  while (changed && st.attempts < max_attempts) {
    changed = false;
    ++st.passes;

    // Collapse to the shortest failing prefix (the suffix becomes FIFO).
    // Failure is not necessarily monotone in the cut point, so this is a
    // heuristic probe, but each accepted candidate is verified to fail.
    if (cur.size() > 1) {
      std::size_t lo = 0;
      std::size_t hi = cur.size();
      while (lo < hi && st.attempts < max_attempts) {
        const std::size_t mid = (lo + hi) / 2;
        sim::ScheduleLog cand = cur;
        cand.erase_range(mid, cand.size() - mid);
        if (attempt(cand)) {
          hi = mid;
          changed = true;
        } else {
          lo = mid + 1;
        }
      }
    }

    // Chunked deletion of laggard segments, largest chunks first.
    for (std::size_t chunk = std::max<std::size_t>(cur.size() / 2, 1);
         chunk >= 1 && st.attempts < max_attempts; chunk /= 2) {
      std::size_t i = 0;
      while (i < cur.size() && st.attempts < max_attempts) {
        sim::ScheduleLog cand = cur;
        cand.erase_range(i, chunk);
        if (attempt(cand)) {
          changed = true;  // keep i: the next chunk slid into place
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }

    // Canonicalization: rewrite surviving picks toward FIFO (index 0) and
    // surviving choices toward the first option, back to front so zeros
    // accumulate at the tail, where trimming deletes them for free; the
    // remaining nonzero entries are the adversarial decisions.
    for (std::size_t i = cur.size(); i > 0 && st.attempts < max_attempts;
         --i) {
      const sim::ScheduleEntry& e = cur.entries()[i - 1];
      if (e.kind == sim::ScheduleEntryKind::kRound || e.value == 0) continue;
      sim::ScheduleLog cand = cur;
      cand.set_value(i - 1, 0);
      if (attempt(cand)) changed = true;
    }
    trim_trailing_fifo();
  }

  st.final_size = cur.size();
  return cur;
}

namespace {
std::size_t nonzero_coords(const std::vector<Vec>& inputs) {
  std::size_t count = 0;
  for (const Vec& v : inputs) {
    for (double x : v) count += x != 0.0;
  }
  return count;
}
}  // namespace

std::vector<Vec> shrink_inputs(const std::vector<Vec>& failing,
                               const InputFailurePredicate& still_fails,
                               std::size_t max_attempts, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  st = {};
  st.original_size = nonzero_coords(failing);

  std::vector<Vec> cur = failing;
  auto attempt = [&](const std::vector<Vec>& cand) {
    ++st.attempts;
    if (!still_fails(cand)) return false;
    ++st.accepted;
    cur = cand;
    return true;
  };

  // Magnitudes below this are close enough to zero that further halving
  // only burns budget; the loop terminates once every coordinate is zero
  // or sub-threshold.
  constexpr double kFloor = 1e-6;
  bool changed = true;
  while (changed && st.attempts < max_attempts) {
    changed = false;
    ++st.passes;
    for (std::size_t i = 0; i < cur.size() && st.attempts < max_attempts;
         ++i) {
      for (std::size_t j = 0; j < cur[i].size() && st.attempts < max_attempts;
           ++j) {
        if (cur[i][j] == 0.0) continue;
        std::vector<Vec> cand = cur;
        cand[i][j] = 0.0;
        if (attempt(cand)) {
          changed = true;
          continue;
        }
        if (std::abs(cur[i][j]) <= kFloor || st.attempts >= max_attempts) {
          continue;
        }
        cand = cur;
        cand[i][j] *= 0.5;
        if (attempt(cand)) changed = true;
      }
    }
  }

  st.final_size = nonzero_coords(cur);
  return cur;
}

}  // namespace rbvc::harness
