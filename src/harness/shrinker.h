// Greedy schedule minimization: given a failing ScheduleLog and a predicate
// that re-executes it against the oracle, produce a schedule that is never
// longer than the original, still fails, and is usually far smaller and
// closer to FIFO order -- a human-readable counterexample.
//
// Replay tolerates arbitrary truncation and edits (ReplayScheduler wraps
// out-of-range indices and falls back to FIFO when the log runs out), so
// every candidate the shrinker proposes is a valid schedule; only
// still-failing candidates are ever accepted.
#pragma once

#include <functional>

#include "sim/schedule_log.h"

namespace rbvc::harness {

/// Re-runs the experiment under the candidate schedule and reports whether
/// the invariant still fails. Must be deterministic.
using FailurePredicate = std::function<bool(const sim::ScheduleLog&)>;

struct ShrinkStats {
  std::size_t attempts = 0;       // candidate executions performed
  std::size_t accepted = 0;       // candidates that still failed
  std::size_t original_size = 0;  // entries before shrinking
  std::size_t final_size = 0;     // entries after shrinking
  std::size_t passes = 0;         // full delete+canonicalize sweeps
};

/// Delta-debugging style loop: chunked deletions with halving chunk sizes,
/// then pick-index canonicalization toward 0 (FIFO), repeated to fixpoint
/// or until `max_attempts` candidate executions have run. `failing` must
/// satisfy `still_fails`; the result always does, and is never longer.
sim::ScheduleLog shrink_schedule(const sim::ScheduleLog& failing,
                                 const FailurePredicate& still_fails,
                                 std::size_t max_attempts = 500,
                                 ShrinkStats* stats = nullptr);

/// Re-runs the experiment with the candidate honest inputs and reports
/// whether the invariant still fails. Must be deterministic.
using InputFailurePredicate =
    std::function<bool(const std::vector<Vec>&)>;

/// Counterexample minimizer for deterministic (sync-model) runs, where the
/// schedule is a divergence checkpoint rather than a degree of freedom:
/// greedily zeroes, then halves, honest-input coordinates, accepting any
/// candidate that still fails. The result has the same shape as the input
/// and is never "larger" (each coordinate is 0 or closer to 0). `failing`
/// must satisfy `still_fails`; the result always does. Stats sizes count
/// nonzero coordinates.
std::vector<Vec> shrink_inputs(const std::vector<Vec>& failing,
                               const InputFailurePredicate& still_fails,
                               std::size_t max_attempts = 500,
                               ShrinkStats* stats = nullptr);

}  // namespace rbvc::harness
