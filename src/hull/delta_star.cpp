#include "hull/delta_star.h"

#include <algorithm>
#include <cmath>

#include "geometry/hull.h"
#include "linalg/qr.h"
#include "obs/metrics.h"

namespace rbvc {

namespace {

const char* method_label(DeltaStarResult::Method m) {
  switch (m) {
    case DeltaStarResult::Method::kGammaNonempty:
      return "gamma_nonempty";
    case DeltaStarResult::Method::kSimplexInradius:
      return "simplex_inradius";
    case DeltaStarResult::Method::kNumerical:
      return "numerical";
  }
  return "unknown";
}

void record_call(const DeltaStarResult& out) {
  obs::Registry& reg = obs::global();
  reg.counter("geom.delta_star.calls").inc();
  reg.counter(std::string("geom.delta_star.method.") +
              method_label(out.method))
      .inc();
}

// Builds the span projection into the workspace's reusable SpanFrame slot
// (see workspace.h for the frame's semantics).
SpanFrame& make_frame(const std::vector<Vec>& s, double tol,
                      GeometryWorkspace& ws) {
  SpanFrame& fr = ws.span_frame();
  fr.origin = s.back();
  Vec& tmp = ws.scratch_vec();
  std::vector<Vec> diffs;
  diffs.reserve(s.size() - 1);
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    sub_into(s[i], s.back(), tmp);
    diffs.push_back(tmp);
  }
  fr.basis = orthonormal_basis(diffs, tol);
  fr.coords.clear();
  fr.coords.reserve(s.size());
  for (const Vec& v : s) {
    sub_into(v, fr.origin, tmp);
    fr.coords.push_back(coords_in_basis(fr.basis, tmp));
  }
  return fr;
}

}  // namespace

DeltaStarResult delta_star_2(const std::vector<Vec>& s, std::size_t f,
                             double tol, const MinimaxOptions& opts,
                             GeometryWorkspace& ws) {
  RBVC_REQUIRE(f >= 1 && f < s.size(), "delta_star_2: need 1 <= f < |S|");
  obs::ScopedTimer timer(obs::global(), "geom.delta_star.seconds");
  DeltaStarResult out;

  const SpanFrame& fr = make_frame(s, tol, ws);
  const std::size_t dprime = fr.basis.size();
  if (dprime == 0) {  // all inputs identical
    out.value = 0.0;
    out.point = s.front();
    out.exact = true;
    out.method = DeltaStarResult::Method::kGammaNonempty;
    record_call(out);
    return out;
  }

  // Case 1: the classic safe area Gamma(S) is already non-empty.
  if (auto g = hull_intersection_point(ws.drop_f_views(fr.coords, f), tol)) {
    out.value = 0.0;
    out.point = fr.lift(*g);
    out.exact = true;
    out.method = DeltaStarResult::Method::kGammaNonempty;
    record_call(out);
    return out;
  }

  // Case 2: Lemma 13 -- for f = 1 and a full simplex in the span, delta* is
  // exactly the inradius and the incenter is the canonical witness.
  if (f == 1 && s.size() == dprime + 1) {
    if (auto geom = SimplexGeometry::build(fr.coords, tol)) {
      out.value = geom->inradius();
      out.point = fr.lift(geom->incenter());
      out.exact = true;
      out.method = DeltaStarResult::Method::kSimplexInradius;
      record_call(out);
      return out;
    }
  }

  // Case 3: numerical min-max over the drop-f hulls, inside the span.
  MinimaxResult mm = min_max_hull_distance(ws.drop_f_views(fr.coords, f),
                                           mean(fr.coords), opts);
  out.value = mm.value;
  out.point = fr.lift(mm.point);
  out.exact = false;
  out.method = DeltaStarResult::Method::kNumerical;
  record_call(out);
  return out;
}

DeltaStarResult delta_star_linear(const std::vector<Vec>& s, std::size_t f,
                                  double p, double tol, GeometryWorkspace& ws) {
  RBVC_REQUIRE(f >= 1 && f < s.size(), "delta_star_linear: need 1 <= f < |S|");
  RBVC_REQUIRE(p == 1.0 || p >= kInfNorm,
               "delta_star_linear: p must be 1 or inf");
  obs::ScopedTimer timer(obs::global(), "geom.delta_star.seconds");
  DeltaStarResult out;
  if (auto g = gamma_point(s, f, tol, ws)) {
    out.value = 0.0;
    out.point = *g;
    out.exact = true;
    out.method = DeltaStarResult::Method::kGammaNonempty;
    record_call(out);
    return out;
  }
  double lo = 0.0;
  double hi = gamma_excess(mean(s), s, f, p, tol, ws);
  Vec witness = mean(s);
  const double scale = std::max(1.0, hi);

  // One feasibility LP, many right-hand sides: build the probe once, prime
  // its basis at a comfortably feasible delta (the mean witnesses
  // delta = hi), then every bisection iteration re-solves warm -- dual
  // simplex from the retained basis instead of Phase-1-from-scratch.
  GammaDeltaProbe probe(s, f, p, tol, ws);
  probe.probe(hi + scale);
  while (hi - lo > tol * scale) {
    obs::global().counter("geom.delta_star.bisect_iters").inc();
    const double mid = 0.5 * (lo + hi);
    if (auto w = probe.probe(mid)) {
      hi = mid;
      witness = *w;
    } else {
      lo = mid;
    }
  }
  out.value = hi;
  out.point = witness;
  out.exact = true;  // LP bisection: certified to within tol*scale
  out.method = DeltaStarResult::Method::kNumerical;
  record_call(out);
  return out;
}

DeltaStarResult delta_star_p(const std::vector<Vec>& s, std::size_t f,
                             double p, double tol, MinimaxOptions opts,
                             GeometryWorkspace& ws) {
  RBVC_REQUIRE(f >= 1 && f < s.size(), "delta_star_p: need 1 <= f < |S|");
  if (p == 2.0) return delta_star_2(s, f, tol, opts, ws);
  if (p == 1.0 || p >= kInfNorm) return delta_star_linear(s, f, p, tol, ws);
  obs::ScopedTimer timer(obs::global(), "geom.delta_star.seconds");
  DeltaStarResult out;
  if (auto g = gamma_point(s, f, tol, ws)) {
    out.value = 0.0;
    out.point = *g;
    out.exact = true;
    out.method = DeltaStarResult::Method::kGammaNonempty;
    record_call(out);
    return out;
  }
  opts.p = p;
  // Lp norms are not preserved by orthogonal projection, so run the minimax
  // in the ambient space.
  MinimaxResult mm = min_max_hull_distance(ws.drop_f_views(s, f), mean(s), opts);
  out.value = mm.value;
  out.point = mm.point;
  out.exact = false;
  out.method = DeltaStarResult::Method::kNumerical;
  record_call(out);
  return out;
}

}  // namespace rbvc
