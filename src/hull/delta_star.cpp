#include "hull/delta_star.h"

#include <algorithm>
#include <cmath>

#include "geometry/hull.h"
#include "linalg/qr.h"
#include "obs/metrics.h"

namespace rbvc {

namespace {

const char* method_label(DeltaStarResult::Method m) {
  switch (m) {
    case DeltaStarResult::Method::kGammaNonempty:
      return "gamma_nonempty";
    case DeltaStarResult::Method::kSimplexInradius:
      return "simplex_inradius";
    case DeltaStarResult::Method::kNumerical:
      return "numerical";
  }
  return "unknown";
}

void record_call(const DeltaStarResult& out) {
  obs::Registry& reg = obs::global();
  reg.counter("geom.delta_star.calls").inc();
  reg.counter(std::string("geom.delta_star.method.") +
              method_label(out.method))
      .inc();
}

// Isometric coordinates of the points within their own affine span
// (translate by the last point, express in an orthonormal basis). Valid for
// the L2 paths only: orthogonal projection preserves Euclidean distances
// inside the span but not other Lp norms.
struct SpanFrame {
  Vec origin;
  std::vector<Vec> basis;   // orthonormal
  std::vector<Vec> coords;  // projected points, dimension basis.size()

  Vec lift(const Vec& c) const {
    Vec x = origin;
    for (std::size_t j = 0; j < basis.size(); ++j) axpy(c[j], basis[j], x);
    return x;
  }
};

SpanFrame make_frame(const std::vector<Vec>& s, double tol) {
  SpanFrame fr;
  fr.origin = s.back();
  std::vector<Vec> diffs;
  diffs.reserve(s.size() - 1);
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    diffs.push_back(sub(s[i], s.back()));
  }
  fr.basis = orthonormal_basis(diffs, tol);
  fr.coords.reserve(s.size());
  for (const Vec& v : s) {
    fr.coords.push_back(coords_in_basis(fr.basis, sub(v, fr.origin)));
  }
  return fr;
}

}  // namespace

DeltaStarResult delta_star_2(const std::vector<Vec>& s, std::size_t f,
                             double tol, const MinimaxOptions& opts) {
  RBVC_REQUIRE(f >= 1 && f < s.size(), "delta_star_2: need 1 <= f < |S|");
  obs::ScopedTimer timer(obs::global(), "geom.delta_star.seconds");
  DeltaStarResult out;

  const SpanFrame fr = make_frame(s, tol);
  const std::size_t dprime = fr.basis.size();
  if (dprime == 0) {  // all inputs identical
    out.value = 0.0;
    out.point = s.front();
    out.exact = true;
    out.method = DeltaStarResult::Method::kGammaNonempty;
    record_call(out);
    return out;
  }

  // Case 1: the classic safe area Gamma(S) is already non-empty.
  if (auto g = hull_intersection_point(drop_f_subsets(fr.coords, f), tol)) {
    out.value = 0.0;
    out.point = fr.lift(*g);
    out.exact = true;
    out.method = DeltaStarResult::Method::kGammaNonempty;
    record_call(out);
    return out;
  }

  // Case 2: Lemma 13 -- for f = 1 and a full simplex in the span, delta* is
  // exactly the inradius and the incenter is the canonical witness.
  if (f == 1 && s.size() == dprime + 1) {
    if (auto geom = SimplexGeometry::build(fr.coords, tol)) {
      out.value = geom->inradius();
      out.point = fr.lift(geom->incenter());
      out.exact = true;
      out.method = DeltaStarResult::Method::kSimplexInradius;
      record_call(out);
      return out;
    }
  }

  // Case 3: numerical min-max over the drop-f hulls, inside the span.
  const auto sets = drop_f_subsets(fr.coords, f);
  MinimaxResult mm = min_max_hull_distance(sets, mean(fr.coords), opts);
  out.value = mm.value;
  out.point = fr.lift(mm.point);
  out.exact = false;
  out.method = DeltaStarResult::Method::kNumerical;
  record_call(out);
  return out;
}

DeltaStarResult delta_star_linear(const std::vector<Vec>& s, std::size_t f,
                                  double p, double tol) {
  RBVC_REQUIRE(f >= 1 && f < s.size(), "delta_star_linear: need 1 <= f < |S|");
  RBVC_REQUIRE(p == 1.0 || p >= kInfNorm,
               "delta_star_linear: p must be 1 or inf");
  obs::ScopedTimer timer(obs::global(), "geom.delta_star.seconds");
  DeltaStarResult out;
  if (auto g = gamma_point(s, f, tol)) {
    out.value = 0.0;
    out.point = *g;
    out.exact = true;
    out.method = DeltaStarResult::Method::kGammaNonempty;
    record_call(out);
    return out;
  }
  double lo = 0.0;
  double hi = gamma_excess(mean(s), s, f, p, tol);
  Vec witness = mean(s);
  const double scale = std::max(1.0, hi);
  while (hi - lo > tol * scale) {
    obs::global().counter("geom.delta_star.bisect_iters").inc();
    const double mid = 0.5 * (lo + hi);
    if (auto w = gamma_delta_point_linear(s, f, mid, p, tol)) {
      hi = mid;
      witness = *w;
    } else {
      lo = mid;
    }
  }
  out.value = hi;
  out.point = witness;
  out.exact = true;  // LP bisection: certified to within tol*scale
  out.method = DeltaStarResult::Method::kNumerical;
  record_call(out);
  return out;
}

DeltaStarResult delta_star_p(const std::vector<Vec>& s, std::size_t f,
                             double p, double tol, MinimaxOptions opts) {
  RBVC_REQUIRE(f >= 1 && f < s.size(), "delta_star_p: need 1 <= f < |S|");
  if (p == 2.0) return delta_star_2(s, f, tol, opts);
  if (p == 1.0 || p >= kInfNorm) return delta_star_linear(s, f, p, tol);
  obs::ScopedTimer timer(obs::global(), "geom.delta_star.seconds");
  DeltaStarResult out;
  if (auto g = gamma_point(s, f, tol)) {
    out.value = 0.0;
    out.point = *g;
    out.exact = true;
    out.method = DeltaStarResult::Method::kGammaNonempty;
    record_call(out);
    return out;
  }
  opts.p = p;
  // Lp norms are not preserved by orthogonal projection, so run the minimax
  // in the ambient space.
  MinimaxResult mm = min_max_hull_distance(drop_f_subsets(s, f), mean(s), opts);
  out.value = mm.value;
  out.point = mm.point;
  out.exact = false;
  out.method = DeltaStarResult::Method::kNumerical;
  record_call(out);
  return out;
}

}  // namespace rbvc
