// delta*(S): the smallest relaxation for which Gamma_(delta,p)(S) is
// non-empty -- the quantity ALGO (paper Sec. 9) minimizes in its Step 2,
// and the quantity Theorems 8, 9, 12 and Conjectures 1-3 upper-bound.
//
// Computation strategy (all cases first project S isometrically onto the
// affine span of its points, per the paper's Case II arguments):
//   1. Gamma(S) non-empty (LP)            -> delta* = 0, exact.
//   2. f = 1 and S a full simplex in span -> delta* = inradius (Lemma 13),
//      point = incenter, exact.
//   3. otherwise                          -> numerical minimax (upper bound
//      within solver tolerance), plus an LP lower-bound certificate for
//      p in {1, inf} via bisection.
#pragma once

#include <optional>

#include "geometry/simplex_geometry.h"
#include "geometry/workspace.h"
#include "hull/gamma.h"
#include "opt/minimax.h"

namespace rbvc {

struct DeltaStarResult {
  double value = 0.0;  // delta*(S) (exact or numerical upper bound)
  Vec point;           // deterministic witness: gamma_(value,2)(S) member
  bool exact = false;  // true for the LP / closed-form paths
  enum class Method {
    kGammaNonempty,    // delta* = 0
    kSimplexInradius,  // Lemma 13 closed form (possibly in a subspace)
    kNumerical,        // minimax iteration
  } method = Method::kNumerical;
};

/// delta*_2(S) for f faults. Requires 1 <= f < |S|. All entry points thread
/// a GeometryWorkspace (subset index views, reusable SpanFrame storage,
/// warm-started LP solvers); results do not depend on workspace history.
DeltaStarResult delta_star_2(const std::vector<Vec>& s, std::size_t f,
                             double tol = kTol,
                             const MinimaxOptions& opts = {},
                             GeometryWorkspace& ws = GeometryWorkspace::local());

/// delta*_p(S) for p = 1 or inf: exact bisection on LP feasibility. The
/// bisection re-solves one LP warm across iterations (only the delta
/// right-hand sides move between probes).
DeltaStarResult delta_star_linear(
    const std::vector<Vec>& s, std::size_t f, double p, double tol = kTol,
    GeometryWorkspace& ws = GeometryWorkspace::local());

/// delta*_p(S) for general finite p >= 1: numerical minimax upper bound.
DeltaStarResult delta_star_p(const std::vector<Vec>& s, std::size_t f,
                             double p, double tol = kTol,
                             MinimaxOptions opts = {},
                             GeometryWorkspace& ws = GeometryWorkspace::local());

}  // namespace rbvc
