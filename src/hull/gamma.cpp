#include "hull/gamma.h"

#include <algorithm>

#include "geometry/hull.h"
#include "lp/model.h"
#include "opt/pocs.h"

namespace rbvc {

std::optional<Vec> gamma_point(const std::vector<Vec>& y, std::size_t f,
                               double tol) {
  return hull_intersection_point(drop_f_subsets(y, f), tol);
}

std::optional<Vec> gamma_delta_point_linear(const std::vector<Vec>& y,
                                            std::size_t f, double delta,
                                            double p, double tol) {
  RBVC_REQUIRE(p == 1.0 || p >= kInfNorm,
               "gamma_delta_point_linear: p must be 1 or inf");
  RBVC_REQUIRE(delta >= 0.0, "gamma_delta_point_linear: delta must be >= 0");
  const std::size_t d = y.front().size();
  const auto subsets = drop_f_subsets(y, f);

  lp::Model m;
  const auto u0 = m.add_vars(d, 0.0, /*free=*/true);
  for (const auto& t : subsets) {
    const auto lambda0 = m.add_vars(t.size());
    // Residual split: s = s+ - s- with s+, s- >= 0.
    const auto sp0 = m.add_vars(d);
    const auto sm0 = m.add_vars(d);
    for (std::size_t r = 0; r < d; ++r) {
      // u[r] - sum_j lambda_j t_j[r] - s+[r] + s-[r] = 0
      std::vector<lp::Model::Term> row;
      row.push_back({u0 + r, 1.0});
      for (std::size_t j = 0; j < t.size(); ++j) {
        row.push_back({lambda0 + j, -t[j][r]});
      }
      row.push_back({sp0 + r, -1.0});
      row.push_back({sm0 + r, 1.0});
      m.add_constraint(row, lp::Rel::kEq, 0.0);
    }
    std::vector<lp::Model::Term> sum_row;
    for (std::size_t j = 0; j < t.size(); ++j) sum_row.push_back({lambda0 + j, 1.0});
    m.add_constraint(sum_row, lp::Rel::kEq, 1.0);

    if (p == 1.0) {
      // sum_r (s+[r] + s-[r]) <= delta
      std::vector<lp::Model::Term> norm_row;
      for (std::size_t r = 0; r < d; ++r) {
        norm_row.push_back({sp0 + r, 1.0});
        norm_row.push_back({sm0 + r, 1.0});
      }
      m.add_constraint(norm_row, lp::Rel::kLe, delta);
    } else {
      // s+[r] + s-[r] <= delta per coordinate (with both >= 0, at the
      // optimum at most one side is active, so this bounds |s_r|).
      for (std::size_t r = 0; r < d; ++r) {
        m.add_constraint({{sp0 + r, 1.0}, {sm0 + r, 1.0}}, lp::Rel::kLe,
                         delta);
      }
    }
  }

  lp::SimplexOptions opts;
  opts.tol = std::min(tol, 1e-8);
  const lp::Solution sol = m.solve(opts);
  if (sol.status != lp::Status::kOptimal) return std::nullopt;
  return Vec(sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(d));
}

std::optional<Vec> gamma_delta2_point(const std::vector<Vec>& y, std::size_t f,
                                      double delta, double tol) {
  const auto subsets = drop_f_subsets(y, f);
  std::optional<Vec> p = pocs_point_within(subsets, delta, mean(y));
  if (!p) return std::nullopt;
  // POCS tolerance is loose; accept only genuine witnesses.
  if (gamma_excess(*p, y, f, 2.0, tol) > delta + kLooseTol * 10.0) {
    return std::nullopt;
  }
  return p;
}

double gamma_excess(const Vec& u, const std::vector<Vec>& y, std::size_t f,
                    double p, double tol) {
  double worst = 0.0;
  for (const auto& t : drop_f_subsets(y, f)) {
    worst = std::max(worst, distance_to_hull(u, t, p, tol));
  }
  return worst;
}

}  // namespace rbvc
