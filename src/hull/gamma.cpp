#include "hull/gamma.h"

#include <algorithm>

#include "geometry/hull.h"
#include "opt/pocs.h"

namespace rbvc {

std::optional<Vec> gamma_point(const std::vector<Vec>& y, std::size_t f,
                               double tol, GeometryWorkspace& ws) {
  return hull_intersection_point(ws.drop_f_views(y, f), tol);
}

GammaDeltaProbe::GammaDeltaProbe(const std::vector<Vec>& y, std::size_t f,
                                 double p, double tol, GeometryWorkspace& ws)
    : solver_(ws.bisect_solver()) {
  RBVC_REQUIRE(p == 1.0 || p >= kInfNorm,
               "gamma_delta_point_linear: p must be 1 or inf");
  d_ = y.front().size();
  const auto views = ws.drop_f_views(y, f);

  const auto u0 = model_.add_vars(d_, 0.0, /*free=*/true);
  for (const PointView& t : views) {
    const auto lambda0 = model_.add_vars(t.size());
    // Residual split: s = s+ - s- with s+, s- >= 0.
    const auto sp0 = model_.add_vars(d_);
    const auto sm0 = model_.add_vars(d_);
    for (std::size_t r = 0; r < d_; ++r) {
      // u[r] - sum_j lambda_j t_j[r] - s+[r] + s-[r] = 0
      std::vector<lp::Model::Term> row;
      row.push_back({u0 + r, 1.0});
      for (std::size_t j = 0; j < t.size(); ++j) {
        row.push_back({lambda0 + j, -t[j][r]});
      }
      row.push_back({sp0 + r, -1.0});
      row.push_back({sm0 + r, 1.0});
      model_.add_constraint(row, lp::Rel::kEq, 0.0);
    }
    std::vector<lp::Model::Term> sum_row;
    for (std::size_t j = 0; j < t.size(); ++j) sum_row.push_back({lambda0 + j, 1.0});
    model_.add_constraint(sum_row, lp::Rel::kEq, 1.0);

    if (p == 1.0) {
      // sum_r (s+[r] + s-[r]) <= delta
      std::vector<lp::Model::Term> norm_row;
      for (std::size_t r = 0; r < d_; ++r) {
        norm_row.push_back({sp0 + r, 1.0});
        norm_row.push_back({sm0 + r, 1.0});
      }
      delta_rows_.push_back(model_.add_constraint(norm_row, lp::Rel::kLe, 0.0));
    } else {
      // s+[r] + s-[r] <= delta per coordinate (with both >= 0, at the
      // optimum at most one side is active, so this bounds |s_r|).
      for (std::size_t r = 0; r < d_; ++r) {
        delta_rows_.push_back(model_.add_constraint(
            {{sp0 + r, 1.0}, {sm0 + r, 1.0}}, lp::Rel::kLe, 0.0));
      }
    }
  }

  lp::SimplexOptions opts;
  opts.tol = std::min(tol, 1e-8);
  solver_.set_options(opts);
  solver_.reset();  // results must not depend on prior workspace history
}

std::optional<Vec> GammaDeltaProbe::probe(double delta) {
  RBVC_REQUIRE(delta >= 0.0, "gamma_delta_point_linear: delta must be >= 0");
  for (lp::Model::RowId row : delta_rows_) model_.set_rhs(row, delta);
  lp::Solution sol;
  if (!primed_) {
    sol = model_.solve_with(solver_);
    primed_ = true;
  } else {
    sol = model_.resolve_rhs_with(solver_);
  }
  if (sol.status != lp::Status::kOptimal) return std::nullopt;
  return Vec(sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(d_));
}

std::optional<Vec> gamma_delta_point_linear(const std::vector<Vec>& y,
                                            std::size_t f, double delta,
                                            double p, double tol,
                                            GeometryWorkspace& ws) {
  RBVC_REQUIRE(p == 1.0 || p >= kInfNorm,
               "gamma_delta_point_linear: p must be 1 or inf");
  RBVC_REQUIRE(delta >= 0.0, "gamma_delta_point_linear: delta must be >= 0");
  GammaDeltaProbe probe(y, f, p, tol, ws);
  return probe.probe(delta);
}

std::optional<Vec> gamma_delta2_point(const std::vector<Vec>& y, std::size_t f,
                                      double delta, double tol) {
  const auto subsets = drop_f_subsets(y, f);
  std::optional<Vec> p = pocs_point_within(subsets, delta, mean(y));
  if (!p) return std::nullopt;
  // POCS tolerance is loose; accept only genuine witnesses.
  if (gamma_excess(*p, y, f, 2.0, tol) > delta + kLooseTol * 10.0) {
    return std::nullopt;
  }
  return p;
}

double gamma_excess(const Vec& u, const std::vector<Vec>& y, std::size_t f,
                    double p, double tol, GeometryWorkspace& ws) {
  const auto views = ws.drop_f_views(y, f);
  double worst = 0.0;
  if (p == 1.0 || p >= kInfNorm) {
    // The per-subset distance LPs all have the same shape (only f of the
    // points differ between consecutive subsets), so one warm solver's
    // retained basis carries across them.
    lp::IncrementalSolver& solver = ws.solver();
    solver.reset();  // results must not depend on prior workspace history
    for (const PointView& t : views) {
      worst = std::max(
          worst, detail::lp_projection_via_lp(u, t, p, tol, &solver).distance);
    }
  } else {
    for (const PointView& t : views) {
      worst = std::max(worst, distance_to_hull(u, t, p, tol));
    }
  }
  return worst;
}

}  // namespace rbvc
