// The Gamma operators (paper Sec. 3 and Sec. 9):
//
//   Gamma(Y)          = intersection over |T| = |Y|-f of H(T)
//   Gamma_(delta,p)(Y) = intersection over |T| = |Y|-f of H_(delta,p)(T)
//
// Gamma(Y) is the classic Byzantine "safe area" (non-empty whenever
// |Y| >= (d+1)f + 1 by Tverberg); the (delta,p) variant is what ALGO
// (Sec. 9) intersects after relaxation.
#pragma once

#include <optional>

#include "hull/relaxed_hull.h"

namespace rbvc {

/// A point of Gamma(Y) (deterministic for fixed input), or nullopt when the
/// intersection is empty.
std::optional<Vec> gamma_point(const std::vector<Vec>& y, std::size_t f,
                               double tol = kTol);

/// A point of Gamma_(delta,p)(Y) for p = 1 or p = inf (exact, via LP), or
/// nullopt when empty.
std::optional<Vec> gamma_delta_point_linear(const std::vector<Vec>& y,
                                            std::size_t f, double delta,
                                            double p, double tol = kTol);

/// A point of Gamma_(delta,2)(Y) via cyclic projections seeded at the
/// centroid; nullopt when no witness was found (empty or budget exhausted).
std::optional<Vec> gamma_delta2_point(const std::vector<Vec>& y, std::size_t f,
                                      double delta, double tol = kTol);

/// max_i dist_p(u, H(T_i)) over the size-(|Y|-f) sub-multisets: u lies in
/// Gamma_(delta,p)(Y) iff this is <= delta.
double gamma_excess(const Vec& u, const std::vector<Vec>& y, std::size_t f,
                    double p, double tol = kTol);

}  // namespace rbvc
