// The Gamma operators (paper Sec. 3 and Sec. 9):
//
//   Gamma(Y)          = intersection over |T| = |Y|-f of H(T)
//   Gamma_(delta,p)(Y) = intersection over |T| = |Y|-f of H_(delta,p)(T)
//
// Gamma(Y) is the classic Byzantine "safe area" (non-empty whenever
// |Y| >= (d+1)f + 1 by Tverberg); the (delta,p) variant is what ALGO
// (Sec. 9) intersects after relaxation.
//
// Each query threads a GeometryWorkspace (defaulting to the thread-local
// one) for subset index views and warm-started LP re-solves; results are
// independent of workspace history (solvers are reset per entry point).
#pragma once

#include <optional>

#include "hull/relaxed_hull.h"
#include "lp/model.h"

namespace rbvc {

/// A point of Gamma(Y) (deterministic for fixed input), or nullopt when the
/// intersection is empty.
std::optional<Vec> gamma_point(const std::vector<Vec>& y, std::size_t f,
                               double tol = kTol,
                               GeometryWorkspace& ws = GeometryWorkspace::local());

/// A point of Gamma_(delta,p)(Y) for p = 1 or p = inf (exact, via LP), or
/// nullopt when empty.
std::optional<Vec> gamma_delta_point_linear(
    const std::vector<Vec>& y, std::size_t f, double delta, double p,
    double tol = kTol, GeometryWorkspace& ws = GeometryWorkspace::local());

/// A point of Gamma_(delta,2)(Y) via cyclic projections seeded at the
/// centroid; nullopt when no witness was found (empty or budget exhausted).
std::optional<Vec> gamma_delta2_point(const std::vector<Vec>& y, std::size_t f,
                                      double delta, double tol = kTol);

/// max_i dist_p(u, H(T_i)) over the size-(|Y|-f) sub-multisets: u lies in
/// Gamma_(delta,p)(Y) iff this is <= delta. For p in {1, inf} the per-subset
/// distance LPs share one warm-started solver (same shape, basis reuse).
double gamma_excess(const Vec& u, const std::vector<Vec>& y, std::size_t f,
                    double p, double tol = kTol,
                    GeometryWorkspace& ws = GeometryWorkspace::local());

/// Reusable feasibility probe for "is Gamma_(delta,p)(Y) non-empty?" across
/// many values of delta (the delta* bisection). The LP is built once; delta
/// only appears on the right-hand side of the norm rows, so after the first
/// (cold) solve every probe is a warm dual-simplex re-solve on the
/// workspace's dedicated bisection solver. Verdicts and witnesses are
/// identical to gamma_delta_point_linear's (the solver falls back to a cold
/// solve of the same LP whenever warm state is unusable, and infeasible
/// verdicts keep the basis warm).
///
/// At most one probe per workspace may be alive at a time (it owns the
/// workspace's bisect_solver slot); the borrowed `y` must outlive it.
class GammaDeltaProbe {
 public:
  GammaDeltaProbe(const std::vector<Vec>& y, std::size_t f, double p,
                  double tol, GeometryWorkspace& ws = GeometryWorkspace::local());

  /// Witness point of Gamma_(delta,p)(Y), or nullopt when empty. The first
  /// call is a cold solve; later calls re-solve warm.
  std::optional<Vec> probe(double delta);

 private:
  lp::Model model_;
  std::vector<lp::Model::RowId> delta_rows_;
  lp::IncrementalSolver& solver_;
  std::size_t d_ = 0;
  bool primed_ = false;
};

}  // namespace rbvc
