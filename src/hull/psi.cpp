#include "hull/psi.h"

#include <algorithm>

#include "geometry/poly2d.h"

namespace rbvc {

namespace {

using VarId = lp::Model::VarId;

// Adds "the point at variables u0..u0+d-1 lies in H_k(T)" to the model.
void add_k_membership(lp::Model& m, VarId u0, std::size_t d,
                      const std::vector<Vec>& t, std::size_t k, double tol) {
  RBVC_REQUIRE(!t.empty(), "psi: empty multiset T");
  if (k == 1) {
    for (std::size_t i = 0; i < d; ++i) {
      double lo = t.front()[i], hi = t.front()[i];
      for (const Vec& v : t) {
        lo = std::min(lo, v[i]);
        hi = std::max(hi, v[i]);
      }
      m.add_constraint({{u0 + i, 1.0}}, lp::Rel::kLe, hi);
      m.add_constraint({{u0 + i, 1.0}}, lp::Rel::kGe, lo);
    }
    return;
  }
  if (k == 2) {
    for (const auto& d_set : k_subsets(d, 2)) {
      std::vector<Point2> proj;
      proj.reserve(t.size());
      for (const Vec& v : t) proj.push_back({v[d_set[0]], v[d_set[1]]});
      for (const Halfplane& h : hull_halfplanes_2d(proj, tol)) {
        m.add_constraint({{u0 + d_set[0], h.a}, {u0 + d_set[1], h.b}},
                         lp::Rel::kLe, h.c);
      }
    }
    return;
  }
  // General k: one barycentric block per projection index set D.
  for (const auto& d_set : k_subsets(d, k)) {
    const auto lambda0 = m.add_vars(t.size());
    for (std::size_t r = 0; r < k; ++r) {
      std::vector<lp::Model::Term> row;
      row.push_back({u0 + d_set[r], 1.0});
      for (std::size_t j = 0; j < t.size(); ++j) {
        row.push_back({lambda0 + j, -t[j][d_set[r]]});
      }
      m.add_constraint(row, lp::Rel::kEq, 0.0);
    }
    std::vector<lp::Model::Term> sum_row;
    for (std::size_t j = 0; j < t.size(); ++j) {
      sum_row.push_back({lambda0 + j, 1.0});
    }
    m.add_constraint(sum_row, lp::Rel::kEq, 1.0);
  }
}

// Adds "the point at u0.. lies within delta of H(T) in the given norm
// (p = 1 or inf)" to the model.
void add_delta_membership(lp::Model& m, VarId u0, std::size_t d,
                          const std::vector<Vec>& t, double delta, double p) {
  RBVC_REQUIRE(p == 1.0 || p >= kInfNorm,
               "psi: (delta,p) LP encoding needs p in {1, inf}");
  RBVC_REQUIRE(delta >= 0.0, "psi: delta must be >= 0");
  const auto lambda0 = m.add_vars(t.size());
  const auto sp0 = m.add_vars(d);
  const auto sm0 = m.add_vars(d);
  for (std::size_t r = 0; r < d; ++r) {
    std::vector<lp::Model::Term> row;
    row.push_back({u0 + r, 1.0});
    for (std::size_t j = 0; j < t.size(); ++j) {
      row.push_back({lambda0 + j, -t[j][r]});
    }
    row.push_back({sp0 + r, -1.0});
    row.push_back({sm0 + r, 1.0});
    m.add_constraint(row, lp::Rel::kEq, 0.0);
  }
  std::vector<lp::Model::Term> sum_row;
  for (std::size_t j = 0; j < t.size(); ++j) sum_row.push_back({lambda0 + j, 1.0});
  m.add_constraint(sum_row, lp::Rel::kEq, 1.0);
  if (p == 1.0) {
    std::vector<lp::Model::Term> norm_row;
    for (std::size_t r = 0; r < d; ++r) {
      norm_row.push_back({sp0 + r, 1.0});
      norm_row.push_back({sm0 + r, 1.0});
    }
    m.add_constraint(norm_row, lp::Rel::kLe, delta);
  } else {
    for (std::size_t r = 0; r < d; ++r) {
      m.add_constraint({{sp0 + r, 1.0}, {sm0 + r, 1.0}}, lp::Rel::kLe, delta);
    }
  }
}

void add_spec(lp::Model& m, VarId u0, std::size_t d,
              const RelaxedIntersectionSpec& spec, double tol) {
  for (const auto& t : spec.parts) {
    if (spec.k >= 1) {
      add_k_membership(m, u0, d, t, spec.k, tol);
    } else {
      add_delta_membership(m, u0, d, t, spec.delta, spec.p);
    }
  }
}

lp::SimplexOptions options_for(double tol) {
  lp::SimplexOptions o;
  o.tol = std::min(tol, 1e-8);
  o.max_iters = 200'000;
  return o;
}

}  // namespace

std::optional<Vec> relaxed_intersection_point(
    const RelaxedIntersectionSpec& spec, double tol) {
  RBVC_REQUIRE(!spec.parts.empty(), "relaxed_intersection_point: no parts");
  const std::size_t d = spec.parts.front().front().size();
  lp::Model m;
  const auto u0 = m.add_vars(d, 0.0, /*free=*/true);
  add_spec(m, u0, d, spec, tol);
  const lp::Solution sol = m.solve(options_for(tol));
  if (sol.status != lp::Status::kOptimal) return std::nullopt;
  return Vec(sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(d));
}

std::optional<double> relaxed_intersection_linf_gap(
    const RelaxedIntersectionSpec& a, const RelaxedIntersectionSpec& b,
    double tol) {
  RBVC_REQUIRE(!a.parts.empty() && !b.parts.empty(),
               "relaxed_intersection_linf_gap: no parts");
  const std::size_t d = a.parts.front().front().size();
  lp::Model m;
  const auto u0 = m.add_vars(d, 0.0, /*free=*/true);
  const auto v0 = m.add_vars(d, 0.0, /*free=*/true);
  const auto gap = m.add_var(1.0);  // minimize the Linf gap
  add_spec(m, u0, d, a, tol);
  add_spec(m, v0, d, b, tol);
  for (std::size_t r = 0; r < d; ++r) {
    // -gap <= u[r] - v[r] <= gap
    m.add_constraint({{u0 + r, 1.0}, {v0 + r, -1.0}, {gap, -1.0}},
                     lp::Rel::kLe, 0.0);
    m.add_constraint({{u0 + r, 1.0}, {v0 + r, -1.0}, {gap, 1.0}},
                     lp::Rel::kGe, 0.0);
  }
  const lp::Solution sol = m.solve(options_for(tol));
  if (sol.status != lp::Status::kOptimal) return std::nullopt;
  return std::max(0.0, sol.objective);
}

std::optional<Vec> psi_k_point(const std::vector<Vec>& y, std::size_t f,
                               std::size_t k, double tol) {
  RelaxedIntersectionSpec spec;
  spec.parts = drop_f_subsets(y, f);
  spec.k = k;
  return relaxed_intersection_point(spec, tol);
}

}  // namespace rbvc
