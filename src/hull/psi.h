// The Psi operators used in the paper's impossibility proofs:
//
//   Psi(Y)   = intersection over |T| = |Y|-f of H_k(T)        (Thm 3)
//   Psi^i(S) = intersection over j != i of H_k(S^j)           (Thm 4/App. B)
//
// and (delta,p) analogues (Thm 5/6, App. C). Each is a convex feasibility
// problem; we solve them exactly by LP:
//   k = 1 -> per-coordinate interval intersection (encoded as bounds)
//   k = 2 -> halfplane constraints from the 2-D hulls of every projection
//   k > 2 -> barycentric (lambda) blocks per (D, T) pair
// For (delta,p) with p in {1, inf}, membership is linear as well.
//
// `psi_point` answers "is the intersection non-empty (and give a witness)";
// `linf_gap` answers "how far apart are two such intersections at minimum"
// -- the quantity Appendix B/C lower-bound to break epsilon-agreement.
#pragma once

#include <optional>

#include "hull/relaxed_hull.h"
#include "lp/model.h"

namespace rbvc {

/// Describes one intersection of relaxed hulls: for every multiset in
/// `parts`, the point must lie in that multiset's relaxed hull.
struct RelaxedIntersectionSpec {
  std::vector<std::vector<Vec>> parts;  // the T's
  std::size_t k = 0;      // k-relaxed when k >= 1 (delta/p ignored)
  double delta = 0.0;     // (delta,p)-relaxed when k == 0
  double p = kInfNorm;    // must be 1 or inf for the (delta,p) LP encoding
};

/// A point in the intersection described by `spec`, or nullopt when empty.
std::optional<Vec> relaxed_intersection_point(
    const RelaxedIntersectionSpec& spec, double tol = kTol);

/// Minimum over u in A, v in B of ||u - v||_inf, where A and B are relaxed
/// intersections per the two specs (e.g. Psi^1 and Psi^2 of Appendix B).
/// Returns nullopt when either set is empty; 0 means they touch/overlap.
std::optional<double> relaxed_intersection_linf_gap(
    const RelaxedIntersectionSpec& a, const RelaxedIntersectionSpec& b,
    double tol = kTol);

/// Psi_k(Y) over the standard drop-f sub-multisets (paper Thm 3): a witness
/// point or nullopt when Psi is empty.
std::optional<Vec> psi_k_point(const std::vector<Vec>& y, std::size_t f,
                               std::size_t k, double tol = kTol);

}  // namespace rbvc
