#include "hull/relaxed_hull.h"

#include "geometry/hull.h"

namespace rbvc {

bool in_k_relaxed_hull(const Vec& u, const std::vector<Vec>& s, std::size_t k,
                       double tol) {
  RBVC_REQUIRE(!s.empty(), "in_k_relaxed_hull: empty multiset");
  const std::size_t d = u.size();
  RBVC_REQUIRE(k >= 1 && k <= d, "in_k_relaxed_hull: need 1 <= k <= d");
  for (const auto& d_set : k_subsets(d, k)) {
    if (!in_hull(project(u, d_set), project_all(s, d_set), tol)) return false;
  }
  return true;
}

bool in_delta_p_hull(const Vec& u, const std::vector<Vec>& s, double delta,
                     double p, double tol) {
  RBVC_REQUIRE(delta >= 0.0, "in_delta_p_hull: delta must be >= 0");
  return hull_distance(u, s, p, tol) <= delta + tol;
}

double hull_distance(const Vec& u, PointView s, double p, double tol) {
  return distance_to_hull(u, s, p, tol);
}

std::vector<std::vector<std::size_t>> subsets_minus_f(std::size_t n,
                                                      std::size_t f) {
  RBVC_REQUIRE(f < n, "subsets_minus_f: need f < n");
  return k_subsets(n, n - f);
}

std::vector<PointView> drop_f_views(const std::vector<Vec>& s, std::size_t f,
                                    GeometryWorkspace& ws) {
  return ws.drop_f_views(s, f);
}

std::vector<std::vector<Vec>> drop_f_subsets(const std::vector<Vec>& s,
                                             std::size_t f) {
  std::vector<std::vector<Vec>> out;
  for (const auto& idx : subsets_minus_f(s.size(), f)) {
    std::vector<Vec> t;
    t.reserve(idx.size());
    for (std::size_t i : idx) t.push_back(s[i]);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace rbvc
