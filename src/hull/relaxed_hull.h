// The paper's relaxed convex hulls (Sec. 5):
//
//   H_k(S)       = { u : g_D(u) in H(g_D(S)) for every size-k index set D }
//   H_(delta,p)(S) = { u : dist_p(u, H(S)) <= delta }
//
// plus the containment lemmas' membership oracles.
#pragma once

#include <vector>

#include "geometry/distance.h"
#include "geometry/projection.h"
#include "geometry/workspace.h"

namespace rbvc {

/// True iff u lies in the k-relaxed hull H_k(S) (Definition 6).
bool in_k_relaxed_hull(const Vec& u, const std::vector<Vec>& s, std::size_t k,
                       double tol = kTol);

/// True iff u lies in the (delta,p)-relaxed hull H_(delta,p)(S)
/// (Definition 9). p in {1, 2} or rbvc::kInfNorm are exact; other p >= 1 is
/// iterative.
bool in_delta_p_hull(const Vec& u, const std::vector<Vec>& s, double delta,
                     double p, double tol = kTol);

/// dist_p(u, H(S)) -- convenience re-export used throughout the consensus
/// layer (0 when u is inside the hull).
double hull_distance(const Vec& u, PointView s, double p, double tol = kTol);

/// All sub-multisets of `s` of size |s| - f, as index combinations into `s`
/// (the T's of the paper's Gamma and Psi operators). Requires f < |s|.
std::vector<std::vector<std::size_t>> subsets_minus_f(std::size_t n,
                                                      std::size_t f);

/// Index views over the subsets_minus_f point sets -- no point copies. The
/// views borrow `s` and the workspace's memoized index lists.
std::vector<PointView> drop_f_views(
    const std::vector<Vec>& s, std::size_t f,
    GeometryWorkspace& ws = GeometryWorkspace::local());

/// Materializes the point sets for subsets_minus_f (copying; prefer
/// drop_f_views on hot paths).
std::vector<std::vector<Vec>> drop_f_subsets(const std::vector<Vec>& s,
                                             std::size_t f);

}  // namespace rbvc
