#include "linalg/lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rbvc {

LU::LU(const Matrix& a, double tol)
    : n_(a.rows()), lu_(a), p_(a.rows()) {
  RBVC_REQUIRE(a.rows() == a.cols(), "LU: matrix must be square");
  std::iota(p_.begin(), p_.end(), std::size_t{0});
  // Scale tolerance to the magnitude of the matrix so very large or very
  // small but well-conditioned systems are handled uniformly.
  const double scale = std::max(1.0, lu_.max_abs());
  const double pivot_tol = tol * scale;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: largest absolute entry in column k, rows k..n-1.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best <= pivot_tol) {
      singular_ = true;
      return;
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n_; ++c)
        std::swap(lu_(piv, c), lu_(k, c));
      std::swap(p_[piv], p_[k]);
      sign_ = -sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = lu_(r, k) * inv_pivot;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) {
        lu_(r, c) -= m * lu_(k, c);
      }
    }
  }
}

Vec LU::solve(const Vec& b) const {
  RBVC_REQUIRE(!singular_, "LU::solve: matrix is singular");
  RBVC_REQUIRE(b.size() == n_, "LU::solve: size mismatch");
  Vec x(n_);
  // Forward substitution with permuted right-hand side (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double s = b[p_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Matrix LU::inverse() const {
  RBVC_REQUIRE(!singular_, "LU::inverse: matrix is singular");
  Matrix inv(n_, n_);
  for (std::size_t c = 0; c < n_; ++c) {
    Vec e(n_, 0.0);
    e[c] = 1.0;
    inv.set_col(c, solve(e));
  }
  return inv;
}

double LU::det() const {
  if (singular_) return 0.0;
  double d = static_cast<double>(sign_);
  for (std::size_t i = 0; i < n_; ++i) d *= lu_(i, i);
  return d;
}

std::optional<Vec> solve(const Matrix& a, const Vec& b, double tol) {
  LU lu(a, tol);
  if (lu.singular()) return std::nullopt;
  return lu.solve(b);
}

std::optional<Matrix> inverse(const Matrix& a, double tol) {
  LU lu(a, tol);
  if (lu.singular()) return std::nullopt;
  return lu.inverse();
}

std::size_t rank(const Matrix& a, double tol) {
  Matrix m = a;
  const std::size_t rows = m.rows(), cols = m.cols();
  const double scale = std::max(1.0, m.max_abs());
  const double pivot_tol = tol * scale;
  std::size_t r = 0;
  for (std::size_t c = 0; c < cols && r < rows; ++c) {
    std::size_t piv = r;
    double best = std::abs(m(r, c));
    for (std::size_t i = r + 1; i < rows; ++i) {
      if (std::abs(m(i, c)) > best) {
        best = std::abs(m(i, c));
        piv = i;
      }
    }
    if (best <= pivot_tol) continue;
    if (piv != r) {
      for (std::size_t j = 0; j < cols; ++j) std::swap(m(piv, j), m(r, j));
    }
    const double inv_pivot = 1.0 / m(r, c);
    for (std::size_t i = r + 1; i < rows; ++i) {
      const double f = m(i, c) * inv_pivot;
      if (f == 0.0) continue;
      for (std::size_t j = c; j < cols; ++j) m(i, j) -= f * m(r, j);
    }
    ++r;
  }
  return r;
}

}  // namespace rbvc
