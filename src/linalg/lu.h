// LU decomposition with partial pivoting: solve, inverse, determinant.
// Used by the simplex-geometry layer to compute the `b_i` dual vectors of
// the paper's Lemmas 11-12 (B = (A^{-1})^T).
#pragma once

#include <optional>

#include "linalg/matrix.h"

namespace rbvc {

/// LU factorization PA = LU of a square matrix, with partial pivoting.
/// Construction never throws on singular input; check `singular()`.
class LU {
 public:
  explicit LU(const Matrix& a, double tol = kTol);

  /// True when a pivot fell below tolerance (matrix numerically singular).
  bool singular() const { return singular_; }

  /// Solves A x = b. Requires !singular(), b.size() == n.
  Vec solve(const Vec& b) const;

  /// Inverse of A. Requires !singular().
  Matrix inverse() const;

  /// Determinant of A (0 when singular was detected).
  double det() const;

 private:
  std::size_t n_;
  Matrix lu_;                   // combined L (unit lower) and U factors
  std::vector<std::size_t> p_;  // row permutation
  int sign_ = 1;
  bool singular_ = false;
};

/// Convenience: solves A x = b, or nullopt when A is numerically singular.
std::optional<Vec> solve(const Matrix& a, const Vec& b, double tol = kTol);

/// Convenience: inverse of A, or nullopt when numerically singular.
std::optional<Matrix> inverse(const Matrix& a, double tol = kTol);

/// Numerical rank via Gaussian elimination with full column search and
/// relative tolerance. Works for rectangular matrices.
std::size_t rank(const Matrix& a, double tol = kTol);

}  // namespace rbvc
