#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace rbvc {

Matrix Matrix::from_columns(const std::vector<Vec>& cols) {
  RBVC_REQUIRE(!cols.empty(), "from_columns: empty column list");
  const std::size_t d = cols.front().size();
  Matrix m(d, cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    RBVC_REQUIRE(cols[c].size() == d, "from_columns: ragged columns");
    for (std::size_t r = 0; r < d; ++r) m(r, c) = cols[c][r];
  }
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vec>& rows) {
  RBVC_REQUIRE(!rows.empty(), "from_rows: empty row list");
  const std::size_t d = rows.front().size();
  Matrix m(rows.size(), d);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    RBVC_REQUIRE(rows[r].size() == d, "from_rows: ragged rows");
    for (std::size_t c = 0; c < d; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vec Matrix::row(std::size_t r) const {
  RBVC_REQUIRE(r < rows_, "row: index out of range");
  Vec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vec Matrix::col(std::size_t c) const {
  RBVC_REQUIRE(c < cols_, "col: index out of range");
  Vec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vec& v) {
  RBVC_REQUIRE(r < rows_ && v.size() == cols_, "set_row: shape mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::set_col(std::size_t c, const Vec& v) {
  RBVC_REQUIRE(c < cols_ && v.size() == rows_, "set_col: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Vec Matrix::operator*(const Vec& x) const {
  RBVC_REQUIRE(x.size() == cols_, "matvec: shape mismatch");
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * x[c];
    y[r] = s;
  }
  return y;
}

Matrix Matrix::operator*(const Matrix& other) const {
  RBVC_REQUIRE(cols_ == other.rows(), "matmul: shape mismatch");
  Matrix out(rows_, other.cols());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols(); ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace rbvc
