// Dense row-major matrix with the handful of operations the geometry and LP
// layers need. Sized for the paper's regime (tens of rows/columns), so the
// implementation favors clarity and numerical care over blocking/SIMD.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vec.h"

namespace rbvc {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix whose columns are the given equal-dimension vectors.
  static Matrix from_columns(const std::vector<Vec>& cols);

  /// Builds a matrix whose rows are the given equal-dimension vectors.
  static Matrix from_rows(const std::vector<Vec>& rows);

  /// The n-by-n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Vec row(std::size_t r) const;
  Vec col(std::size_t c) const;
  void set_row(std::size_t r, const Vec& v);
  void set_col(std::size_t c, const Vec& v);

  Matrix transpose() const;

  /// Matrix-vector product (cols() must equal x.size()).
  Vec operator*(const Vec& x) const;

  /// Matrix-matrix product (cols() must equal other.rows()).
  Matrix operator*(const Matrix& other) const;

  /// Maximum absolute entry; 0 for an empty matrix.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace rbvc
