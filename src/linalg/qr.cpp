#include "linalg/qr.h"

#include <algorithm>
#include <cmath>

#include "linalg/lu.h"

namespace rbvc {

std::vector<Vec> orthonormal_basis(const std::vector<Vec>& vs, double tol) {
  std::vector<Vec> basis;
  double max_norm = 0.0;
  for (const Vec& v : vs) max_norm = std::max(max_norm, norm2(v));
  if (max_norm == 0.0) return basis;
  const double drop = tol * max_norm;

  for (const Vec& v : vs) {
    Vec r = v;
    // Two MGS passes for re-orthogonalization stability.
    for (int pass = 0; pass < 2; ++pass) {
      for (const Vec& q : basis) axpy(-dot(q, r), q, r);
    }
    const double nr = norm2(r);
    if (nr > drop) basis.push_back(scale(1.0 / nr, r));
  }
  return basis;
}

Vec coords_in_basis(const std::vector<Vec>& basis, const Vec& x) {
  Vec c(basis.size());
  for (std::size_t i = 0; i < basis.size(); ++i) c[i] = dot(basis[i], x);
  return c;
}

double dist2_to_span(const std::vector<Vec>& basis, const Vec& x) {
  Vec r = x;
  for (const Vec& q : basis) axpy(-dot(q, r), q, r);
  return dot(r, r);
}

std::optional<Vec> least_squares(const Matrix& a, const Vec& b, double tol) {
  RBVC_REQUIRE(a.rows() == b.size(), "least_squares: shape mismatch");
  const Matrix at = a.transpose();
  const Matrix ata = at * a;
  const Vec atb = at * b;
  return solve(ata, atb, tol);
}

std::optional<Vec> nullspace_vector(const Matrix& a, double tol) {
  const std::size_t rows = a.rows(), cols = a.cols();
  if (cols == 0) return std::nullopt;
  // Reduce to row echelon form tracking pivot columns.
  Matrix m = a;
  const double scale_tol = tol * std::max(1.0, m.max_abs());
  std::vector<std::size_t> pivot_col_of_row;
  std::size_t r = 0;
  std::vector<bool> is_pivot(cols, false);
  for (std::size_t c = 0; c < cols && r < rows; ++c) {
    std::size_t piv = r;
    double best = std::abs(m(r, c));
    for (std::size_t i = r + 1; i < rows; ++i) {
      if (std::abs(m(i, c)) > best) {
        best = std::abs(m(i, c));
        piv = i;
      }
    }
    if (best <= scale_tol) continue;
    if (piv != r) {
      for (std::size_t j = 0; j < cols; ++j) std::swap(m(piv, j), m(r, j));
    }
    const double inv = 1.0 / m(r, c);
    for (std::size_t j = 0; j < cols; ++j) m(r, j) *= inv;
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == r) continue;
      const double f = m(i, c);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < cols; ++j) m(i, j) -= f * m(r, j);
    }
    pivot_col_of_row.push_back(c);
    is_pivot[c] = true;
    ++r;
  }
  // Pick the first free column; back-substitute a kernel vector.
  std::size_t free_col = cols;
  for (std::size_t c = 0; c < cols; ++c) {
    if (!is_pivot[c]) {
      free_col = c;
      break;
    }
  }
  if (free_col == cols) return std::nullopt;  // full column rank
  Vec x(cols, 0.0);
  x[free_col] = 1.0;
  for (std::size_t row = 0; row < pivot_col_of_row.size(); ++row) {
    x[pivot_col_of_row[row]] = -m(row, free_col);
  }
  const double nx = norm2(x);
  return scale(1.0 / nx, x);
}

bool affinely_independent(const std::vector<Vec>& points, double tol) {
  if (points.size() <= 1) return true;
  std::vector<Vec> diffs;
  diffs.reserve(points.size() - 1);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    diffs.push_back(sub(points[i], points.back()));
  }
  return orthonormal_basis(diffs, tol).size() == points.size() - 1;
}

}  // namespace rbvc
