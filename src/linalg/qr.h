// Orthonormalization utilities (modified Gram-Schmidt) and least squares.
//
// The paper's Theorems 8 and 9 (Case II) rely on a distance-preserving
// projection of n points onto the subspace their differences span; that
// projection is implemented here as "coordinates in an orthonormal basis".
#pragma once

#include <optional>

#include "linalg/matrix.h"

namespace rbvc {

/// Orthonormal basis of span{vs...} via modified Gram-Schmidt; vectors whose
/// residual falls below `tol * max_input_norm` are dropped. Result may be
/// empty (all inputs ~ zero).
std::vector<Vec> orthonormal_basis(const std::vector<Vec>& vs,
                                   double tol = kTol);

/// Coordinates of x in the given orthonormal basis. If x lies in the span,
/// the map is an isometry: distances between projected points equal
/// distances between originals.
Vec coords_in_basis(const std::vector<Vec>& basis, const Vec& x);

/// Squared distance from x to span(basis) (basis must be orthonormal).
double dist2_to_span(const std::vector<Vec>& basis, const Vec& x);

/// Least-squares solution of min ||A x - b||_2 via normal equations.
/// Returns nullopt when A^T A is numerically singular (rank-deficient A).
std::optional<Vec> least_squares(const Matrix& a, const Vec& b,
                                 double tol = kTol);

/// True if the points are affinely independent (the d+1-point general
/// position test of the paper's Lemmas 11-15): differences to the last
/// point have full rank points.size()-1.
bool affinely_independent(const std::vector<Vec>& points, double tol = kTol);

/// A non-trivial vector x with A x ~= 0 (unit norm), or nullopt when A has
/// full column rank (trivial kernel) within tol. Used by the Caratheodory
/// reduction to find affine dependencies.
std::optional<Vec> nullspace_vector(const Matrix& a, double tol = kTol);

}  // namespace rbvc
