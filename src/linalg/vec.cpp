#include "linalg/vec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rbvc {

namespace {
void check_same_dim(const Vec& x, const Vec& y, const char* op) {
  RBVC_REQUIRE(x.size() == y.size(),
               std::string(op) + ": dimension mismatch (" +
                   std::to_string(x.size()) + " vs " +
                   std::to_string(y.size()) + ")");
}
}  // namespace

Vec add(const Vec& x, const Vec& y) {
  Vec r;
  add_into(x, y, r);
  return r;
}

Vec sub(const Vec& x, const Vec& y) {
  Vec r;
  sub_into(x, y, r);
  return r;
}

Vec scale(double a, const Vec& x) {
  Vec r;
  scale_into(a, x, r);
  return r;
}

void add_into(const Vec& x, const Vec& y, Vec& out) {
  check_same_dim(x, y, "add");
  const std::size_t n = x.size();
  out.resize(n);
  const double* px = x.data();
  const double* py = y.data();
  double* po = out.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = px[i] + py[i];
}

void sub_into(const Vec& x, const Vec& y, Vec& out) {
  check_same_dim(x, y, "sub");
  const std::size_t n = x.size();
  out.resize(n);
  const double* px = x.data();
  const double* py = y.data();
  double* po = out.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = px[i] - py[i];
}

void scale_into(double a, const Vec& x, Vec& out) {
  const std::size_t n = x.size();
  out.resize(n);
  const double* px = x.data();
  double* po = out.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = a * px[i];
}

void axpy(double a, const Vec& x, Vec& y) {
  check_same_dim(x, y, "axpy");
  const std::size_t n = x.size();
  const double* px = x.data();
  double* py = y.data();
  for (std::size_t i = 0; i < n; ++i) py[i] += a * px[i];
}

double dot(const Vec& x, const Vec& y) {
  check_same_dim(x, y, "dot");
  const std::size_t n = x.size();
  const double* px = x.data();
  const double* py = y.data();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += px[i] * py[i];
  return s;
}

double lp_norm(const Vec& x, double p) {
  RBVC_REQUIRE(p >= 1.0, "lp_norm: p must be >= 1");
  if (p >= kInfNorm) {
    double m = 0.0;
    for (double v : x) m = std::max(m, std::abs(v));
    return m;
  }
  if (p == 1.0) {
    double s = 0.0;
    for (double v : x) s += std::abs(v);
    return s;
  }
  if (p == 2.0) return norm2(x);
  double s = 0.0;
  for (double v : x) s += std::pow(std::abs(v), p);
  return std::pow(s, 1.0 / p);
}

double norm2(const Vec& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

// The distance functions fuse the subtraction into the norm loop instead of
// materializing a temporary difference vector; the arithmetic (operations
// and order) matches lp_norm(sub(x, y), p) exactly.
double lp_dist(const Vec& x, const Vec& y, double p) {
  check_same_dim(x, y, "sub");
  RBVC_REQUIRE(p >= 1.0, "lp_norm: p must be >= 1");
  const std::size_t n = x.size();
  const double* px = x.data();
  const double* py = y.data();
  if (p >= kInfNorm) {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(px[i] - py[i]));
    return m;
  }
  if (p == 1.0) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += std::abs(px[i] - py[i]);
    return s;
  }
  if (p == 2.0) return dist2(x, y);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::pow(std::abs(px[i] - py[i]), p);
  return std::pow(s, 1.0 / p);
}

double dist2(const Vec& x, const Vec& y) {
  check_same_dim(x, y, "sub");
  const std::size_t n = x.size();
  const double* px = x.data();
  const double* py = y.data();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = px[i] - py[i];
    s += d * d;
  }
  return std::sqrt(s);
}

Vec mean(const std::vector<Vec>& xs) {
  Vec r;
  mean_into(xs, r);
  return r;
}

void mean_into(const std::vector<Vec>& xs, Vec& out) {
  RBVC_REQUIRE(!xs.empty(), "mean: empty list");
  const std::size_t d = xs.front().size();
  out.assign(d, 0.0);
  for (const Vec& x : xs) axpy(1.0, x, out);
  scale_into(1.0 / static_cast<double>(xs.size()), out, out);
}

bool approx_equal(const Vec& x, const Vec& y, double tol) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i] - y[i]) > tol) return false;
  }
  return true;
}

Vec zeros(std::size_t d) { return Vec(d, 0.0); }

Vec basis(std::size_t d, std::size_t i) {
  RBVC_REQUIRE(i < d, "basis: index out of range");
  Vec r(d, 0.0);
  r[i] = 1.0;
  return r;
}

std::string to_string(const Vec& x) {
  std::string s = "(";
  char buf[32];
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", x[i]);
    s += buf;
    if (i + 1 < x.size()) s += ", ";
  }
  s += ")";
  return s;
}

}  // namespace rbvc
