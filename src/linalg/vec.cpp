#include "linalg/vec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rbvc {

namespace {
void check_same_dim(const Vec& x, const Vec& y, const char* op) {
  RBVC_REQUIRE(x.size() == y.size(),
               std::string(op) + ": dimension mismatch (" +
                   std::to_string(x.size()) + " vs " +
                   std::to_string(y.size()) + ")");
}
}  // namespace

Vec add(const Vec& x, const Vec& y) {
  check_same_dim(x, y, "add");
  Vec r(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) r[i] = x[i] + y[i];
  return r;
}

Vec sub(const Vec& x, const Vec& y) {
  check_same_dim(x, y, "sub");
  Vec r(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) r[i] = x[i] - y[i];
  return r;
}

Vec scale(double a, const Vec& x) {
  Vec r(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) r[i] = a * x[i];
  return r;
}

void axpy(double a, const Vec& x, Vec& y) {
  check_same_dim(x, y, "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double dot(const Vec& x, const Vec& y) {
  check_same_dim(x, y, "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double lp_norm(const Vec& x, double p) {
  RBVC_REQUIRE(p >= 1.0, "lp_norm: p must be >= 1");
  if (p >= kInfNorm) {
    double m = 0.0;
    for (double v : x) m = std::max(m, std::abs(v));
    return m;
  }
  if (p == 1.0) {
    double s = 0.0;
    for (double v : x) s += std::abs(v);
    return s;
  }
  if (p == 2.0) return norm2(x);
  double s = 0.0;
  for (double v : x) s += std::pow(std::abs(v), p);
  return std::pow(s, 1.0 / p);
}

double norm2(const Vec& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

double lp_dist(const Vec& x, const Vec& y, double p) {
  return lp_norm(sub(x, y), p);
}

double dist2(const Vec& x, const Vec& y) { return norm2(sub(x, y)); }

Vec mean(const std::vector<Vec>& xs) {
  RBVC_REQUIRE(!xs.empty(), "mean: empty list");
  Vec r = zeros(xs.front().size());
  for (const Vec& x : xs) axpy(1.0, x, r);
  return scale(1.0 / static_cast<double>(xs.size()), r);
}

bool approx_equal(const Vec& x, const Vec& y, double tol) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i] - y[i]) > tol) return false;
  }
  return true;
}

Vec zeros(std::size_t d) { return Vec(d, 0.0); }

Vec basis(std::size_t d, std::size_t i) {
  RBVC_REQUIRE(i < d, "basis: index out of range");
  Vec r(d, 0.0);
  r[i] = 1.0;
  return r;
}

std::string to_string(const Vec& x) {
  std::string s = "(";
  char buf[32];
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", x[i]);
    s += buf;
    if (i + 1 < x.size()) s += ", ";
  }
  s += ")";
  return s;
}

}  // namespace rbvc
