// Dense d-dimensional real vectors and Lp-norm utilities.
//
// Vectors are plain `std::vector<double>` so they interoperate directly with
// the simulator's message payloads; all arithmetic lives in free functions.
#pragma once

#include <cstddef>
#include <vector>

#include "rbvc/common.h"

namespace rbvc {

using Vec = std::vector<double>;

/// Returns x + y. Dimensions must match.
Vec add(const Vec& x, const Vec& y);

/// Returns x - y. Dimensions must match.
Vec sub(const Vec& x, const Vec& y);

/// Returns a * x.
Vec scale(double a, const Vec& x);

/// out = x + y, reusing out's storage. Dimensions must match; out may alias
/// x or y.
void add_into(const Vec& x, const Vec& y, Vec& out);

/// out = x - y, reusing out's storage. Dimensions must match; out may alias
/// x or y.
void sub_into(const Vec& x, const Vec& y, Vec& out);

/// out = a * x, reusing out's storage. out may alias x.
void scale_into(double a, const Vec& x, Vec& out);

/// In-place y += a * x. Dimensions must match.
void axpy(double a, const Vec& x, Vec& y);

/// Dot product <x, y>. Dimensions must match.
double dot(const Vec& x, const Vec& y);

/// Lp norm of x for p >= 1; pass rbvc::kInfNorm (or any p >= kInfNorm)
/// for the L-infinity norm.
double lp_norm(const Vec& x, double p);

/// Euclidean (L2) norm.
double norm2(const Vec& x);

/// Lp distance ||x - y||_p. Dimensions must match.
double lp_dist(const Vec& x, const Vec& y, double p);

/// Euclidean distance ||x - y||_2.
double dist2(const Vec& x, const Vec& y);

/// Component-wise mean of a non-empty list of equal-dimension vectors.
Vec mean(const std::vector<Vec>& xs);

/// Component-wise mean into out, reusing its storage. Produces bit-identical
/// results to mean() (same summation order).
void mean_into(const std::vector<Vec>& xs, Vec& out);

/// True if ||x - y||_inf <= tol.
bool approx_equal(const Vec& x, const Vec& y, double tol = kTol);

/// The all-zero vector of dimension d.
Vec zeros(std::size_t d);

/// The i-th standard basis vector (d-dimensional, e_i[i] = 1).
Vec basis(std::size_t d, std::size_t i);

/// Human-readable "(x1, x2, ...)" rendering, for traces and reports.
std::string to_string(const Vec& x);

}  // namespace rbvc
