#include "lp/model.h"

namespace rbvc::lp {

Model::VarId Model::add_var(double objective_coeff, bool free) {
  obj_.push_back(objective_coeff);
  free_.push_back(free);
  return obj_.size() - 1;
}

Model::VarId Model::add_vars(std::size_t count, double objective_coeff,
                             bool free) {
  RBVC_REQUIRE(count > 0, "add_vars: count must be positive");
  const VarId first = obj_.size();
  for (std::size_t i = 0; i < count; ++i) add_var(objective_coeff, free);
  return first;
}

void Model::add_constraint(const std::vector<Term>& terms, Rel rel,
                           double rhs) {
  for (const Term& t : terms) {
    RBVC_REQUIRE(t.var < obj_.size(), "add_constraint: unknown variable");
  }
  rows_.push_back(terms);
  rels_.push_back(rel);
  rhs_.push_back(rhs);
}

void Model::set_objective_coeff(VarId v, double c) {
  RBVC_REQUIRE(v < obj_.size(), "set_objective_coeff: unknown variable");
  obj_[v] = c;
}

Solution Model::solve(const SimplexOptions& opts) const {
  // Column layout: for each model variable, one standard column (x >= 0) or
  // two (x+ and x-) when free; then one slack/surplus column per inequality.
  const std::size_t nv = obj_.size();
  std::vector<std::size_t> col_of(nv);        // positive-part column
  std::vector<std::size_t> neg_col_of(nv, 0); // negative-part column (free)
  std::size_t ncols = 0;
  for (std::size_t v = 0; v < nv; ++v) {
    col_of[v] = ncols++;
    if (free_[v]) neg_col_of[v] = ncols++;
  }
  std::size_t n_slack = 0;
  for (Rel r : rels_) {
    if (r != Rel::kEq) ++n_slack;
  }
  const std::size_t total = ncols + n_slack;
  const std::size_t m = rows_.size();

  Matrix a(m, total);
  Vec b = rhs_;
  Vec c(total, 0.0);
  const double obj_sign = (sense_ == Sense::kMinimize) ? 1.0 : -1.0;
  for (std::size_t v = 0; v < nv; ++v) {
    c[col_of[v]] = obj_sign * obj_[v];
    if (free_[v]) c[neg_col_of[v]] = -obj_sign * obj_[v];
  }
  std::size_t slack = ncols;
  for (std::size_t i = 0; i < m; ++i) {
    for (const Term& t : rows_[i]) {
      a(i, col_of[t.var]) += t.coeff;
      if (free_[t.var]) a(i, neg_col_of[t.var]) -= t.coeff;
    }
    if (rels_[i] == Rel::kLe) {
      a(i, slack++) = 1.0;
    } else if (rels_[i] == Rel::kGe) {
      a(i, slack++) = -1.0;
    }
  }

  Solution raw = solve_standard(a, b, c, opts);
  if (raw.status != Status::kOptimal) return raw;

  Solution out;
  out.status = Status::kOptimal;
  out.objective = obj_sign * raw.objective;
  out.x.resize(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    out.x[v] = raw.x[col_of[v]];
    if (free_[v]) out.x[v] -= raw.x[neg_col_of[v]];
  }
  return out;
}

}  // namespace rbvc::lp
