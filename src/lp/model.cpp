#include "lp/model.h"

namespace rbvc::lp {

Model::VarId Model::add_var(double objective_coeff, bool free) {
  obj_.push_back(objective_coeff);
  free_.push_back(free);
  lowered_.valid = false;
  return obj_.size() - 1;
}

Model::VarId Model::add_vars(std::size_t count, double objective_coeff,
                             bool free) {
  RBVC_REQUIRE(count > 0, "add_vars: count must be positive");
  const VarId first = obj_.size();
  for (std::size_t i = 0; i < count; ++i) add_var(objective_coeff, free);
  return first;
}

Model::RowId Model::add_constraint(const std::vector<Term>& terms, Rel rel,
                                   double rhs) {
  for (const Term& t : terms) {
    RBVC_REQUIRE(t.var < obj_.size(), "add_constraint: unknown variable");
  }
  rows_.push_back(terms);
  rels_.push_back(rel);
  rhs_.push_back(rhs);
  lowered_.valid = false;
  return rows_.size() - 1;
}

void Model::set_rhs(RowId row, double rhs) {
  RBVC_REQUIRE(row < rhs_.size(), "set_rhs: unknown row");
  rhs_[row] = rhs;
  // Standard-form rows are 1:1 with model rows, so the cached lowering only
  // needs the matching b entry patched.
  if (lowered_.valid) lowered_.b[row] = rhs;
}

void Model::set_objective_coeff(VarId v, double c) {
  RBVC_REQUIRE(v < obj_.size(), "set_objective_coeff: unknown variable");
  obj_[v] = c;
  lowered_.valid = false;
}

const Model::Lowered& Model::lower() const {
  if (lowered_.valid) return lowered_;
  // Column layout: for each model variable, one standard column (x >= 0) or
  // two (x+ and x-) when free; then one slack/surplus column per inequality.
  const std::size_t nv = obj_.size();
  lowered_.col_of.assign(nv, 0);
  lowered_.neg_col_of.assign(nv, 0);
  std::size_t ncols = 0;
  for (std::size_t v = 0; v < nv; ++v) {
    lowered_.col_of[v] = ncols++;
    if (free_[v]) lowered_.neg_col_of[v] = ncols++;
  }
  std::size_t n_slack = 0;
  for (Rel r : rels_) {
    if (r != Rel::kEq) ++n_slack;
  }
  const std::size_t total = ncols + n_slack;
  const std::size_t m = rows_.size();

  lowered_.a = Matrix(m, total);
  lowered_.b = rhs_;
  lowered_.c.assign(total, 0.0);
  const double obj_sign = (sense_ == Sense::kMinimize) ? 1.0 : -1.0;
  for (std::size_t v = 0; v < nv; ++v) {
    lowered_.c[lowered_.col_of[v]] = obj_sign * obj_[v];
    if (free_[v]) lowered_.c[lowered_.neg_col_of[v]] = -obj_sign * obj_[v];
  }
  std::size_t slack = ncols;
  for (std::size_t i = 0; i < m; ++i) {
    for (const Term& t : rows_[i]) {
      lowered_.a(i, lowered_.col_of[t.var]) += t.coeff;
      if (free_[t.var]) lowered_.a(i, lowered_.neg_col_of[t.var]) -= t.coeff;
    }
    if (rels_[i] == Rel::kLe) {
      lowered_.a(i, slack++) = 1.0;
    } else if (rels_[i] == Rel::kGe) {
      lowered_.a(i, slack++) = -1.0;
    }
  }
  lowered_.valid = true;
  return lowered_;
}

Solution Model::translate_back(const Solution& raw) const {
  if (raw.status != Status::kOptimal) return raw;
  const double obj_sign = (sense_ == Sense::kMinimize) ? 1.0 : -1.0;
  const std::size_t nv = obj_.size();
  Solution out;
  out.status = Status::kOptimal;
  out.objective = obj_sign * raw.objective;
  out.x.resize(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    out.x[v] = raw.x[lowered_.col_of[v]];
    if (free_[v]) out.x[v] -= raw.x[lowered_.neg_col_of[v]];
  }
  return out;
}

Solution Model::solve(const SimplexOptions& opts) const {
  const Lowered& lo = lower();
  return translate_back(solve_standard(lo.a, lo.b, lo.c, opts));
}

Solution Model::solve_with(IncrementalSolver& solver) const {
  const Lowered& lo = lower();
  return translate_back(solver.solve(lo.a, lo.b, lo.c));
}

Solution Model::resolve_rhs_with(IncrementalSolver& solver) const {
  const Lowered& lo = lower();
  return translate_back(solver.resolve_rhs(lo.b));
}

Solution Model::solve_incremental(IncrementalSolver& solver) const {
  const Lowered& lo = lower();
  return translate_back(solver.resolve(lo.a, lo.b, lo.c));
}

}  // namespace rbvc::lp
