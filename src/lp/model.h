// High-level LP model builder on top of the standard-form simplex core.
//
// Supports nonnegative and free variables, <= / >= / == rows, and both
// optimization senses. Free variables are split (x = x+ - x-) and slack /
// surplus columns are added during lowering; the reported solution is in
// terms of the modeled variables.
//
// The lowering (standard-form A, b, c) is cached: structural edits
// (add_var, add_constraint, set_objective_coeff, set_sense) invalidate it,
// while set_rhs patches the cached b in place. Combined with
// IncrementalSolver this gives a cheap re-solve loop for models that only
// move their right-hand sides (the delta column of the delta* bisection):
//
//   lp::IncrementalSolver solver;
//   model.solve_with(solver);            // cold prime, retains the basis
//   model.set_rhs(row, new_value);
//   model.resolve_rhs_with(solver);      // warm dual-simplex re-solve
#pragma once

#include <vector>

#include "lp/simplex.h"

namespace rbvc::lp {

enum class Sense { kMinimize, kMaximize };
enum class Rel { kLe, kGe, kEq };

class Model {
 public:
  using VarId = std::size_t;
  using RowId = std::size_t;

  /// Adds a variable with the given objective coefficient.
  /// `free` variables range over all reals; otherwise x >= 0.
  VarId add_var(double objective_coeff = 0.0, bool free = false);

  /// Adds `count` variables sharing the same settings; returns the first id
  /// (ids are consecutive).
  VarId add_vars(std::size_t count, double objective_coeff = 0.0,
                 bool free = false);

  /// Adds the constraint  sum_i terms[i].coeff * x_{terms[i].var}  REL  rhs.
  /// Returns the row's id for later set_rhs edits.
  struct Term {
    VarId var;
    double coeff;
  };
  RowId add_constraint(const std::vector<Term>& terms, Rel rel, double rhs);

  /// Changes a constraint's right-hand side without invalidating the cached
  /// lowering (rows map 1:1 onto standard-form rows).
  void set_rhs(RowId row, double rhs);

  void set_objective_coeff(VarId v, double c);
  void set_sense(Sense s) {
    sense_ = s;
    lowered_.valid = false;
  }

  std::size_t num_vars() const { return free_.size(); }
  std::size_t num_constraints() const { return rels_.size(); }

  /// Lowers to standard form and solves. `objective` in the result is in the
  /// model's sense (i.e. negated back for maximization).
  Solution solve(const SimplexOptions& opts = {}) const;

  /// Cold solve through an IncrementalSolver (uses the solver's options and
  /// primes its retained basis for later warm re-solves).
  Solution solve_with(IncrementalSolver& solver) const;

  /// Warm re-solve after set_rhs edits only. The caller owns the contract
  /// that the solver last saw this model's lowering (via solve_with /
  /// solve_incremental / resolve_rhs_with); the solver falls back to a cold
  /// solve when its state is not warm-eligible.
  Solution resolve_rhs_with(IncrementalSolver& solver) const;

  /// Solve through IncrementalSolver::resolve: reuses the solver's retained
  /// basis when this model's lowering has the same shape (drop-f subset
  /// swaps), cold otherwise.
  Solution solve_incremental(IncrementalSolver& solver) const;

 private:
  struct Lowered {
    Matrix a;
    Vec b;
    Vec c;
    std::vector<std::size_t> col_of;      // positive-part column per var
    std::vector<std::size_t> neg_col_of;  // negative-part column (free vars)
    bool valid = false;
  };

  const Lowered& lower() const;
  Solution translate_back(const Solution& raw) const;

  Sense sense_ = Sense::kMinimize;
  std::vector<double> obj_;
  std::vector<bool> free_;
  std::vector<std::vector<Term>> rows_;
  std::vector<Rel> rels_;
  std::vector<double> rhs_;
  mutable Lowered lowered_;
};

}  // namespace rbvc::lp
