// High-level LP model builder on top of the standard-form simplex core.
//
// Supports nonnegative and free variables, <= / >= / == rows, and both
// optimization senses. Free variables are split (x = x+ - x-) and slack /
// surplus columns are added during lowering; the reported solution is in
// terms of the modeled variables.
#pragma once

#include <vector>

#include "lp/simplex.h"

namespace rbvc::lp {

enum class Sense { kMinimize, kMaximize };
enum class Rel { kLe, kGe, kEq };

class Model {
 public:
  using VarId = std::size_t;

  /// Adds a variable with the given objective coefficient.
  /// `free` variables range over all reals; otherwise x >= 0.
  VarId add_var(double objective_coeff = 0.0, bool free = false);

  /// Adds `count` variables sharing the same settings; returns the first id
  /// (ids are consecutive).
  VarId add_vars(std::size_t count, double objective_coeff = 0.0,
                 bool free = false);

  /// Adds the constraint  sum_i terms[i].coeff * x_{terms[i].var}  REL  rhs.
  struct Term {
    VarId var;
    double coeff;
  };
  void add_constraint(const std::vector<Term>& terms, Rel rel, double rhs);

  void set_objective_coeff(VarId v, double c);
  void set_sense(Sense s) { sense_ = s; }

  std::size_t num_vars() const { return free_.size(); }
  std::size_t num_constraints() const { return rels_.size(); }

  /// Lowers to standard form and solves. `objective` in the result is in the
  /// model's sense (i.e. negated back for maximization).
  Solution solve(const SimplexOptions& opts = {}) const;

 private:
  Sense sense_ = Sense::kMinimize;
  std::vector<double> obj_;
  std::vector<bool> free_;
  std::vector<std::vector<Term>> rows_;
  std::vector<Rel> rels_;
  std::vector<double> rhs_;
};

}  // namespace rbvc::lp
