#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace rbvc::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
  }
  return "unknown";
}

namespace {

// Dense tableau state. Rows are constraint rows; two separate reduced-cost
// rows (phase 1 and phase 2) are updated through every pivot so the phase
// switch is free.
class Tableau {
 public:
  Tableau(const Matrix& a, const Vec& b, const Vec& c,
          const SimplexOptions& opts)
      : opts_(opts), n_(a.cols()), m_(a.rows()), total_(a.cols() + a.rows()) {
    rows_.assign(m_, std::vector<double>(total_ + 1, 0.0));
    basis_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      const double s = (b[i] < 0.0) ? -1.0 : 1.0;
      for (std::size_t j = 0; j < n_; ++j) rows_[i][j] = s * a(i, j);
      rows_[i][n_ + i] = 1.0;  // artificial
      rows_[i][total_] = s * b[i];
      basis_[i] = n_ + i;
    }
    // Phase-1 reduced costs: r1[j] = -sum_i T[i][j] for non-artificials.
    cost1_.assign(total_ + 1, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) cost1_[j] -= rows_[i][j];
      cost1_[total_] -= rows_[i][total_];
    }
    // Phase-2 reduced costs start as the raw costs (basic artificials have
    // zero phase-2 cost, so nothing to price out yet).
    cost2_.assign(total_ + 1, 0.0);
    for (std::size_t j = 0; j < n_; ++j) cost2_[j] = c[j];
  }

  // Runs the phase using the given cost row; returns the terminating status
  // (kOptimal means the phase's optimum was reached).
  Status run_phase(std::vector<double>& cost, bool allow_artificials) {
    std::size_t stalled = 0;
    double last_obj = -cost[total_];
    for (std::size_t iter = 0; iter < opts_.max_iters; ++iter) {
      const bool bland = stalled >= opts_.bland_after;
      const std::size_t enter = pick_entering(cost, allow_artificials, bland);
      if (enter == kNone) return Status::kOptimal;
      const std::size_t leave = pick_leaving(enter, bland);
      if (leave == kNone) return Status::kUnbounded;
      pivot(leave, enter);
      const double obj = -cost[total_];
      if (obj < last_obj - opts_.tol) {
        stalled = 0;
        last_obj = obj;
      } else {
        ++stalled;
      }
    }
    return Status::kIterLimit;
  }

  double phase1_objective() const { return -cost1_[total_]; }
  double phase2_objective() const { return -cost2_[total_]; }
  std::size_t pivots() const { return pivots_; }
  std::vector<double>& cost1() { return cost1_; }
  std::vector<double>& cost2() { return cost2_; }

  // After phase 1: pivot basic artificials onto original columns where
  // possible; rows that cannot be pivoted are redundant and get deleted.
  void drive_out_artificials() {
    for (std::size_t i = 0; i < rows_.size();) {
      if (basis_[i] < n_) {
        ++i;
        continue;
      }
      std::size_t j = kNone;
      for (std::size_t col = 0; col < n_; ++col) {
        if (std::abs(rows_[i][col]) > opts_.tol) {
          j = col;
          break;
        }
      }
      if (j == kNone) {
        rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(i));
        basis_.erase(basis_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        pivot(i, j);
        ++i;
      }
    }
  }

  Vec extract_x() const {
    Vec x(n_, 0.0);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < n_) x[basis_[i]] = rows_[i][total_];
    }
    return x;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::size_t pick_entering(const std::vector<double>& cost,
                            bool allow_artificials, bool bland) const {
    const std::size_t limit = allow_artificials ? total_ : n_;
    std::size_t best = kNone;
    double best_val = -opts_.tol;
    for (std::size_t j = 0; j < limit; ++j) {
      const double r = cost[j];
      if (r < best_val) {
        if (bland) return j;  // first (lowest-index) improving column
        best_val = r;
        best = j;
      }
    }
    return best;
  }

  std::size_t pick_leaving(std::size_t enter, bool bland) const {
    std::size_t best = kNone;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const double a = rows_[i][enter];
      if (a <= opts_.tol) continue;
      const double ratio = rows_[i][total_] / a;
      const bool better =
          ratio < best_ratio - opts_.tol ||
          (ratio < best_ratio + opts_.tol && best != kNone &&
           (bland ? basis_[i] < basis_[best] : a > rows_[best][enter]));
      if (best == kNone || better) {
        best_ratio = std::min(best_ratio, ratio);
        best = i;
      }
    }
    return best;
  }

  void pivot(std::size_t r, std::size_t c) {
    auto& prow = rows_[r];
    const double inv = 1.0 / prow[c];
    for (double& v : prow) v *= inv;
    prow[c] = 1.0;  // kill roundoff
    auto eliminate = [&](std::vector<double>& row) {
      const double f = row[c];
      if (f == 0.0) return;
      for (std::size_t j = 0; j <= total_; ++j) row[j] -= f * prow[j];
      row[c] = 0.0;
    };
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i != r) eliminate(rows_[i]);
    }
    eliminate(cost1_);
    eliminate(cost2_);
    basis_[r] = c;
    ++pivots_;
  }

  SimplexOptions opts_;
  std::size_t pivots_ = 0;
  std::size_t n_, m_, total_;
  std::vector<std::vector<double>> rows_;
  std::vector<std::size_t> basis_;
  std::vector<double> cost1_, cost2_;
};

}  // namespace

Solution solve_standard(const Matrix& a, const Vec& b, const Vec& c,
                        const SimplexOptions& opts) {
  RBVC_REQUIRE(a.rows() == b.size(), "simplex: A/b shape mismatch");
  RBVC_REQUIRE(a.cols() == c.size(), "simplex: A/c shape mismatch");
  obs::Registry& reg = obs::global();
  reg.counter("lp.solves").inc();
  obs::ScopedTimer timer(reg, "lp.seconds");
  Solution sol;
  const auto finish = [&reg](const Solution& s, std::size_t pivots) {
    reg.counter("lp.pivots").inc(pivots);
    reg.counter(std::string("lp.status.") + to_string(s.status)).inc();
  };
  if (a.rows() == 0) {  // no constraints: optimum 0 at x=0 unless c<0 somewhere
    sol.status = Status::kOptimal;
    for (double cj : c) {
      if (cj < -opts.tol) {
        sol.status = Status::kUnbounded;
        break;
      }
    }
    if (sol.status == Status::kOptimal) sol.x = zeros(a.cols());
    finish(sol, 0);
    return sol;
  }

  Tableau t(a, b, c, opts);

  const Status p1 = t.run_phase(t.cost1(), /*allow_artificials=*/true);
  if (p1 == Status::kIterLimit) {
    sol.status = p1;
    finish(sol, t.pivots());
    return sol;
  }
  // Feasibility tolerance scales with the RHS magnitude.
  double bscale = 1.0;
  for (double v : b) bscale = std::max(bscale, std::abs(v));
  if (t.phase1_objective() > opts.tol * bscale * 10.0) {
    sol.status = Status::kInfeasible;
    finish(sol, t.pivots());
    return sol;
  }
  t.drive_out_artificials();

  const Status p2 = t.run_phase(t.cost2(), /*allow_artificials=*/false);
  sol.status = p2;
  if (p2 == Status::kOptimal) {
    sol.objective = t.phase2_objective();
    sol.x = t.extract_x();
  }
  finish(sol, t.pivots());
  return sol;
}

}  // namespace rbvc::lp
