#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/lu.h"
#include "obs/metrics.h"

namespace rbvc::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
  }
  return "unknown";
}

namespace detail {

// Dense tableau state. Rows are constraint rows; two separate reduced-cost
// rows (phase 1 and phase 2) are updated through every pivot so the phase
// switch is free. The artificial columns always hold B^{-1} (times the
// initial row signs), which is what makes the warm RHS update possible
// without a separate factorization.
//
// The object is reusable: init() re-fills the existing storage, so a
// retained Tableau inside an IncrementalSolver allocates only when the
// problem grows past any previously seen size.
class Tableau {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void init(const Matrix& a, const Vec& b, const Vec& c,
            const SimplexOptions& opts) {
    opts_ = opts;
    n_ = a.cols();
    m_ = a.rows();
    total_ = n_ + m_;
    rows_dropped_ = false;
    pivots_ = 0;
    rows_.resize(m_);
    basis_.resize(m_);
    signs_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      rows_[i].assign(total_ + 1, 0.0);
      const double s = (b[i] < 0.0) ? -1.0 : 1.0;
      signs_[i] = s;
      for (std::size_t j = 0; j < n_; ++j) rows_[i][j] = s * a(i, j);
      rows_[i][n_ + i] = 1.0;  // artificial
      rows_[i][total_] = s * b[i];
      basis_[i] = n_ + i;
    }
    // Phase-1 reduced costs: r1[j] = -sum_i T[i][j] for non-artificials.
    cost1_.assign(total_ + 1, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) cost1_[j] -= rows_[i][j];
      cost1_[total_] -= rows_[i][total_];
    }
    // Phase-2 reduced costs start as the raw costs (basic artificials have
    // zero phase-2 cost, so nothing to price out yet).
    cost2_.assign(total_ + 1, 0.0);
    for (std::size_t j = 0; j < n_; ++j) cost2_[j] = c[j];
  }

  // Rebuilds the tableau for a same-shape problem (a is m-by-n with the
  // init()-time m and n) starting from the given basis instead of the
  // artificial one: factorizes the basis columns and forms B^{-1}[A | I | b]
  // plus the phase-2 reduced-cost row. Returns false (leaving the tableau
  // unusable until the next init) when the basis is numerically singular.
  bool init_from_basis(const Matrix& a, const Vec& b, const Vec& c,
                       const std::vector<std::size_t>& basis,
                       const SimplexOptions& opts) {
    opts_ = opts;
    n_ = a.cols();
    m_ = a.rows();
    total_ = n_ + m_;
    rows_dropped_ = false;
    pivots_ = 0;
    basis_ = basis;
    signs_.assign(m_, 1.0);
    Matrix bmat(m_, m_);
    for (std::size_t k = 0; k < m_; ++k) {
      for (std::size_t i = 0; i < m_; ++i) bmat(i, k) = a(i, basis[k]);
    }
    LU lu(bmat, opts_.tol);
    if (lu.singular()) return false;

    rows_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) rows_[i].assign(total_ + 1, 0.0);
    // Column-by-column: T[:, j] = B^{-1} A[:, j]; artificial block B^{-1} I;
    // RHS column B^{-1} b.
    Vec col(m_), sol;
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t i = 0; i < m_; ++i) col[i] = a(i, j);
      sol = lu.solve(col);
      for (std::size_t i = 0; i < m_; ++i) rows_[i][j] = sol[i];
    }
    for (std::size_t j = 0; j < m_; ++j) {
      std::fill(col.begin(), col.end(), 0.0);
      col[j] = 1.0;
      sol = lu.solve(col);
      for (std::size_t i = 0; i < m_; ++i) rows_[i][n_ + j] = sol[i];
    }
    sol = lu.solve(b);
    for (std::size_t i = 0; i < m_; ++i) rows_[i][total_] = sol[i];

    // Phase-2 reduced costs: c_j - c_B . T[:, j]; RHS entry -c_B . B^{-1} b.
    cost1_.assign(total_ + 1, 0.0);  // never used warm; keep consistent size
    cost2_.assign(total_ + 1, 0.0);
    for (std::size_t j = 0; j <= total_; ++j) {
      double cb_t = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        cb_t += c[basis_[i]] * rows_[i][j];
      }
      const double raw = (j < n_) ? c[j] : 0.0;
      cost2_[j] = raw - cb_t;
    }
    // Snap the basic columns' reduced costs to exactly zero (they are by
    // construction; roundoff otherwise leaks into the feasibility checks).
    for (std::size_t i = 0; i < m_; ++i) cost2_[basis_[i]] = 0.0;
    return true;
  }

  // Runs the phase using the given cost row; returns the terminating status
  // (kOptimal means the phase's optimum was reached).
  Status run_phase(std::vector<double>& cost, bool allow_artificials) {
    std::size_t stalled = 0;
    double last_obj = -cost[total_];
    for (std::size_t iter = 0; iter < opts_.max_iters; ++iter) {
      const bool bland = stalled >= opts_.bland_after;
      const std::size_t enter = pick_entering(cost, allow_artificials, bland);
      if (enter == kNone) return Status::kOptimal;
      const std::size_t leave = pick_leaving(enter, bland);
      if (leave == kNone) return Status::kUnbounded;
      pivot(leave, enter);
      const double obj = -cost[total_];
      if (obj < last_obj - opts_.tol) {
        stalled = 0;
        last_obj = obj;
      } else {
        ++stalled;
      }
    }
    return Status::kIterLimit;
  }

  // Dual simplex on the phase-2 cost row, from a dual-feasible basis:
  // repeatedly drives the most-negative RHS row out of the basis, entering
  // the column that keeps the reduced costs non-negative (min ratio).
  // kOptimal = primal feasibility restored (optimum); kInfeasible = a
  // negative row with no negative entries certifies emptiness. Artificial
  // columns never enter. Deterministic: lowest index wins exact ties.
  Status run_dual() {
    for (std::size_t iter = 0; iter < opts_.max_iters; ++iter) {
      std::size_t leave = kNone;
      double most = -opts_.tol;
      for (std::size_t i = 0; i < m_; ++i) {
        if (rows_[i][total_] < most) {
          most = rows_[i][total_];
          leave = i;
        }
      }
      if (leave == kNone) return Status::kOptimal;
      const auto& lrow = rows_[leave];
      std::size_t enter = kNone;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < n_; ++j) {
        const double a = lrow[j];
        if (a >= -opts_.tol) continue;
        const double ratio = cost2_[j] / (-a);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          enter = j;
        }
      }
      if (enter == kNone) return Status::kInfeasible;
      pivot(leave, enter);
    }
    return Status::kIterLimit;
  }

  // Recomputes the RHS column (and the phase-2 objective entry) for a new
  // b, reading B^{-1} out of the artificial columns. Only valid while no
  // redundant rows were dropped (rows_.size() == m_).
  void warm_rhs(const Vec& b) {
    for (std::size_t i = 0; i < m_; ++i) {
      auto& row = rows_[i];
      double acc = 0.0;
      for (std::size_t j = 0; j < m_; ++j) {
        acc += row[n_ + j] * signs_[j] * b[j];
      }
      row[total_] = acc;
    }
    double acc = 0.0;
    for (std::size_t j = 0; j < m_; ++j) {
      acc += cost2_[n_ + j] * signs_[j] * b[j];
    }
    cost2_[total_] = acc;
  }

  double phase1_objective() const { return -cost1_[total_]; }
  double phase2_objective() const { return -cost2_[total_]; }
  double rhs(std::size_t i) const { return rows_[i][total_]; }
  std::size_t pivots() const { return pivots_; }
  std::vector<double>& cost1() { return cost1_; }
  std::vector<double>& cost2() { return cost2_; }
  bool rows_dropped() const { return rows_dropped_; }
  const std::vector<std::size_t>& basis() const { return basis_; }
  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  // After phase 1: pivot basic artificials onto original columns where
  // possible; rows that cannot be pivoted are redundant. A single
  // compaction sweep then removes the redundant rows, keeping row/basis
  // alignment intact throughout (no mid-loop erase).
  void drive_out_artificials() {
    std::vector<char> drop(rows_.size(), 0);
    bool any = false;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < n_) continue;
      std::size_t j = kNone;
      for (std::size_t col = 0; col < n_; ++col) {
        if (std::abs(rows_[i][col]) > opts_.tol) {
          j = col;
          break;
        }
      }
      if (j == kNone) {
        drop[i] = 1;
        any = true;
      } else {
        pivot(i, j);
      }
    }
    if (!any) return;
    std::size_t w = 0;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (drop[i]) continue;
      if (w != i) {
        rows_[w].swap(rows_[i]);
        basis_[w] = basis_[i];
      }
      ++w;
    }
    rows_.resize(w);
    basis_.resize(w);
    m_ = w;
    rows_dropped_ = true;
  }

  Vec extract_x() const {
    Vec x(n_, 0.0);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < n_) x[basis_[i]] = rows_[i][total_];
    }
    return x;
  }

 private:
  std::size_t pick_entering(const std::vector<double>& cost,
                            bool allow_artificials, bool bland) const {
    const std::size_t limit = allow_artificials ? total_ : n_;
    std::size_t best = kNone;
    double best_val = -opts_.tol;
    for (std::size_t j = 0; j < limit; ++j) {
      const double r = cost[j];
      if (r < best_val) {
        if (bland) return j;  // first (lowest-index) improving column
        best_val = r;
        best = j;
      }
    }
    return best;
  }

  std::size_t pick_leaving(std::size_t enter, bool bland) const {
    std::size_t best = kNone;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const double a = rows_[i][enter];
      if (a <= opts_.tol) continue;
      const double ratio = rows_[i][total_] / a;
      const bool better =
          ratio < best_ratio - opts_.tol ||
          (ratio < best_ratio + opts_.tol && best != kNone &&
           (bland ? basis_[i] < basis_[best] : a > rows_[best][enter]));
      if (best == kNone || better) {
        best_ratio = std::min(best_ratio, ratio);
        best = i;
      }
    }
    return best;
  }

  void pivot(std::size_t r, std::size_t c) {
    auto& prow = rows_[r];
    const double inv = 1.0 / prow[c];
    for (double& v : prow) v *= inv;
    prow[c] = 1.0;  // kill roundoff
    auto eliminate = [&](std::vector<double>& row) {
      const double f = row[c];
      if (f == 0.0) return;
      const double* src = prow.data();
      double* dst = row.data();
      for (std::size_t j = 0; j <= total_; ++j) {
        dst[j] -= f * src[j];
      }
      dst[c] = 0.0;
    };
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i != r) eliminate(rows_[i]);
    }
    eliminate(cost1_);
    eliminate(cost2_);
    basis_[r] = c;
    ++pivots_;
  }

  SimplexOptions opts_;
  std::size_t pivots_ = 0;
  std::size_t n_ = 0, m_ = 0, total_ = 0;
  bool rows_dropped_ = false;
  std::vector<std::vector<double>> rows_;
  std::vector<std::size_t> basis_;
  std::vector<double> signs_;
  std::vector<double> cost1_, cost2_;
};

}  // namespace detail

namespace {

using detail::Tableau;

void record_outcome(const Solution& s, std::size_t pivots) {
  obs::Registry& reg = obs::global();
  reg.counter("lp.pivots").inc(pivots);
  reg.counter(std::string("lp.status.") + to_string(s.status)).inc();
}

// Trivial LP with no constraint rows: optimum 0 at x = 0 unless some cost
// is negative (then unbounded).
Solution solve_empty(std::size_t n, const Vec& c, const SimplexOptions& opts) {
  Solution sol;
  sol.status = Status::kOptimal;
  for (double cj : c) {
    if (cj < -opts.tol) {
      sol.status = Status::kUnbounded;
      break;
    }
  }
  if (sol.status == Status::kOptimal) sol.x = zeros(n);
  record_outcome(sol, 0);
  return sol;
}

// Runs the full two-phase solve on an init()-ed tableau.
Solution run_cold(Tableau& t, const Vec& b, const SimplexOptions& opts) {
  Solution sol;
  const Status p1 = t.run_phase(t.cost1(), /*allow_artificials=*/true);
  if (p1 == Status::kIterLimit) {
    sol.status = p1;
    return sol;
  }
  // Feasibility tolerance scales with the RHS magnitude.
  double bscale = 1.0;
  for (double v : b) bscale = std::max(bscale, std::abs(v));
  if (t.phase1_objective() > opts.tol * bscale * 10.0) {
    sol.status = Status::kInfeasible;
    return sol;
  }
  t.drive_out_artificials();

  const Status p2 = t.run_phase(t.cost2(), /*allow_artificials=*/false);
  sol.status = p2;
  if (p2 == Status::kOptimal) {
    sol.objective = t.phase2_objective();
    sol.x = t.extract_x();
  }
  return sol;
}

void check_shapes(const Matrix& a, const Vec& b, const Vec& c) {
  RBVC_REQUIRE(a.rows() == b.size(), "simplex: A/b shape mismatch");
  RBVC_REQUIRE(a.cols() == c.size(), "simplex: A/c shape mismatch");
}

void record_fallback(const char* reason) {
  obs::Registry& reg = obs::global();
  reg.counter("lp.warm.fallback_cold").inc();
  reg.counter(std::string("lp.warm.fallback.") + reason).inc();
}

}  // namespace

Solution solve_standard(const Matrix& a, const Vec& b, const Vec& c,
                        const SimplexOptions& opts) {
  check_shapes(a, b, c);
  obs::Registry& reg = obs::global();
  reg.counter("lp.solves").inc();
  obs::ScopedTimer timer(reg, "lp.seconds");
  if (a.rows() == 0) return solve_empty(a.cols(), c, opts);

  Tableau t;
  t.init(a, b, c, opts);
  Solution sol = run_cold(t, b, opts);
  record_outcome(sol, t.pivots());
  return sol;
}

IncrementalSolver::IncrementalSolver(SimplexOptions opts) : opts_(opts) {}
IncrementalSolver::~IncrementalSolver() = default;
IncrementalSolver::IncrementalSolver(IncrementalSolver&&) noexcept = default;
IncrementalSolver& IncrementalSolver::operator=(IncrementalSolver&&) noexcept =
    default;

void IncrementalSolver::reset() {
  warm_ok_ = false;
  has_state_ = false;
}

Solution IncrementalSolver::cold(const Matrix& a, const Vec& b, const Vec& c,
                                 const char* fallback_reason) {
  if (fallback_reason != nullptr) record_fallback(fallback_reason);
  obs::Registry& reg = obs::global();
  reg.counter("lp.solves").inc();
  obs::ScopedTimer timer(reg, "lp.seconds");
  has_state_ = true;
  warm_ok_ = false;
  if (a.rows() == 0) return solve_empty(a.cols(), c, opts_);
  if (!tab_) tab_ = std::make_unique<Tableau>();
  tab_->init(a, b, c, opts_);
  Solution sol = run_cold(*tab_, b, opts_);
  record_outcome(sol, tab_->pivots());
  // Warm-eligible only from a clean optimum with the full row set intact
  // (deleted redundant rows break the B^{-1} readout and the row/b
  // alignment that resolve_rhs depends on).
  warm_ok_ = sol.status == Status::kOptimal && !tab_->rows_dropped();
  if (&a_ != &a) a_ = a;
  if (&c_ != &c) c_ = c;
  return sol;
}

Solution IncrementalSolver::solve(const Matrix& a, const Vec& b,
                                  const Vec& c) {
  check_shapes(a, b, c);
  return cold(a, b, c, nullptr);
}

Solution IncrementalSolver::resolve_rhs(const Vec& b) {
  RBVC_REQUIRE(has_state_, "resolve_rhs: no prior solve");
  obs::Registry& reg = obs::global();
  reg.counter("lp.warm.attempts").inc();
  if (!warm_ok_) return cold(a_, b, c_, "not_warm");
  if (b.size() != tab_->rows()) return cold(a_, b, c_, "dim_change");

  obs::ScopedTimer timer(reg, "lp.seconds");
  const std::size_t pivots_before = tab_->pivots();
  tab_->warm_rhs(b);
  const Status st = tab_->run_dual();
  const std::size_t dual_pivots = tab_->pivots() - pivots_before;
  reg.counter("lp.warm.dual_pivots").inc(dual_pivots);
  if (st == Status::kIterLimit) {
    // Dual pivoting stalled (degenerate cycling / tolerance escalation):
    // fall back to a trusted cold solve.
    return cold(a_, b, c_, "iter_limit");
  }
  reg.counter("lp.warm.hits").inc();
  Solution sol;
  sol.status = st;
  if (st == Status::kOptimal) {
    sol.objective = tab_->phase2_objective();
    sol.x = tab_->extract_x();
  }
  // Both outcomes leave a dual-feasible tableau behind: stay warm.
  record_outcome(sol, dual_pivots);
  return sol;
}

Solution IncrementalSolver::resolve(const Matrix& a, const Vec& b,
                                    const Vec& c) {
  check_shapes(a, b, c);
  // A fresh solver has nothing to reuse: plain cold prime, not a miss.
  if (!has_state_) return cold(a, b, c, nullptr);
  obs::Registry& reg = obs::global();
  reg.counter("lp.warm.attempts").inc();
  if (!warm_ok_) return cold(a, b, c, "not_warm");
  if (a.rows() != tab_->rows() || a.cols() != tab_->cols() ||
      a.rows() == 0) {
    return cold(a, b, c, "dim_change");
  }

  obs::ScopedTimer timer(reg, "lp.seconds");
  reg.counter("lp.warm.refactors").inc();
  std::vector<std::size_t> basis = tab_->basis();
  if (!tab_->init_from_basis(a, b, c, basis, opts_)) {
    return cold(a, b, c, "singular_basis");
  }
  // The reused basis can lose either feasibility through the swap; pick
  // the finishing method by which one survived. Primal feasibility: all
  // basic values >= -tol. Dual feasibility: all reduced costs >= -tol.
  bool primal_ok = true;
  for (std::size_t i = 0; i < tab_->rows() && primal_ok; ++i) {
    if (tab_->rhs(i) < -opts_.tol * 10.0) primal_ok = false;
  }
  bool dual_ok = true;
  for (std::size_t j = 0; j < tab_->cols() && dual_ok; ++j) {
    if (tab_->cost2()[j] < -opts_.tol * 10.0) dual_ok = false;
  }

  const std::size_t pivots_before = tab_->pivots();
  Status st;
  if (primal_ok) {
    st = tab_->run_phase(tab_->cost2(), /*allow_artificials=*/false);
  } else if (dual_ok) {
    st = tab_->run_dual();
  } else {
    return cold(a, b, c, "basis_infeasible");
  }
  const std::size_t warm_pivots = tab_->pivots() - pivots_before;
  reg.counter("lp.warm.dual_pivots").inc(warm_pivots);
  if (st == Status::kIterLimit) return cold(a, b, c, "iter_limit");
  reg.counter("lp.warm.hits").inc();
  Solution sol;
  sol.status = st;
  if (st == Status::kOptimal) {
    sol.objective = tab_->phase2_objective();
    sol.x = tab_->extract_x();
  }
  // Optimal leaves a dual-feasible optimum; a dual-simplex infeasibility
  // verdict also leaves a dual-feasible tableau. Unbounded does not.
  warm_ok_ = st == Status::kOptimal || st == Status::kInfeasible;
  a_ = a;
  c_ = c;
  record_outcome(sol, warm_pivots);
  return sol;
}

}  // namespace rbvc::lp
