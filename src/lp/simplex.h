// Two-phase primal simplex for dense standard-form linear programs:
//
//     minimize    c . x
//     subject to  A x = b,  x >= 0.
//
// Phase 1 introduces artificial variables to find a basic feasible point
// (detecting infeasibility), then drives artificials out of the basis and
// deletes redundant rows; phase 2 optimizes. Dantzig pricing with an
// automatic switch to Bland's rule guards against cycling. All geometry
// feasibility questions in rbvc (hull membership, Gamma/Psi intersections,
// L1/Linf distances) reduce to this solver via lp::Model.
#pragma once

#include "linalg/matrix.h"

namespace rbvc::lp {

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
};

const char* to_string(Status s);

struct SimplexOptions {
  double tol = 1e-9;           // pivot / reduced-cost tolerance
  std::size_t max_iters = 50'000;
  std::size_t bland_after = 2'000;  // stalled iterations before Bland's rule
};

struct Solution {
  Status status = Status::kIterLimit;
  double objective = 0.0;
  Vec x;  // primal values for the original variables (empty unless optimal)
};

/// Solves the standard-form LP above. A is m-by-n, b is m, c is n.
Solution solve_standard(const Matrix& a, const Vec& b, const Vec& c,
                        const SimplexOptions& opts = {});

}  // namespace rbvc::lp
