// Two-phase primal simplex for dense standard-form linear programs:
//
//     minimize    c . x
//     subject to  A x = b,  x >= 0.
//
// Phase 1 introduces artificial variables to find a basic feasible point
// (detecting infeasibility), then drives artificials out of the basis and
// deletes redundant rows; phase 2 optimizes. Dantzig pricing with an
// automatic switch to Bland's rule guards against cycling. All geometry
// feasibility questions in rbvc (hull membership, Gamma/Psi intersections,
// L1/Linf distances) reduce to this solver via lp::Model.
//
// IncrementalSolver adds warm starting on top of the same tableau core: it
// retains the final basis and tableau across solves and supports two cheap
// re-solve edits -- a pure RHS perturbation (the delta column of the delta*
// bisection) resolved by dual-simplex steps, and a same-shape matrix swap
// (moving between drop-f constraint blocks) resolved by refactorizing the
// retained basis against the new columns. Both fall back to a full cold
// solve when the retained state is unusable, recording the reason in the
// lp.warm.fallback.<reason> counters (see docs/OBSERVABILITY.md).
#pragma once

#include <memory>

#include "linalg/matrix.h"

namespace rbvc::lp {

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
};

const char* to_string(Status s);

struct SimplexOptions {
  double tol = 1e-9;           // pivot / reduced-cost tolerance
  std::size_t max_iters = 50'000;
  std::size_t bland_after = 2'000;  // stalled iterations before Bland's rule
};

struct Solution {
  Status status = Status::kIterLimit;
  double objective = 0.0;
  Vec x;  // primal values for the original variables (empty unless optimal)
};

/// Solves the standard-form LP above. A is m-by-n, b is m, c is n.
Solution solve_standard(const Matrix& a, const Vec& b, const Vec& c,
                        const SimplexOptions& opts = {});

namespace detail {
class Tableau;
}  // namespace detail

/// A reusable simplex solver that retains its tableau and basis between
/// solves so near-identical LPs can be re-solved warm.
///
/// Warm-start contract (see DESIGN.md "LP warm starts"):
///   * solve() is a cold solve identical in outcome to solve_standard(),
///     but it keeps the final tableau. The state is warm-eligible only when
///     the solve ended kOptimal with no redundant rows deleted.
///   * resolve_rhs(b) re-solves after changing ONLY b (same A and c; the
///     caller owns that contract -- dimensions are checked, coefficients
///     are not). The retained optimal basis stays dual-feasible, so a few
///     dual-simplex pivots restore primal feasibility. A kInfeasible
///     verdict keeps the state warm (the basis is still dual-feasible),
///     which is what lets a feasibility bisection stay warm across both
///     feasible and infeasible probes.
///   * resolve(a, b, c) re-solves a same-shape problem by refactorizing
///     the retained basis against the new columns (LU), then finishing
///     with primal or dual pivots depending on which feasibility survived
///     the swap. Intended for constraint sets sharing most rows/columns
///     (drop-f subset swaps).
///   * Every fallback to a cold solve is recorded under
///     lp.warm.fallback_cold / lp.warm.fallback.<reason>.
///   * reset() forgets the retained state (the next solve is cold) while
///     keeping the allocated buffers, and is how callers scope determinism:
///     results never depend on solves made before the last reset().
class IncrementalSolver {
 public:
  explicit IncrementalSolver(SimplexOptions opts = {});
  ~IncrementalSolver();
  IncrementalSolver(IncrementalSolver&&) noexcept;
  IncrementalSolver& operator=(IncrementalSolver&&) noexcept;
  IncrementalSolver(const IncrementalSolver&) = delete;
  IncrementalSolver& operator=(const IncrementalSolver&) = delete;

  /// Cold solve; retains the final tableau for subsequent warm re-solves.
  Solution solve(const Matrix& a, const Vec& b, const Vec& c);

  /// Warm re-solve after an RHS-only edit. Requires b.size() to match the
  /// retained problem's row count; falls back to a cold solve of the
  /// retained (A, c) with the new b when the state is not warm-eligible.
  Solution resolve_rhs(const Vec& b);

  /// Warm re-solve of a same-shape problem via basis refactorization;
  /// falls back to a cold solve otherwise. A fresh solver (no retained
  /// state at all) treats this as a plain cold solve and records no
  /// warm-start attempt.
  Solution resolve(const Matrix& a, const Vec& b, const Vec& c);

  /// True when the retained state is eligible for warm re-solves.
  bool warm_ready() const { return warm_ok_; }

  /// Drops the retained solution state (keeps buffer capacity). The next
  /// solve is cold and results become independent of prior history.
  void reset();

  const SimplexOptions& options() const { return opts_; }
  void set_options(const SimplexOptions& opts) { opts_ = opts; }

 private:
  Solution cold(const Matrix& a, const Vec& b, const Vec& c,
                const char* fallback_reason);

  SimplexOptions opts_;
  std::unique_ptr<detail::Tableau> tab_;
  Matrix a_;  // retained problem (for resolve_rhs cold fallbacks)
  Vec c_;
  bool warm_ok_ = false;
  bool has_state_ = false;  // any prior solve (even a failed one)
};

}  // namespace rbvc::lp
