#include "mc/choices.h"

namespace rbvc::mc {

std::size_t FirstChoice::choose(std::size_t arity) {
  RBVC_REQUIRE(arity >= 1, "FirstChoice: arity must be >= 1");
  return 0;
}

std::size_t ChoiceReplayer::choose(std::size_t arity) {
  RBVC_REQUIRE(arity >= 1, "ChoiceReplayer: arity must be >= 1");
  if (!log_) return 0;
  while (next_ < log_->size() &&
         log_->entries()[next_].kind != sim::ScheduleEntryKind::kChoice) {
    ++next_;
  }
  if (next_ >= log_->size()) return 0;  // exhausted: first option
  const std::uint64_t raw = log_->entries()[next_++].value;
  return static_cast<std::size_t>(raw % arity);
}

std::size_t RecordingChoices::choose(std::size_t arity) {
  const std::size_t opt = inner_.choose(arity);
  if (log_) log_->add_choice(opt);
  return opt;
}

std::size_t SourceScheduler::pick(const std::vector<sim::Message>& pending) {
  const std::size_t idx = source_.pick(pending);
  RBVC_REQUIRE(idx < pending.size(), "SourceScheduler: pick out of range");
  return idx;
}

}  // namespace rbvc::mc
