// Unified nondeterminism source for bounded exhaustive exploration.
//
// The async engine already funnels its one nondeterministic decision -- which
// pending message to deliver -- through sim::Scheduler. A ChoiceSource
// generalizes that to *adversary* decisions as well: a choice-driven
// Byzantine strategy (workload::AsyncStrategy::kChoiceEquivocate and the
// sync counterparts) asks `choose(arity)` at every branch point instead of
// flipping seeded coins, so the model checker (mc/explorer.h) can enumerate
// every adversary behavior the strategy spans, and a recorded run can
// replay them deterministically.
//
// Both decision kinds land in one sim::ScheduleLog -- picks as kPick (the
// engine records those itself), choices as kChoice (RecordingChoices
// records them) -- and replay consumes each kind through an independent
// cursor, so the interleaving of kinds in the log never matters. The
// ChoiceReplayer mirrors ReplayScheduler's robustness contract (wrap
// out-of-range values, fall back to option 0 when the log is exhausted),
// which is what keeps every schedule the shrinker proposes executable.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/async_engine.h"
#include "sim/schedule_log.h"

namespace rbvc::mc {

/// A source of nondeterministic decisions. `choose` answers adversary
/// branch points; `pick` answers scheduler delivery decisions (async model
/// only). They are separate methods -- not one -- because the explorer
/// applies partial-order reduction to picks (deliveries commute when their
/// recipients differ) but never to choices.
class ChoiceSource {
 public:
  virtual ~ChoiceSource() = default;

  /// Returns an option index in [0, arity). arity must be >= 1.
  virtual std::size_t choose(std::size_t arity) = 0;

  /// Returns the index of the pending message to deliver. Default: FIFO,
  /// so a pure-choice source can drive an async run without overriding it.
  virtual std::size_t pick(const std::vector<sim::Message>& pending) {
    (void)pending;
    return 0;
  }
};

/// Always takes the first option (and delivers FIFO). The behavior of a
/// choice-driven strategy when no explorer or replay log is attached.
class FirstChoice final : public ChoiceSource {
 public:
  std::size_t choose(std::size_t arity) override;
};

/// Replays the kChoice subsequence of a recorded log. Out-of-range values
/// wrap (value % arity) and an exhausted (or null) log falls back to option
/// 0, so shrunk or hand-edited logs stay valid -- the same contract as
/// sim::ReplayScheduler for picks.
class ChoiceReplayer final : public ChoiceSource {
 public:
  explicit ChoiceReplayer(const sim::ScheduleLog* log) : log_(log) {}

  std::size_t choose(std::size_t arity) override;

  /// Entries consumed so far (for diagnosing divergent replays).
  std::size_t consumed() const { return next_; }

 private:
  const sim::ScheduleLog* log_;  // may be null: every choice is 0
  std::size_t next_ = 0;
};

/// Forwards to an inner source, appending each effective (post-wrap) choice
/// to a log as kChoice. Picks are forwarded *without* recording: the async
/// engine already records its picks into its own schedule log, and double
/// entries would corrupt replay.
class RecordingChoices final : public ChoiceSource {
 public:
  RecordingChoices(ChoiceSource& inner, sim::ScheduleLog* log)
      : inner_(inner), log_(log) {}

  std::size_t choose(std::size_t arity) override;
  std::size_t pick(const std::vector<sim::Message>& pending) override {
    return inner_.pick(pending);
  }

 private:
  ChoiceSource& inner_;
  sim::ScheduleLog* log_;  // may be null: pure passthrough
};

/// Adapts a ChoiceSource to the engine's Scheduler interface, so one
/// source object drives both decision kinds of an async run.
class SourceScheduler final : public sim::Scheduler {
 public:
  explicit SourceScheduler(ChoiceSource& source) : source_(source) {}

  std::size_t pick(const std::vector<sim::Message>& pending) override;

 private:
  ChoiceSource& source_;
};

}  // namespace rbvc::mc
