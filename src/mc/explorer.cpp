#include "mc/explorer.h"

#include <algorithm>
#include <utility>

#include "exec/parallel_executor.h"
#include "obs/metrics.h"

namespace rbvc::mc {
namespace {

// One decision point on the current DFS path. The vector of frames IS the
// explorer state: a run replays the prefix frames_[0..cursor) and extends
// the path with fresh frames past it, so no engine state ever needs to be
// snapshotted.
struct Frame {
  bool is_pick = false;
  std::size_t arity = 0;
  std::size_t taken = 0;            // option the current path takes here
  std::vector<char> explored;       // subtree under option j fully done
  std::vector<char> sleep;          // picks only: option j pruned by POR
  std::vector<sim::ProcessId> recipients;  // picks only: pending[j].to
};

// Thrown through the run function to abort a redundant execution (every
// fresh option at a new decision point is asleep). The engines are
// exception-clean, so unwinding mid-run is safe.
struct PruneSignal {};

// Eagerly-minted handles into the global registry. Minting everything up
// front (first meters() call) keeps the registry key set independent of
// which paths an exploration happens to take, which the byte-identical
// repro-snapshot contract relies on.
struct Meters {
  obs::Counter& runs;
  obs::Counter& states;
  obs::Counter& sleep_skips;
  obs::Counter& sleep_blocked;
  obs::Counter& truncated;
  obs::Counter& violations;
  obs::Gauge& max_depth;
};

Meters& meters() {
  static Meters m{
      obs::global().counter("mc.runs"),
      obs::global().counter("mc.states.explored"),
      obs::global().counter("mc.sleep.skips"),
      obs::global().counter("mc.sleep.blocked"),
      obs::global().counter("mc.truncated_runs"),
      obs::global().counter("mc.violations"),
      obs::global().gauge("mc.max_depth"),
  };
  return m;
}

bool is_asleep(const Frame& f, std::size_t t) {
  return f.is_pick && f.sleep[t] != 0;
}

// Drives one run along the path encoded in `frames`: decisions with an
// existing frame replay that frame's taken option; the first decision past
// the end opens a new frame (computing its sleep set from the nearest pick
// frame below) and takes its first awake option, as do all deeper ones.
class PathSource final : public ChoiceSource {
 public:
  PathSource(std::vector<Frame>& frames, ExploreStats& st, bool por,
             bool meter)
      : frames_(frames), st_(st), por_(por), meter_(meter) {}

  std::size_t choose(std::size_t arity) override {
    RBVC_REQUIRE(arity >= 1, "mc::explore: choose arity must be >= 1");
    return step(false, arity, nullptr);
  }

  std::size_t pick(const std::vector<sim::Message>& pending) override {
    RBVC_REQUIRE(!pending.empty(), "mc::explore: nothing pending");
    return step(true, pending.size(), &pending);
  }

 private:
  std::size_t step(bool is_pick, std::size_t arity,
                   const std::vector<sim::Message>* pending) {
    if (cursor_ < frames_.size()) {
      const Frame& f = frames_[cursor_];
      RBVC_REQUIRE(f.is_pick == is_pick && f.arity == arity,
                   "mc::explore: replay diverged at decision " +
                       std::to_string(cursor_) +
                       " -- the run function must be a deterministic "
                       "function of the decisions taken");
      ++cursor_;
      return f.taken;
    }
    Frame f;
    f.is_pick = is_pick;
    f.arity = arity;
    f.explored.assign(arity, 0);
    if (is_pick) {
      f.recipients.resize(arity);
      for (std::size_t i = 0; i < arity; ++i) {
        f.recipients[i] = (*pending)[i].to;
      }
      f.sleep.assign(arity, 0);
      if (por_) inherit_sleep(f);
    }
    std::size_t t = 0;
    while (t < arity && is_asleep(f, t)) ++t;
    if (t == arity) throw PruneSignal{};  // whole path is a transposition
    f.taken = t;
    frames_.push_back(std::move(f));
    ++cursor_;
    ++st_.states;
    if (meter_) meters().states.inc();
    return t;
  }

  // Sleep-set inheritance (Godefroid): option j sleeps in the child reached
  // via option i when j was asleep-or-explored at the parent and j's
  // delivery commutes with i's (distinct recipients: a delivery mutates
  // only the recipient's state and appends only the recipient's sends).
  // The parent is the nearest *pick* frame below: choice frames never touch
  // the pending pool, so the pool seen here is the parent's pool minus its
  // delivered message plus appended sends.
  void inherit_sleep(Frame& f) {
    const Frame* par = nullptr;
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->is_pick) {
        par = &*it;
        break;
      }
    }
    if (!par) return;
    const std::size_t i = par->taken;
    for (std::size_t j = 0; j < par->arity; ++j) {
      if (j == i) continue;
      if (!par->sleep[j] && !par->explored[j]) continue;
      if (par->recipients[j] == par->recipients[i]) continue;  // dependent
      // The engine erases the delivered message in place and appends new
      // sends, so surviving messages keep their index order shifted down by
      // one past the delivered slot. The recipient check guards the map in
      // case a future engine reorders the pool.
      const std::size_t cj = j < i ? j : j - 1;
      if (cj < f.arity && f.recipients[cj] == par->recipients[j] &&
          !f.sleep[cj]) {
        f.sleep[cj] = 1;
        ++st_.sleep_skips;
        if (meter_) meters().sleep_skips.inc();
      }
    }
  }

  std::vector<Frame>& frames_;
  std::size_t cursor_ = 0;
  ExploreStats& st_;
  bool por_;
  bool meter_;
};

// Serial DFS over the subtree rooted at the given path prefix. The first
// `pinned` frames are never advanced or popped: the parallel frontier pins
// the root frame at one option per worker, and each worker's sweep is then
// bit-identical to the slice of the serial DFS that has that option taken
// at the root.
ExploreResult explore_subtree(const RunFn& run, const ExploreOptions& opts,
                              std::vector<Frame> frames, std::size_t pinned,
                              bool meter, const ExploreStats& seed) {
  ExploreResult res;
  ExploreStats& st = res.stats;
  st = seed;
  for (;;) {
    if ((opts.max_runs != 0 && st.runs >= opts.max_runs) ||
        (opts.max_states != 0 && st.states >= opts.max_states)) {
      st.complete = false;
      break;
    }
    PathSource src(frames, st, opts.por, meter);
    RunVerdict v;
    bool pruned = false;
    try {
      v = run(src);
    } catch (const PruneSignal&) {
      pruned = true;
      ++st.sleep_blocked;
      if (meter) meters().sleep_blocked.inc();
    }
    st.max_depth = std::max(st.max_depth, frames.size());
    if (!pruned) {
      ++st.runs;
      if (meter) meters().runs.inc();
      if (v.truncated) {
        ++st.truncated_runs;
        if (meter) meters().truncated.inc();
      }
      if (!v.failure.empty()) {
        res.found = true;
        res.failure = std::move(v.failure);
        for (const Frame& f : frames) {
          if (f.is_pick) {
            res.witness.add_pick(f.taken);
          } else {
            res.witness.add_choice(f.taken);
          }
        }
        if (meter) meters().violations.inc();
        st.complete = false;  // stopped at the first violation in DFS order
        break;
      }
    }
    // Backtrack: advance the deepest frame with an untried awake option,
    // popping exhausted frames on the way down.
    bool advanced = false;
    while (frames.size() > pinned) {
      Frame& f = frames.back();
      f.explored[f.taken] = 1;
      std::size_t t = f.taken + 1;
      while (t < f.arity && (f.explored[t] != 0 || is_asleep(f, t))) ++t;
      if (t < f.arity) {
        f.taken = t;
        ++st.states;
        if (meter) meters().states.inc();
        advanced = true;
        break;
      }
      frames.pop_back();
    }
    if (!advanced) break;  // subtree exhausted
  }
  return res;
}

}  // namespace

ExploreResult explore(const RunFn& run, const ExploreOptions& opts) {
  Meters& m = meters();  // mint mc.* eagerly: stable registry key set
  const std::size_t jobs = opts.jobs != 0 ? opts.jobs : exec::default_jobs();

  // Bootstrap run along the all-first-options path to discover the root
  // decision point. Uncounted (throwaway stats, no metrics): subtree 0
  // re-executes the same path as its first run, so counting both would
  // double-book it. The first path cannot prune -- sleep sets only ever
  // contain options that were explored or asleep at a parent, and nothing
  // has been explored yet.
  std::vector<Frame> boot;
  ExploreStats boot_st;
  RunVerdict boot_v;
  {
    PathSource src(boot, boot_st, opts.por, /*meter=*/false);
    boot_v = run(src);
  }

  // The pool is constructed at every job count (width 1 runs inline on the
  // caller) so the exec.* registry entries exist regardless of RBVC_JOBS --
  // same key-set-stability contract as the mc.* handles above.
  const std::size_t arity = boot.empty() ? 0 : boot.front().arity;
  exec::ParallelExecutor pool(
      std::min(jobs, std::max<std::size_t>(arity, 1)));

  if (boot.empty()) {
    // No decision points at all: the run is deterministic; its one
    // execution is the whole tree.
    ExploreResult res;
    res.stats.runs = 1;
    m.runs.inc();
    if (boot_v.truncated) {
      res.stats.truncated_runs = 1;
      m.truncated.inc();
    }
    if (!boot_v.failure.empty()) {
      res.found = true;
      res.failure = std::move(boot_v.failure);
      res.stats.complete = false;
      m.violations.inc();
    }
    return res;
  }

  // Fan the root's options across the pool: subtree k pins root.taken = k
  // with options below k marked explored -- exactly the root state the
  // serial DFS carries into option k -- and find_first returns the lowest
  // violating subtree, so the witness is byte-identical at any width.
  const Frame& root = boot.front();
  std::vector<ExploreResult> slots(arity);
  std::vector<char> ran(arity, 0);
  const std::size_t hit = pool.find_first(arity, [&](std::size_t k) {
    Frame pin;
    pin.is_pick = root.is_pick;
    pin.arity = arity;
    pin.taken = k;
    pin.explored.assign(arity, 0);
    for (std::size_t j = 0; j < k; ++j) pin.explored[j] = 1;
    pin.sleep = root.sleep;  // empty at the root (nothing explored before)
    pin.recipients = root.recipients;
    ExploreStats seed;
    seed.states = 1;  // the pinned root edge
    m.states.inc();
    std::vector<Frame> frames;
    frames.push_back(std::move(pin));
    slots[k] =
        explore_subtree(run, opts, std::move(frames), /*pinned=*/1,
                        /*meter=*/true, seed);
    ran[k] = 1;
    return slots[k].found;
  });

  ExploreResult res;
  if (hit != exec::kNoIndex) {
    res.found = true;
    res.failure = slots[hit].failure;
    res.witness = slots[hit].witness;
  }
  // Merged stats: exact and job-count-independent when the sweep ran to
  // exhaustion (every subtree executed, each bit-identical to its serial
  // slice); advisory when a violation short-circuited it (subtrees above
  // the hit may have been skipped or cut short at any point).
  for (std::size_t k = 0; k < arity; ++k) {
    if (ran[k] == 0) continue;
    const ExploreStats& s = slots[k].stats;
    res.stats.runs += s.runs;
    res.stats.states += s.states;
    res.stats.sleep_skips += s.sleep_skips;
    res.stats.sleep_blocked += s.sleep_blocked;
    res.stats.truncated_runs += s.truncated_runs;
    res.stats.max_depth = std::max(res.stats.max_depth, s.max_depth);
    res.stats.complete = res.stats.complete && s.complete;
  }
  if (res.found) res.stats.complete = false;
  m.max_depth.set(static_cast<double>(res.stats.max_depth));
  return res;
}

}  // namespace rbvc::mc
