// Bounded exhaustive model checking: stateless DFS over the decision tree
// of a run function. Every nondeterministic decision a run makes -- the
// async engine's scheduler picks and the adversary's explicit choices --
// flows through one mc::ChoiceSource, so a run is a pure function of the
// decision sequence and the explorer can enumerate the whole tree by
// re-executing runs along each path (DFS-with-replay, no engine snapshots).
//
// Partial-order reduction (sleep sets, Godefroid-style) prunes commuting
// delivery interleavings: two pending deliveries commute when their
// recipients differ, because a delivery mutates only the recipient's state
// and appends that recipient's sends to the pool. When option j has been
// fully explored at a node, the child reached by an independent option i
// puts j to sleep -- any execution taking j there is a transposition of one
// already explored. Choices are never reduced (they select adversary
// behavior, not commuting events). docs/MODELCHECK.md has the full design
// and soundness argument.
//
// The DFS frontier fans out across exec::ParallelExecutor at the root
// decision point under the repo's determinism contract: the reported
// counterexample (witness schedule + failure) is byte-identical at any
// RBVC_JOBS, because each root subtree is explored exactly as the serial
// DFS would and find_first returns the lowest violating subtree. Stats are
// exact and job-count-independent for exhaustive (no-violation) runs, and
// advisory when a violation short-circuits the sweep.
//
// Progress lands in mc.* metrics (states explored, POR skips, runs,
// violations) in the global registry; see docs/OBSERVABILITY.md.
#pragma once

#include <functional>
#include <string>

#include "mc/choices.h"

namespace rbvc::mc {

/// Verdict of one run along one decision path.
struct RunVerdict {
  std::string failure;     // "" = invariant held (or the run was not judged)
  bool truncated = false;  // the run hit its event bound before quiescing
};

/// Executes one run, drawing every nondeterministic decision from the
/// source. Must be a deterministic function of the decisions taken (same
/// decisions -> same subsequent decision points and same verdict), must be
/// thread-safe (subtrees explore in parallel), and must let exceptions
/// propagate (the explorer aborts redundant runs by throwing through it).
using RunFn = std::function<RunVerdict(ChoiceSource&)>;

struct ExploreOptions {
  bool por = true;             // sleep-set partial-order reduction
  std::size_t max_runs = 0;    // per root subtree; 0 = unlimited
  std::size_t max_states = 0;  // per root subtree; 0 = unlimited
  std::size_t jobs = 0;        // frontier width; 0 = exec::default_jobs()
};

struct ExploreStats {
  std::size_t runs = 0;            // complete executions
  std::size_t states = 0;          // decision-tree edges executed
  std::size_t sleep_skips = 0;     // options put to sleep (subtrees pruned)
  std::size_t sleep_blocked = 0;   // runs aborted: every fresh option asleep
  std::size_t truncated_runs = 0;  // runs that hit their event bound
  std::size_t max_depth = 0;       // deepest decision stack seen
  // True when the bounded tree was exhausted: no cap was hit and no
  // violation stopped the sweep early. A complete sweep with
  // truncated_runs == 0 is an exhaustive proof of the oracle over the
  // instance; with truncation the proof covers only the bounded prefixes.
  bool complete = true;
};

struct ExploreResult {
  ExploreStats stats;
  bool found = false;
  std::string failure;       // first violation in DFS order
  sim::ScheduleLog witness;  // its decision path: kPick + kChoice entries
};

/// Explores the decision tree of `run`, depth-first, until exhaustion, a
/// violation, or the configured caps. Deterministic counterexample at any
/// job count (see header comment).
ExploreResult explore(const RunFn& run, const ExploreOptions& opts = {});

}  // namespace rbvc::mc
