#include "net/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/node.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "rbvc/common.h"

namespace rbvc::net {

namespace {

void set_timeout(int fd, int optname, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t k =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (k <= 0) return;  // peer went away; nothing to salvage
    off += static_cast<std::size_t>(k);
  }
}

/// Reads up to the first newline (the command line). Empty on timeout/EOF.
std::string read_line(int fd) {
  std::string line;
  char ch = 0;
  while (line.size() < 256) {
    const ssize_t k = ::recv(fd, &ch, 1, 0);
    if (k <= 0) return "";
    if (ch == '\n') break;
    if (ch != '\r') line.push_back(ch);
  }
  return line;
}

}  // namespace

AdminServer::AdminServer(const ConsensusNode& node, std::uint16_t port)
    : node_(node) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  RBVC_REQUIRE(listen_fd_ >= 0, "admin: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 8) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw numerical_error("admin: cannot listen on 127.0.0.1:" +
                          std::to_string(port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  RBVC_REQUIRE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0,
               "admin: getsockname failed");
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

AdminServer::~AdminServer() { close(); }

void AdminServer::close() {
  if (!open_.exchange(false, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::accept_loop() {
  while (open_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!open_.load(std::memory_order_acquire)) return;
      continue;
    }
    // Served inline: replies are snapshots of lock-free state, so even a
    // slow client only delays the next accept, never the consensus loop.
    set_timeout(fd, SO_RCVTIMEO, 2000);
    serve_one(fd);
    ::close(fd);
  }
}

void AdminServer::serve_one(int fd) {
  const std::string cmd = read_line(fd);
  if (cmd == "status") {
    send_all(fd, node_.status_json() + "\n");
  } else if (cmd == "metrics") {
    send_all(fd, obs::global().dump_json());
  } else if (cmd == "trace") {
    send_all(fd, obs::events::dump_jsonl());
  } else {
    send_all(fd, "err unknown command\n");
  }
  ::shutdown(fd, SHUT_RDWR);  // the client reads to EOF
}

std::string admin_query(const std::string& host, std::uint16_t port,
                        const std::string& command, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RBVC_REQUIRE(fd >= 0, "admin: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw invalid_argument("admin: cannot parse host `" + host + "`");
  }
  set_timeout(fd, SO_RCVTIMEO, timeout_ms);
  set_timeout(fd, SO_SNDTIMEO, timeout_ms);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw numerical_error("admin: cannot connect to " + host + ":" +
                          std::to_string(port) + ": " + err);
  }
  send_all(fd, command + "\n");
  std::string reply;
  char tmp[4096];
  while (true) {
    const ssize_t k = ::recv(fd, tmp, sizeof(tmp), 0);
    if (k < 0 && (errno == EWOULDBLOCK || errno == EAGAIN)) {
      ::close(fd);
      throw numerical_error("admin: reply from " + host + ":" +
                            std::to_string(port) + " timed out");
    }
    if (k <= 0) break;
    reply.append(tmp, static_cast<std::size_t>(k));
  }
  ::close(fd);
  return reply;
}

}  // namespace rbvc::net
