// Live cluster introspection: a minimal line-protocol status endpoint each
// rbvc-node can expose (--admin-port). One accept-loop thread serves one
// request per connection: the client sends a single command line and reads
// the reply until EOF.
//
//   status   -> ConsensusNode::status_json()            (one line)
//   metrics  -> obs::global().dump_json()               (multi-line JSON)
//   trace    -> obs::events::dump_jsonl()               (JSONL, may be long)
//
// Anything else gets "err unknown command\n". The endpoint is deliberately
// read-only and unauthenticated -- it is an operator peephole on a trusted
// network (the CI smoke binds 127.0.0.1), not a control plane. Requests are
// served inline under a short receive timeout so a silent client cannot
// wedge the acceptor for long, and the server never touches the consensus
// serve thread: status_json reads the node's LiveStatus atomics, metrics
// and trace read their own lock-free stores.
//
// admin_query() is the matching client (rbvc-client --status, net_smoke.sh
// via rbvc-client): connect, send the command, read to EOF.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace rbvc::net {

class ConsensusNode;

class AdminServer {
 public:
  /// Binds 127.0.0.1:port (port 0 = kernel-assigned, see port()) and starts
  /// the accept loop. Throws on bind failure. `node` must outlive this.
  AdminServer(const ConsensusNode& node, std::uint16_t port);
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Stops the accept loop and closes the listen socket. Idempotent.
  void close();

 private:
  void accept_loop();
  void serve_one(int fd);

  const ConsensusNode& node_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> open_{true};
  std::thread acceptor_;
};

/// One admin round-trip: sends `command` to host:port, returns the reply
/// (read to EOF). Throws numerical_error when the endpoint is unreachable
/// or times out (timeout_ms bounds both connect-inherited recv and reply).
std::string admin_query(const std::string& host, std::uint16_t port,
                        const std::string& command, int timeout_ms = 5000);

}  // namespace rbvc::net
