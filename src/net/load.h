// Pipelined consensus load driver: the client-side loop shared by
// rbvc-client and bench_net_cluster. Keeps `window` instances in flight,
// proposing a fresh instance each time one resolves, and records per-instance
// decision latency (propose -> quorum-th ok decision).
//
// An instance "resolves" when `quorum` ok decisions arrived (decided), when
// every node reported but the quorum was missed (failed), or when the
// client went `decision_timeout_ms` without hearing anything (stalled --
// aborts the run, since a quiet cluster will not wake up on its own).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "net/node.h"
#include "obs/events.h"

namespace rbvc::net {

struct LoadOptions {
  std::size_t nodes = 4;
  std::size_t instances = 100;   // total instances to decide
  std::size_t window = 8;        // instances kept in flight
  std::size_t quorum = 3;        // ok decisions that resolve an instance
  std::size_t dim = 2;           // input vector dimension
  std::uint64_t seed = 1;
  int decision_timeout_ms = 30000;
  double spread = 1.0;           // inputs drawn uniform from [-spread, spread]^d
};

struct LoadResult {
  std::size_t decided = 0;       // instances that reached quorum
  std::size_t failed = 0;        // instances that provably missed quorum
  bool stalled = false;          // run aborted on a decision timeout
  double elapsed_ms = 0.0;
  std::vector<double> latencies_ms;  // one per decided instance

  double throughput_per_s() const {
    return elapsed_ms > 0 ? static_cast<double>(decided) * 1000.0 / elapsed_ms
                          : 0.0;
  }
  /// q in [0,1]; nearest-rank percentile of the decided-instance latencies.
  double latency_percentile(double q) const {
    if (latencies_ms.empty()) return 0.0;
    std::vector<double> s = latencies_ms;
    std::sort(s.begin(), s.end());
    // Clamp to [0, n-1] while still floating point: q == 0 yields rank -1,
    // and casting a negative double to size_t is UB.
    const double n = static_cast<double>(s.size());
    const double rank =
        std::max(0.0, std::min(n - 1, std::ceil(q * n) - 1));
    return s[static_cast<std::size_t>(rank)];
  }
};

inline LoadResult run_pipelined_load(ClusterClient& client,
                                     const LoadOptions& opt) {
  using Clock = std::chrono::steady_clock;
  struct InFlight {
    Clock::time_point started;
    std::size_t ok = 0;
    std::size_t reports = 0;
  };

  std::mt19937_64 rng(opt.seed);
  std::uniform_real_distribution<double> dist(-opt.spread, opt.spread);
  auto launch = [&](int instance) {
    std::vector<Vec> inputs(opt.nodes);
    for (auto& v : inputs) {
      v.resize(opt.dim);
      for (auto& x : v) x = dist(rng);
    }
    obs::events::emit(obs::events::Type::kPropose, instance,
                      static_cast<std::int64_t>(opt.dim));
    client.propose(instance, inputs);
    return InFlight{Clock::now(), 0, 0};
  };

  LoadResult res;
  std::map<int, InFlight> flying;
  int next_instance = 0;
  const auto t0 = Clock::now();
  const auto since_ms = [](Clock::time_point from) {
    return std::chrono::duration<double, std::milli>(Clock::now() - from)
        .count();
  };

  while (res.decided + res.failed <
         static_cast<std::size_t>(opt.instances)) {
    while (flying.size() < opt.window &&
           static_cast<std::size_t>(next_instance) < opt.instances) {
      flying.emplace(next_instance, launch(next_instance));
      ++next_instance;
    }
    auto ev = client.next_decision(opt.decision_timeout_ms);
    if (!ev) {
      res.stalled = true;
      break;
    }
    auto it = flying.find(ev->instance);
    if (it == flying.end()) continue;  // late report for a resolved instance
    ++it->second.reports;
    if (ev->ok) ++it->second.ok;
    if (it->second.ok >= opt.quorum) {
      ++res.decided;
      const double ms = since_ms(it->second.started);
      res.latencies_ms.push_back(ms);
      obs::events::emit(obs::events::Type::kDecision, ev->instance, 1,
                        static_cast<std::int64_t>(ms * 1e6));
      flying.erase(it);
    } else if (it->second.reports >= opt.nodes) {
      ++res.failed;
      obs::events::emit(
          obs::events::Type::kDecision, ev->instance, 0,
          static_cast<std::int64_t>(since_ms(it->second.started) * 1e6));
      flying.erase(it);
    }
  }
  res.elapsed_ms = since_ms(t0);
  return res;
}

}  // namespace rbvc::net
