#include "net/local_bus.h"

#include "obs/metrics.h"

namespace rbvc::net {

class LocalBus::Endpoint final : public Transport {
 public:
  Endpoint(LocalBus& bus, ProcessId self, std::size_t n)
      : bus_(bus), self_(self), n_(n) {}

  void send(ProcessId to, Message m) override {
    RBVC_REQUIRE(to < n_, "LocalBus::send: unknown recipient");
    m.from = self_;
    m.to = to;
    bus_.endpoints_[to]->mailbox_.push(std::move(m));
    obs::global().counter("net.frames_sent").inc();
  }

  std::optional<Message> receive(int timeout_ms) override {
    auto m = mailbox_.pop(timeout_ms);
    if (m) {
      obs::Registry& reg = obs::global();
      reg.counter("net.frames_received").inc();
      reg.histogram("net.queue_depth", obs::count_buckets())
          .observe(static_cast<double>(mailbox_.depth()));
    }
    return m;
  }

  ProcessId self() const override { return self_; }
  std::size_t size() const override { return n_; }
  bool closed() const override { return mailbox_.closed(); }

  Mailbox mailbox_;

 private:
  LocalBus& bus_;
  ProcessId self_;
  std::size_t n_;
};

LocalBus::LocalBus(std::size_t n) {
  RBVC_REQUIRE(n > 0, "LocalBus: need at least one endpoint");
  endpoints_.reserve(n);
  for (ProcessId id = 0; id < n; ++id) {
    endpoints_.push_back(std::make_unique<Endpoint>(*this, id, n));
  }
}

LocalBus::~LocalBus() { close(); }

Transport& LocalBus::endpoint(ProcessId id) {
  RBVC_REQUIRE(id < endpoints_.size(), "LocalBus::endpoint: unknown id");
  return *endpoints_[id];
}

void LocalBus::close() {
  for (auto& ep : endpoints_) ep->mailbox_.close();
}

}  // namespace rbvc::net
