// In-process loopback transport: n endpoints over lock-free MPSC mailboxes
// (net/mailbox.h), one per process. Sends are a single allocation plus an
// atomic exchange -- no serialization, no sockets -- so protocol code can
// be driven from real threads (exec-pool workers or std::thread) at memory
// speed, sitting between the deterministic sim and the TCP transport.
//
// Delivery guarantees: reliable (nothing is dropped until close) and
// per-sender FIFO; cross-sender order is whatever the consuming thread
// observes, which makes the bus a genuinely asynchronous network in the
// paper's sense.
#pragma once

#include <memory>
#include <vector>

#include "net/mailbox.h"
#include "net/transport.h"

namespace rbvc::net {

class LocalBus {
 public:
  explicit LocalBus(std::size_t n);
  ~LocalBus();
  LocalBus(const LocalBus&) = delete;
  LocalBus& operator=(const LocalBus&) = delete;

  std::size_t size() const { return endpoints_.size(); }

  /// Endpoint `id`'s transport. One consumer thread per endpoint; any
  /// thread may send through any endpoint.
  Transport& endpoint(ProcessId id);

  /// Closes every mailbox, unblocking all receivers permanently.
  void close();

 private:
  class Endpoint;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace rbvc::net
