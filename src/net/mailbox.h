// Lock-free multi-producer / single-consumer mailbox: the delivery queue
// behind every pull-based transport endpoint (LocalBus, TcpTransport).
//
// Producers push onto an intrusive Treiber stack (one atomic exchange, no
// locks, no waiting); the consumer grabs the whole stack with one exchange
// and reverses it into a local FIFO batch. A counting semaphore carries
// wake hints -- one release per push (after the node is published) and one
// per close() -- so a blocked pop() never misses a concurrent push: if the
// consumer's drain raced past a node, the producer's release is still
// pending and re-wakes the loop. Hints are not message-exact (a drain can
// scoop several nodes on one wake), so the pop loop re-checks the queue on
// every wake-up instead of trusting the permit count.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <iterator>
#include <optional>
#include <semaphore>
#include <vector>

#include "obs/events.h"
#include "sim/message.h"

namespace rbvc::net {

class Mailbox {
 public:
  Mailbox() = default;
  ~Mailbox() {
    Node* n = head_.exchange(nullptr, std::memory_order_acquire);
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Any thread. Publishes the message and wakes one pending pop().
  void push(sim::Message m) {
    Node* node = new Node{std::move(m), nullptr, obs::events::now_ns()};
    Node* old = head_.load(std::memory_order_relaxed);
    do {
      node->next = old;
    } while (!head_.compare_exchange_weak(old, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    depth_.fetch_add(1, std::memory_order_relaxed);
    sem_.release();
  }

  /// Consumer thread only. Next message in per-producer FIFO order, waiting
  /// up to timeout_ms (0 = non-blocking); nullopt on timeout or close.
  std::optional<sim::Message> pop(int timeout_ms) {
    if (!batch_.empty()) return take_from_batch();
    refill();
    if (!batch_.empty()) return take_from_batch();
    if (timeout_ms <= 0 || closed()) return std::nullopt;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      const auto left = deadline - std::chrono::steady_clock::now();
      if (left <= std::chrono::steady_clock::duration::zero() ||
          !sem_.try_acquire_for(left)) {
        refill();  // one final scoop for a push that raced the deadline
        return batch_.empty() ? std::nullopt : take_from_batch();
      }
      refill();
      if (!batch_.empty()) return take_from_batch();
      if (closed()) return std::nullopt;
      // Spurious hint (its messages were scooped by an earlier drain);
      // keep waiting out the deadline.
    }
  }

  /// Any thread. Unblocks the consumer permanently.
  void close() {
    closed_.store(true, std::memory_order_release);
    sem_.release();
  }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate queued-message count (for the net.queue_depth gauge).
  std::size_t depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

  /// Consumer thread only. Queue wait (push -> pop, ns) of the message the
  /// most recent successful pop() returned -- the transport rx-queue share
  /// of the latency attribution (kQueuePop events).
  std::uint64_t last_pop_wait_ns() const { return last_pop_wait_ns_; }

 private:
  struct Node {
    sim::Message m;
    Node* next;
    std::uint64_t enqueued_ns;  // obs::events::now_ns() at push
  };
  struct Entry {
    sim::Message m;
    std::uint64_t enqueued_ns;
  };

  std::optional<sim::Message> take_from_batch() {
    Entry e = std::move(batch_.front());
    batch_.pop_front();
    depth_.fetch_sub(1, std::memory_order_relaxed);
    const std::uint64_t now = obs::events::now_ns();
    last_pop_wait_ns_ = now > e.enqueued_ns ? now - e.enqueued_ns : 0;
    return std::move(e.m);
  }

  void refill() {
    Node* n = head_.exchange(nullptr, std::memory_order_acquire);
    if (n == nullptr) return;
    // The stack is LIFO (newest first) and everything scooped here is newer
    // than anything already batched, so collect then append reversed: O(k),
    // not the O(k^2) of inserting each node mid-deque.
    scratch_.clear();
    while (n != nullptr) {
      scratch_.push_back(Entry{std::move(n->m), n->enqueued_ns});
      Node* next = n->next;
      delete n;
      n = next;
    }
    batch_.insert(batch_.end(), std::make_move_iterator(scratch_.rbegin()),
                  std::make_move_iterator(scratch_.rend()));
  }

  std::atomic<Node*> head_{nullptr};
  std::atomic<std::size_t> depth_{0};
  std::atomic<bool> closed_{false};
  std::counting_semaphore<> sem_{0};
  std::deque<Entry> batch_;     // consumer-local, FIFO order
  std::vector<Entry> scratch_;  // refill staging, reused across drains
  std::uint64_t last_pop_wait_ns_ = 0;
};

}  // namespace rbvc::net
