#include "net/node.h"

#include <chrono>
#include <utility>

#include "obs/events.h"
#include "obs/metrics.h"

namespace rbvc::net {

namespace {

/// Cumulative LP-kernel time in ns, read before/after a protocol callback
/// to attribute its LP share (kProtoStep.b). Process-global, so in-process
/// multi-node fleets overlap -- treat the per-step delta as approximate
/// there; rbvc-node processes are single-consumer and exact.
std::uint64_t lp_total_ns() {
  const obs::Histogram* h = obs::global().find_histogram("lp.seconds");
  return h == nullptr ? 0
                      : static_cast<std::uint64_t>(h->sum() * 1e9);
}

}  // namespace

ConsensusNode::ConsensusNode(Params params, Transport& t)
    : params_(std::move(params)), t_(t) {
  RBVC_REQUIRE(params_.prm.n > 0, "ConsensusNode: params.prm.n must be set");
  RBVC_REQUIRE(t_.self() < params_.prm.n,
               "ConsensusNode: transport id is not a node id");
}

bool ConsensusNode::step(int timeout_ms) {
  if (crashed_) return false;
  auto m = t_.receive(timeout_ms);
  if (!m) return false;
  handle(std::move(*m));
  return true;
}

void ConsensusNode::serve(const std::atomic<bool>& stop, int poll_ms) {
  while (!stop.load(std::memory_order_acquire) && !crashed_ && !t_.closed()) {
    step(poll_ms);
  }
}

void ConsensusNode::handle(Message m) {
  if (m.kind == "propose") {
    if (m.meta.size() != 1 || m.payload.empty()) {
      ++stats_.dropped;
      live_.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    start_instance(static_cast<int>(m.meta[0]), m);
    return;
  }
  if (m.kind == "decided" || m.meta.empty()) {
    ++stats_.dropped;  // not addressed to a node / missing instance tag
    live_.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int instance = static_cast<int>(m.meta.front());
  m.meta.erase(m.meta.begin());
  deliver(instance, m);
}

void ConsensusNode::start_instance(int instance, const Message& propose) {
  if (instance < gc_floor_) {
    ++stats_.dropped;
    live_.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Instance& inst = instances_[instance];
  inst.client = propose.from;
  if (inst.proc) return;  // duplicate propose
  ++stats_.proposed;
  live_.proposed.fetch_add(1, std::memory_order_relaxed);
  live_.live_instances.store(static_cast<std::int64_t>(instances_.size()),
                             std::memory_order_relaxed);
  inst.start_ns = obs::events::now_ns();
  obs::events::emit(obs::events::Type::kInstanceStart, instance,
                    static_cast<std::int64_t>(propose.from));
  inst.proc = std::make_unique<consensus::AsyncAveragingProcess>(
      params_.prm, t_.self(), propose.payload);
  InstanceOutbox out(t_, instance);
  const std::uint64_t lp0 = lp_total_ns();
  const std::uint64_t t0 = obs::events::now_ns();
  inst.proc->init(out);
  // Replay peers' protocol traffic that outran our propose.
  std::vector<Message> backlog;
  backlog.swap(inst.backlog);
  for (auto& b : backlog) inst.proc->on_message(b, out);
  obs::events::emit(obs::events::Type::kProtoStep, instance,
                    static_cast<std::int64_t>(obs::events::now_ns() - t0),
                    static_cast<std::int64_t>(lp_total_ns() - lp0));
  report_if_decided(instance);
}

void ConsensusNode::deliver(int instance, const Message& m) {
  if (instance < gc_floor_) {
    ++stats_.dropped;  // straggler for an already-retired instance
    live_.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Instance& inst = instances_[instance];
  if (!inst.proc) {
    inst.backlog.push_back(m);
    live_.backlogged.fetch_add(1, std::memory_order_relaxed);
    obs::events::emit(obs::events::Type::kBacklog, instance,
                      static_cast<std::int64_t>(inst.backlog.size()));
    return;
  }
  if (inst.proc->decided()) return;
  InstanceOutbox out(t_, instance);
  const std::uint64_t lp0 = lp_total_ns();
  const std::uint64_t t0 = obs::events::now_ns();
  inst.proc->on_message(m, out);
  obs::events::emit(obs::events::Type::kProtoStep, instance,
                    static_cast<std::int64_t>(obs::events::now_ns() - t0),
                    static_cast<std::int64_t>(lp_total_ns() - lp0));
  report_if_decided(instance);
}

void ConsensusNode::report_if_decided(int instance) {
  Instance& inst = instances_.at(instance);
  if (!inst.proc->decided() || inst.reported) return;
  inst.reported = true;
  const bool ok = !inst.proc->failed();
  if (ok) {
    ++stats_.decided;
    live_.decided.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++stats_.failed;
    live_.failed.fetch_add(1, std::memory_order_relaxed);
  }
  obs::global().counter("net.instances_decided").inc();
  const std::uint64_t now = obs::events::now_ns();
  const std::int64_t decide_ns =
      static_cast<std::int64_t>(now > inst.start_ns ? now - inst.start_ns : 0);
  obs::events::emit(obs::events::Type::kInstanceDecided, instance, ok ? 1 : 0,
                    decide_ns);
  live_.last_decided.store(instance, std::memory_order_relaxed);
  live_.last_decide_ns.store(decide_ns, std::memory_order_relaxed);
  Message reply("decided", {instance, ok ? 1 : 0},
                ok ? inst.proc->decision() : Vec{});
  t_.send(inst.client, std::move(reply));
  if (params_.crash_after_decided != 0 &&
      stats_.decided + stats_.failed >= params_.crash_after_decided) {
    crashed_ = true;
    live_.crashed.store(true, std::memory_order_relaxed);
  }
  gc();
}

void ConsensusNode::gc() {
  if (params_.retain_instances == 0) return;
  bool retired = false;
  while (instances_.size() > params_.retain_instances &&
         instances_.begin()->second.reported) {
    gc_floor_ = instances_.begin()->first + 1;
    instances_.erase(instances_.begin());
    retired = true;
  }
  if (retired) {
    live_.gc_floor.store(gc_floor_, std::memory_order_relaxed);
    live_.live_instances.store(static_cast<std::int64_t>(instances_.size()),
                               std::memory_order_relaxed);
    obs::events::emit(obs::events::Type::kGc, gc_floor_,
                      static_cast<std::int64_t>(instances_.size()));
  }
}

std::string ConsensusNode::status_json() const {
  // Alphabetical keys and integer values only, mirroring the metrics
  // registry's stable-dump convention so scripted consumers (net_smoke.sh,
  // rbvc-client --status) can string-match.
  auto u = [](std::uint64_t v) { return std::to_string(v); };
  auto i = [](std::int64_t v) { return std::to_string(v); };
  const LiveStatus& s = live_;
  std::string out = "{";
  out += "\"backlogged\":" + u(s.backlogged.load(std::memory_order_relaxed));
  out += ",\"crashed\":";
  out += s.crashed.load(std::memory_order_relaxed) ? "1" : "0";
  out += ",\"decided\":" + u(s.decided.load(std::memory_order_relaxed));
  out += ",\"dropped\":" + u(s.dropped.load(std::memory_order_relaxed));
  out += ",\"failed\":" + u(s.failed.load(std::memory_order_relaxed));
  out += ",\"gc_floor\":" + i(s.gc_floor.load(std::memory_order_relaxed));
  out += ",\"last_decide_ns\":" +
         i(s.last_decide_ns.load(std::memory_order_relaxed));
  out += ",\"last_decided\":" +
         i(s.last_decided.load(std::memory_order_relaxed));
  out += ",\"live_instances\":" +
         i(s.live_instances.load(std::memory_order_relaxed));
  out += ",\"proposed\":" + u(s.proposed.load(std::memory_order_relaxed));
  out += "}";
  return out;
}

ClusterClient::ClusterClient(Transport& t, std::size_t n) : t_(t), n_(n) {
  RBVC_REQUIRE(n_ > 0 && n_ < t_.size(),
               "ClusterClient: cluster must have nodes plus a client slot");
  RBVC_REQUIRE(t_.self() >= n_, "ClusterClient: client id collides with a node");
}

void ClusterClient::propose(int instance, const std::vector<Vec>& inputs) {
  RBVC_REQUIRE(inputs.size() == n_,
               "ClusterClient::propose: one input per node required");
  for (ProcessId i = 0; i < n_; ++i) {
    t_.send(i, Message("propose", {instance}, inputs[i]));
  }
}

std::optional<DecisionEvent> ClusterClient::next_decision(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const int left =
        timeout_ms <= 0
            ? 0
            : static_cast<int>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count());
    auto m = t_.receive(left > 0 ? left : 0);
    if (!m) return std::nullopt;
    if (m->kind == "decided" && m->meta.size() == 2) {
      DecisionEvent ev;
      ev.node = m->from;
      ev.instance = static_cast<int>(m->meta[0]);
      ev.ok = m->meta[1] != 0;
      ev.value = std::move(m->payload);
      return ev;
    }
    if (now >= deadline) return std::nullopt;
  }
}

}  // namespace rbvc::net
