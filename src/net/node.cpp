#include "net/node.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace rbvc::net {

ConsensusNode::ConsensusNode(Params params, Transport& t)
    : params_(std::move(params)), t_(t) {
  RBVC_REQUIRE(params_.prm.n > 0, "ConsensusNode: params.prm.n must be set");
  RBVC_REQUIRE(t_.self() < params_.prm.n,
               "ConsensusNode: transport id is not a node id");
}

bool ConsensusNode::step(int timeout_ms) {
  if (crashed_) return false;
  auto m = t_.receive(timeout_ms);
  if (!m) return false;
  handle(std::move(*m));
  return true;
}

void ConsensusNode::serve(const std::atomic<bool>& stop, int poll_ms) {
  while (!stop.load(std::memory_order_acquire) && !crashed_ && !t_.closed()) {
    step(poll_ms);
  }
}

void ConsensusNode::handle(Message m) {
  if (m.kind == "propose") {
    if (m.meta.size() != 1 || m.payload.empty()) {
      ++stats_.dropped;
      return;
    }
    start_instance(static_cast<int>(m.meta[0]), m);
    return;
  }
  if (m.kind == "decided" || m.meta.empty()) {
    ++stats_.dropped;  // not addressed to a node / missing instance tag
    return;
  }
  const int instance = static_cast<int>(m.meta.front());
  m.meta.erase(m.meta.begin());
  deliver(instance, m);
}

void ConsensusNode::start_instance(int instance, const Message& propose) {
  if (instance < gc_floor_) {
    ++stats_.dropped;
    return;
  }
  Instance& inst = instances_[instance];
  inst.client = propose.from;
  if (inst.proc) return;  // duplicate propose
  ++stats_.proposed;
  inst.proc = std::make_unique<consensus::AsyncAveragingProcess>(
      params_.prm, t_.self(), propose.payload);
  InstanceOutbox out(t_, instance);
  inst.proc->init(out);
  // Replay peers' protocol traffic that outran our propose.
  std::vector<Message> backlog;
  backlog.swap(inst.backlog);
  for (auto& b : backlog) inst.proc->on_message(b, out);
  report_if_decided(instance);
}

void ConsensusNode::deliver(int instance, const Message& m) {
  if (instance < gc_floor_) {
    ++stats_.dropped;  // straggler for an already-retired instance
    return;
  }
  Instance& inst = instances_[instance];
  if (!inst.proc) {
    inst.backlog.push_back(m);
    return;
  }
  if (inst.proc->decided()) return;
  InstanceOutbox out(t_, instance);
  inst.proc->on_message(m, out);
  report_if_decided(instance);
}

void ConsensusNode::report_if_decided(int instance) {
  Instance& inst = instances_.at(instance);
  if (!inst.proc->decided() || inst.reported) return;
  inst.reported = true;
  const bool ok = !inst.proc->failed();
  if (ok) {
    ++stats_.decided;
  } else {
    ++stats_.failed;
  }
  obs::global().counter("net.instances_decided").inc();
  Message reply("decided", {instance, ok ? 1 : 0},
                ok ? inst.proc->decision() : Vec{});
  t_.send(inst.client, std::move(reply));
  if (params_.crash_after_decided != 0 &&
      stats_.decided + stats_.failed >= params_.crash_after_decided) {
    crashed_ = true;
  }
  gc();
}

void ConsensusNode::gc() {
  if (params_.retain_instances == 0) return;
  while (instances_.size() > params_.retain_instances &&
         instances_.begin()->second.reported) {
    gc_floor_ = instances_.begin()->first + 1;
    instances_.erase(instances_.begin());
  }
}

ClusterClient::ClusterClient(Transport& t, std::size_t n) : t_(t), n_(n) {
  RBVC_REQUIRE(n_ > 0 && n_ < t_.size(),
               "ClusterClient: cluster must have nodes plus a client slot");
  RBVC_REQUIRE(t_.self() >= n_, "ClusterClient: client id collides with a node");
}

void ClusterClient::propose(int instance, const std::vector<Vec>& inputs) {
  RBVC_REQUIRE(inputs.size() == n_,
               "ClusterClient::propose: one input per node required");
  for (ProcessId i = 0; i < n_; ++i) {
    t_.send(i, Message("propose", {instance}, inputs[i]));
  }
}

std::optional<DecisionEvent> ClusterClient::next_decision(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const int left =
        timeout_ms <= 0
            ? 0
            : static_cast<int>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count());
    auto m = t_.receive(left > 0 ? left : 0);
    if (!m) return std::nullopt;
    if (m->kind == "decided" && m->meta.size() == 2) {
      DecisionEvent ev;
      ev.node = m->from;
      ev.instance = static_cast<int>(m->meta[0]);
      ev.ok = m->meta[1] != 0;
      ev.value = std::move(m->payload);
      return ev;
    }
    if (now >= deadline) return std::nullopt;
  }
}

}  // namespace rbvc::net
