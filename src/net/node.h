// Transport-hosted consensus runtime: one ConsensusNode per cluster member
// runs a stream of Relaxed Verified Averaging instances (consensus/
// async_averaging.h) over any net::Transport, demultiplexed by instance id;
// a ClusterClient proposes inputs and collects decisions. This is the
// rbvc-node / rbvc-client core and the engine of bench_net_cluster.
//
// Cluster layout: transport ids [0, n) are consensus nodes; ids >= n are
// clients. Protocol traffic ("rbc", "witness") is instance-tagged by
// prefixing meta with the instance id -- the prefix is added on send and
// stripped before the protocol object sees the message, so BrachaRbc /
// WitnessExchange / AsyncAveragingProcess run byte-identically to their sim
// hosting. Node-level kinds:
//   "propose" client -> node : meta = [instance], payload = this node's
//                              input vector; starts the instance.
//   "decided" node -> client : meta = [instance, ok], payload = decision
//                              (empty when the instance failed).
// Messages that outrun their propose (a peer's round-0 broadcast arriving
// first) are buffered per instance and replayed once the propose lands.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consensus/async_averaging.h"
#include "net/transport.h"

namespace rbvc::net {

/// Instance-scoped send channel: prefixes meta with the instance id so one
/// transport carries many interleaved protocol instances.
class InstanceOutbox final : public Outbox {
 public:
  InstanceOutbox(Transport& t, int instance) : t_(t), instance_(instance) {}
  void send(ProcessId to, Message m) override {
    m.meta.insert(m.meta.begin(), instance_);
    t_.send(to, std::move(m));
  }

 private:
  Transport& t_;
  int instance_;
};

class ConsensusNode {
 public:
  struct Params {
    consensus::AsyncAveragingProcess::Params prm;  // prm.n = node count
    /// Stop serving (simulated crash) after this many local decisions;
    /// 0 = never. The CI smoke's crash-faulted node uses this.
    std::size_t crash_after_decided = 0;
    /// Drop oldest decided instances beyond this many retained (0 = keep
    /// all); bounds memory under sustained pipelined load.
    std::size_t retain_instances = 1024;
  };

  struct Stats {
    std::size_t proposed = 0;
    std::size_t decided = 0;
    std::size_t failed = 0;
    std::size_t dropped = 0;  // unroutable / malformed messages
  };

  /// Lock-free mirror of the serve loop's progress, readable from another
  /// thread (the admin endpoint, net/admin.h) while serve() runs. The serve
  /// thread updates these with relaxed stores next to the plain Stats; a
  /// reader sees a near-point-in-time view, never a torn one.
  struct LiveStatus {
    std::atomic<std::uint64_t> proposed{0};
    std::atomic<std::uint64_t> decided{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> backlogged{0};  // messages buffered pre-propose
    std::atomic<std::int64_t> live_instances{0};
    std::atomic<std::int64_t> gc_floor{0};
    std::atomic<std::int64_t> last_decided{-1};   // newest reported instance
    std::atomic<std::int64_t> last_decide_ns{0};  // its start -> decide ns
    std::atomic<bool> crashed{false};
  };

  ConsensusNode(Params params, Transport& t);

  /// Handles one delivered message if any arrives within timeout_ms.
  /// Returns false when nothing arrived (idle) or the node has crashed.
  bool step(int timeout_ms);

  /// Serves until `stop` becomes true or the simulated crash point; the
  /// receive loop wakes every poll_ms to re-check `stop`.
  void serve(const std::atomic<bool>& stop, int poll_ms = 20);

  const Stats& stats() const { return stats_; }
  const LiveStatus& live() const { return live_; }
  /// One-line JSON of the live status, alphabetical keys -- the admin
  /// endpoint's "status" reply. Safe from any thread.
  std::string status_json() const;
  bool crashed() const { return crashed_; }
  Transport& transport() { return t_; }

 private:
  struct Instance {
    std::unique_ptr<consensus::AsyncAveragingProcess> proc;
    std::vector<Message> backlog;  // arrived before the propose
    ProcessId client = 0;
    bool reported = false;
    std::uint64_t start_ns = 0;  // propose arrival, for decide latency
  };

  void handle(Message m);
  void start_instance(int instance, const Message& propose);
  void deliver(int instance, const Message& m);
  void report_if_decided(int instance);
  void gc();

  Params params_;
  Transport& t_;
  Stats stats_;
  LiveStatus live_;
  bool crashed_ = false;
  int gc_floor_ = 0;  // instances below this id were retired by gc()
  std::map<int, Instance> instances_;
};

/// One decision notification collected by a client.
struct DecisionEvent {
  ProcessId node = 0;
  int instance = 0;
  bool ok = false;
  Vec value;
};

/// Client endpoint: proposes instances to every node and pumps decision
/// notifications. Drive it from a single thread.
class ClusterClient {
 public:
  /// `t.self()` must be >= n (a non-node id); `n` is the node count.
  ClusterClient(Transport& t, std::size_t n);

  /// Starts `instance` with inputs[i] as node i's input (inputs.size()==n).
  void propose(int instance, const std::vector<Vec>& inputs);

  /// Next decision notification, or nullopt after timeout_ms of idleness.
  std::optional<DecisionEvent> next_decision(int timeout_ms);

 private:
  Transport& t_;
  std::size_t n_;
};

}  // namespace rbvc::net
