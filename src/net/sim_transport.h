// Sim adapter: presents one sim-engine process's per-delivery Outbox as a
// net::Transport, so protocol code written against the transport boundary
// runs inside AsyncProcess/SyncProcess callbacks unchanged.
//
// The sim engines invert control -- the scheduler picks a pending message
// and calls the process back -- so this transport is push-only: sends pass
// straight through to the engine's Outbox (same object, same order, which
// keeps ScheduleLog record/replay byte-for-byte identical to the
// pre-transport code path), and receive() always reports "nothing to pull"
// (deliveries arrive via the engine's callback, the Listener variant of
// the API).
#pragma once

#include "net/transport.h"

namespace rbvc::net {

class SimTransport final : public Transport {
 public:
  /// Binds the engine-provided outbox for process `self` of an n-process
  /// simulation. The outbox must outlive this adapter (both normally live
  /// only for one delivery callback).
  SimTransport(Outbox& out, ProcessId self, std::size_t n)
      : out_(&out), self_(self), n_(n) {}

  void send(ProcessId to, Message m) override { out_->send(to, std::move(m)); }
  std::optional<Message> receive(int /*timeout_ms*/) override {
    return std::nullopt;  // push-only: the engine delivers via callbacks
  }
  ProcessId self() const override { return self_; }
  std::size_t size() const override { return n_; }

 private:
  Outbox* out_;
  ProcessId self_;
  std::size_t n_;
};

}  // namespace rbvc::net
