#include "net/sync_driver.h"

#include <chrono>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "obs/events.h"

namespace rbvc::net {
namespace {

/// Buffers the round body's sends so they can be round-tagged and pushed
/// through the transport after the body returns (matching the sync engines,
/// which also deliver a round's sends only after the round completes).
struct CollectingOutbox final : Outbox {
  std::vector<std::pair<ProcessId, Message>> sent;
  void send(ProcessId to, Message m) override {
    sent.emplace_back(to, std::move(m));
  }
};

}  // namespace

SyncDriverResult run_sync_over_transport(sim::SyncProcess& p, Transport& t,
                                         SyncDriverOptions opts) {
  const std::size_t n = t.size();
  // Protocol messages buffered by send-round tag; eor[r] = endpoints whose
  // round-r marker arrived.
  std::map<std::size_t, std::vector<Message>> pending;
  std::map<std::size_t, std::set<ProcessId>> eor;

  SyncDriverResult res;
  for (std::size_t r = 0; r < opts.max_rounds && !p.decided(); ++r) {
    std::vector<Message> inbox;
    if (r > 0) {
      auto it = pending.find(r - 1);
      if (it != pending.end()) {
        inbox = std::move(it->second);
        pending.erase(it);
      }
    }
    res.messages += inbox.size();
    obs::events::emit(obs::events::Type::kRoundStart, static_cast<int>(r),
                      static_cast<std::int64_t>(inbox.size()));

    CollectingOutbox out;
    p.round(r, inbox, out);
    ++res.rounds;

    for (auto& [to, m] : out.sent) {
      m.meta.insert(m.meta.begin(), static_cast<int>(r));
      t.send(to, std::move(m));
    }
    for (ProcessId q = 0; q < n; ++q) {
      t.send(q, Message("__eor", {static_cast<int>(r)}));
    }

    // Barrier: collect EOR(r) from every endpoint (self included -- the
    // marker loops back through the transport like any other message).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(opts.round_timeout_ms);
    while (eor[r].size() < n) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        ++res.timeouts;
        obs::events::emit(obs::events::Type::kRoundTimeout,
                          static_cast<int>(r),
                          static_cast<std::int64_t>(n - eor[r].size()));
        break;
      }
      const int left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      auto m = t.receive(left > 0 ? left : 1);
      if (!m) {
        if (t.closed()) {
          res.decided = p.decided();
          return res;
        }
        continue;  // re-check the deadline
      }
      if (m->meta.empty()) continue;
      const auto tag = static_cast<std::size_t>(m->meta.front());
      if (m->kind == "__eor") {
        if (tag >= r) eor[tag].insert(m->from);
        continue;
      }
      // A message tagged q feeds round q+1; anything older already ran.
      if (tag < r) continue;
      m->meta.erase(m->meta.begin());
      pending[tag].push_back(std::move(*m));
    }
    if (eor[r].size() >= n) {
      obs::events::emit(obs::events::Type::kRoundBarrier, static_cast<int>(r),
                        static_cast<std::int64_t>(eor[r].size()));
    }
    eor.erase(r);
  }
  res.decided = p.decided();
  return res;
}

}  // namespace rbvc::net
