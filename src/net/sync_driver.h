// Runs a sim::SyncProcess (DolevStrongProcess, EigConsensusProcess /
// ALGO's interactive-consistency core) over a real Transport by rebuilding
// the synchronous round structure with end-of-round barriers.
//
// The sync engines give every process lockstep rounds: messages sent in
// round r are delivered at the start of round r+1. Over an asynchronous
// transport the driver recovers this by (1) tagging every protocol message
// with its send round (meta prefix, stripped on receipt), (2) broadcasting
// an end-of-round marker ("__eor") after the local round body runs, and
// (3) blocking round r+1 until an EOR(r) arrived from every endpoint or
// `round_timeout_ms` elapsed -- the synchronizer alpha construction in its
// simplest form. A crashed peer therefore costs one timeout per round and
// contributes an empty inbox slot, which is exactly the omission-fault
// behavior the round-based protocols already tolerate.
//
// Messages from peers that already advanced past our round are buffered by
// their round tag, so fast peers cannot outrun correctness, only the
// barrier wait.
#pragma once

#include <cstddef>

#include "net/transport.h"
#include "sim/sync_engine.h"

namespace rbvc::net {

struct SyncDriverOptions {
  std::size_t max_rounds = 64;
  /// How long a round barrier waits for missing end-of-round markers
  /// before declaring the stragglers faulty for that round.
  int round_timeout_ms = 2000;
};

struct SyncDriverResult {
  std::size_t rounds = 0;      // rounds executed
  bool decided = false;        // process reached decided()
  std::size_t timeouts = 0;    // barriers that expired incomplete
  std::size_t messages = 0;    // protocol messages delivered to the process
};

/// Drives `p` (bound to transport endpoint `t`, one of n lockstep
/// participants) until it decides or max_rounds elapse. Every participant
/// must run this driver concurrently on its own endpoint.
SyncDriverResult run_sync_over_transport(sim::SyncProcess& p, Transport& t,
                                         SyncDriverOptions opts = {});

}  // namespace rbvc::net
