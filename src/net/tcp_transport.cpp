#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/wire.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace rbvc::net {

namespace {

// fd ownership: once a connection is adopted, its reader thread owns the
// ::close. Every other thread (writers, TcpTransport::close) may only
// ::shutdown the fd to wake the reader — closing it out from under a
// blocked recv() races, and worse, lets the kernel reuse the fd number
// while the reader still holds it. close_fd is for fds the calling thread
// exclusively owns (rejected handshakes, failed dials, the listen socket
// after the acceptor has been joined).
void close_fd(int fd) {
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

/// SO_RCVTIMEO / SO_SNDTIMEO; ms == 0 restores blocking-forever.
void set_socket_timeout(int fd, int optname, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

int listen_on(const HostPort& hp) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  RBVC_REQUIRE(fd >= 0, "tcp: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.port);
  if (::inet_pton(AF_INET, hp.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw invalid_argument("tcp: cannot parse listen host `" + hp.host + "`");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw numerical_error("tcp: cannot listen on " + hp.host + ":" +
                          std::to_string(hp.port) + ": " + err);
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  RBVC_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
               "tcp: getsockname failed");
  return ntohs(addr.sin_port);
}

int dial(const HostPort& hp) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(hp.host.c_str(), std::to_string(hp.port).c_str(), &hints,
                    &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

/// Reads one frame from a fresh connection (the kHello handshake). The
/// dialer pipelines message frames right behind the hello on the same
/// socket, so any bytes received past the frame stay in `buf` for the
/// caller to hand to the reader loop — dropping them would silently lose
/// coalesced frames or desync the stream mid-frame.
std::optional<wire::Frame> read_one_frame(int fd, std::string& buf,
                                          bool* timed_out = nullptr) {
  char tmp[512];
  while (true) {
    try {
      if (auto f = wire::try_unframe(buf)) return f;
    } catch (const wire::WireError&) {
      return std::nullopt;
    }
    const ssize_t k = ::recv(fd, tmp, sizeof(tmp), 0);
    if (k <= 0) {  // EOF, error, or SO_RCVTIMEO elapsed
      if (timed_out != nullptr) {
        *timed_out = k < 0 && (errno == EWOULDBLOCK || errno == EAGAIN);
      }
      return std::nullopt;
    }
    buf.append(tmp, static_cast<std::size_t>(k));
  }
}

/// Which consensus instance a message belongs to, for event attribution:
/// node-level and instance-prefixed kinds carry it as meta.front(). -1 for
/// untagged traffic (the sync driver's round tags alias here; its own
/// round_* events carry the authoritative round).
int instance_of(const Message& m) {
  if (m.kind == "__eor" || m.meta.empty()) return -1;
  return static_cast<int>(m.meta.front());
}

std::uint64_t decode_hello(const std::string& body) {
  if (body.size() != 8) throw wire::WireError("wire: truncated body");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(body[i]))
         << (8 * i);
  }
  return v;
}

std::string encode_hello(std::uint64_t id) {
  std::string body;
  for (std::size_t i = 0; i < 8; ++i) {
    body.push_back(static_cast<char>((id >> (8 * i)) & 0xFF));
  }
  return wire::frame(wire::FrameType::kHello, body);
}

}  // namespace

std::vector<HostPort> parse_cluster(const std::string& csv) {
  std::vector<HostPort> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string entry = csv.substr(start, comma - start);
    const std::size_t colon = entry.rfind(':');
    RBVC_REQUIRE(colon != std::string::npos && colon > 0,
                 "parse_cluster: entry `" + entry + "` is not host:port");
    const long port = std::strtol(entry.c_str() + colon + 1, nullptr, 10);
    RBVC_REQUIRE(port > 0 && port < 65536,
                 "parse_cluster: bad port in `" + entry + "`");
    out.push_back({entry.substr(0, colon), static_cast<std::uint16_t>(port)});
    start = comma + 1;
  }
  return out;
}

TcpTransport::TcpTransport(ProcessId self, std::vector<HostPort> cluster,
                           TcpOptions opts)
    : TcpTransport(self, cluster, listen_on(cluster.at(self)), opts) {}

TcpTransport::TcpTransport(ProcessId self, std::vector<HostPort> cluster,
                           int listen_fd, TcpOptions opts)
    : self_(self),
      cluster_(std::move(cluster)),
      opts_(opts),
      listen_fd_(listen_fd),
      ever_connected_(cluster_.size(), false) {
  RBVC_REQUIRE(self_ < cluster_.size(),
               "tcp: self id outside the cluster list");
  conns_.reserve(cluster_.size());
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    conns_.push_back(std::make_unique<Conn>());
  }
  start();
}

void TcpTransport::start() {
  acceptor_ = std::thread([this] { accept_loop(); });
  dialer_ = std::thread([this] { dial_loop(); });
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::close() {
  if (!open_.exchange(false, std::memory_order_acq_rel)) return;
  shutdown_fd(listen_fd_);  // wakes accept(); closed after the join below
  {
    // threads_mu_ serializes with register_connection/accept_loop so no
    // connection can slip in after this shutdown sweep: either it registers
    // first (and is swept here) or it observes open_ == false and aborts.
    // Conn::fd is read atomically, NOT under c.mu — a writer stuck in send
    // holds c.mu, and this shutdown is exactly what wakes it.
    std::lock_guard<std::mutex> lk(threads_mu_);
    for (auto& c : conns_) {
      shutdown_fd(c->fd.load(std::memory_order_acquire));
    }
    for (const int fd : handshaking_) shutdown_fd(fd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (dialer_.joinable()) dialer_.join();
  close_fd(listen_fd_);
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(threads_mu_);
    readers.swap(readers_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  mailbox_.close();
}

void TcpTransport::accept_loop() {
  while (open_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!open_.load(std::memory_order_acquire)) return;
      continue;
    }
    // The hello is read on the connection's own thread: a client that
    // connects and sends nothing must not block further accepts, and the
    // handshaking_ registry lets close() shut the fd down mid-read.
    std::lock_guard<std::mutex> lk(threads_mu_);
    if (!open_.load(std::memory_order_acquire)) {
      close_fd(fd);
      return;
    }
    handshaking_.push_back(fd);
    readers_.emplace_back([this, fd] { server_handshake(fd); });
  }
}

void TcpTransport::unregister_handshake(int fd) {
  std::lock_guard<std::mutex> lk(threads_mu_);
  const auto it = std::find(handshaking_.begin(), handshaking_.end(), fd);
  if (it != handshaking_.end()) handshaking_.erase(it);
}

void TcpTransport::server_handshake(int fd) {
  set_socket_timeout(fd, SO_RCVTIMEO, opts_.handshake_timeout_ms);
  std::string residual;
  bool timed_out = false;
  const auto hello = read_one_frame(fd, residual, &timed_out);
  unregister_handshake(fd);
  if (!hello || hello->type != wire::FrameType::kHello) {
    if (timed_out) {
      // A client that connected and never spoke: distinct from undecodable
      // bytes, and the signature of a half-open dialer or a port scanner.
      obs::global().counter("net.handshake_timeouts").inc();
      obs::events::emit(obs::events::Type::kHandshakeTimeout, -1, fd);
    } else {
      obs::global().counter("net.wire_errors").inc();
    }
    close_fd(fd);
    return;
  }
  std::uint64_t peer = 0;
  try {
    peer = decode_hello(hello->body);
  } catch (const wire::WireError&) {
    obs::global().counter("net.wire_errors").inc();
    close_fd(fd);
    return;
  }
  if (peer >= cluster_.size() || peer == self_) {
    close_fd(fd);
    return;
  }
  set_socket_timeout(fd, SO_RCVTIMEO, 0);  // the reader blocks indefinitely
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (!register_connection(static_cast<ProcessId>(peer), fd,
                           /*dialed=*/false)) {
    close_fd(fd);
    return;
  }
  reader_loop(fd, static_cast<ProcessId>(peer), std::move(residual));
}

void TcpTransport::dial_loop() {
  // The higher id dials: each pair gets exactly one owner for (re)connects.
  while (open_.load(std::memory_order_acquire)) {
    bool all_up = true;
    for (ProcessId peer = 0; peer < self_; ++peer) {
      if (conns_[peer]->fd.load(std::memory_order_acquire) >= 0) continue;
      all_up = false;
      const int fd = dial(cluster_[peer]);
      if (fd < 0) continue;
      const std::string hello = encode_hello(self_);
      if (::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL) !=
          static_cast<ssize_t>(hello.size())) {
        close_fd(fd);
        continue;
      }
      adopt_connection(peer, fd, /*dialed=*/true);
    }
    if (!open_.load(std::memory_order_acquire)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        all_up ? 4 * opts_.dial_retry_ms : opts_.dial_retry_ms));
  }
}

bool TcpTransport::register_connection(ProcessId peer, int fd, bool dialed) {
  std::lock_guard<std::mutex> lk(threads_mu_);
  if (!open_.load(std::memory_order_acquire)) return false;
  Conn& c = *conns_[peer];
  {
    std::lock_guard<std::mutex> clk(c.mu);
    if (c.fd.load(std::memory_order_relaxed) >= 0) {
      // Keep the existing connection; the duplicate loses. Only one side
      // dials, so this is a redial racing a half-dead socket.
      return false;
    }
    c.fd.store(fd, std::memory_order_release);
    ++c.generation;
  }
  set_socket_timeout(fd, SO_SNDTIMEO, opts_.send_timeout_ms);
  obs::global().counter(ever_connected_[peer] && dialed ? "net.reconnects"
                                                        : "net.connects")
      .inc();
  obs::events::emit(obs::events::Type::kConnect, -1,
                    static_cast<std::int64_t>(peer), dialed ? 1 : 0);
  ever_connected_[peer] = true;
  return true;
}

void TcpTransport::adopt_connection(ProcessId peer, int fd, bool dialed) {
  if (!register_connection(peer, fd, dialed)) {
    close_fd(fd);
    return;
  }
  std::lock_guard<std::mutex> lk(threads_mu_);
  readers_.emplace_back(
      [this, fd, peer] { reader_loop(fd, peer, std::string()); });
}

void TcpTransport::drop_connection(ProcessId peer, int fd) {
  Conn& c = *conns_[peer];
  // c.mu serializes against in-flight write_frame calls: the reader must
  // not ::close the fd while a writer's send is mid-syscall, or the kernel
  // could hand the fd number to a new connection under the writer.
  std::lock_guard<std::mutex> lk(c.mu);
  int expect = fd;
  c.fd.compare_exchange_strong(expect, -1, std::memory_order_acq_rel);
}

void TcpTransport::reader_loop(int fd, ProcessId peer, std::string buf) {
  obs::Registry& reg = obs::global();
  obs::Counter& frames = reg.counter("net.frames_received");
  obs::Counter& bytes = reg.counter("net.bytes_received");
  std::vector<char> tmp(static_cast<std::size_t>(opts_.io_buffer_bytes));
  // Frames that arrived coalesced with the handshake are already in `buf`,
  // so drain before the first recv.
  while (true) {
    try {
      while (auto f = wire::try_unframe(buf)) {
        if (f->type != wire::FrameType::kMessage) continue;
        const std::uint64_t t0 = obs::events::now_ns();
        Message m = wire::decode_message(f->body);
        const std::uint64_t decode_ns = obs::events::now_ns() - t0;
        // The sender's Lamport stamp rides at the meta tail; strip it before
        // the message reaches protocol code and merge so every event this
        // node records after delivery is ordered after the send.
        std::int64_t stamp = 0;
        if (const auto lc = obs::events::strip_lamport(m.meta)) {
          stamp = static_cast<std::int64_t>(*lc);
          obs::events::lamport_merge(*lc);
        }
        frames.inc();
        obs::events::emit(obs::events::Type::kFrameRx, instance_of(m), stamp,
                          static_cast<std::int64_t>(decode_ns));
        mailbox_.push(std::move(m));
      }
    } catch (const wire::WireError&) {
      reg.counter("net.wire_errors").inc();
      break;  // poisoned stream: drop the connection
    }
    const ssize_t k = ::recv(fd, tmp.data(), tmp.size(), 0);
    if (k <= 0) break;
    bytes.inc(static_cast<std::uint64_t>(k));
    buf.append(tmp.data(), static_cast<std::size_t>(k));
  }
  drop_connection(peer, fd);
  obs::events::emit(obs::events::Type::kHangup, -1,
                    static_cast<std::int64_t>(peer));
  close_fd(fd);  // sole owner of the close — see the ownership note above
}

void TcpTransport::send(ProcessId to, Message m) {
  RBVC_REQUIRE(to < cluster_.size(), "tcp: send to unknown recipient");
  obs::Registry& reg = obs::global();
  m.from = self_;
  m.to = to;
  if (to == self_) {  // loopback: no socket round-trip
    reg.counter("net.frames_sent").inc();
    mailbox_.push(std::move(m));
    return;
  }
  // Tick-then-stamp makes every framed send a Lamport event: the receiver's
  // merge guarantees its delivery (and everything after) orders later.
  const int inst = instance_of(m);
  const std::uint64_t clock = obs::events::lamport_tick();
  obs::events::stamp_lamport(m.meta, clock);
  const std::uint64_t t0 = obs::events::now_ns();
  const std::string bytes = wire::frame_message(m);
  const std::uint64_t encode_ns = obs::events::now_ns() - t0;
  switch (write_frame(*conns_[to], bytes)) {
    case WriteStatus::kOk:
      reg.counter("net.frames_sent").inc();
      reg.counter("net.bytes_sent").inc(bytes.size());
      obs::events::emit(obs::events::Type::kFrameTx, inst,
                        static_cast<std::int64_t>(clock),
                        static_cast<std::int64_t>(encode_ns));
      return;
    case WriteStatus::kTimeout:
      // The peer was live but stopped draining its socket buffer; the
      // SO_SNDTIMEO hangup is worth its own counter because it means a
      // stall, not a crash — then fall through to the ordinary drop.
      reg.counter("net.send_timeout_hangups").inc();
      obs::events::emit(obs::events::Type::kSendTimeoutHangup, inst,
                        static_cast<std::int64_t>(to));
      [[fallthrough]];
    case WriteStatus::kDown:
    case WriteStatus::kError:
      // Crash-fault behavior: a down peer loses messages; the protocols
      // tolerate up to f such peers, and the dialer keeps retrying.
      reg.counter("net.send_drops").inc();
      obs::events::emit(obs::events::Type::kSendDrop, inst,
                        static_cast<std::int64_t>(to));
      return;
  }
}

TcpTransport::WriteStatus TcpTransport::write_frame(Conn& c,
                                                    const std::string& bytes) {
  std::lock_guard<std::mutex> lk(c.mu);
  const int fd = c.fd.load(std::memory_order_acquire);
  if (fd < 0) return WriteStatus::kDown;
  std::size_t off = 0;
  while (off < bytes.size()) {
    // Bounded by SO_SNDTIMEO: a peer that stops draining its socket gets
    // hung up on (crash-fault semantics) instead of pinning c.mu forever.
    // close() also wakes a blocked send here by shutting the fd down.
    const ssize_t k =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (k <= 0) {
      const bool timed = k < 0 && (errno == EWOULDBLOCK || errno == EAGAIN);
      shutdown_fd(fd);  // wakes the reader, which owns the ::close
      c.fd.store(-1, std::memory_order_release);
      return timed ? WriteStatus::kTimeout : WriteStatus::kError;
    }
    off += static_cast<std::size_t>(k);
  }
  return WriteStatus::kOk;
}

std::optional<Message> TcpTransport::receive(int timeout_ms) {
  auto m = mailbox_.pop(timeout_ms);
  if (m) {
    obs::global()
        .histogram("net.queue_depth", obs::count_buckets())
        .observe(static_cast<double>(mailbox_.depth()));
    obs::events::emit(obs::events::Type::kQueuePop, instance_of(*m),
                      static_cast<std::int64_t>(mailbox_.last_pop_wait_ns()),
                      static_cast<std::int64_t>(mailbox_.depth()));
  }
  return m;
}

std::size_t TcpTransport::connected() const {
  std::size_t live = 0;
  for (std::size_t peer = 0; peer < conns_.size(); ++peer) {
    if (peer == self_) continue;
    if (conns_[peer]->fd.load(std::memory_order_acquire) >= 0) ++live;
  }
  return live;
}

std::size_t TcpTransport::wait_connected(std::size_t min_peers,
                                         int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    const std::size_t live = connected();
    if (live >= min_peers || !open_.load(std::memory_order_acquire) ||
        std::chrono::steady_clock::now() >= deadline) {
      return live;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::vector<std::unique_ptr<TcpTransport>> TcpTransport::make_local_cluster(
    std::size_t n, TcpOptions opts) {
  std::vector<int> fds;
  std::vector<HostPort> cluster;
  fds.reserve(n);
  cluster.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = listen_on({"127.0.0.1", 0});
    fds.push_back(fd);
    cluster.push_back({"127.0.0.1", bound_port(fd)});
  }
  std::vector<std::unique_ptr<TcpTransport>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<TcpTransport>(i, cluster, fds[i], opts));
  }
  return out;
}

}  // namespace rbvc::net
