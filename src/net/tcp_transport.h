// TCP socket transport: the wire codec's length-prefixed frames over a
// full mesh of point-to-point connections.
//
// Mesh establishment: every endpoint listens on cluster[self]; the
// higher-numbered endpoint of each pair dials the lower one and introduces
// itself with a kHello frame, so each pair has exactly one connection and
// a restarted dialer re-establishes it (counted as net.reconnects). The
// accept side reads the hello on a per-connection thread under a receive
// timeout (a silent client cannot wedge the acceptor), and any message
// bytes that arrived coalesced with the hello are carried into the reader
// loop, which decodes frames into the endpoint's lock-free mailbox. send()
// writes frames under a per-connection mutex with a send timeout, so a
// stalled peer is hung up on instead of blocking every sender.
//
// Failure model: a peer that is down gets its sends dropped (counted as
// net.send_drops) -- exactly the crash-fault behavior the protocols
// tolerate for up to f peers. A connection that delivers undecodable bytes
// (bad magic, unknown version, oversized frame) is dropped, never trusted.
//
// Causal tracing (docs/OBSERVABILITY.md): every framed send ticks the
// process Lamport clock and appends the stamp to Message::meta
// (obs/events.h, [lo30, hi30, kLamportMetaTag] at the tail); the reader
// strips it and merges into the local clock before the message is
// delivered, so per-node flight-recorder logs order causally across the
// cluster (tools/rbvc-trace). Loopback sends skip the stamp (same clock),
// and an unstamped peer simply does not merge -- wire format unchanged.
//
// Observability (docs/OBSERVABILITY.md): net.frames_sent/_received,
// net.bytes_sent/_received, net.connects, net.reconnects, net.send_drops,
// net.handshake_timeouts, net.send_timeout_hangups, net.wire_errors,
// net.queue_depth, plus flight-recorder events (connect/hangup/frame_tx/
// frame_rx/queue_pop/...).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/mailbox.h"
#include "net/transport.h"

namespace rbvc::net {

struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port[,host:port...]" (the rbvc-node --cluster flag).
std::vector<HostPort> parse_cluster(const std::string& csv);

struct TcpOptions {
  int dial_retry_ms = 50;    // sleep between dial sweeps over missing peers
  int io_buffer_bytes = 64 * 1024;
  /// SO_RCVTIMEO for the accept-side hello read: a client that connects and
  /// never speaks is dropped after this long instead of holding the slot.
  int handshake_timeout_ms = 2000;
  /// SO_SNDTIMEO per connection: a live-but-stalled peer (full socket
  /// buffer) is treated as crashed after this long rather than blocking
  /// every thread that sends to it.
  int send_timeout_ms = 5000;
};

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on cluster[self], then starts dialing every peer
  /// with a lower id. Throws on bind failure. Peers with higher ids are
  /// expected to dial us; use wait_connected() to gate protocol start on
  /// mesh completion.
  TcpTransport(ProcessId self, std::vector<HostPort> cluster,
               TcpOptions opts = {});

  /// Same, but adopts an already-bound-and-listening socket (used by
  /// make_local_cluster to get kernel-assigned ports race-free).
  TcpTransport(ProcessId self, std::vector<HostPort> cluster, int listen_fd,
               TcpOptions opts);

  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void send(ProcessId to, Message m) override;
  std::optional<Message> receive(int timeout_ms) override;
  ProcessId self() const override { return self_; }
  std::size_t size() const override { return cluster_.size(); }
  bool closed() const override { return !open_.load(std::memory_order_acquire); }

  /// Blocks until at least `min_peers` connections are live (or timeout /
  /// close). Returns the live count.
  std::size_t wait_connected(std::size_t min_peers, int timeout_ms);
  std::size_t connected() const;

  /// Stops all threads and closes every socket; receive() drains what was
  /// already delivered, then reports closed.
  void close();

  /// Builds an n-endpoint loopback cluster on 127.0.0.1 with
  /// kernel-assigned ports: binds all n listeners first, reads the ports
  /// back, then starts the transports so no endpoint can miss another.
  static std::vector<std::unique_ptr<TcpTransport>> make_local_cluster(
      std::size_t n, TcpOptions opts = {});

 private:
  struct Conn {
    /// Serializes writes and the reader's teardown; NOT needed to observe
    /// fd, which is atomic so close() can shut a stuck connection down
    /// without waiting behind a blocked writer.
    std::mutex mu;
    std::atomic<int> fd{-1};
    std::uint64_t generation = 0;  // bumped per (re)connect, guarded by mu
  };

  void start();
  void accept_loop();
  void dial_loop();
  /// Accept-side hello read, run on the connection's own thread under
  /// handshake_timeout_ms; on success continues as that connection's
  /// reader_loop, seeded with any bytes that arrived after the hello.
  void server_handshake(int fd);
  void reader_loop(int fd, ProcessId peer, std::string buf);
  /// Registers `fd` as the live connection to `peer`; returns false (caller
  /// must close fd) on duplicate or shutdown. `dialed` distinguishes
  /// connects from accepts for the net.connects/net.reconnects counters.
  bool register_connection(ProcessId peer, int fd, bool dialed);
  /// register_connection + a spawned reader thread (the dialer path).
  void adopt_connection(ProcessId peer, int fd, bool dialed);
  void drop_connection(ProcessId peer, int fd);
  void unregister_handshake(int fd);
  /// Why a framed write did not complete; send() maps kTimeout to the
  /// net.send_timeout_hangups counter (the peer was live but stalled).
  enum class WriteStatus { kOk, kDown, kTimeout, kError };
  WriteStatus write_frame(Conn& c, const std::string& bytes);

  ProcessId self_;
  std::vector<HostPort> cluster_;
  TcpOptions opts_;
  int listen_fd_ = -1;
  std::atomic<bool> open_{true};
  Mailbox mailbox_;
  std::vector<std::unique_ptr<Conn>> conns_;  // index = peer id
  std::vector<bool> ever_connected_;          // guarded by threads_mu_
  std::thread acceptor_;
  std::thread dialer_;
  std::mutex threads_mu_;  // guards readers_, handshaking_, ever_connected_
  std::vector<std::thread> readers_;
  std::vector<int> handshaking_;  // accepted fds awaiting their hello
};

}  // namespace rbvc::net
