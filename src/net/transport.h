// The messaging API boundary: protocol code sends and receives through an
// opaque net::Transport instead of talking to an engine (the HoneyBadgerBFT
// send/receive-channel decomposition). Three implementations ship:
//
//   SimTransport  (net/sim_transport.h)  -- adapter over the sim engines'
//       per-delivery Outbox; push-only (the engine delivers via callbacks),
//       preserving ScheduleLog record/replay byte-for-byte.
//   LocalBus      (net/local_bus.h)      -- in-process loopback: one
//       lock-free MPSC mailbox per endpoint, endpoints driven from real
//       threads (exec-pool or std::thread).
//   TcpTransport  (net/tcp_transport.h)  -- TCP sockets carrying
//       length-prefixed frames of the versioned wire codec (net/wire.h).
//
// The send half IS sim::Outbox -- the engines' abstract send channel was
// already engine-free, so Transport extends it with identity and a
// blocking/polling receive. Protocol components (BrachaRbc, WitnessExchange,
// DolevStrong, the EIG/ALGO processes, AsyncAveragingProcess) are written
// against the channel alone and therefore run unchanged over any transport;
// the hosting runtimes (net/node.h, net/sync_driver.h) pump receive() and
// feed them.
#pragma once

#include <optional>

#include "sim/message.h"

namespace rbvc::net {

using sim::Message;
using sim::Outbox;
using sim::ProcessId;

class Transport;

/// Delivery-callback consumer: the push-mode variant of the receive API.
/// Sim engines invoke it per scheduled delivery; pull-based transports
/// invoke it from poll()/pump_until().
class Listener {
 public:
  virtual ~Listener() = default;
  virtual void on_message(const Message& m, Transport& t) = 0;
};

/// A bidirectional message channel bound to one process of an n-process
/// cluster. send() stamps `from = self()` and `to`; receive() returns the
/// next delivered message. Implementations must deliver every message sent
/// between live endpoints (reliable channels, the paper's network model);
/// ordering is transport-specific and protocols must not rely on it.
class Transport : public Outbox {
 public:
  /// Next delivered message, waiting up to `timeout_ms` (0 = non-blocking
  /// poll). nullopt when nothing arrived in time or the transport is
  /// push-only (SimTransport) or closed.
  virtual std::optional<Message> receive(int timeout_ms) = 0;

  /// This endpoint's process id in [0, size()).
  virtual ProcessId self() const = 0;

  /// Cluster size n (endpoints a send() may address).
  virtual std::size_t size() const = 0;

  /// True once the transport can no longer deliver (peer shutdown /
  /// close()); receive() then returns nullopt immediately.
  virtual bool closed() const { return false; }

  /// Drains immediately-available messages into `l`; returns the count.
  std::size_t poll(Listener& l) {
    std::size_t delivered = 0;
    while (auto m = receive(0)) {
      l.on_message(*m, *this);
      ++delivered;
    }
    return delivered;
  }

  /// Pumps deliveries into `l` until `done` returns true or the channel
  /// stays idle for `idle_timeout_ms`. Returns the number delivered.
  template <class DonePredicate>
  std::size_t pump_until(Listener& l, DonePredicate done,
                         int idle_timeout_ms) {
    std::size_t delivered = 0;
    while (!done()) {
      auto m = receive(idle_timeout_ms);
      if (!m) break;
      l.on_message(*m, *this);
      ++delivered;
    }
    return delivered;
  }
};

}  // namespace rbvc::net
