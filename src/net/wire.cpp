#include "net/wire.h"

#include <bit>
#include <cstring>

namespace rbvc::net::wire {

namespace {

// Little-endian primitive writers/readers. The readers consume from a
// string_view cursor and throw WireError("wire: truncated body") past the
// end, so every composite decoder inherits bounds checking.

template <class T>
void put_uint(std::string& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_bytes(std::string& out, std::string_view s) {
  put_uint<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Cursor {
  std::string_view rest;

  template <class T>
  T take_uint() {
    if (rest.size() < sizeof(T)) throw WireError("wire: truncated body");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(rest[i])) << (8 * i);
    }
    rest.remove_prefix(sizeof(T));
    return v;
  }

  std::string take_bytes() {
    const std::uint32_t len = take_uint<std::uint32_t>();
    if (len > kMaxBody || rest.size() < len) {
      throw WireError("wire: truncated body");
    }
    std::string s(rest.substr(0, len));
    rest.remove_prefix(len);
    return s;
  }

  /// Element-count field for a sequence whose elements occupy at least
  /// `elem_size` bytes each; bounded by the remaining bytes so a forged
  /// count cannot trigger a huge allocation.
  std::uint32_t take_count(std::size_t elem_size) {
    const std::uint32_t n = take_uint<std::uint32_t>();
    if (static_cast<std::size_t>(n) * elem_size > rest.size()) {
      throw WireError("wire: truncated body");
    }
    return n;
  }

  void expect_done() const {
    if (!rest.empty()) throw WireError("wire: trailing garbage");
  }
};

}  // namespace

std::string encode_message(const sim::Message& m) {
  std::string out;
  put_uint<std::uint64_t>(out, m.from);
  put_uint<std::uint64_t>(out, m.to);
  put_bytes(out, m.kind);
  put_uint<std::uint32_t>(out, static_cast<std::uint32_t>(m.meta.size()));
  for (int v : m.meta) {
    put_uint<std::uint64_t>(out,
                            static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  put_uint<std::uint32_t>(out, static_cast<std::uint32_t>(m.payload.size()));
  for (double v : m.payload) {
    put_uint<std::uint64_t>(out, std::bit_cast<std::uint64_t>(v));
  }
  return out;
}

sim::Message decode_message(std::string_view body) {
  Cursor c{body};
  sim::Message m;
  m.from = static_cast<sim::ProcessId>(c.take_uint<std::uint64_t>());
  m.to = static_cast<sim::ProcessId>(c.take_uint<std::uint64_t>());
  m.kind = c.take_bytes();
  const std::uint32_t nmeta = c.take_count(sizeof(std::uint64_t));
  m.meta.reserve(nmeta);
  for (std::uint32_t i = 0; i < nmeta; ++i) {
    const auto raw = static_cast<std::int64_t>(c.take_uint<std::uint64_t>());
    m.meta.push_back(static_cast<int>(raw));
  }
  const std::uint32_t dim = c.take_count(sizeof(std::uint64_t));
  m.payload.reserve(dim);
  for (std::uint32_t i = 0; i < dim; ++i) {
    m.payload.push_back(std::bit_cast<double>(c.take_uint<std::uint64_t>()));
  }
  c.expect_done();
  return m;
}

std::string encode_trace(const sim::Trace& t) {
  std::string out;
  put_uint<std::uint32_t>(out, static_cast<std::uint32_t>(t.events().size()));
  for (const sim::TraceEvent& e : t.events()) {
    out.push_back(static_cast<char>(e.type));
    put_uint<std::uint64_t>(out, e.time);
    put_uint<std::uint64_t>(out, e.process);
    put_bytes(out, e.detail);
  }
  return out;
}

sim::Trace decode_trace(std::string_view body) {
  Cursor c{body};
  const std::uint32_t n = c.take_count(1 + 2 * sizeof(std::uint64_t) + 4);
  sim::Trace t;
  t.set_enabled(true);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto type_raw = c.take_uint<std::uint8_t>();
    if (type_raw > static_cast<std::uint8_t>(sim::EventType::kNote)) {
      throw WireError("wire: unknown trace event type");
    }
    const auto time = static_cast<std::size_t>(c.take_uint<std::uint64_t>());
    const auto proc = static_cast<sim::ProcessId>(c.take_uint<std::uint64_t>());
    t.record(static_cast<sim::EventType>(type_raw), time, proc,
             c.take_bytes());
  }
  c.expect_done();
  t.set_enabled(false);
  return t;
}

std::string frame(FrameType type, std::string_view body) {
  if (body.size() > kMaxBody) throw WireError("wire: oversized frame");
  std::string out;
  out.reserve(kHeaderSize + body.size());
  put_uint<std::uint32_t>(out, kMagic);
  put_uint<std::uint16_t>(out, kVersion);
  put_uint<std::uint16_t>(out, static_cast<std::uint16_t>(type));
  put_uint<std::uint32_t>(out, static_cast<std::uint32_t>(body.size()));
  out.append(body);
  return out;
}

std::string frame_message(const sim::Message& m) {
  return frame(FrameType::kMessage, encode_message(m));
}

std::optional<Frame> try_unframe(std::string& buffer) {
  if (buffer.size() < kHeaderSize) return std::nullopt;
  Cursor c{std::string_view(buffer).substr(0, kHeaderSize)};
  if (c.take_uint<std::uint32_t>() != kMagic) {
    throw WireError("wire: bad magic");
  }
  const std::uint16_t version = c.take_uint<std::uint16_t>();
  if (version != kVersion) {
    throw WireError("wire: unknown version " + std::to_string(version));
  }
  const std::uint16_t type = c.take_uint<std::uint16_t>();
  const std::uint32_t len = c.take_uint<std::uint32_t>();
  if (len > kMaxBody) throw WireError("wire: oversized frame");
  if (buffer.size() < kHeaderSize + len) return std::nullopt;
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.body = buffer.substr(kHeaderSize, len);
  buffer.erase(0, kHeaderSize + len);
  return f;
}

Frame unframe(std::string_view buffer) {
  std::string own(buffer);
  auto f = try_unframe(own);
  if (!f) throw WireError("wire: truncated frame");
  if (!own.empty()) throw WireError("wire: trailing garbage");
  return *f;
}

}  // namespace rbvc::net::wire
