// Versioned binary wire codec for Message and Trace, plus the
// length-prefixed frame format the TCP transport speaks.
//
// Frame layout (all integers little-endian):
//   u32 magic   -- kMagic ("RBVC")
//   u16 version -- kVersion; decoders reject unknown versions by name
//   u16 type    -- FrameType discriminator
//   u32 length  -- body byte count, <= kMaxBody
//   u8[length]  -- body
//
// Message body (canonical field order -- routing then content, content in
// exactly the order MessageContentLess compares: kind, meta, payload):
//   u64 from, u64 to,
//   u32 |kind| + bytes,
//   u32 |meta| + i64 each,
//   u32 |payload| + f64 (raw IEEE bits) each.
//
// Trace body: u32 event count, then per event u8 type, u64 time,
// u64 process, u32 |detail| + bytes.
//
// encode/decode are an exact fixpoint both ways: decode(encode(x)) == x and
// encode(decode(b)) == b (decoders reject trailing garbage rather than
// ignore it, mirroring Trace::parse's hardening), so recorded frames can be
// diffed byte-for-byte. Malformed input throws WireError whose what() names
// the defect ("wire: unknown version ...", "wire: truncated frame", ...).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/message.h"
#include "sim/trace.h"

namespace rbvc::net::wire {

inline constexpr std::uint32_t kMagic = 0x43564252;  // "RBVC" little-endian
inline constexpr std::uint16_t kVersion = 1;
/// Frame body ceiling: a forged length field must not make a reader buffer
/// gigabytes. 16 MiB >> any protocol message (payload dims are small).
inline constexpr std::uint32_t kMaxBody = 16u << 20;
inline constexpr std::size_t kHeaderSize = 12;

enum class FrameType : std::uint16_t {
  kMessage = 1,  // body = encoded Message
  kTrace = 2,    // body = encoded Trace
  kHello = 3,    // body = u64 sender id (TCP connection handshake)
  // Sweep-fleet coordinator<->worker protocol (fleet/protocol.h). The
  // framing layer is shared; the fleet codec owns these body layouts.
  kFleetHello = 4,      // worker -> coordinator: pid, pool width
  kFleetAssign = 5,     // coordinator -> worker: episode range to run
  kFleetResult = 6,     // worker -> coordinator: per-shard verdict + metrics
  kFleetFailure = 7,    // worker -> coordinator: repro bytes for a failure
  kFleetHeartbeat = 8,  // worker -> coordinator: liveness + progress
  kFleetShutdown = 9,   // coordinator -> worker: drain and exit
};

/// Decoder/framer error; what() starts with "wire: " and names the defect.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- body codecs -----------------------------------------------------------

std::string encode_message(const sim::Message& m);
/// Inverse of encode_message. Throws WireError on truncated bodies,
/// oversized counts, or trailing garbage.
sim::Message decode_message(std::string_view body);

std::string encode_trace(const sim::Trace& t);
sim::Trace decode_trace(std::string_view body);

// --- framing ---------------------------------------------------------------

/// Wraps a body in a header: magic, version, type, length.
std::string frame(FrameType type, std::string_view body);

/// Convenience: frame(kMessage, encode_message(m)).
std::string frame_message(const sim::Message& m);

struct Frame {
  FrameType type = FrameType::kMessage;
  std::string body;
};

/// Incremental deframer for stream transports: if `buffer` starts with a
/// complete frame, removes and returns it; returns nullopt when more bytes
/// are needed. Throws WireError on bad magic, unknown version, or an
/// oversized length field (the connection is then poisoned and must be
/// dropped).
std::optional<Frame> try_unframe(std::string& buffer);

/// One-shot exact deframe: the buffer must hold exactly one frame (trailing
/// garbage throws).
Frame unframe(std::string_view buffer);

}  // namespace rbvc::net::wire
