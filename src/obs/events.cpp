#include "obs/events.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <tuple>

namespace rbvc::obs::events {

namespace {

// One name per Type enumerator, in declaration order. The JSONL schema
// leans on these strings, so they are append-only.
constexpr const char* kTypeNames[] = {
    "note",
    "connect",
    "hangup",
    "handshake_timeout",
    "frame_tx",
    "frame_rx",
    "send_drop",
    "send_timeout_hangup",
    "queue_pop",
    "instance_start",
    "proto_step",
    "instance_decided",
    "backlog",
    "gc",
    "round_start",
    "round_barrier",
    "round_timeout",
    "episode_start",
    "episode_end",
    "propose",
    "decision",
};
static_assert(sizeof(kTypeNames) / sizeof(kTypeNames[0]) ==
                  static_cast<std::size_t>(Type::kCount_),
              "kTypeNames must cover every Type enumerator");

std::atomic<std::uint64_t> g_lamport{0};
std::atomic<std::int32_t> g_node{-1};
std::atomic<bool> g_enabled{true};

// The ring table is fixed-size, lock-free, and constant-initialized so the
// crash handler can walk it without taking locks or racing registration.
// Rings are heap-allocated once and never freed (still reachable from this
// table, so LeakSanitizer does not flag them): events must outlive their
// writer thread for the exit and crash sinks.
constexpr std::size_t kMaxRings = 256;
std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_count{0};
std::atomic<std::size_t> g_crash_last_n{0};

std::size_t ring_capacity_from_env() {
  static const std::size_t cap = [] {
    const char* v = std::getenv("RBVC_TRACE_RING");
    if (v && *v) {
      const long n = std::strtol(v, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    // Default sized so a thread's ring cycles within L2: larger rings
    // stream more cache lines through the hot path and the recorder's
    // measured overhead climbs past the <5% budget (bench_net_cluster
    // --trace). Long-history captures raise RBVC_TRACE_RING explicitly
    // (net_smoke.sh uses 65536).
    return static_cast<std::size_t>(1024);
  }();
  return cap;
}

void arm_exit_sink();

Ring* register_ring() {
  arm_exit_sink();
  Ring* ring = new Ring(ring_capacity_from_env());
  const std::size_t slot =
      g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (slot < kMaxRings) {
    g_rings[slot].store(ring, std::memory_order_release);
    return ring;
  }
  // Table full (a pathological thread count): share the last ring. Ring
  // is multi-writer safe (fetch_add cursor), only less cache-friendly.
  g_ring_count.store(kMaxRings, std::memory_order_relaxed);
  delete ring;
  return g_rings[kMaxRings - 1].load(std::memory_order_acquire);
}

Ring& thread_ring() {
  thread_local Ring* ring = register_ring();
  return *ring;
}

/// Arms the RBVC_TRACE_OUT at-exit sink once, mirroring obs::global().
void arm_exit_sink() {
  static const bool armed = [] {
    if (!env_trace_out().empty()) {
      std::atexit([] { export_trace(); });
    }
    return true;
  }();
  (void)armed;
}

// -- async-signal-safe formatting for the crash handler ----------------------

void sig_puts(const char* s) {
  const ssize_t ignored = ::write(2, s, std::strlen(s));
  (void)ignored;
}

void sig_put_u64(std::uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  *--p = '\0';
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  sig_puts(p);
}

void sig_put_i64(std::int64_t v) {
  if (v < 0) {
    sig_puts("-");
    // -INT64_MIN overflows; negate as unsigned.
    sig_put_u64(~static_cast<std::uint64_t>(v) + 1);
  } else {
    sig_put_u64(static_cast<std::uint64_t>(v));
  }
}

void crash_dump_handler(int signo) {
  const std::size_t last_n = g_crash_last_n.load(std::memory_order_relaxed);
  sig_puts("\n== rbvc flight recorder (signal ");
  sig_put_i64(signo);
  sig_puts(") ==\n");
  const std::size_t rings =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t ri = 0; ri < rings; ++ri) {
    Ring* ring = g_rings[ri].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    sig_puts("-- ring ");
    sig_put_u64(ri);
    sig_puts(" (newest last) --\n");
    // Ring::snapshot_into allocates; walk the slots by logical index via
    // the public surface instead: re-derive the window and copy through
    // the same tag-checked protocol, entirely on the stack.
    ring->crash_dump(last_n);
  }
  // Restore default disposition and re-raise so the process still dies
  // with the original signal (core dumps, CI failure status).
  std::signal(signo, SIG_DFL);
  ::raise(signo);
}

// JSONL serialization helpers. Key order and spacing are part of the
// byte-stability contract -- change nothing here without versioning.

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }
void append_i64(std::string& out, std::int64_t v) { out += std::to_string(v); }

void append_event(std::string& out, const Event& e) {
  out += "{\"ts\":";
  append_u64(out, e.ts_ns);
  out += ",\"lc\":";
  append_u64(out, e.lamport);
  out += ",\"node\":";
  append_i64(out, e.node);
  out += ",\"inst\":";
  append_i64(out, e.instance);
  out += ",\"type\":\"";
  out += type_name(e.type);
  out += "\",\"a\":";
  append_i64(out, e.a);
  out += ",\"b\":";
  append_i64(out, e.b);
  out += "}\n";
}

/// Strict scanner over one JSONL line; the grammar is exactly what
/// append_event writes (no whitespace, fixed key order).
class LineParser {
 public:
  LineParser(const std::string& text, std::size_t begin, std::size_t end,
             std::size_t line_no)
      : text_(text), pos_(begin), end_(end), line_no_(line_no) {}

  Event parse() {
    Event e;
    expect("{\"ts\":");
    e.ts_ns = u64();
    expect(",\"lc\":");
    e.lamport = u64();
    expect(",\"node\":");
    e.node = i32();
    expect(",\"inst\":");
    e.instance = i32();
    expect(",\"type\":\"");
    const std::string name = until('"');
    const auto t = type_from_name(name);
    require(t.has_value(), "unknown event type `" + name + "`");
    e.type = *t;
    expect("\",\"a\":");
    e.a = i64();
    expect(",\"b\":");
    e.b = i64();
    expect("}");
    require(pos_ == end_, "trailing garbage");
    return e;
  }

 private:
  void require(bool ok, const std::string& what) {
    if (!ok) {
      throw invalid_argument("events parse: line " +
                             std::to_string(line_no_) + ": " + what);
    }
  }
  void expect(const char* lit) {
    const std::size_t n = std::strlen(lit);
    require(pos_ + n <= end_ && text_.compare(pos_, n, lit) == 0,
            std::string("expected `") + lit + "`");
    pos_ += n;
  }
  std::string until(char stop) {
    const std::size_t at = text_.find(stop, pos_);
    require(at != std::string::npos && at < end_, "unterminated string");
    std::string s = text_.substr(pos_, at - pos_);
    pos_ = at;
    return s;
  }
  std::uint64_t u64() {
    const std::size_t start = pos_;
    while (pos_ < end_ && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    require(pos_ > start, "expected an unsigned integer");
    return std::strtoull(text_.c_str() + start, nullptr, 10);
  }
  std::int64_t i64() {
    const std::size_t start = pos_;
    if (pos_ < end_ && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < end_ && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    require(pos_ > digits, "expected an integer");
    return std::strtoll(text_.c_str() + start, nullptr, 10);
  }
  std::int32_t i32() {
    const std::int64_t v = i64();
    require(v >= INT32_MIN && v <= INT32_MAX, "value out of int32 range");
    return static_cast<std::int32_t>(v);
  }

  const std::string& text_;
  std::size_t pos_;
  std::size_t end_;
  std::size_t line_no_;
};

}  // namespace

const char* type_name(Type t) {
  const auto i = static_cast<std::size_t>(t);
  if (i >= static_cast<std::size_t>(Type::kCount_)) return "unknown";
  return kTypeNames[i];
}

std::optional<Type> type_from_name(const std::string& name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Type::kCount_); ++i) {
    if (name == kTypeNames[i]) return static_cast<Type>(i);
  }
  return std::nullopt;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// -- Lamport clock -----------------------------------------------------------

std::uint64_t lamport_now() {
  return g_lamport.load(std::memory_order_relaxed);
}

std::uint64_t lamport_tick() {
  return g_lamport.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t lamport_merge(std::uint64_t received) {
  std::uint64_t cur = g_lamport.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = std::max(cur, received) + 1;
  } while (!g_lamport.compare_exchange_weak(cur, next,
                                            std::memory_order_relaxed));
  return next;
}

void stamp_lamport(std::vector<int>& meta, std::uint64_t clock) {
  meta.push_back(static_cast<int>(clock & 0x3FFFFFFFu));
  meta.push_back(static_cast<int>((clock >> 30) & 0x3FFFFFFFu));
  meta.push_back(kLamportMetaTag);
}

std::optional<std::uint64_t> strip_lamport(std::vector<int>& meta) {
  const std::size_t n = meta.size();
  if (n < 3 || meta[n - 1] != kLamportMetaTag) return std::nullopt;
  const int lo = meta[n - 3];
  const int hi = meta[n - 2];
  // A forged tail with out-of-range limbs is not a stamp; leave it for the
  // protocol layer to reject like any other junk meta.
  if (lo < 0 || hi < 0 || lo > 0x3FFFFFFF || hi > 0x3FFFFFFF) {
    return std::nullopt;
  }
  meta.resize(n - 3);
  return (static_cast<std::uint64_t>(hi) << 30) |
         static_cast<std::uint64_t>(lo);
}

// -- Recording ---------------------------------------------------------------

void set_node(std::int32_t id) {
  g_node.store(id, std::memory_order_relaxed);
}

std::int32_t node() { return g_node.load(std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void emit(Type t, std::int32_t instance, std::int64_t a, std::int64_t b) {
  if (!enabled()) return;
  Event e;
  e.ts_ns = now_ns();
  e.lamport = lamport_now();
  e.node = node();
  e.instance = instance;
  e.type = t;
  e.a = a;
  e.b = b;
  thread_ring().emit(e);
}

std::uint64_t emitted_total() {
  std::uint64_t total = 0;
  const std::size_t rings =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t i = 0; i < rings; ++i) {
    if (Ring* r = g_rings[i].load(std::memory_order_acquire)) {
      total += r->emitted();
    }
  }
  return total;
}

// -- Ring --------------------------------------------------------------------

Ring::Ring(std::size_t capacity) : slots_(capacity ? capacity : 1) {}

void Ring::emit(const Event& e) {
  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[idx % slots_.size()];
  // Seqlock publish: tag 0 while fields are inconsistent, idx+1 once done.
  // Tags for one slot only ever grow (idx advances by capacity per lap),
  // so a reader can never confuse two generations of the slot.
  s.tag.store(0, std::memory_order_release);
  s.ts_ns.store(e.ts_ns, std::memory_order_relaxed);
  s.lamport.store(e.lamport, std::memory_order_relaxed);
  s.a.store(e.a, std::memory_order_relaxed);
  s.b.store(e.b, std::memory_order_relaxed);
  s.node.store(e.node, std::memory_order_relaxed);
  s.instance.store(e.instance, std::memory_order_relaxed);
  s.type.store(static_cast<std::uint16_t>(e.type), std::memory_order_relaxed);
  s.tag.store(idx + 1, std::memory_order_release);
}

void Ring::snapshot_into(std::vector<Event>& out) const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t begin = end > cap ? end - cap : 0;
  for (std::uint64_t idx = begin; idx < end; ++idx) {
    const Slot& s = slots_[idx % cap];
    if (s.tag.load(std::memory_order_acquire) != idx + 1) continue;
    Event e;
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.lamport = s.lamport.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.node = s.node.load(std::memory_order_relaxed);
    e.instance = s.instance.load(std::memory_order_relaxed);
    const std::uint16_t raw = s.type.load(std::memory_order_relaxed);
    e.type = raw < static_cast<std::uint16_t>(Type::kCount_)
                 ? static_cast<Type>(raw)
                 : Type::kNote;
    // A writer racing past us cleared the tag (or already republished a
    // later index); either way the copy may be torn -- drop it.
    if (s.tag.load(std::memory_order_acquire) != idx + 1) continue;
    out.push_back(e);
  }
}

void Ring::crash_dump(std::size_t last_n) const {
  last_n = std::min<std::size_t>(last_n ? last_n : 64, 256);
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  std::uint64_t begin = end > cap ? end - cap : 0;
  if (end - begin > last_n) begin = end - last_n;
  for (std::uint64_t idx = begin; idx < end; ++idx) {
    const Slot& s = slots_[idx % cap];
    if (s.tag.load(std::memory_order_acquire) != idx + 1) continue;
    sig_puts("ts=");
    sig_put_u64(s.ts_ns.load(std::memory_order_relaxed));
    sig_puts(" lc=");
    sig_put_u64(s.lamport.load(std::memory_order_relaxed));
    sig_puts(" node=");
    sig_put_i64(s.node.load(std::memory_order_relaxed));
    sig_puts(" inst=");
    sig_put_i64(s.instance.load(std::memory_order_relaxed));
    sig_puts(" type=");
    sig_puts(type_name(static_cast<Type>(
        s.type.load(std::memory_order_relaxed))));
    sig_puts(" a=");
    sig_put_i64(s.a.load(std::memory_order_relaxed));
    sig_puts(" b=");
    sig_put_i64(s.b.load(std::memory_order_relaxed));
    sig_puts("\n");
  }
}

// -- Snapshots & serialization ----------------------------------------------

std::vector<Event> snapshot() {
  std::vector<Event> out;
  const std::size_t rings =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t i = 0; i < rings; ++i) {
    if (Ring* r = g_rings[i].load(std::memory_order_acquire)) {
      r->snapshot_into(out);
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
    return std::tie(x.lamport, x.ts_ns, x.node, x.type, x.instance, x.a,
                    x.b) <
           std::tie(y.lamport, y.ts_ns, y.node, y.type, y.instance, y.a, y.b);
  });
  return out;
}

std::string dump_jsonl(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const Event& e : events) append_event(out, e);
  return out;
}

std::string dump_jsonl() { return dump_jsonl(snapshot()); }

std::vector<Event> parse_jsonl(const std::string& text) {
  std::vector<Event> out;
  std::size_t pos = 0;
  std::size_t line_no = 1;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    out.push_back(LineParser(text, pos, eol, line_no).parse());
    pos = eol + 1;
    ++line_no;
  }
  return out;
}

std::string env_trace_out() {
  const char* path = std::getenv("RBVC_TRACE_OUT");
  return path ? std::string(path) : std::string();
}

std::string export_trace(const std::string& path_override) {
  const std::string path =
      path_override.empty() ? env_trace_out() : path_override;
  if (path.empty()) return "";
  std::ofstream out(path, std::ios::trunc);
  RBVC_REQUIRE(out.good(), "events export: cannot open " + path);
  out << dump_jsonl();
  RBVC_REQUIRE(out.good(), "events export: write failed for " + path);
  return path;
}

void install_crash_dump(std::size_t last_n) {
  g_crash_last_n.store(std::min<std::size_t>(last_n ? last_n : 64, 256),
                       std::memory_order_relaxed);
  for (const int signo : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE}) {
    std::signal(signo, crash_dump_handler);
  }
}

}  // namespace rbvc::obs::events
