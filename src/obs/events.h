// Flight recorder + causal clock: the tracing layer beneath the metrics
// registry (obs/metrics.h). Where the registry answers "how many / how
// long" in aggregate, this layer answers "what happened, in what order,
// to which instance": every instrumentation point emits a small structured
// Event into a lock-free bounded ring, and a process-wide Lamport clock --
// stamped into Message::meta by the TCP transport send path and merged on
// receive -- makes per-node event logs mergeable into one happens-before-
// consistent timeline (tools/rbvc-trace does the join).
//
// Design points:
//   * Always on, bounded memory. Each writer thread owns a fixed-capacity
//     ring of Event slots (RBVC_TRACE_RING slots; default 1024, sized so
//     the ring's cache footprint stays inside L2); when it wraps, the
//     oldest events fall off. Rings are registered in a fixed
//     process-wide table and never freed, so events survive thread exit
//     and the exit/crash sinks can read them.
//   * Hot-path cost is a few stores, mirroring the Counter shard design:
//     one relaxed fetch_add on the ring cursor, one steady-clock read, and
//     eight relaxed atomic stores into the slot. No locks, no allocation
//     after a thread's first emit. set_enabled(false) reduces emit() to a
//     single load (bench_net_cluster --trace measures the delta).
//   * Torn-write safety without locks: every slot carries a seqlock-style
//     tag (its logical index + 1, 0 while a rewrite is in flight). Readers
//     check the tag before and after copying and skip mismatches, so a
//     snapshot taken while writers run is a consistent subset. All fields
//     are relaxed atomics, so concurrent emit/snapshot is TSan-clean.
//   * Byte-stable JSONL. dump_jsonl(parse_jsonl(text)) == text, the same
//     fixpoint contract as Registry::dump_json/parse; the process-level
//     dump_jsonl() sorts by (lamport, ts, node, ...) so two dumps of a
//     quiesced process are identical. RBVC_TRACE_OUT=<path> arms an
//     at-exit file sink, exactly like RBVC_METRICS_OUT.
//   * Determinism: events never feed back into scheduling, protocol state,
//     or repro files, so the sim ScheduleLog byte-identity and the
//     RBVC_JOBS repro contract hold with tracing enabled (pinned by
//     tests/events_test.cpp).
//
// The Lamport stamp lives at the TAIL of Message::meta as three ints
// [lo30, hi30, kLamportMetaTag]; stamp/strip are tag-checked, so an
// unstamped message (old sender, sim transport, loopback) simply passes
// through unchanged. SimTransport never stamps -- sim byte-identity.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rbvc/common.h"

namespace rbvc::obs::events {

/// What happened. Names (type_name) are part of the JSONL schema; append
/// new types at the end and never renumber. The `a`/`b` payload fields are
/// type-specific, documented per enumerator.
enum class Type : std::uint16_t {
  kNote = 0,             // freeform marker; a, b caller-defined
  kConnect,              // TCP link up;          a = peer id, b = 1 if dialed
  kHangup,               // TCP link down;        a = peer id
  kHandshakeTimeout,     // accept-side hello timed out; a = fd
  kFrameTx,              // framed send;          a = Lamport stamp, b = encode ns
  kFrameRx,              // framed receive;       a = sender's stamp (0 = none), b = decode ns
  kSendDrop,             // send to a dead peer;  a = peer id
  kSendTimeoutHangup,    // SO_SNDTIMEO hangup;   a = peer id
  kQueuePop,             // mailbox pop;          a = queue wait ns, b = depth after pop
  kInstanceStart,        // propose accepted;     a = client id
  kProtoStep,            // one protocol callback; a = total ns, b = LP-kernel ns
  kInstanceDecided,      // instance reported;    a = ok (1/0), b = start->decide ns
  kBacklog,              // pre-propose buffering; a = backlog depth
  kGc,                   // retired instances;    instance = new gc floor, a = live instances
  kRoundStart,           // sync driver round;    instance = round, a = inbox size
  kRoundBarrier,         // sync round complete;  instance = round, a = EOR markers seen
  kRoundTimeout,         // sync barrier timeout; instance = round, a = missing markers
  kEpisodeStart,         // harness episode;      instance = episode index
  kEpisodeEnd,           // harness episode done; instance = episode index, a = failed (1/0)
  kPropose,              // client-side propose;  a = dimension
  kDecision,             // client-side resolve;  a = ok (1/0), b = propose->resolve ns
  kCount_,               // sentinel, keep last
};

/// Stable name for the JSONL `type` field ("frame_rx", "instance_start",
/// ...); "unknown" for out-of-range values.
const char* type_name(Type t);
/// Inverse of type_name; nullopt for unrecognized names.
std::optional<Type> type_from_name(const std::string& name);

/// One recorded event. POD snapshot form -- the in-ring representation is
/// all-atomic; this is what snapshot()/parse_jsonl() hand back.
struct Event {
  std::uint64_t ts_ns = 0;    // steady-clock ns at emit (per-process epoch)
  std::uint64_t lamport = 0;  // process Lamport clock at emit
  std::int32_t node = -1;     // cluster id (set_node), -1 = unset
  std::int32_t instance = -1; // consensus instance / round / episode, -1 = n/a
  Type type = Type::kNote;
  std::int64_t a = 0;         // type-specific (see Type)
  std::int64_t b = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Steady-clock nanoseconds (same clock as ScopedTimer).
std::uint64_t now_ns();

// -- Lamport clock -----------------------------------------------------------

/// Current clock value (no tick).
std::uint64_t lamport_now();
/// Send-side tick: ++clock, returns the new value (the stamp to send).
std::uint64_t lamport_tick();
/// Receive-side merge: clock = max(clock, received) + 1, returns the new
/// value. Monotone under any interleaving.
std::uint64_t lamport_merge(std::uint64_t received);

/// Meta tag marking the three trailing Lamport-stamp ints ("LAMP").
inline constexpr int kLamportMetaTag = 0x4C414D50;
/// Appends [lo30, hi30, kLamportMetaTag] to meta. Clocks are carried as two
/// non-negative 30-bit limbs (60 usable bits -- unreachable in practice).
void stamp_lamport(std::vector<int>& meta, std::uint64_t clock);
/// Removes and returns a trailing stamp; nullopt (meta untouched) when the
/// tail is not a stamp, so unstamped senders are fail-safe.
std::optional<std::uint64_t> strip_lamport(std::vector<int>& meta);

// -- Recording ---------------------------------------------------------------

/// This process's cluster id, stamped on subsequently emitted events
/// (rbvc-node / rbvc-client set it from --id). Process-wide; in-process
/// multi-node fleets (benches, tests) leave it unset and group by thread.
void set_node(std::int32_t id);
std::int32_t node();

/// Master switch, default on. Only bench_net_cluster --trace toggles it,
/// to measure the recorder's overhead; emit() with tracing off is a single
/// relaxed load.
bool enabled();
void set_enabled(bool on);

/// Records one event into the calling thread's ring (created on first use,
/// capacity RBVC_TRACE_RING, default 1024 slots).
void emit(Type t, std::int32_t instance = -1, std::int64_t a = 0,
          std::int64_t b = 0);

/// Total events ever emitted process-wide (wrapped events included).
std::uint64_t emitted_total();

/// One bounded single-owner event ring; the process-wide recorder keeps one
/// per writer thread. Public for tests -- production code uses emit().
/// emit() is safe from many threads (the cursor is a fetch_add), snapshots
/// are safe concurrent with writers (tag-checked copies).
class Ring {
 public:
  explicit Ring(std::size_t capacity);
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  void emit(const Event& e);
  /// Events still retained (oldest first), skipping slots mid-rewrite.
  void snapshot_into(std::vector<Event>& out) const;
  /// Newest `last_n` retained events to stderr, async-signal-safe only
  /// (write(2), manual formatting) -- the crash-dump hook's workhorse.
  void crash_dump(std::size_t last_n) const;
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t emitted() const {
    return next_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    // tag == logical index + 1 once published, 0 while a rewrite is in
    // flight; logical indices grow without bound so a tag can never repeat
    // for a slot (no ABA). All fields atomic => concurrent snapshot is
    // race-free; the tag re-check discards torn copies.
    std::atomic<std::uint64_t> tag{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> lamport{0};
    std::atomic<std::int64_t> a{0};
    std::atomic<std::int64_t> b{0};
    std::atomic<std::int32_t> node{-1};
    std::atomic<std::int32_t> instance{-1};
    std::atomic<std::uint16_t> type{0};
  };
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};  // logical index of the next event
};

// -- Snapshots & serialization ----------------------------------------------

/// Every retained event across all rings, sorted by (lamport, ts, node,
/// type, instance, a, b) -- a deterministic order once writers quiesce.
std::vector<Event> snapshot();

/// One JSON object per line, fixed key order:
///   {"ts":..,"lc":..,"node":..,"inst":..,"type":"frame_rx","a":..,"b":..}
/// Serializes `events` in the given order; parse_jsonl is the exact
/// inverse, so dump_jsonl(parse_jsonl(text)) == text byte-for-byte.
std::string dump_jsonl(const std::vector<Event>& events);
/// dump_jsonl(snapshot()).
std::string dump_jsonl();
/// Inverse of dump_jsonl; throws invalid_argument naming the defect on
/// malformed input. Blank lines are rejected, not skipped.
std::vector<Event> parse_jsonl(const std::string& text);

/// RBVC_TRACE_OUT, or "" when unset.
std::string env_trace_out();
/// Writes dump_jsonl() to RBVC_TRACE_OUT (or `path_override` when
/// non-empty). Returns the path written, "" when none configured.
std::string export_trace(const std::string& path_override = "");

/// Installs SIGSEGV/SIGBUS/SIGABRT/SIGFPE handlers that write the newest
/// `last_n` events per ring to stderr (async-signal-safe: write(2) and
/// manual formatting only) before re-raising the default disposition.
/// last_n is clamped to 256.
void install_crash_dump(std::size_t last_n = 64);

}  // namespace rbvc::obs::events
