#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace rbvc::obs {

namespace {

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == ':' || c == '/' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string fmt_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string fmt_double_array(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += fmt_double(xs[i]);
  }
  out += "]";
  return out;
}

std::string fmt_u64_array(const std::vector<std::uint64_t>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(xs[i]);
  }
  out += "]";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal parser for the exact JSON dialect dump_json() emits: object keys
// are [A-Za-z0-9_.:/-] strings (no escapes), values are integers, %.17g
// doubles, arrays of those, or the fixed histogram object. Whitespace is
// free-form so hand-edited files still load.
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    RBVC_REQUIRE(pos_ < text_.size(), "metrics parse: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    RBVC_REQUIRE(peek() == c, std::string("metrics parse: expected `") + c +
                                  "` got `" + text_[pos_] + "`");
    ++pos_;
  }

  void expect_key(const std::string& key) {
    const std::string got = parse_string();
    RBVC_REQUIRE(got == key, "metrics parse: expected key `" + key +
                                 "`, got `" + got + "`");
    expect(':');
  }

  std::string parse_string() {
    expect('"');
    const std::size_t end = text_.find('"', pos_);
    RBVC_REQUIRE(end != std::string::npos,
                 "metrics parse: unterminated string");
    const std::string s = text_.substr(pos_, end - pos_);
    pos_ = end + 1;
    return s;
  }

  std::string number_token() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool num = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                       c == '.' || c == 'e' || c == 'E';
      if (!num) break;
      ++pos_;
    }
    RBVC_REQUIRE(pos_ > start, "metrics parse: expected a number");
    return text_.substr(start, pos_ - start);
  }

  std::uint64_t parse_u64() {
    const std::string tok = number_token();
    for (char c : tok) {
      RBVC_REQUIRE(c >= '0' && c <= '9',
                   "metrics parse: expected a non-negative integer, got `" +
                       tok + "`");
    }
    return std::strtoull(tok.c_str(), nullptr, 10);
  }

  double parse_double() {
    const std::string tok = number_token();
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    RBVC_REQUIRE(end && *end == '\0',
                 "metrics parse: malformed number `" + tok + "`");
    return v;
  }

  template <class ElemFn>
  void parse_array(const ElemFn& elem) {
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      elem();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  /// Iterates `entry(name)` over a {...} object's members.
  template <class EntryFn>
  void parse_object(const EntryFn& entry) {
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      const std::string name = parse_string();
      expect(':');
      entry(name);
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void expect_end() {
    skip_ws();
    RBVC_REQUIRE(pos_ == text_.size(),
                 "metrics parse: trailing garbage after the document");
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Counter.
// ---------------------------------------------------------------------------

std::size_t Counter::shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1)  // value-initialized atomics (zero)
{
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    RBVC_REQUIRE(bounds_[i] < bounds_[i + 1],
                 "Histogram: bounds must be strictly increasing");
  }
}

Histogram::Histogram(Histogram&& other) noexcept
    : bounds_(std::move(other.bounds_)),
      counts_(std::move(other.counts_)),
      total_(other.total_.load(std::memory_order_relaxed)),
      sum_(other.sum_.load(std::memory_order_relaxed)) {}

std::size_t Histogram::bucket_of(double v) const {
  // First bound >= v; past-the-end means the overflow bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::observe(double v) {
  counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // CAS accumulation instead of atomic<double>::fetch_add for toolchain
  // portability; uncontended in practice (distinct histograms per site).
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::atomic<std::uint64_t>& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& time_buckets() {
  static const std::vector<double> b = {1e-6, 1e-5, 1e-4, 1e-3,
                                        1e-2, 0.1,  1.0,  10.0};
  return b;
}

const std::vector<double>& count_buckets() {
  static const std::vector<double> b = {1,   2,    5,    10,     20,     50,
                                        100, 200,  500,  1000,   10000,
                                        100000, 1000000};
  return b;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Registry::Registry() {
  const char* on = std::getenv("RBVC_METRICS");
  enabled_.store(
      (on && *on && std::string(on) != "0") || !env_out_path().empty(),
      std::memory_order_relaxed);
}

Registry::Registry(Registry&& other) noexcept
    : enabled_(other.enabled_.load(std::memory_order_relaxed)),
      counters_(std::move(other.counters_)),
      gauges_(std::move(other.gauges_)),
      histograms_(std::move(other.histograms_)) {}

Counter& Registry::counter(const std::string& name) {
  RBVC_REQUIRE(valid_name(name), "metrics: bad counter name `" + name + "`");
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  RBVC_REQUIRE(valid_name(name), "metrics: bad gauge name `" + name + "`");
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  RBVC_REQUIRE(valid_name(name),
               "metrics: bad histogram name `" + name + "`");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(bounds)).first;
  }
  return it->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void Registry::reset_wallclock_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, h] : histograms_) {
    if (h.bounds() == time_buckets()) h.reset();
  }
}

std::string Registry::dump_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n";
  out += "  \"version\": " + std::to_string(kMetricsVersion) + ",\n";

  auto section = [&out](const char* title, auto& map, auto&& value,
                        bool last) {
    out += std::string("  \"") + title + "\": {";
    if (!map.empty()) {
      out += "\n";
      std::size_t i = 0;
      for (const auto& [name, metric] : map) {
        out += "    \"" + name + "\": " + value(metric);
        out += ++i < map.size() ? ",\n" : "\n";
      }
      out += "  ";
    }
    out += last ? "}\n" : "},\n";
  };

  section("counters", counters_,
          [](const Counter& c) { return std::to_string(c.value()); }, false);
  section("gauges", gauges_,
          [](const Gauge& g) { return fmt_double(g.value()); }, false);
  section("histograms", histograms_,
          [](const Histogram& h) {
            return "{\"bounds\": " + fmt_double_array(h.bounds()) +
                   ", \"counts\": " + fmt_u64_array(h.counts()) +
                   ", \"sum\": " + fmt_double(h.sum()) + "}";
          },
          true);
  out += "}\n";
  return out;
}

Registry Registry::parse(const std::string& json) {
  Registry reg;
  reg.enabled_.store(false, std::memory_order_relaxed);  // data, not a gate
  Parser p(json);
  p.expect('{');
  p.expect_key("version");
  const std::uint64_t version = p.parse_u64();
  RBVC_REQUIRE(version == static_cast<std::uint64_t>(kMetricsVersion),
               "metrics parse: unknown version " + std::to_string(version) +
                   " (this build reads v" + std::to_string(kMetricsVersion) +
                   ")");
  p.expect(',');
  p.expect_key("counters");
  p.parse_object([&](const std::string& name) {
    RBVC_REQUIRE(valid_name(name), "metrics parse: bad name `" + name + "`");
    reg.counters_[name].inc(p.parse_u64());
  });
  p.expect(',');
  p.expect_key("gauges");
  p.parse_object([&](const std::string& name) {
    RBVC_REQUIRE(valid_name(name), "metrics parse: bad name `" + name + "`");
    reg.gauges_[name].set(p.parse_double());
  });
  p.expect(',');
  p.expect_key("histograms");
  p.parse_object([&](const std::string& name) {
    RBVC_REQUIRE(valid_name(name), "metrics parse: bad name `" + name + "`");
    p.expect('{');
    p.expect_key("bounds");
    std::vector<double> bounds;
    p.parse_array([&] { bounds.push_back(p.parse_double()); });
    p.expect(',');
    p.expect_key("counts");
    std::vector<std::uint64_t> counts;
    p.parse_array([&] { counts.push_back(p.parse_u64()); });
    p.expect(',');
    p.expect_key("sum");
    const double sum = p.parse_double();
    p.expect('}');
    Histogram h(bounds);  // validates monotone bounds
    RBVC_REQUIRE(counts.size() == bounds.size() + 1,
                 "metrics parse: histogram `" + name + "` needs " +
                     std::to_string(bounds.size() + 1) + " counts");
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      h.counts_[i].store(counts[i], std::memory_order_relaxed);
      total += counts[i];
    }
    h.total_.store(total, std::memory_order_relaxed);
    h.sum_.store(sum, std::memory_order_relaxed);
    reg.histograms_.emplace(name, std::move(h));
  });
  p.expect('}');
  p.expect_end();
  return reg;
}

// ---------------------------------------------------------------------------
// Global registry + env-gated sink.
// ---------------------------------------------------------------------------

std::string env_out_path() {
  const char* path = std::getenv("RBVC_METRICS_OUT");
  return path ? std::string(path) : std::string();
}

std::string sanitize_label(const std::string& raw) {
  if (raw.empty()) return "unknown";
  std::string out = raw;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == ':' || c == '/' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

std::string export_global(const std::string& path_override) {
  const std::string path =
      path_override.empty() ? env_out_path() : path_override;
  if (path.empty()) return "";
  std::ofstream out(path, std::ios::trunc);
  RBVC_REQUIRE(out.good(), "metrics export: cannot open " + path);
  out << global().dump_json();
  RBVC_REQUIRE(out.good(), "metrics export: write failed for " + path);
  return path;
}

Registry& global() {
  static Registry* reg = [] {
    static Registry r;
    if (!env_out_path().empty()) {
      // Registered after `r`'s construction, so this runs before its
      // destructor: every binary exports automatically when the env asks.
      std::atexit([] { export_global(); });
    }
    return &r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// ScopedTimer.
// ---------------------------------------------------------------------------

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedTimer::ScopedTimer(Registry& registry, const std::string& histogram_name)
    : hist_(registry.histogram(histogram_name, time_buckets())),
      start_ns_(now_ns()) {}

double ScopedTimer::elapsed_seconds() const {
  const std::uint64_t now = now_ns();
  return now <= start_ns_ ? 0.0
                          : static_cast<double>(now - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer() { hist_.observe(elapsed_seconds()); }

}  // namespace rbvc::obs
