// Run-telemetry layer: a Registry of named counters, gauges, and
// fixed-bucket histograms, plus RAII ScopedTimers, instrumenting the sim
// engines, protocols, geometry/LP kernels, and workload runners.
//
// Design points (see docs/OBSERVABILITY.md for the metric inventory):
//   * Recording is always on and cheap (a map lookup at handle creation,
//     an integer add per event); only *derived* metrics that cost real work
//     (e.g. the runner's achieved-delta gauge, which solves an LP) are
//     gated on Registry::enabled(), which defaults from the RBVC_METRICS
//     env knob.
//   * dump_json() is a stable serialization -- fixed key order (sorted),
//     fixed number formatting (%.17g doubles, decimal integers) -- and
//     Registry::parse() inverts it, so `parse(dump_json()).dump_json()`
//     is byte-for-byte the input. Repro files (schema v3) and the bench
//     --json emitters rely on this, exactly like Trace::dump/parse.
//   * reset_values() zeroes every metric but never erases entries, so
//     cached `Counter&`/`Histogram&` handles (including function-local
//     statics in hot paths) stay valid across per-episode snapshots.
//   * Sinks are env-gated: when RBVC_METRICS_OUT=<path> is set, the global
//     registry is written there at process exit (and on demand via
//     export_global()); RBVC_METRICS=1 enables the gated derived metrics.
//
// Thread-safety: fully concurrent recording. Handle creation and
// serialization take a registry mutex; recording through a handle is
// lock-free -- counters add into per-thread shards (aggregated on
// snapshot), gauges are atomic stores, histogram buckets are atomic adds.
// The parallel episode executor (exec/parallel_executor.h) runs many
// engine instances against the one global registry, so RBVC_METRICS totals
// stay exact under RBVC_JOBS > 1. Snapshots taken while a pool is running
// are per-metric consistent, not cross-metric consistent; the property
// harness snapshots only from its single-threaded minimize path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rbvc/common.h"

namespace rbvc::obs {

/// Serialization schema version embedded in dump_json().
inline constexpr int kMetricsVersion = 1;

/// Monotonically increasing event count. Writes land in one of kShards
/// cache-line-sized slots chosen per thread (round-robin at first use), so
/// concurrent inc() from an episode pool never contends on one line;
/// value() aggregates the shards. Relaxed ordering: totals are exact once
/// the writers are quiesced (pool drained / joined), which is when the
/// harness and the exit sink read them.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void inc(std::uint64_t by = 1) {
    shards_[shard_index()].v.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  /// This thread's shard slot, assigned round-robin on first use.
  static std::size_t shard_index();
  std::array<Shard, kShards> shards_{};
};

/// Last-observed value (e.g. the most recent episode's achieved delta*).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are strictly increasing upper bounds;
/// bucket i counts observations v with v <= bounds[i] (and > bounds[i-1]);
/// one extra overflow bucket counts v > bounds.back(). Tracks the running
/// sum and total so means are recoverable. observe() is concurrent-safe
/// (atomic bucket/total adds, CAS-accumulated sum); counts() returns a
/// point-in-time snapshot.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(Histogram&& other) noexcept;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  Histogram& operator=(Histogram&&) = delete;

  void observe(double v);
  /// Index of the bucket `observe(v)` increments (exposed for tests).
  std::size_t bucket_of(double v) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> counts() const;  // snapshot, overflow last
  std::uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  friend class Registry;  // parse() restores counts_/total_/sum_ directly
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket sets. Timers use seconds (1us .. 10s); count-shaped
/// histograms (queue depths, per-round message counts) use 1 .. 1e6.
const std::vector<double>& time_buckets();
const std::vector<double>& count_buckets();

/// A named collection of metrics. Metric names must be non-empty and use
/// only [A-Za-z0-9_.:/-] so the JSON serialization never needs escaping.
class Registry {
 public:
  Registry();
  // Movable (parse() returns by value) but not copyable; handles into a
  // moved-from registry are invalidated, as usual.
  Registry(Registry&& other) noexcept;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  Registry& operator=(Registry&&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime
  /// (reset_values() zeroes but never erases). A histogram's bounds are
  /// fixed by its first creation; later calls return the existing one.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds);

  /// Read-only lookups; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const;

  /// Stable JSON: sorted keys, %.17g doubles. parse() inverts it so
  /// parse(dump_json()).dump_json() is byte-identical.
  std::string dump_json() const;
  /// Inverse of dump_json(). Throws invalid_argument on malformed input
  /// or an unknown schema version.
  static Registry parse(const std::string& json);

  /// Zeroes every metric value, keeping entries (and handles) alive --
  /// the per-episode snapshot primitive used by the property harness.
  void reset_values();

  /// Zeroes only the wall-clock histograms (those with time_buckets()
  /// bounds). Timings are functions of the machine, not the episode, so
  /// snapshots that must be deterministic artifacts -- the repro-embedded
  /// one, which the RBVC_JOBS contract requires to be byte-identical across
  /// job counts and runs -- scrub them first.
  void reset_wallclock_values();

  /// Gate for *expensive derived* metrics only (cheap counters are always
  /// recorded). Defaults to true when RBVC_METRICS is a nonzero value or
  /// RBVC_METRICS_OUT is set.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide registry every instrumentation point records into.
/// First use arms the env-gated sink: if RBVC_METRICS_OUT is set, the
/// registry is exported there at process exit.
Registry& global();

/// RBVC_METRICS_OUT, or "" when unset.
std::string env_out_path();

/// Maps an arbitrary string (e.g. a wire-level message kind, possibly
/// forged by a Byzantine strategy) into the metric-name charset: invalid
/// characters become '_', empty input becomes "unknown".
std::string sanitize_label(const std::string& raw);

/// Writes global().dump_json() to RBVC_METRICS_OUT (or `path_override` when
/// non-empty). Returns the path written, or "" when no path was configured.
std::string export_global(const std::string& path_override = "");

/// RAII wall-clock timer: observes its elapsed seconds into a time-bucket
/// histogram on destruction. elapsed_seconds() is monotonically
/// non-decreasing and non-negative (steady clock).
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, const std::string& histogram_name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_seconds() const;

 private:
  Histogram& hist_;
  std::uint64_t start_ns_;
};

}  // namespace rbvc::obs
