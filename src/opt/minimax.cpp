#include "opt/minimax.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace rbvc {

namespace {

struct Farthest {
  double dist = 0.0;
  Vec proj;  // projection of p onto the farthest hull
};

Farthest farthest_hull(const Vec& p, const std::vector<PointView>& sets,
                       double tol, double norm_p, std::size_t& evals) {
  Farthest far;
  far.proj = p;
  for (const PointView& s : sets) {
    const HullProjection pr = project_to_hull_p(p, s, norm_p, tol);
    ++evals;
    if (pr.distance > far.dist) {
      far.dist = pr.distance;
      far.proj = pr.point;
    }
  }
  return far;
}

}  // namespace

MinimaxResult min_max_hull_distance(const std::vector<std::vector<Vec>>& sets,
                                    Vec init, const MinimaxOptions& opts) {
  return min_max_hull_distance(std::vector<PointView>(sets.begin(), sets.end()),
                               std::move(init), opts);
}

MinimaxResult min_max_hull_distance(const std::vector<PointView>& sets,
                                    Vec init, const MinimaxOptions& opts) {
  RBVC_REQUIRE(!sets.empty(), "min_max_hull_distance: no sets");
  obs::global().counter("opt.minimax.calls").inc();
  obs::ScopedTimer timer(obs::global(), "opt.minimax.seconds");
  MinimaxResult best;
  Vec p = std::move(init);
  {
    const Farthest f0 = farthest_hull(p, sets, opts.tol, opts.p, best.evals);
    best.value = f0.dist;
    best.point = p;
  }

  // Phase 1: Badoiu-Clarkson schedule. Move toward the projection onto the
  // farthest hull; the 1/(k+2) damping makes the iterates converge to the
  // min-max center.
  for (std::size_t k = 0; k < opts.iters; ++k) {
    const Farthest far = farthest_hull(p, sets, opts.tol, opts.p, best.evals);
    if (far.dist < best.value) {
      best.value = far.dist;
      best.point = p;
    }
    if (far.dist <= opts.tol) break;  // intersection reached: delta* = 0
    const double step = 1.0 / (static_cast<double>(k) + 2.0);
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] += step * (far.proj[i] - p[i]);
    }
  }

  // Phase 2: Polyak subgradient polishing from the best point found. The
  // subgradient of max_i dist(p, H_i) is the unit vector away from the
  // farthest hull; Polyak's step uses best.value as the target estimate
  // with a shrinking over-relaxation.
  p = best.point;
  for (std::size_t k = 0; k < opts.polish_iters; ++k) {
    const Farthest far = farthest_hull(p, sets, opts.tol, opts.p, best.evals);
    if (far.dist < best.value) {
      best.value = far.dist;
      best.point = p;
    }
    if (far.dist <= opts.tol) break;
    // target = (1 - gamma_k) * current best; gamma decays so steps vanish.
    const double gamma = 0.5 / std::sqrt(static_cast<double>(k) + 1.0);
    const double target = best.value * (1.0 - gamma);
    const double step = std::max(0.0, far.dist - target) / far.dist;
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] += step * (far.proj[i] - p[i]);
    }
  }
  obs::global().counter("opt.minimax.evals").inc(best.evals);
  return best;
}

}  // namespace rbvc
