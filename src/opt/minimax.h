// Numerical solver for the min-max hull-distance problem at the heart of
// ALGO's Step 2 (paper Sec. 9):
//
//     delta* = min_{p in R^d}  max_i  dist_2(p, H(S_i))
//
// The objective is convex; we run a Badoiu-Clarkson style iteration (move
// toward the projection onto the currently-farthest hull with a 1/(k+2)
// schedule) followed by subgradient polishing. Exact closed forms (simplex
// inradius) cross-check this path in tests.
#pragma once

#include <vector>

#include "geometry/distance.h"

namespace rbvc {

struct MinimaxOptions {
  std::size_t iters = 4'000;       // main schedule length
  std::size_t polish_iters = 500;  // Polyak subgradient polishing steps
  double tol = kTol;
  double p = 2.0;  // norm for the hull distances (2 exact; others iterative)
};

struct MinimaxResult {
  double value = 0.0;   // best max-distance found (upper bound on delta*)
  Vec point;            // the minimizing point found
  std::size_t evals = 0;  // hull-projection evaluations performed
};

/// Minimizes max_i dist_2(p, H(sets[i])) starting from `init`. The PointView
/// overload lets the delta* path pass drop-f index views without
/// materializing each subset.
MinimaxResult min_max_hull_distance(const std::vector<PointView>& sets,
                                    Vec init, const MinimaxOptions& opts = {});
MinimaxResult min_max_hull_distance(const std::vector<std::vector<Vec>>& sets,
                                    Vec init, const MinimaxOptions& opts = {});

}  // namespace rbvc
