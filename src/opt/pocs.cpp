#include "opt/pocs.h"

namespace rbvc {

std::optional<Vec> pocs_point_within(const std::vector<std::vector<Vec>>& sets,
                                     double delta, Vec init,
                                     const PocsOptions& opts) {
  RBVC_REQUIRE(!sets.empty(), "pocs_point_within: no sets");
  RBVC_REQUIRE(delta >= 0.0, "pocs_point_within: delta must be >= 0");
  Vec p = std::move(init);
  for (std::size_t sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    double worst = 0.0;
    for (const auto& s : sets) {
      const HullProjection pr = project_to_hull(p, s, kTol);
      if (pr.distance > delta) {
        // Project onto the delta-fattened hull: move toward the hull until
        // exactly delta away.
        const double move = (pr.distance - delta) / pr.distance;
        for (std::size_t i = 0; i < p.size(); ++i) {
          p[i] += move * (pr.point[i] - p[i]);
        }
        worst = std::max(worst, pr.distance - delta);
      }
    }
    if (worst <= opts.tol) return p;
  }
  return std::nullopt;
}

}  // namespace rbvc
