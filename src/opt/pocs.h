// Projection-onto-convex-sets (cyclic alternating projections) feasibility:
// find a point whose L2 distance to every listed hull is at most delta.
// Used as an independent witness generator for Gamma_(delta,2)(S) and as a
// cross-check on the minimax delta* solver.
#pragma once

#include <optional>
#include <vector>

#include "geometry/distance.h"

namespace rbvc {

struct PocsOptions {
  std::size_t max_sweeps = 2'000;
  double tol = kLooseTol;
};

/// Cyclic projections onto the delta-fattened hulls H_(delta,2)(sets[i]).
/// Returns a point within delta + tol of every hull, or nullopt when the
/// sweep budget is exhausted without converging (suggests the intersection
/// is empty -- POCS cannot certify emptiness, only fail to find a witness).
std::optional<Vec> pocs_point_within(const std::vector<std::vector<Vec>>& sets,
                                     double delta, Vec init,
                                     const PocsOptions& opts = {});

}  // namespace rbvc
