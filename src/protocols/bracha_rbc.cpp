#include "protocols/bracha_rbc.h"

#include "obs/metrics.h"

namespace rbvc::protocols {

BrachaRbc::BrachaRbc(std::size_t n, std::size_t f, ProcessId self)
    : n_(n), f_(f), self_(self) {
  RBVC_REQUIRE(n_ >= 3 * f_ + 1, "Bracha RBC requires n >= 3f + 1");
}

void BrachaRbc::emit(Phase phase, ProcessId source, int instance,
                     const Content& content, Outbox& out) {
  Message m;
  m.kind = kKind;
  m.meta = {static_cast<int>(source), instance, static_cast<int>(phase)};
  m.meta.insert(m.meta.end(), content.first.begin(), content.first.end());
  m.payload = content.second;
  for (ProcessId p = 0; p < n_; ++p) {
    Message copy = m;
    out.send(p, std::move(copy));
    ++sent_;
  }
  obs::global().counter("protocols.rbc.emits").inc();
}

void BrachaRbc::broadcast(int instance, const Vec& value, Outbox& out,
                          const std::vector<int>& extra) {
  emit(kInit, self_, instance, {extra, value}, out);
}

std::vector<BrachaRbc::Delivery> BrachaRbc::on_message(const Message& m,
                                                       Outbox& out) {
  std::vector<Delivery> deliveries;
  if (!is_rbc(m) || m.meta.size() < 3) return deliveries;
  const int source_raw = m.meta[0];
  if (source_raw < 0 || static_cast<std::size_t>(source_raw) >= n_) {
    return deliveries;
  }
  const ProcessId source = static_cast<ProcessId>(source_raw);
  const int instance = m.meta[1];
  const int phase = m.meta[2];
  const Content content{{m.meta.begin() + 3, m.meta.end()}, m.payload};
  Slot& s = slot(source, instance);

  const std::size_t echo_quorum =
      quorums_.echo ? quorums_.echo : (n_ + f_ + 2) / 2;  // ceil((n+f+1)/2)
  const std::size_t ready_amplify =
      quorums_.ready_amplify ? quorums_.ready_amplify : f_ + 1;
  const std::size_t ready_deliver =
      quorums_.ready_deliver ? quorums_.ready_deliver : 2 * f_ + 1;

  switch (phase) {
    case kInit: {
      // Only the true source's INIT counts (authenticated channels).
      if (m.from != source) break;
      if (!s.sent_echo) {
        s.sent_echo = true;
        emit(kEcho, source, instance, content, out);
      }
      break;
    }
    case kEcho: {
      if (!s.echoed.insert(m.from).second) break;  // one echo per process
      const std::size_t votes = ++s.echo_votes[content];
      if (votes >= echo_quorum && !s.sent_ready) {
        s.sent_ready = true;
        obs::global().counter("protocols.rbc.echo_quorums").inc();
        emit(kReady, source, instance, content, out);
      }
      break;
    }
    case kReady: {
      if (!s.readied.insert(m.from).second) break;  // one ready per process
      const std::size_t votes = ++s.ready_votes[content];
      if (votes >= ready_amplify && !s.sent_ready) {
        s.sent_ready = true;
        obs::global().counter("protocols.rbc.ready_amplifications").inc();
        emit(kReady, source, instance, content, out);
      }
      if (votes >= ready_deliver && !s.delivered) {
        s.delivered = true;
        obs::global().counter("protocols.rbc.deliveries").inc();
        deliveries.push_back({source, instance, content.second, content.first});
      }
      break;
    }
    default:
      break;
  }
  return deliveries;
}

}  // namespace rbvc::protocols
