// Bracha's asynchronous reliable broadcast (1987), n >= 3f + 1.
//
// Guarantees used by the paper's asynchronous algorithms (Sec. 10):
//   * if a correct process broadcasts v, every correct process delivers v;
//   * if any correct process delivers (s, inst, v), every correct process
//     eventually delivers the same v for (s, inst) -- a Byzantine source
//     cannot equivocate within one instance.
//
// Besides the vector value, a broadcast can carry an `extra` integer list
// (Relaxed Verified Averaging attaches the sender's view -- the source ids
// its value was computed from -- so receivers can recompute and verify).
// The extra data is part of the broadcast content: equivocating on it is
// equivalent to equivocating on the value.
//
// Implemented as a reusable component driven by its owning AsyncProcess:
// INIT -> ECHO (quorum ceil((n+f+1)/2)) -> READY (amplify at f+1, deliver
// at 2f+1).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "sim/async_engine.h"

namespace rbvc::protocols {

using sim::Message;
using sim::Outbox;
using sim::ProcessId;

class BrachaRbc {
 public:
  /// Test-only fault injection: overrides for the three vote thresholds
  /// (0 = use the protocol value). Lowering the echo quorum below
  /// ceil((n+f+1)/2) or the delivery threshold below 2f+1 breaks the
  /// intersection argument that prevents equivocation from splitting
  /// correct deliveries -- which is exactly what the property harness
  /// plants to prove its oracle catches the violation.
  struct Quorums {
    std::size_t echo = 0;           // protocol: ceil((n+f+1)/2)
    std::size_t ready_amplify = 0;  // protocol: f+1
    std::size_t ready_deliver = 0;  // protocol: 2f+1
  };

  BrachaRbc(std::size_t n, std::size_t f, ProcessId self);

  void override_quorums(const Quorums& q) { quorums_ = q; }

  /// Starts broadcasting `value` (+ optional extra ints) as the source of
  /// instance (self, instance).
  void broadcast(int instance, const Vec& value, Outbox& out,
                 const std::vector<int>& extra = {});

  struct Delivery {
    ProcessId source;
    int instance;
    Vec value;
    std::vector<int> extra;
  };

  /// Feeds a received message. Non-RBC messages are ignored. Returns the
  /// deliveries (zero or one) triggered by this message.
  std::vector<Delivery> on_message(const Message& m, Outbox& out);

  static bool is_rbc(const Message& m) { return m.kind == kKind; }

  /// Messages sent by this component so far (for the protocol-cost bench).
  std::size_t sent() const { return sent_; }

 private:
  using Content = std::pair<std::vector<int>, Vec>;  // (extra, value)

  struct Slot {
    // Per-sender first votes, and counts per distinct content.
    std::set<ProcessId> echoed, readied;
    std::map<Content, std::size_t> echo_votes, ready_votes;
    bool sent_echo = false, sent_ready = false, delivered = false;
  };

  static constexpr const char* kKind = "rbc";
  enum Phase : int { kInit = 0, kEcho = 1, kReady = 2 };

  Slot& slot(ProcessId source, int instance) {
    return slots_[{source, instance}];
  }
  void emit(Phase phase, ProcessId source, int instance,
            const Content& content, Outbox& out);

  std::size_t n_, f_;
  ProcessId self_;
  Quorums quorums_;
  std::size_t sent_ = 0;
  std::map<std::pair<ProcessId, int>, Slot> slots_;
};

}  // namespace rbvc::protocols
