#include "protocols/dolev_strong.h"

#include <algorithm>

#include "obs/metrics.h"

namespace rbvc::protocols {

namespace ds_wire {

Message encode(ProcessId instance, const Vec& value, const SigChain& chain) {
  Message m;
  m.kind = kKind;
  m.meta.reserve(1 + 3 * chain.size());
  m.meta.push_back(static_cast<int>(instance));
  for (const auto& [signer, sig] : chain) {
    m.meta.push_back(static_cast<int>(signer));
    m.meta.push_back(static_cast<int>(sig & 0xffffffffULL));
    m.meta.push_back(static_cast<int>(sig >> 32));
  }
  m.payload = value;
  return m;
}

std::optional<std::pair<ProcessId, SigChain>> decode(const Message& m,
                                                     std::size_t n) {
  if (m.kind != kKind || m.meta.empty()) return std::nullopt;
  if ((m.meta.size() - 1) % 3 != 0) return std::nullopt;
  const int inst = m.meta[0];
  if (inst < 0 || static_cast<std::size_t>(inst) >= n) return std::nullopt;
  SigChain chain;
  for (std::size_t i = 1; i + 2 < m.meta.size() + 1; i += 3) {
    const int signer = m.meta[i];
    if (signer < 0 || static_cast<std::size_t>(signer) >= n) {
      return std::nullopt;
    }
    const auto lo = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(m.meta[i + 1]));
    const auto hi = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(m.meta[i + 2]));
    chain.emplace_back(static_cast<ProcessId>(signer), lo | (hi << 32));
  }
  return std::make_pair(static_cast<ProcessId>(inst), std::move(chain));
}

std::uint64_t chain_digest(ProcessId instance, const Vec& value,
                           const SigChain& prefix) {
  sim::Digest d;
  d.absorb(static_cast<std::uint64_t>(instance));
  d.absorb(value);
  for (const auto& [signer, sig] : prefix) {
    d.absorb(static_cast<std::uint64_t>(signer));
    d.absorb(sig);
  }
  return d.value();
}

bool chain_valid(const sim::SignatureAuthority& authority, ProcessId instance,
                 const Vec& value, const SigChain& chain) {
  obs::global().counter("protocols.ds.chain_validations").inc();
  if (chain.empty()) return false;
  if (chain.front().first != instance) return false;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    for (std::size_t j = i + 1; j < chain.size(); ++j) {
      if (chain[i].first == chain[j].first) return false;  // repeat signer
    }
  }
  SigChain prefix;
  for (const auto& [signer, sig] : chain) {
    if (!authority.verify(signer, chain_digest(instance, value, prefix),
                          sig)) {
      return false;
    }
    prefix.emplace_back(signer, sig);
  }
  return true;
}

}  // namespace ds_wire

DolevStrongProcess::DolevStrongProcess(std::size_t n, std::size_t f,
                                       ProcessId self, Vec input,
                                       Vec default_value, DecisionFn decide,
                                       sim::Signer signer,
                                       const sim::SignatureAuthority* authority)
    : n_(n),
      f_(f),
      self_(self),
      input_(std::move(input)),
      default_(std::move(default_value)),
      signer_(signer),
      authority_(authority),
      decide_(std::move(decide)),
      extracted_(n) {
  RBVC_REQUIRE(n_ >= f_ + 2, "Dolev-Strong IC: need n >= f + 2");
  RBVC_REQUIRE(self_ < n_, "process id out of range");
  RBVC_REQUIRE(authority_ != nullptr, "missing signature authority");
  RBVC_REQUIRE(signer_.id() == self_, "signer does not match process id");
}

std::vector<std::pair<ProcessId, Message>>
DolevStrongProcess::initial_messages() {
  SigChain chain;
  chain.emplace_back(self_,
                     signer_.sign(ds_wire::chain_digest(self_, input_, {})));
  const Message m = ds_wire::encode(self_, input_, chain);
  std::vector<std::pair<ProcessId, Message>> out;
  out.reserve(n_);
  for (ProcessId r = 0; r < n_; ++r) {
    if (r != self_) out.emplace_back(r, m);
  }
  return out;
}

bool DolevStrongProcess::should_relay(ProcessId, const Vec&) { return true; }

void DolevStrongProcess::round(std::size_t round_no,
                               const std::vector<Message>& inbox,
                               Outbox& out) {
  if (decided_) return;

  if (round_no == 0) {
    extracted_[self_].insert(input_);  // trivially extract own value
    for (auto& [to, m] : initial_messages()) {
      Message copy = m;
      out.send(to, std::move(copy));
    }
    return;
  }

  // Absorb round-`round_no` chains (must carry exactly round_no signatures).
  for (const Message& m : inbox) {
    auto parsed = ds_wire::decode(m, n_);
    if (!parsed) continue;
    const auto& [instance, chain] = *parsed;
    if (chain.size() != round_no || round_no > f_ + 1) continue;
    if (m.payload.size() != default_.size()) continue;
    if (validate_chains_ &&
        !ds_wire::chain_valid(*authority_, instance, m.payload, chain)) {
      continue;
    }
    if (!extracted_[instance].insert(m.payload).second) continue;  // known
    obs::global().counter("protocols.ds.extractions").inc();
    // Newly extracted: relay with our signature appended while relaying is
    // still useful (arrivals after round f+1 are ignored anyway).
    if (round_no <= f_ && should_relay(instance, m.payload)) {
      bool already_signed = false;
      for (const auto& [signer, sig] : chain) {
        already_signed = already_signed || signer == self_;
      }
      if (!already_signed) {
        SigChain extended = chain;
        extended.emplace_back(
            self_, signer_.sign(
                       ds_wire::chain_digest(instance, m.payload, chain)));
        obs::global().counter("protocols.ds.relays").inc();
        const Message relay = ds_wire::encode(instance, m.payload, extended);
        for (ProcessId r = 0; r < n_; ++r) {
          if (r == self_) continue;
          Message copy = relay;
          out.send(r, std::move(copy));
        }
      }
    }
  }

  if (round_no == f_ + 1) {
    resolved_.clear();
    resolved_.reserve(n_);
    for (ProcessId src = 0; src < n_; ++src) {
      // Unique extracted value -> that value; zero or several -> default.
      if (extracted_[src].size() == 1) {
        resolved_.push_back(*extracted_[src].begin());
      } else {
        resolved_.push_back(default_);
      }
    }
    decision_ = decide_(resolved_);
    decided_ = true;
    obs::Registry& reg = obs::global();
    reg.counter("protocols.ds.decides").inc();
    reg.histogram("protocols.ds.decide_round", obs::count_buckets())
        .observe(static_cast<double>(round_no));
  }
}

const Vec& DolevStrongProcess::decision() const {
  RBVC_REQUIRE(decided_, "decision(): process has not decided yet");
  return decision_;
}

const std::vector<Vec>& DolevStrongProcess::resolved_inputs() const {
  RBVC_REQUIRE(decided_, "resolved_inputs(): process has not decided yet");
  return resolved_;
}

}  // namespace rbvc::protocols
