// Dolev-Strong authenticated Byzantine broadcast (1983) and interactive
// consistency built from n parallel instances.
//
// With signatures, broadcast tolerates ANY number of faults f < n in f+1
// rounds with O(n^2 f) messages -- no 3f+1 floor. This realizes the paper's
// footnote 3: "when the underlying network is a reliable broadcast channel
// ... n does not need to exceed 3f", letting ALGO run with e.g. n = 3,
// f = 1 (impossible in the unauthenticated model, Lemma 10).
//
// Protocol (per source instance): the source signs its value and sends it
// to everyone. A process that, in round r, receives a value carried by a
// chain of exactly r valid signatures from distinct signers starting with
// the source, "extracts" it; if r <= f it appends its own signature and
// relays. After round f+1 a process outputs the unique extracted value, or
// the default when zero or several values were extracted. All correct
// processes provably extract identical sets.
#pragma once

#include <optional>
#include <set>

#include "protocols/om_broadcast.h"  // DecisionFn
#include "sim/signatures.h"

namespace rbvc::protocols {

/// A signature chain: (signer, signature) pairs in signing order.
using SigChain = std::vector<std::pair<ProcessId, sim::Signature>>;

/// Wire helpers (exposed for tests and Byzantine strategies).
namespace ds_wire {
constexpr const char* kKind = "ds";
/// meta = [instance, signer_0, sig0_lo, sig0_hi, signer_1, ...].
Message encode(ProcessId instance, const Vec& value, const SigChain& chain);
/// Parses a ds message; nullopt when structurally malformed.
std::optional<std::pair<ProcessId, SigChain>> decode(const Message& m,
                                                     std::size_t n);
/// Digest the i-th signer of a chain must sign: covers instance, value, and
/// the entire chain prefix.
std::uint64_t chain_digest(ProcessId instance, const Vec& value,
                           const SigChain& prefix);
/// Validates the full chain: distinct signers, first == instance, all
/// signatures verify against the authority.
bool chain_valid(const sim::SignatureAuthority& authority, ProcessId instance,
                 const Vec& value, const SigChain& chain);
}  // namespace ds_wire

/// Correct-process interactive consistency via n parallel Dolev-Strong
/// broadcasts; works for any f < n - 1 (you still need two correct
/// processes for consensus to be meaningful).
class DolevStrongProcess : public sim::SyncProcess {
 public:
  DolevStrongProcess(std::size_t n, std::size_t f, ProcessId self, Vec input,
                     Vec default_value, DecisionFn decide, sim::Signer signer,
                     const sim::SignatureAuthority* authority);

  void round(std::size_t round_no, const std::vector<Message>& inbox,
             Outbox& out) final;
  bool decided() const override { return decided_; }

  const Vec& decision() const;
  const std::vector<Vec>& resolved_inputs() const;
  const Vec& input() const { return input_; }

  /// Test-only fault injection: disables cryptographic chain validation
  /// (structural checks remain). Without validation, a Byzantine relay can
  /// inject a forged chain for another source's instance to a subset of
  /// processes, breaking the identical-extracted-sets lemma -- the planted
  /// bug the property harness must catch. Correct deployments never unset
  /// this.
  void set_validate_chains(bool v) { validate_chains_ = v; }

  static std::size_t rounds_needed(std::size_t f) { return f + 2; }

 protected:
  /// Hook for Byzantine subclasses: the initial (value, chain) messages to
  /// send per recipient. Correct processes sign their input once.
  virtual std::vector<std::pair<ProcessId, Message>> initial_messages();

  /// Hook: whether to relay a newly extracted value (correct: always).
  virtual bool should_relay(ProcessId instance, const Vec& value);

  std::size_t n_;
  std::size_t f_;
  ProcessId self_;
  Vec input_;
  Vec default_;
  sim::Signer signer_;
  const sim::SignatureAuthority* authority_;

 private:
  DecisionFn decide_;
  bool validate_chains_ = true;
  // Per-instance extracted values (std::set for deterministic order).
  std::vector<std::set<Vec>> extracted_;
  std::vector<Vec> resolved_;
  Vec decision_;
  bool decided_ = false;
};

}  // namespace rbvc::protocols
