#include "protocols/om_broadcast.h"

#include <algorithm>

namespace rbvc::protocols {

namespace {
constexpr const char* kEigKind = "eig";

bool path_valid(const std::vector<int>& path, std::size_t n,
                ProcessId source, ProcessId from,
                std::size_t protocol_round) {
  if (path.size() != protocol_round) return false;
  if (path.empty()) return false;
  if (static_cast<std::size_t>(path.front()) != source) return false;
  if (static_cast<std::size_t>(path.back()) != from) return false;
  for (int p : path) {
    if (p < 0 || static_cast<std::size_t>(p) >= n) return false;
  }
  for (std::size_t i = 0; i < path.size(); ++i) {
    for (std::size_t j = i + 1; j < path.size(); ++j) {
      if (path[i] == path[j]) return false;
    }
  }
  return true;
}
}  // namespace

EigInstance::EigInstance(std::size_t n, std::size_t f, ProcessId source,
                         Vec default_value)
    : n_(n), f_(f), source_(source), default_(std::move(default_value)) {}

void EigInstance::absorb(const std::vector<int>& path, const Vec& value,
                         ProcessId from, std::size_t protocol_round) {
  if (!path_valid(path, n_, source_, from, protocol_round)) return;
  if (value.size() != default_.size()) return;  // malformed payload
  vals_.emplace(path, value);  // first write wins; duplicates ignored
}

std::vector<std::pair<std::vector<int>, Vec>> EigInstance::level(
    std::size_t path_len) const {
  std::vector<std::pair<std::vector<int>, Vec>> out;
  for (const auto& [path, v] : vals_) {
    if (path.size() == path_len) out.emplace_back(path, v);
  }
  return out;
}

Vec EigInstance::resolve() const { return resolve_node({static_cast<int>(source_)}); }

Vec EigInstance::resolve_node(const std::vector<int>& path) const {
  if (path.size() == f_ + 1) {  // leaf level
    const auto it = vals_.find(path);
    return it == vals_.end() ? default_ : it->second;
  }
  // Internal node: strict majority over the children's resolutions.
  std::map<Vec, std::size_t> votes;
  std::size_t children = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    if (std::find(path.begin(), path.end(), static_cast<int>(j)) !=
        path.end()) {
      continue;
    }
    std::vector<int> child = path;
    child.push_back(static_cast<int>(j));
    ++children;
    ++votes[resolve_node(child)];
  }
  for (const auto& [v, count] : votes) {
    if (2 * count > children) return v;
  }
  return default_;
}

EigConsensusProcess::EigConsensusProcess(std::size_t n, std::size_t f,
                                         ProcessId self, Vec input,
                                         Vec default_value,
                                         DecisionFn decide)
    : n_(n),
      f_(f),
      self_(self),
      input_(std::move(input)),
      default_(std::move(default_value)),
      decide_(std::move(decide)) {
  RBVC_REQUIRE(n_ >= 3 * f_ + 1, "EIG broadcast requires n >= 3f + 1");
  RBVC_REQUIRE(self_ < n_, "process id out of range");
  instances_.reserve(n_);
  for (ProcessId s = 0; s < n_; ++s) {
    instances_.emplace_back(n_, f_, s, default_);
  }
}

void EigConsensusProcess::round(std::size_t round_no,
                                const std::vector<Message>& inbox,
                                Outbox& out) {
  if (decided_) return;

  // Absorb the protocol-round `round_no` messages delivered this round.
  for (const Message& m : inbox) {
    if (m.kind != kEigKind || m.meta.empty()) continue;
    const int src = m.meta.front();
    if (src < 0 || static_cast<std::size_t>(src) >= n_) continue;
    const std::vector<int> path(m.meta.begin() + 1, m.meta.end());
    instances_[static_cast<std::size_t>(src)].absorb(path, m.payload, m.from,
                                                     round_no);
  }

  if (round_no == 0) {
    // Protocol round 1: act as the source of our own instance.
    // Our own value is recorded directly (we trivially trust ourselves).
    for (ProcessId r = 0; r < n_; ++r) {
      const Vec v = initial_value_for(r);
      if (r == self_) {
        instances_[self_].absorb({static_cast<int>(self_)}, input_, self_, 1);
        continue;
      }
      Message m;
      m.kind = kEigKind;
      m.meta = {static_cast<int>(self_), static_cast<int>(self_)};
      m.payload = v;
      out.send(r, std::move(m));
    }
    return;
  }

  if (round_no <= f_) {
    // Protocol round round_no+1: relay every level-round_no node we hold in
    // every instance, skipping paths that already contain us.
    for (const EigInstance& inst : instances_) {
      for (const auto& [path, v] : inst.level(round_no)) {
        if (std::find(path.begin(), path.end(), static_cast<int>(self_)) !=
            path.end()) {
          continue;
        }
        for (ProcessId r = 0; r < n_; ++r) {
          std::optional<Vec> to_send =
              relay_value_for(inst.source(), path, v, r);
          if (!to_send) continue;
          if (r == self_) {
            std::vector<int> extended = path;
            extended.push_back(static_cast<int>(self_));
            instances_[inst.source()].absorb(extended, *to_send, self_,
                                             round_no + 1);
            continue;
          }
          Message m;
          m.kind = kEigKind;
          m.meta.reserve(path.size() + 2);
          m.meta.push_back(static_cast<int>(inst.source()));
          m.meta.insert(m.meta.end(), path.begin(), path.end());
          m.meta.push_back(static_cast<int>(self_));
          m.payload = std::move(*to_send);
          out.send(r, std::move(m));
        }
      }
    }
    return;
  }

  // round_no == f_ + 1: all protocol rounds delivered; resolve and decide.
  resolved_.clear();
  resolved_.reserve(n_);
  for (const EigInstance& inst : instances_) {
    resolved_.push_back(inst.resolve());
  }
  decision_ = decide_(resolved_);
  decided_ = true;
}

const Vec& EigConsensusProcess::decision() const {
  RBVC_REQUIRE(decided_, "decision(): process has not decided yet");
  return decision_;
}

const std::vector<Vec>& EigConsensusProcess::resolved_inputs() const {
  RBVC_REQUIRE(decided_, "resolved_inputs(): process has not decided yet");
  return resolved_;
}

Vec EigConsensusProcess::initial_value_for(ProcessId) { return input_; }

std::optional<Vec> EigConsensusProcess::relay_value_for(
    ProcessId, const std::vector<int>&, const Vec& honest, ProcessId) {
  return honest;
}

}  // namespace rbvc::protocols
