// Synchronous Byzantine broadcast via Exponential Information Gathering
// (the message pattern of Lamport-Shostak-Pease OM(f)), and interactive
// consistency built from n parallel instances.
//
// ALGO Step 1 (paper Sec. 9) is exactly interactive consistency: every
// process Byzantine-broadcasts its input vector, after which all correct
// processes hold the *identical* multiset S = {a_1, ..., a_n} with a_i the
// true input for every correct i. Requires n >= 3f + 1 and f + 2 rounds.
//
// Byzantine processes are modeled as subclasses overriding the send hooks
// (send different initial values per recipient, lie while relaying, or stay
// silent); the EIG resolution at correct processes tolerates all of it.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "sim/sync_engine.h"

namespace rbvc::protocols {

using sim::Message;
using sim::Outbox;
using sim::ProcessId;

/// Receiver-side state of one EIG broadcast instance (one source).
/// Stores values keyed by relay path and resolves the tree by recursive
/// strict-majority with a default for missing/tied nodes.
class EigInstance {
 public:
  EigInstance(std::size_t n, std::size_t f, ProcessId source,
              Vec default_value);

  /// Validates and stores a received relay. `protocol_round` is 1-based;
  /// the path must have that length, start at the source, end at `from`,
  /// and contain no repeats. Invalid or duplicate messages are ignored.
  void absorb(const std::vector<int>& path, const Vec& value, ProcessId from,
              std::size_t protocol_round);

  /// The stored values of the given level (paths of this length), for
  /// relaying in the next round.
  std::vector<std::pair<std::vector<int>, Vec>> level(
      std::size_t path_len) const;

  /// Recursive majority resolution of the root (call after round f+1).
  Vec resolve() const;

  ProcessId source() const { return source_; }

 private:
  Vec resolve_node(const std::vector<int>& path) const;

  std::size_t n_;
  std::size_t f_;
  ProcessId source_;
  Vec default_;
  std::map<std::vector<int>, Vec> vals_;
};

/// Deterministic function from the agreed multiset S (indexed by process id)
/// to the decision vector. This is where ALGO / exact BVC / k-relaxed BVC
/// plug in their geometry.
using DecisionFn = std::function<Vec(const std::vector<Vec>&)>;

/// Correct-process implementation of interactive consistency + decision.
/// Runs n parallel EIG instances (one per source) over f+2 engine rounds.
class EigConsensusProcess : public sim::SyncProcess {
 public:
  EigConsensusProcess(std::size_t n, std::size_t f, ProcessId self, Vec input,
                      Vec default_value, DecisionFn decide);

  void round(std::size_t round_no, const std::vector<Message>& inbox,
             Outbox& out) final;
  bool decided() const override { return decided_; }

  const Vec& decision() const;
  /// The agreed multiset (identical at every correct process).
  const std::vector<Vec>& resolved_inputs() const;
  const Vec& input() const { return input_; }
  ProcessId id() const { return self_; }

  static std::size_t rounds_needed(std::size_t f) { return f + 2; }

 protected:
  /// Hook: the initial value this process claims to `recipient` (round 0 of
  /// its own instance). Correct processes return input() for everyone.
  virtual Vec initial_value_for(ProcessId recipient);

  /// Hook: the value this process relays to `recipient` for tree node
  /// `path` of instance `source`. Correct processes relay honestly.
  virtual std::optional<Vec> relay_value_for(ProcessId source,
                                             const std::vector<int>& path,
                                             const Vec& honest,
                                             ProcessId recipient);

  std::size_t n_;
  std::size_t f_;
  ProcessId self_;
  Vec input_;
  Vec default_;

 private:
  DecisionFn decide_;
  std::vector<EigInstance> instances_;
  std::vector<Vec> resolved_;
  Vec decision_;
  bool decided_ = false;
};

}  // namespace rbvc::protocols
