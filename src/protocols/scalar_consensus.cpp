#include "protocols/scalar_consensus.h"

#include <algorithm>

#include "rbvc/common.h"

namespace rbvc::protocols {

double median(std::vector<double> values) {
  RBVC_REQUIRE(!values.empty(), "median: empty input");
  const std::size_t mid = (values.size() - 1) / 2;  // lower median
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

double trimmed_mean(std::vector<double> values, std::size_t f) {
  RBVC_REQUIRE(values.size() > 2 * f, "trimmed_mean: need |values| > 2f");
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (std::size_t i = f; i < values.size() - f; ++i) sum += values[i];
  return sum / static_cast<double>(values.size() - 2 * f);
}

Vec coordinatewise_median(const std::vector<Vec>& s) {
  RBVC_REQUIRE(!s.empty(), "coordinatewise_median: empty multiset");
  const std::size_t d = s.front().size();
  Vec out(d);
  std::vector<double> column(s.size());
  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t i = 0; i < s.size(); ++i) column[i] = s[i][c];
    out[c] = median(column);
  }
  return out;
}

Vec coordinatewise_trimmed_mean(const std::vector<Vec>& s, std::size_t f) {
  RBVC_REQUIRE(!s.empty(), "coordinatewise_trimmed_mean: empty multiset");
  const std::size_t d = s.front().size();
  Vec out(d);
  std::vector<double> column(s.size());
  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t i = 0; i < s.size(); ++i) column[i] = s[i][c];
    out[c] = trimmed_mean(column, f);
  }
  return out;
}

}  // namespace rbvc::protocols
