// Scalar Byzantine consensus decision rules (paper Sec. 5.3, k = 1 case).
//
// After interactive consistency every correct process holds the identical
// multiset S of n values with at most f forged entries. Any deterministic
// selection applied to S yields agreement; the rules here additionally give
// validity for scalar (per-coordinate) inputs:
//   * median: with n >= 2f+1 the median of S lies within the range of the
//     correct values -- f outliers cannot drag it outside. Applied per
//     coordinate this solves 1-relaxed exact BVC with n >= 3f+1 (the 3f+1
//     floor coming from the broadcast itself).
//   * f-trimmed mean: drop the f lowest and f highest, average the rest.
#pragma once

#include <vector>

#include "linalg/vec.h"

namespace rbvc::protocols {

/// Lower median of the values (deterministic; values are copied and sorted).
double median(std::vector<double> values);

/// Mean after removing the f smallest and f largest values.
/// Requires values.size() > 2f.
double trimmed_mean(std::vector<double> values, std::size_t f);

/// Per-coordinate median of a multiset of equal-dimension vectors.
Vec coordinatewise_median(const std::vector<Vec>& s);

/// Per-coordinate f-trimmed mean.
Vec coordinatewise_trimmed_mean(const std::vector<Vec>& s, std::size_t f);

}  // namespace rbvc::protocols
