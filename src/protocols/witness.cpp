#include "protocols/witness.h"

#include <algorithm>

namespace rbvc::protocols {

WitnessExchange::WitnessExchange(std::size_t n, std::size_t f,
                                 sim::ProcessId self)
    : n_(n), f_(f), self_(self) {}

void WitnessExchange::send_report(int round,
                                  const std::set<sim::ProcessId>& collected,
                                  sim::Outbox& out) {
  sim::Message m;
  m.kind = kKind;
  m.meta.push_back(round);
  for (sim::ProcessId id : collected) {
    m.meta.push_back(static_cast<int>(id));
  }
  for (sim::ProcessId p = 0; p < n_; ++p) {
    sim::Message copy = m;
    out.send(p, std::move(copy));
  }
  // Record our own report locally as well.
  reports_[round][self_] = collected;
}

void WitnessExchange::on_message(const sim::Message& m) {
  if (!is_witness(m) || m.meta.empty()) return;
  const int round = m.meta.front();
  std::set<sim::ProcessId> ids;
  for (std::size_t i = 1; i < m.meta.size(); ++i) {
    const int id = m.meta[i];
    if (id < 0 || static_cast<std::size_t>(id) >= n_) return;  // malformed
    ids.insert(static_cast<sim::ProcessId>(id));
  }
  // A meaningful report names at least n-f sources; Byzantine senders may
  // send fewer (which only makes them easier witnesses, harmless) -- but we
  // require the minimum so a trivial empty report cannot count.
  if (ids.size() < n_ - f_) return;
  auto& per_round = reports_[round];
  per_round.emplace(m.from, std::move(ids));  // first report wins
}

bool WitnessExchange::ready(int round,
                            const std::set<sim::ProcessId>& collected) const {
  const auto it = reports_.find(round);
  if (it == reports_.end()) return false;
  std::size_t witnesses = 0;
  for (const auto& [sender, ids] : it->second) {
    if (std::includes(collected.begin(), collected.end(), ids.begin(),
                      ids.end())) {
      ++witnesses;
    }
  }
  return witnesses >= n_ - f_;
}

}  // namespace rbvc::protocols
