// Witness exchange (the "common core" technique of Abraham-Amit-Dolev and
// Mendes-Herlihy): after collecting n-f reliably-broadcast values in a
// round, each process broadcasts the id set it collected (its report) and
// waits until n-f processes' reports are entirely contained in its own
// collection. Any two correct processes then have at least n-2f >= f+1
// common witnesses, hence at least one *correct* common witness, hence at
// least n-f common values -- the overlap property the convergence proof of
// Relaxed Verified Averaging (paper Thm 15) needs.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "sim/async_engine.h"

namespace rbvc::protocols {

class WitnessExchange {
 public:
  WitnessExchange(std::size_t n, std::size_t f, sim::ProcessId self);

  /// Broadcasts this process's report for `round`: the sources whose
  /// round-`round` values it has collected so far.
  void send_report(int round, const std::set<sim::ProcessId>& collected,
                   sim::Outbox& out);

  /// Feeds a witness message (others ignored).
  void on_message(const sim::Message& m);

  /// Re-evaluates which witnesses are satisfied given the (grown) collected
  /// set, and returns true once n-f witnesses' reports are subsets of it.
  bool ready(int round, const std::set<sim::ProcessId>& collected) const;

  static bool is_witness(const sim::Message& m) { return m.kind == kKind; }

 private:
  static constexpr const char* kKind = "witness";

  std::size_t n_, f_;
  sim::ProcessId self_;
  // reports_[round][sender] = id set the sender claims to have collected.
  std::map<int, std::map<sim::ProcessId, std::set<sim::ProcessId>>> reports_;
};

}  // namespace rbvc::protocols
