// Common definitions shared by every rbvc subsystem: numeric tolerances,
// assertion macro, and small utility helpers.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace rbvc {

/// Default absolute tolerance for geometric predicates (membership,
/// feasibility, distances). Callers may override per call.
inline constexpr double kTol = 1e-9;

/// Looser tolerance for iterative numerical results (subgradient minimax,
/// cyclic projections) whose accuracy is limited by iteration budget.
inline constexpr double kLooseTol = 1e-6;

/// Value representing the L-infinity norm when a norm order parameter `p`
/// is expected. Any p >= kInfNorm is treated as infinity.
inline constexpr double kInfNorm = std::numeric_limits<double>::infinity();

/// Thrown on dimension mismatches and contract violations in public APIs.
class invalid_argument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a numerical routine fails to converge or a solver detects
/// an internally inconsistent state.
class numerical_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw invalid_argument(std::string(file) + ":" + std::to_string(line) +
                         ": requirement `" + cond + "` failed: " + msg);
}
}  // namespace detail

/// Precondition check used in public API entry points. Always active:
/// geometry bugs silently corrupt consensus results, so we fail loudly.
#define RBVC_REQUIRE(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::rbvc::detail::require_failed(#cond, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (0)

}  // namespace rbvc
