// Umbrella header: the full public API of the rbvc library.
//
//   #include "rbvc/rbvc.h"
//
// pulls in the geometry stack (hulls, distances, delta*), both simulation
// engines, the protocols, every consensus algorithm, and the workload /
// experiment-runner utilities. Fine-grained headers remain available for
// faster builds.
#pragma once

#include "rbvc/common.h"

#include "exec/parallel_executor.h"
#include "obs/metrics.h"

#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/vec.h"

#include "lp/model.h"
#include "lp/simplex.h"

#include "geometry/caratheodory.h"
#include "geometry/distance.h"
#include "geometry/hull.h"
#include "geometry/poly2d.h"
#include "geometry/projection.h"
#include "geometry/simplex_geometry.h"
#include "geometry/tverberg.h"

#include "opt/minimax.h"
#include "opt/pocs.h"

#include "hull/delta_star.h"
#include "hull/gamma.h"
#include "hull/psi.h"
#include "hull/relaxed_hull.h"

#include "sim/async_engine.h"
#include "sim/message.h"
#include "sim/rng.h"
#include "sim/schedule_log.h"
#include "sim/signatures.h"
#include "sim/sync_engine.h"
#include "sim/trace.h"

#include "net/local_bus.h"
#include "net/mailbox.h"
#include "net/node.h"
#include "net/sim_transport.h"
#include "net/sync_driver.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "net/wire.h"

#include "mc/choices.h"
#include "mc/explorer.h"

#include "protocols/bracha_rbc.h"
#include "protocols/dolev_strong.h"
#include "protocols/om_broadcast.h"
#include "protocols/scalar_consensus.h"
#include "protocols/witness.h"

#include "consensus/algo_relaxed.h"
#include "consensus/async_averaging.h"
#include "consensus/exact_bvc.h"
#include "consensus/hull_consensus.h"
#include "consensus/iterative_bvc.h"
#include "consensus/k_relaxed.h"
#include "consensus/verifier.h"

#include "workload/adversarial_inputs.h"
#include "workload/byzantine_strategies.h"
#include "workload/generators.h"
#include "workload/runner.h"

#include "harness/exhaustive.h"
#include "harness/property.h"
#include "harness/repro.h"
#include "harness/shrinker.h"
