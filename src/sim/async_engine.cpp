#include "sim/async_engine.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "sim/schedule_log.h"

namespace rbvc::sim {

std::size_t RandomScheduler::pick(const std::vector<Message>& pending) {
  return rng_.below(pending.size());
}

LaggardScheduler::LaggardScheduler(std::uint64_t seed,
                                   std::vector<ProcessId> laggards,
                                   double leak_probability)
    : rng_(seed), laggards_(std::move(laggards)), leak_(leak_probability) {}

bool LaggardScheduler::lagged(const Message& m) const {
  return std::find(laggards_.begin(), laggards_.end(), m.from) !=
             laggards_.end() ||
         std::find(laggards_.begin(), laggards_.end(), m.to) !=
             laggards_.end();
}

std::size_t LaggardScheduler::pick(const std::vector<Message>& pending) {
  if (rng_.next_double() >= leak_) {
    // Prefer a random fast-path message when one exists.
    std::vector<std::size_t> fast;
    fast.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (!lagged(pending[i])) fast.push_back(i);
    }
    if (!fast.empty()) return fast[rng_.below(fast.size())];
  }
  return rng_.below(pending.size());
}

namespace {

class PoolOutbox final : public Outbox {
 public:
  PoolOutbox(ProcessId self, std::size_t n, std::vector<Message>& pool,
             Trace& trace, std::size_t time, std::size_t& counter,
             std::map<std::string, std::uint64_t>& kind_counts)
      : self_(self),
        n_(n),
        pool_(pool),
        trace_(trace),
        time_(time),
        counter_(counter),
        kind_counts_(kind_counts) {}

  void send(ProcessId to, Message m) override {
    RBVC_REQUIRE(to < n_, "send: unknown recipient");
    m.from = self_;
    m.to = to;
    trace_.record(EventType::kSend, time_, self_, describe(m));
    ++kind_counts_[m.kind];
    pool_.push_back(std::move(m));
    ++counter_;
  }

 private:
  ProcessId self_;
  std::size_t n_;
  std::vector<Message>& pool_;
  Trace& trace_;
  std::size_t time_;
  std::size_t& counter_;
  std::map<std::string, std::uint64_t>& kind_counts_;
};

}  // namespace

ProcessId AsyncEngine::add(std::unique_ptr<AsyncProcess> p) {
  procs_.push_back(std::move(p));
  return procs_.size() - 1;
}

AsyncRunStats AsyncEngine::run(const std::vector<ProcessId>& wait_for,
                               std::size_t max_events) {
  const std::size_t n = procs_.size();
  AsyncRunStats stats;
  std::vector<Message> pending;
  std::map<std::string, std::uint64_t> kind_counts;
  obs::Registry& reg = obs::global();
  obs::Histogram& queue_depth =
      reg.histogram("sim.async.queue_depth", obs::count_buckets());

  for (ProcessId id = 0; id < n; ++id) {
    PoolOutbox out(id, n, pending, trace_, 0, stats.sends, kind_counts);
    procs_[id]->init(out);
  }

  auto all_done = [&]() {
    for (ProcessId id : wait_for) {
      if (!procs_.at(id)->decided()) return false;
    }
    return true;
  };

  while (stats.deliveries < max_events && !pending.empty() && !all_done()) {
    queue_depth.observe(static_cast<double>(pending.size()));
    const std::size_t idx = sched_->pick(pending);
    RBVC_REQUIRE(idx < pending.size(), "scheduler picked out of range");
    if (slog_) slog_->add_pick(idx);
    const Message m = pending[idx];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(idx));
    ++stats.deliveries;
    trace_.record(EventType::kDeliver, stats.deliveries, m.to, describe(m));
    PoolOutbox out(m.to, n, pending, trace_, stats.deliveries, stats.sends,
                   kind_counts);
    procs_[m.to]->on_message(m, out);
  }
  stats.all_decided = all_done();

  reg.counter("sim.async.runs").inc();
  reg.counter("sim.async.messages_sent").inc(stats.sends);
  reg.counter("sim.async.messages_delivered").inc(stats.deliveries);
  reg.counter("sim.async.messages_undelivered").inc(pending.size());
  reg.counter("sim.async.scheduler_picks").inc(stats.deliveries);
  for (const auto& [kind, count] : kind_counts) {
    reg.counter("sim.async.sent." + obs::sanitize_label(kind)).inc(count);
  }
  return stats;
}

}  // namespace rbvc::sim
