// Asynchronous event-driven engine (the paper's asynchronous system model):
// messages are delivered one at a time, in an order chosen by an adversarial
// but fair scheduler. Channels are reliable -- every sent message is
// eventually delivered -- which is exactly what Bracha-style reliable
// broadcast assumes.
#pragma once

#include <memory>
#include <vector>

#include "sim/message.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace rbvc::sim {

class AsyncProcess {
 public:
  virtual ~AsyncProcess() = default;
  virtual void init(Outbox& out) = 0;
  virtual void on_message(const Message& m, Outbox& out) = 0;
  virtual bool decided() const = 0;
};

class ScheduleLog;

/// Chooses which pending message to deliver next. Implementations must be
/// fair (never starve a message forever) for liveness results to hold;
/// tests/scheduler_fairness_test.cpp guards this for the built-in
/// schedulers.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::size_t pick(const std::vector<Message>& pending) = 0;
};

/// Uniformly random (seeded) delivery order: fair with probability 1.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::size_t pick(const std::vector<Message>& pending) override;

 private:
  Rng rng_;
};

/// Adversarial "laggard" schedule: messages to or from the designated slow
/// processes are delivered only when nothing else is pending (or with small
/// probability), modelling f slow-but-correct processes that asynchronous
/// algorithms must not wait for.
class LaggardScheduler final : public Scheduler {
 public:
  LaggardScheduler(std::uint64_t seed, std::vector<ProcessId> laggards,
                   double leak_probability = 0.02);
  std::size_t pick(const std::vector<Message>& pending) override;

 private:
  bool lagged(const Message& m) const;
  Rng rng_;
  std::vector<ProcessId> laggards_;
  double leak_;
};

struct AsyncRunStats {
  std::size_t deliveries = 0;
  std::size_t sends = 0;
  bool all_decided = false;
};

class AsyncEngine {
 public:
  explicit AsyncEngine(std::unique_ptr<Scheduler> sched)
      : sched_(std::move(sched)) {}

  ProcessId add(std::unique_ptr<AsyncProcess> p);
  std::size_t size() const { return procs_.size(); }
  AsyncProcess& process(ProcessId id) { return *procs_.at(id); }
  Trace& trace() { return trace_; }

  /// When set, every scheduler decision is appended to `log` as it is made
  /// (see sim/schedule_log.h); replaying the log reproduces the run.
  void set_schedule_log(ScheduleLog* log) { slog_ = log; }

  /// Delivers messages until every process in `wait_for` has decided, the
  /// pending pool drains, or `max_events` deliveries happen.
  AsyncRunStats run(const std::vector<ProcessId>& wait_for,
                    std::size_t max_events);

 private:
  std::unique_ptr<Scheduler> sched_;
  std::vector<std::unique_ptr<AsyncProcess>> procs_;
  Trace trace_;
  ScheduleLog* slog_ = nullptr;
};

}  // namespace rbvc::sim
