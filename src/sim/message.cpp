#include "sim/message.h"

namespace rbvc::sim {

std::string describe(const Message& m) {
  std::string s = m.kind + " " + std::to_string(m.from) + "->" +
                  std::to_string(m.to) + " meta=[";
  for (std::size_t i = 0; i < m.meta.size(); ++i) {
    s += std::to_string(m.meta[i]);
    if (i + 1 < m.meta.size()) s += ",";
  }
  s += "] payload=" + to_string(m.payload);
  return s;
}

}  // namespace rbvc::sim
