// Message fabric shared by the simulation engines and the networked
// transports (net/transport.h).
//
// Payloads are deliberately schema-light: a protocol tag, a small vector of
// integers (instance ids, EIG paths, round numbers, ...) and a numeric
// vector. This keeps the engines protocol-agnostic while letting Byzantine
// strategies forge arbitrary messages.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "linalg/vec.h"

namespace rbvc::sim {

using ProcessId = std::size_t;

/// One point-to-point message. Field semantics (and the canonical
/// serialization order of the wire codec, net/wire.h) are:
///   from    -- sender id, stamped by the channel (never by the sender:
///              channels are authenticated point-to-point).
///   to      -- recipient id, stamped by the channel from the send() call.
///   kind    -- protocol-defined discriminator ("rbc", "witness", "ds",
///              ...); routing keys on it, protocols ignore foreign kinds.
///   meta    -- protocol-defined integer metadata (source ids, instance
///              numbers, phases, EIG paths, signature chains, ...).
///   payload -- the numeric payload, usually a d-dimensional input vector.
/// `kind`, `meta`, `payload` together are the message *content*; `from` and
/// `to` are routing. MessageContentLess and same_content() compare content
/// only, in exactly the codec's canonical field order.
struct Message {
  ProcessId from = 0;
  ProcessId to = 0;
  std::string kind;
  std::vector<int> meta;
  Vec payload;

  Message() = default;

  /// Content constructor: routing fields are stamped by the channel on
  /// send, so callers build messages from content alone. Explicit because
  /// a bare string is not a message.
  explicit Message(std::string kind_, std::vector<int> meta_ = {},
                   Vec payload_ = {})
      : kind(std::move(kind_)),
        meta(std::move(meta_)),
        payload(std::move(payload_)) {}

  bool same_content(const Message& o) const {
    return kind == o.kind && meta == o.meta && payload == o.payload;
  }

  bool operator==(const Message& o) const {
    return from == o.from && to == o.to && same_content(o);
  }
};

/// Send-side half of a message channel, handed to processes by the sim
/// engines and implemented by every net::Transport. `self` is stamped as
/// sender; a Byzantine process may stamp content however it likes but
/// cannot spoof the `from` field (the network is authenticated
/// point-to-point, as the paper assumes reliable channels between every
/// pair of processes).
class Outbox {
 public:
  virtual ~Outbox() = default;
  virtual void send(ProcessId to, Message m) = 0;
  void broadcast(std::size_t n, const Message& m) {
    for (ProcessId p = 0; p < n; ++p) {
      send(p, m);
    }
  }
};

/// Deterministic content ordering, used for canonical multiset keys
/// (e.g. exact-equality majority voting over vector values). Compares the
/// content fields in the wire codec's canonical order -- kind, meta,
/// payload -- and ignores the routing fields, so two messages are
/// equivalent here iff their encoded content bytes are equal
/// (wire_codec_test pins this correspondence).
struct MessageContentLess {
  bool operator()(const Message& a, const Message& b) const {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.meta != b.meta) return a.meta < b.meta;
    return a.payload < b.payload;
  }
};

std::string describe(const Message& m);

}  // namespace rbvc::sim
