// Message fabric shared by the synchronous and asynchronous engines.
//
// Payloads are deliberately schema-light: a protocol tag, a small vector of
// integers (instance ids, EIG paths, round numbers, ...) and a numeric
// vector. This keeps the engines protocol-agnostic while letting Byzantine
// strategies forge arbitrary messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/vec.h"

namespace rbvc::sim {

using ProcessId = std::size_t;

struct Message {
  ProcessId from = 0;
  ProcessId to = 0;
  std::string kind;        // protocol-defined discriminator
  std::vector<int> meta;   // protocol-defined metadata
  Vec payload;             // numeric payload (often a d-dimensional input)

  bool same_content(const Message& o) const {
    return kind == o.kind && meta == o.meta && payload == o.payload;
  }
};

/// Send-side interface handed to processes. `self` is stamped as sender; a
/// Byzantine process may stamp content however it likes but cannot spoof the
/// `from` field (the network is authenticated point-to-point, as the paper
/// assumes reliable channels between every pair).
class Outbox {
 public:
  virtual ~Outbox() = default;
  virtual void send(ProcessId to, Message m) = 0;
  void broadcast(std::size_t n, const Message& m) {
    for (ProcessId p = 0; p < n; ++p) {
      send(p, m);
    }
  }
};

/// Deterministic content ordering, used for canonical multiset keys
/// (e.g. exact-equality majority voting over vector values).
struct MessageContentLess {
  bool operator()(const Message& a, const Message& b) const {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.meta != b.meta) return a.meta < b.meta;
    return a.payload < b.payload;
  }
};

std::string describe(const Message& m);

}  // namespace rbvc::sim
