#include "sim/rng.h"

#include <cmath>

namespace rbvc {

double Rng::normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Vec Rng::normal_vec(std::size_t d) {
  Vec v(d);
  for (double& x : v) x = normal();
  return v;
}

Vec Rng::uniform_vec(std::size_t d, double lo, double hi) {
  Vec v(d);
  for (double& x : v) x = uniform(lo, hi);
  return v;
}

std::uint64_t seed_sequence(std::uint64_t base, std::uint64_t idx) {
  // base + (idx+1)*phi64: distinct SplitMix64 entry points per episode.
  // Rng's constructor and step mix the state, so consecutive episode seeds
  // do not yield correlated streams despite the linear stride.
  return base + 0x9E3779B97F4A7C15ULL * (idx + 1);
}

}  // namespace rbvc
