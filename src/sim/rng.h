// Deterministic, splittable pseudo-randomness for reproducible simulations.
// Every experiment takes an explicit seed; identical seeds replay identical
// executions (schedulers included), which the property tests rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/vec.h"

namespace rbvc {

/// SplitMix64-based generator: tiny state, good quality for simulation use,
/// and cheap to fork into independent streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ULL) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be positive.
  std::size_t below(std::size_t n) {
    return static_cast<std::size_t>(next_u64() % n);
  }

  /// Standard normal via Box-Muller.
  double normal();

  /// Independent child stream (deterministic function of current state).
  Rng fork() { return Rng(next_u64()); }

  /// Random vector with iid N(0,1) entries.
  Vec normal_vec(std::size_t d);

  /// Random vector uniform in the cube [lo, hi]^d.
  Vec uniform_vec(std::size_t d, double lo, double hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  std::uint64_t state_;
};

/// Seed of episode `idx`'s independent RNG stream: a pure function of
/// (base, idx), so episodes can run in any order -- or concurrently on the
/// parallel executor -- with no shared generator state, and a failing
/// episode index reproduces in isolation. This is the golden-ratio stride
/// the property harness has always used; it is now the single definition
/// every episode loop must share, because the RBVC_JOBS determinism
/// contract (docs/HARNESS.md) holds exactly when serial and parallel runs
/// derive identical per-episode seeds.
std::uint64_t seed_sequence(std::uint64_t base, std::uint64_t idx);

}  // namespace rbvc
