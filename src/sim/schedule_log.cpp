#include "sim/schedule_log.h"

#include <algorithm>

namespace rbvc::sim {

void ScheduleLog::add_pick(std::size_t index) {
  entries_.push_back({ScheduleEntryKind::kPick, index});
}

void ScheduleLog::add_round(std::size_t messages) {
  entries_.push_back({ScheduleEntryKind::kRound, messages});
}

void ScheduleLog::add_choice(std::size_t option) {
  entries_.push_back({ScheduleEntryKind::kChoice, option});
}

std::size_t ScheduleLog::pick_count() const {
  std::size_t n = 0;
  for (const ScheduleEntry& e : entries_) {
    if (e.kind == ScheduleEntryKind::kPick) ++n;
  }
  return n;
}

std::size_t ScheduleLog::choice_count() const {
  std::size_t n = 0;
  for (const ScheduleEntry& e : entries_) {
    if (e.kind == ScheduleEntryKind::kChoice) ++n;
  }
  return n;
}

void ScheduleLog::erase_range(std::size_t first, std::size_t count) {
  RBVC_REQUIRE(first <= entries_.size(), "erase_range: first out of range");
  const std::size_t last = std::min(first + count, entries_.size());
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(first),
                 entries_.begin() + static_cast<std::ptrdiff_t>(last));
}

void ScheduleLog::set_value(std::size_t i, std::uint64_t value) {
  RBVC_REQUIRE(i < entries_.size(), "set_value: index out of range");
  entries_[i].value = value;
}

namespace {
char entry_tag(ScheduleEntryKind kind) {
  switch (kind) {
    case ScheduleEntryKind::kPick:
      return 'p';
    case ScheduleEntryKind::kRound:
      return 'r';
    case ScheduleEntryKind::kChoice:
      return 'c';
  }
  return '?';
}
}  // namespace

std::string ScheduleLog::serialize() const {
  std::string out;
  for (const ScheduleEntry& e : entries_) {
    if (!out.empty()) out += ' ';
    out += entry_tag(e.kind);
    out += std::to_string(e.value);
  }
  return out;
}

ScheduleLog ScheduleLog::parse(const std::string& text) {
  ScheduleLog log;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == ' ' || text[i] == '\t' || text[i] == '\n') {
      ++i;
      continue;
    }
    const char tag = text[i++];
    RBVC_REQUIRE(tag == 'p' || tag == 'r' || tag == 'c',
                 "ScheduleLog::parse: unknown entry tag");
    std::uint64_t value = 0;
    bool any = false;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
      any = true;
      ++i;
    }
    RBVC_REQUIRE(any, "ScheduleLog::parse: entry tag without a value");
    const ScheduleEntryKind kind = tag == 'p'   ? ScheduleEntryKind::kPick
                                   : tag == 'c' ? ScheduleEntryKind::kChoice
                                                : ScheduleEntryKind::kRound;
    log.entries_.push_back({kind, value});
  }
  return log;
}

std::string describe_divergence(const ScheduleLog& expected,
                                const ScheduleLog& actual) {
  auto token = [](const ScheduleEntry& e) {
    return std::string(1, entry_tag(e.kind)) + std::to_string(e.value);
  };
  const std::size_t common = std::min(expected.size(), actual.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (expected.entries()[i] == actual.entries()[i]) continue;
    return "schedule divergence at entry " + std::to_string(i) +
           ": expected " + token(expected.entries()[i]) + ", re-run produced " +
           token(actual.entries()[i]);
  }
  if (expected.size() != actual.size()) {
    return "schedule divergence: recorded " + std::to_string(expected.size()) +
           " entries, re-run produced " + std::to_string(actual.size());
  }
  return "";
}

std::size_t ReplayScheduler::pick(const std::vector<Message>& pending) {
  RBVC_REQUIRE(!pending.empty(), "ReplayScheduler: nothing pending");
  while (next_ < log_.size() &&
         log_.entries()[next_].kind != ScheduleEntryKind::kPick) {
    ++next_;
  }
  if (next_ >= log_.size()) return 0;  // exhausted: FIFO is fair
  const std::uint64_t raw = log_.entries()[next_++].value;
  return static_cast<std::size_t>(raw % pending.size());
}

}  // namespace rbvc::sim
