// Schedule recording and replay: the complete nondeterminism record of an
// engine run. For the async engine every scheduler decision (the index of
// the pending message delivered) is logged; for the sync engine the
// per-round message counts are logged as divergence checkpoints. Explicit
// adversary decisions (choice-driven Byzantine strategies, see
// mc/choices.h) are logged as a third entry kind. All other randomness
// (input generators, seeded strategies) derives from the experiment seed,
// so (config, ScheduleLog) reproduces a run byte-for-byte.
//
// Replay consumes each entry kind through an independent cursor
// (ReplayScheduler pops kPick entries, mc::ChoiceReplayer pops kChoice
// entries), so the interleaving of kinds in the log never matters -- only
// the order within each kind's subsequence.
//
// The serialized form is a single line of whitespace-separated tokens
// ("p3 p0 p7 ..." for picks, "c1" for adversary choices, "r12" for round
// checkpoints), compact enough to embed in repro files and stable enough
// to diff.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/async_engine.h"

namespace rbvc::sim {

enum class ScheduleEntryKind { kPick, kRound, kChoice };

struct ScheduleEntry {
  ScheduleEntryKind kind = ScheduleEntryKind::kPick;
  std::uint64_t value = 0;

  bool operator==(const ScheduleEntry&) const = default;
};

class ScheduleLog {
 public:
  /// Async engine: index of the pending message the scheduler delivered.
  void add_pick(std::size_t index);
  /// Sync engine: number of messages sent in a completed round.
  void add_round(std::size_t messages);
  /// Adversary decision: the option index a Byzantine strategy took
  /// (mc/choices.h).
  void add_choice(std::size_t option);

  const std::vector<ScheduleEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t pick_count() const;
  std::size_t choice_count() const;
  void clear() { entries_.clear(); }

  // Mutation surface for the shrinker.
  void erase_range(std::size_t first, std::size_t count);
  void set_value(std::size_t i, std::uint64_t value);

  /// One line of tokens: "p<idx>" per pick, "c<opt>" per choice, "r<count>"
  /// per round.
  std::string serialize() const;
  /// Inverse of serialize(). Throws invalid_argument on malformed input.
  static ScheduleLog parse(const std::string& text);

  bool operator==(const ScheduleLog&) const = default;

 private:
  std::vector<ScheduleEntry> entries_;
};

/// Compares a recorded schedule against a re-recorded one and describes the
/// first point of divergence ("" when identical). Sync and Dolev-Strong
/// repro files use this as their replay check: those runs are deterministic
/// given the config, so any mismatch between the stored round checkpoints
/// and a re-run means the repro no longer reproduces the original execution
/// (stale file, edited log, or changed code) and must be reported rather
/// than silently ignored.
std::string describe_divergence(const ScheduleLog& expected,
                                const ScheduleLog& actual);

/// Replays a recorded schedule: each pick() pops the next kPick entry.
/// Shrunk or hand-edited logs stay valid: an out-of-range index wraps
/// (value % pending), and an exhausted log falls back to FIFO delivery
/// (index 0), which is fair, so replay always terminates like a live run.
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(ScheduleLog log) : log_(std::move(log)) {}

  std::size_t pick(const std::vector<Message>& pending) override;

  /// Entries consumed so far (for diagnosing divergent replays).
  std::size_t consumed() const { return next_; }

 private:
  ScheduleLog log_;
  std::size_t next_ = 0;
};

}  // namespace rbvc::sim
