#include "sim/signatures.h"

#include <cstring>

#include "obs/metrics.h"

namespace rbvc::sim {

namespace {
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v, then an avalanche (splitmix finalizer).
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  std::uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

void Digest::absorb(std::uint64_t v) { state_ = mix(state_, v); }

void Digest::absorb(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  absorb(bits);
}

void Digest::absorb(const Vec& v) {
  absorb(static_cast<std::uint64_t>(v.size()));
  for (double x : v) absorb(x);
}

void Digest::absorb(const std::vector<int>& v) {
  absorb(static_cast<std::uint64_t>(v.size()));
  for (int x : v) absorb(x);
}

Signature Signer::sign(std::uint64_t digest) const {
  return authority_->compute(id_, digest);
}

SignatureAuthority::SignatureAuthority(std::uint64_t secret_seed)
    : secret_(mix(0x9E3779B97F4A7C15ULL, secret_seed)) {}

Signature SignatureAuthority::compute(ProcessId id,
                                      std::uint64_t digest) const {
  return mix(mix(secret_, static_cast<std::uint64_t>(id)), digest);
}

bool SignatureAuthority::verify(ProcessId id, std::uint64_t digest,
                                Signature sig) const {
  // Hot path: cache the handle once (reset_values() keeps it valid).
  static obs::Counter& checks = obs::global().counter("sim.signature_checks");
  checks.inc();
  return compute(id, digest) == sig;
}

}  // namespace rbvc::sim
