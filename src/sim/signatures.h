// Simulated digital signatures for authenticated protocols (Dolev-Strong).
//
// A SignatureAuthority models an idealized signature scheme: each process
// holds a Signer capability for its own id only, and anyone can verify.
// Unforgeability is by construction -- signatures are keyed hashes with a
// per-authority secret that processes cannot read, and the only way to
// produce a signature for id i is through i's Signer. This gives exactly
// the abstraction the authenticated-broadcast literature assumes, without
// pulling a crypto library into the simulator.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/message.h"

namespace rbvc::sim {

using Signature = std::uint64_t;

/// Order-sensitive digest of arbitrary (ints, doubles) content.
class Digest {
 public:
  void absorb(std::uint64_t v);
  void absorb(int v) { absorb(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void absorb(double v);
  void absorb(const Vec& v);
  void absorb(const std::vector<int>& v);
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

class SignatureAuthority;

/// Signing capability for one process id. Only the authority can mint these.
class Signer {
 public:
  Signature sign(std::uint64_t digest) const;
  ProcessId id() const { return id_; }

 private:
  friend class SignatureAuthority;
  Signer(const SignatureAuthority* authority, ProcessId id)
      : authority_(authority), id_(id) {}
  const SignatureAuthority* authority_;
  ProcessId id_;
};

class SignatureAuthority {
 public:
  explicit SignatureAuthority(std::uint64_t secret_seed);

  /// Hands out the signing capability for `id` (call once per process at
  /// setup; the experiment runner plays the role of the PKI).
  Signer signer_for(ProcessId id) const { return Signer(this, id); }

  /// True iff `sig` is a valid signature by `id` over `digest`.
  bool verify(ProcessId id, std::uint64_t digest, Signature sig) const;

 private:
  friend class Signer;
  Signature compute(ProcessId id, std::uint64_t digest) const;
  std::uint64_t secret_;
};

}  // namespace rbvc::sim
