#include "sim/sync_engine.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "sim/schedule_log.h"

namespace rbvc::sim {

namespace {

class CollectingOutbox final : public Outbox {
 public:
  CollectingOutbox(ProcessId self, std::size_t n,
                   std::vector<std::vector<Message>>& next, Trace& trace,
                   std::size_t round_no, std::size_t& counter,
                   std::map<std::string, std::uint64_t>& kind_counts)
      : self_(self),
        n_(n),
        next_(next),
        trace_(trace),
        round_(round_no),
        counter_(counter),
        kind_counts_(kind_counts) {}

  void send(ProcessId to, Message m) override {
    RBVC_REQUIRE(to < n_, "send: unknown recipient");
    m.from = self_;
    m.to = to;
    trace_.record(EventType::kSend, round_, self_, describe(m));
    ++kind_counts_[m.kind];
    next_[to].push_back(std::move(m));
    ++counter_;
  }

 private:
  ProcessId self_;
  std::size_t n_;
  std::vector<std::vector<Message>>& next_;
  Trace& trace_;
  std::size_t round_;
  std::size_t& counter_;
  std::map<std::string, std::uint64_t>& kind_counts_;
};

}  // namespace

ProcessId SyncEngine::add(std::unique_ptr<SyncProcess> p) {
  procs_.push_back(std::move(p));
  return procs_.size() - 1;
}

SyncRunStats SyncEngine::run(std::size_t max_rounds) {
  const std::size_t n = procs_.size();
  SyncRunStats stats;
  std::vector<std::vector<Message>> inboxes(n);
  std::map<std::string, std::uint64_t> kind_counts;
  obs::Registry& reg = obs::global();
  obs::Histogram& round_messages =
      reg.histogram("sim.sync.round_messages", obs::count_buckets());

  for (std::size_t r = 0; r < max_rounds; ++r) {
    bool all = true;
    for (const auto& p : procs_) all = all && p->decided();
    if (all) {
      stats.all_decided = true;
      break;
    }
    const std::size_t sent_before = stats.messages;
    std::vector<std::vector<Message>> next(n);
    for (ProcessId id = 0; id < n; ++id) {
      // Deterministic in-round delivery order: sort by sender then content
      // so executions are reproducible regardless of send interleaving.
      std::stable_sort(inboxes[id].begin(), inboxes[id].end(),
                       [](const Message& a, const Message& b) {
                         if (a.from != b.from) return a.from < b.from;
                         return MessageContentLess{}(a, b);
                       });
      CollectingOutbox out(id, n, next, trace_, r, stats.messages,
                           kind_counts);
      procs_[id]->round(r, inboxes[id], out);
    }
    if (slog_) slog_->add_round(stats.messages - sent_before);
    round_messages.observe(static_cast<double>(stats.messages - sent_before));
    inboxes = std::move(next);
    stats.rounds = r + 1;
  }
  if (!stats.all_decided) {
    bool all = true;
    for (const auto& p : procs_) all = all && p->decided();
    stats.all_decided = all;
  }

  reg.counter("sim.sync.runs").inc();
  reg.counter("sim.sync.rounds").inc(stats.rounds);
  reg.counter("sim.sync.messages_sent").inc(stats.messages);
  for (const auto& [kind, count] : kind_counts) {
    reg.counter("sim.sync.sent." + obs::sanitize_label(kind)).inc(count);
  }
  return stats;
}

}  // namespace rbvc::sim
