// Lock-step synchronous round engine (the paper's synchronous system model):
// in every round each process reads the messages addressed to it that were
// sent in the previous round, then emits the messages for this round.
// Byzantine behavior is expressed by registering adversarial SyncProcess
// implementations -- the network itself is reliable and authenticated.
#pragma once

#include <memory>
#include <vector>

#include "sim/message.h"
#include "sim/trace.h"

namespace rbvc::sim {

class ScheduleLog;

class SyncProcess {
 public:
  virtual ~SyncProcess() = default;

  /// Called once per round, with the messages delivered this round (those
  /// sent to this process in the previous round; empty in round 0).
  virtual void round(std::size_t round_no, const std::vector<Message>& inbox,
                     Outbox& out) = 0;

  /// True once the process has produced its final output.
  virtual bool decided() const = 0;
};

struct SyncRunStats {
  std::size_t rounds = 0;
  std::size_t messages = 0;
  bool all_decided = false;
};

class SyncEngine {
 public:
  /// Registers a process; its id is the registration order.
  ProcessId add(std::unique_ptr<SyncProcess> p);

  std::size_t size() const { return procs_.size(); }
  SyncProcess& process(ProcessId id) { return *procs_.at(id); }
  Trace& trace() { return trace_; }

  /// When set, a per-round checkpoint (message count) is appended to `log`
  /// after every round. Sync runs are deterministic given the process
  /// configuration, so the log serves as a divergence detector: re-running
  /// the same experiment must reproduce the identical log.
  void set_schedule_log(ScheduleLog* log) { slog_ = log; }

  /// Runs until every process reports decided() or `max_rounds` elapse.
  SyncRunStats run(std::size_t max_rounds);

 private:
  std::vector<std::unique_ptr<SyncProcess>> procs_;
  Trace trace_;
  ScheduleLog* slog_ = nullptr;
};

}  // namespace rbvc::sim
