#include "sim/trace.h"

namespace rbvc::sim {

namespace {

const char* name(EventType t) {
  switch (t) {
    case EventType::kSend:
      return "send";
    case EventType::kDeliver:
      return "deliver";
    case EventType::kDecide:
      return "decide";
    case EventType::kNote:
      return "note";
  }
  return "?";
}

EventType type_from_name(const std::string& s) {
  if (s == "send") return EventType::kSend;
  if (s == "deliver") return EventType::kDeliver;
  if (s == "decide") return EventType::kDecide;
  if (s == "note") return EventType::kNote;
  throw invalid_argument("Trace::parse: unknown event type `" + s + "`");
}

std::size_t parse_size(const std::string& s) {
  std::size_t value = 0;
  RBVC_REQUIRE(!s.empty(), "Trace::parse: empty numeric field");
  for (char c : s) {
    RBVC_REQUIRE(c >= '0' && c <= '9', "Trace::parse: non-numeric field");
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

}  // namespace

std::string escape_detail(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_detail(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    const char next = s[++i];
    switch (next) {
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        out += next;  // "\\" and any future escapes decode to themselves
    }
  }
  return out;
}

void Trace::record(EventType type, std::size_t time, ProcessId process,
                   std::string detail) {
  if (!enabled_) return;
  events_.push_back({type, time, process, std::move(detail)});
}

std::size_t Trace::count(EventType type) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

std::string Trace::dump() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += name(e.type);
    out += ' ';
    out += std::to_string(e.time);
    out += ' ';
    out += std::to_string(e.process);
    out += ' ';
    out += escape_detail(e.detail);
    out += '\n';
  }
  return out;
}

Trace Trace::parse(const std::string& text) {
  // dump() terminates every event line (including the last) with '\n' and
  // never emits empty lines, so both are rejected here: trailing garbage
  // after the final newline means a truncated or corrupted dump.
  RBVC_REQUIRE(text.empty() || text.back() == '\n',
               "Trace::parse: trailing garbage after the last event line");
  Trace t;
  t.set_enabled(true);
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    RBVC_REQUIRE(!line.empty(), "Trace::parse: empty event line");

    const std::size_t s1 = line.find(' ');
    RBVC_REQUIRE(s1 != std::string::npos, "Trace::parse: missing time field");
    const std::size_t s2 = line.find(' ', s1 + 1);
    RBVC_REQUIRE(s2 != std::string::npos,
                 "Trace::parse: missing process field");
    std::size_t s3 = line.find(' ', s2 + 1);
    if (s3 == std::string::npos) s3 = line.size();  // empty detail

    TraceEvent e;
    e.type = type_from_name(line.substr(0, s1));
    e.time = parse_size(line.substr(s1 + 1, s2 - s1 - 1));
    e.process = parse_size(line.substr(s2 + 1, s3 - s2 - 1));
    e.detail = s3 < line.size() ? unescape_detail(line.substr(s3 + 1)) : "";
    t.events_.push_back(std::move(e));
  }
  return t;
}

}  // namespace rbvc::sim
