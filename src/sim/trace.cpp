#include "sim/trace.h"

namespace rbvc::sim {

namespace {
const char* name(EventType t) {
  switch (t) {
    case EventType::kSend:
      return "send";
    case EventType::kDeliver:
      return "deliver";
    case EventType::kDecide:
      return "decide";
    case EventType::kNote:
      return "note";
  }
  return "?";
}
}  // namespace

void Trace::record(EventType type, std::size_t time, ProcessId process,
                   std::string detail) {
  if (!enabled_) return;
  events_.push_back({type, time, process, std::move(detail)});
}

std::size_t Trace::count(EventType type) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

std::string Trace::dump() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += "[t=" + std::to_string(e.time) + "] p" +
           std::to_string(e.process) + " " + name(e.type) + ": " + e.detail +
           "\n";
  }
  return out;
}

}  // namespace rbvc::sim
