// Optional execution tracing: engines record message/deliver/decide events
// so tests can assert on protocol behavior (message complexity, ordering)
// and failures can be replayed from a printout.
#pragma once

#include <string>
#include <vector>

#include "sim/message.h"

namespace rbvc::sim {

enum class EventType { kSend, kDeliver, kDecide, kNote };

struct TraceEvent {
  EventType type = EventType::kNote;
  std::size_t time = 0;  // round (sync) or event index (async)
  ProcessId process = 0;
  std::string detail;
};

class Trace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(EventType type, std::size_t time, ProcessId process,
              std::string detail);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t count(EventType type) const;
  std::string dump() const;
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace rbvc::sim
