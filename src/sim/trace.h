// Optional execution tracing: engines record message/deliver/decide events
// so tests can assert on protocol behavior (message complexity, ordering)
// and failures can be replayed from a printout.
//
// dump() emits a stable, machine-parseable form (one event per line, fixed
// field order, escaped detail) and Trace::parse() inverts it losslessly, so
// repro files can embed traces and replay tests can diff them exactly.
#pragma once

#include <string>
#include <vector>

#include "sim/message.h"

namespace rbvc::sim {

enum class EventType { kSend, kDeliver, kDecide, kNote };

struct TraceEvent {
  EventType type = EventType::kNote;
  std::size_t time = 0;  // round (sync) or event index (async)
  ProcessId process = 0;
  std::string detail;

  bool operator==(const TraceEvent&) const = default;
};

/// Escapes backslashes and line breaks so any detail string fits on one
/// line of a serialized trace or repro file; unescape_detail() inverts it.
std::string escape_detail(const std::string& s);
std::string unescape_detail(const std::string& s);

class Trace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(EventType type, std::size_t time, ProcessId process,
              std::string detail);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t count(EventType type) const;

  /// Stable serialization: "<type> <time> <process> <escaped detail>\n"
  /// per event. Round-trips through parse() losslessly.
  std::string dump() const;
  /// Inverse of dump(). Throws invalid_argument on malformed input.
  static Trace parse(const std::string& text);

  void clear() { events_.clear(); }

  bool operator==(const Trace& o) const { return events_ == o.events_; }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace rbvc::sim
