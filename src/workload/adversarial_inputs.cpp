#include "workload/adversarial_inputs.h"

#include "rbvc/common.h"

namespace rbvc::workload {

std::vector<Vec> thm3_inputs(std::size_t d, double gamma, double epsilon) {
  RBVC_REQUIRE(d >= 3, "thm3_inputs: requires d >= 3");
  RBVC_REQUIRE(0.0 < epsilon && epsilon <= gamma,
               "thm3_inputs: requires 0 < epsilon <= gamma");
  std::vector<Vec> cols;
  cols.reserve(d + 1);
  for (std::size_t i = 0; i < d; ++i) {  // paper column i+1
    Vec c(d, epsilon);
    for (std::size_t r = 0; r < i; ++r) c[r] = 0.0;
    c[i] = gamma;
    cols.push_back(std::move(c));
  }
  cols.push_back(Vec(d, -gamma));
  return cols;
}

std::vector<Vec> appendix_b_inputs(std::size_t d, double gamma,
                                   double epsilon) {
  RBVC_REQUIRE(d >= 3, "appendix_b_inputs: requires d >= 3");
  RBVC_REQUIRE(0.0 < 2.0 * epsilon && 2.0 * epsilon < gamma,
               "appendix_b_inputs: requires 0 < 2 epsilon < gamma");
  std::vector<Vec> cols;
  cols.reserve(d + 2);
  for (std::size_t i = 0; i < d; ++i) {
    Vec c(d, 2.0 * epsilon);
    for (std::size_t r = 0; r < i; ++r) c[r] = 0.0;
    c[i] = gamma;
    cols.push_back(std::move(c));
  }
  cols.push_back(Vec(d, -gamma));
  cols.push_back(Vec(d, 0.0));
  return cols;
}

std::vector<Vec> thm5_inputs(std::size_t d, double x) {
  RBVC_REQUIRE(d >= 2, "thm5_inputs: requires d >= 2");
  RBVC_REQUIRE(x > 0.0, "thm5_inputs: requires x > 0");
  std::vector<Vec> cols;
  cols.reserve(d + 1);
  for (std::size_t i = 0; i < d; ++i) {
    Vec c(d, 0.0);
    c[i] = x;
    cols.push_back(std::move(c));
  }
  cols.push_back(Vec(d, 0.0));
  return cols;
}

std::vector<Vec> appendix_c_inputs(std::size_t d, double x) {
  std::vector<Vec> cols = thm5_inputs(d, x);
  cols.push_back(Vec(d, 0.0));
  return cols;
}

std::vector<std::vector<Vec>> async_proof_subsets(const std::vector<Vec>& s,
                                                  std::size_t i) {
  RBVC_REQUIRE(s.size() >= 2, "async_proof_subsets: too few inputs");
  const std::size_t m = s.size() - 1;  // the first d+1 inputs participate
  RBVC_REQUIRE(i < s.size(), "async_proof_subsets: index out of range");
  std::vector<std::vector<Vec>> subsets;
  for (std::size_t j = 0; j < m; ++j) {
    if (j == i) continue;
    std::vector<Vec> sj;
    sj.reserve(m - 1);
    for (std::size_t l = 0; l < m; ++l) {
      if (l != j) sj.push_back(s[l]);
    }
    subsets.push_back(std::move(sj));
  }
  return subsets;
}

}  // namespace rbvc::workload
