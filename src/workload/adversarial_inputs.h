// The explicit input constructions from the paper's impossibility proofs.
// Each returns the columns of the quoted matrix as the per-process inputs
// (0-indexed process i gets column i+1 of the paper's matrix).
#pragma once

#include <vector>

#include "linalg/vec.h"

namespace rbvc::workload {

/// Theorem 3 (synchronous k-relaxed, n = d+1, f = 1, k = 2): column i has
/// i-1 zeros, then gamma, then epsilons; column d+1 is all -gamma.
/// Requires 0 < epsilon <= gamma. Psi_2 of these d+1 inputs is empty.
std::vector<Vec> thm3_inputs(std::size_t d, double gamma, double epsilon);

/// Appendix B / Theorem 4 (asynchronous k-relaxed, n = d+2, f = 1, k = 2):
/// like Thm 3 with 2*epsilon fills (0 < 2 epsilon < gamma), plus an all-zero
/// column d+2. Forces ||v1 - v2||_inf >= 2 epsilon between the output sets
/// of processes 1 and 2.
std::vector<Vec> appendix_b_inputs(std::size_t d, double gamma,
                                   double epsilon);

/// Theorem 5 (synchronous (delta,inf)-relaxed, n = d+1, f = 1): scaled
/// standard basis x*e_i plus the origin. For x > 2*d*delta the
/// Gamma_(delta,inf) intersection is empty.
std::vector<Vec> thm5_inputs(std::size_t d, double x);

/// Appendix C / Theorem 6 (asynchronous (delta,inf)-relaxed, n = d+2,
/// f = 1): scaled basis plus two origins. For x > 2*d*delta + epsilon the
/// forced output gap exceeds epsilon.
std::vector<Vec> appendix_c_inputs(std::size_t d, double x);

/// The sub-multisets S^j = {s_i : 1 <= i <= d+1, i != j} (and
/// S^{d+2} = first d+1 inputs) used by the asynchronous proofs: process i's
/// output must lie in the intersection over j != i, 1 <= j <= d+1 of the
/// relaxed hulls of S^j. Returns those d (for the given i, 0-indexed)
/// multisets.
std::vector<std::vector<Vec>> async_proof_subsets(const std::vector<Vec>& s,
                                                  std::size_t i);

}  // namespace rbvc::workload
