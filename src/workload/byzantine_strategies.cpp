#include "workload/byzantine_strategies.h"

namespace rbvc::workload {

namespace {
/// Byzantine processes never use their decision rule; give them a stub.
protocols::DecisionFn dummy_decision() {
  return [](const std::vector<Vec>& s) { return s.front(); };
}
}  // namespace

EquivocatingSyncProcess::EquivocatingSyncProcess(std::size_t n, std::size_t f,
                                                 protocols::ProcessId self,
                                                 Vec input, Vec default_value,
                                                 double spread)
    : EigConsensusProcess(n, f, self, std::move(input),
                          std::move(default_value), dummy_decision()),
      spread_(spread) {}

Vec EquivocatingSyncProcess::initial_value_for(protocols::ProcessId r) {
  Vec v = input();
  const double sign = (r % 2 == 0) ? 1.0 : -1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] += sign * spread_ * static_cast<double>(i + 1);
  }
  return v;
}

LyingRelaySyncProcess::LyingRelaySyncProcess(std::size_t n, std::size_t f,
                                             protocols::ProcessId self,
                                             Vec input, Vec default_value,
                                             std::uint64_t seed,
                                             double lie_prob, double noise)
    : EigConsensusProcess(n, f, self, std::move(input),
                          std::move(default_value), dummy_decision()),
      rng_(seed),
      lie_prob_(lie_prob),
      noise_(noise) {}

std::optional<Vec> LyingRelaySyncProcess::relay_value_for(
    protocols::ProcessId source, const std::vector<int>&, const Vec& honest,
    protocols::ProcessId) {
  if (source == id()) return honest;  // keep own instance plausible
  const double roll = rng_.next_double();
  if (roll < lie_prob_ * 0.5) return std::nullopt;  // selective silence
  if (roll < lie_prob_) {
    Vec lie = honest;
    axpy(noise_, rng_.normal_vec(lie.size()), lie);
    return lie;
  }
  return honest;
}

ChoiceEquivocatingEigProcess::ChoiceEquivocatingEigProcess(
    std::size_t n, std::size_t f, protocols::ProcessId self, Vec value_a,
    Vec value_b, Vec default_value, mc::ChoiceSource* choices)
    : EigConsensusProcess(n, f, self, std::move(value_a),
                          std::move(default_value), dummy_decision()),
      value_b_(std::move(value_b)),
      choices_(choices) {}

Vec ChoiceEquivocatingEigProcess::initial_value_for(protocols::ProcessId) {
  const std::size_t pick = choices_ != nullptr ? choices_->choose(2) : 0;
  return pick == 0 ? input() : value_b_;
}

const char* to_string(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kSilent:
      return "silent";
    case SyncStrategy::kEquivocate:
      return "equivocate";
    case SyncStrategy::kLyingRelay:
      return "lying-relay";
    case SyncStrategy::kOutlierInput:
      return "outlier-input";
    case SyncStrategy::kCrashMidway:
      return "crash-midway";
    case SyncStrategy::kBadChainRelay:
      return "bad-chain-relay";
    case SyncStrategy::kChoiceEquivocate:
      return "choice-equivocate";
  }
  return "?";
}

std::unique_ptr<sim::SyncProcess> make_sync_byzantine(
    SyncStrategy strategy, std::size_t n, std::size_t f,
    protocols::ProcessId self, std::size_t d, std::uint64_t seed,
    mc::ChoiceSource* choices) {
  Rng rng(seed);
  switch (strategy) {
    case SyncStrategy::kSilent:
      return std::make_unique<SilentSyncProcess>();
    case SyncStrategy::kEquivocate:
      return std::make_unique<EquivocatingSyncProcess>(
          n, f, self, rng.normal_vec(d), zeros(d), /*spread=*/5.0);
    case SyncStrategy::kLyingRelay:
      return std::make_unique<LyingRelaySyncProcess>(
          n, f, self, rng.normal_vec(d), zeros(d), rng.next_u64());
    case SyncStrategy::kOutlierInput: {
      // Honest protocol with a far-away input.
      Vec outlier = scale(100.0, rng.normal_vec(d));
      return std::make_unique<protocols::EigConsensusProcess>(
          n, f, self, std::move(outlier), zeros(d), dummy_decision());
    }
    case SyncStrategy::kCrashMidway:
      return std::make_unique<CrashingSyncProcess>(
          std::make_unique<protocols::EigConsensusProcess>(
              n, f, self, rng.normal_vec(d), zeros(d), dummy_decision()),
          /*crash_round=*/1);
    case SyncStrategy::kBadChainRelay:
      // Forged chains are a signature-model attack; in the unauthenticated
      // EIG model the closest behavior is lying while relaying.
      return std::make_unique<LyingRelaySyncProcess>(
          n, f, self, rng.normal_vec(d), zeros(d), rng.next_u64());
    case SyncStrategy::kChoiceEquivocate:
      return std::make_unique<ChoiceEquivocatingEigProcess>(
          n, f, self, rng.normal_vec(d), scale(8.0, rng.normal_vec(d)),
          zeros(d), choices);
  }
  throw invalid_argument("unknown sync strategy");
}

DsEquivocatingProcess::DsEquivocatingProcess(
    std::size_t n, std::size_t f, protocols::ProcessId self, Vec value_a,
    Vec value_b, Vec default_value, sim::Signer signer,
    const sim::SignatureAuthority* authority)
    : DolevStrongProcess(n, f, self, std::move(value_a),
                         std::move(default_value), dummy_decision(), signer,
                         authority),
      value_b_(std::move(value_b)) {}

std::vector<std::pair<protocols::ProcessId, sim::Message>>
DsEquivocatingProcess::initial_messages() {
  namespace wire = protocols::ds_wire;
  const Vec& a = input();
  protocols::SigChain chain_a, chain_b;
  chain_a.emplace_back(self_,
                       signer_.sign(wire::chain_digest(self_, a, {})));
  chain_b.emplace_back(
      self_, signer_.sign(wire::chain_digest(self_, value_b_, {})));
  const sim::Message ma = wire::encode(self_, a, chain_a);
  const sim::Message mb = wire::encode(self_, value_b_, chain_b);
  std::vector<std::pair<protocols::ProcessId, sim::Message>> out;
  for (protocols::ProcessId r = 0; r < n_; ++r) {
    if (r == self_) continue;
    out.emplace_back(r, (r < n_ / 2) ? ma : mb);
  }
  return out;
}

DsBadChainRelayProcess::DsBadChainRelayProcess(std::size_t n, std::size_t f,
                                               protocols::ProcessId self,
                                               Vec value, Vec forged,
                                               sim::Signer signer)
    : n_(n),
      f_(f),
      self_(self),
      value_(std::move(value)),
      forged_(std::move(forged)),
      signer_(signer) {}

void DsBadChainRelayProcess::round(std::size_t round_no,
                                   const std::vector<sim::Message>&,
                                   sim::Outbox& out) {
  namespace wire = protocols::ds_wire;
  if (round_no == 0) {
    // Honest initial broadcast of our own value, so the attack is not a
    // trivial no-show: the forged chain rides alongside a plausible run.
    protocols::SigChain chain;
    chain.emplace_back(self_,
                       signer_.sign(wire::chain_digest(self_, value_, {})));
    const sim::Message m = wire::encode(self_, value_, chain);
    for (protocols::ProcessId r = 0; r < n_; ++r) {
      if (r == self_) continue;
      sim::Message copy = m;
      out.send(r, std::move(copy));
    }
    return;
  }
  if (round_no != 1 || f_ < 1) return;
  // Round 1 relays carry 2-signature chains, so a forged chain sent now has
  // the length receivers expect in round 2. The victim's signature is
  // fabricated; ours is genuine over the forged prefix -- chain validation
  // rejects the chain at its first link, which is the point.
  const protocols::ProcessId victim = self_ == 0 ? 1 : 0;
  protocols::SigChain chain;
  chain.emplace_back(victim, sim::Signature{0xBADC0DEBADC0DEULL});
  chain.emplace_back(
      self_, signer_.sign(wire::chain_digest(victim, forged_, chain)));
  const sim::Message m = wire::encode(victim, forged_, chain);
  for (protocols::ProcessId r = 0; r < n_ / 2; ++r) {
    if (r == self_) continue;
    sim::Message copy = m;
    out.send(r, std::move(copy));
  }
}

DsChoiceEquivocatingProcess::DsChoiceEquivocatingProcess(
    std::size_t n, std::size_t f, protocols::ProcessId self, Vec value_a,
    Vec value_b, Vec default_value, sim::Signer signer,
    const sim::SignatureAuthority* authority, mc::ChoiceSource* choices)
    : DolevStrongProcess(n, f, self, std::move(value_a),
                         std::move(default_value), dummy_decision(), signer,
                         authority),
      value_b_(std::move(value_b)),
      choices_(choices) {}

std::vector<std::pair<protocols::ProcessId, sim::Message>>
DsChoiceEquivocatingProcess::initial_messages() {
  namespace wire = protocols::ds_wire;
  const Vec& a = input();
  protocols::SigChain chain_a, chain_b;
  chain_a.emplace_back(self_,
                       signer_.sign(wire::chain_digest(self_, a, {})));
  chain_b.emplace_back(
      self_, signer_.sign(wire::chain_digest(self_, value_b_, {})));
  const sim::Message ma = wire::encode(self_, a, chain_a);
  const sim::Message mb = wire::encode(self_, value_b_, chain_b);
  std::vector<std::pair<protocols::ProcessId, sim::Message>> out;
  for (protocols::ProcessId r = 0; r < n_; ++r) {
    if (r == self_) continue;
    const std::size_t pick = choices_ != nullptr ? choices_->choose(2) : 0;
    out.emplace_back(r, pick == 0 ? ma : mb);
  }
  return out;
}

std::unique_ptr<sim::SyncProcess> make_ds_byzantine(
    SyncStrategy strategy, std::size_t n, std::size_t f,
    protocols::ProcessId self, std::size_t d, std::uint64_t seed,
    sim::Signer signer, const sim::SignatureAuthority* authority,
    mc::ChoiceSource* choices) {
  Rng rng(seed);
  switch (strategy) {
    case SyncStrategy::kSilent:
      return std::make_unique<SilentSyncProcess>();
    case SyncStrategy::kEquivocate:
      return std::make_unique<DsEquivocatingProcess>(
          n, f, self, rng.normal_vec(d), scale(8.0, rng.normal_vec(d)),
          zeros(d), signer, authority);
    case SyncStrategy::kLyingRelay:
      return std::make_unique<DsWithholdingProcess>(
          n, f, self, rng.normal_vec(d), zeros(d), dummy_decision(), signer,
          authority);
    case SyncStrategy::kOutlierInput:
      return std::make_unique<protocols::DolevStrongProcess>(
          n, f, self, scale(100.0, rng.normal_vec(d)), zeros(d),
          dummy_decision(), signer, authority);
    case SyncStrategy::kCrashMidway:
      return std::make_unique<CrashingSyncProcess>(
          std::make_unique<protocols::DolevStrongProcess>(
              n, f, self, rng.normal_vec(d), zeros(d), dummy_decision(),
              signer, authority),
          /*crash_round=*/1);
    case SyncStrategy::kBadChainRelay:
      return std::make_unique<DsBadChainRelayProcess>(
          n, f, self, rng.normal_vec(d), scale(50.0, rng.normal_vec(d)),
          signer);
    case SyncStrategy::kChoiceEquivocate:
      return std::make_unique<DsChoiceEquivocatingProcess>(
          n, f, self, rng.normal_vec(d), scale(8.0, rng.normal_vec(d)),
          zeros(d), signer, authority, choices);
  }
  throw invalid_argument("unknown sync strategy");
}

EquivocatingAsyncProcess::EquivocatingAsyncProcess(std::size_t n,
                                                   protocols::ProcessId self,
                                                   Vec value_a, Vec value_b)
    : n_(n), self_(self), a_(std::move(value_a)), b_(std::move(value_b)) {}

void EquivocatingAsyncProcess::init(sim::Outbox& out) {
  for (sim::ProcessId p = 0; p < n_; ++p) {
    sim::Message m;
    m.kind = "rbc";
    // meta = [source, instance 0, INIT]. The engine stamps `from` with our
    // real id, so we must truthfully name ourselves as source for the INIT
    // to count -- but nothing stops us sending different payloads per
    // recipient, which is exactly the equivocation RBC exists to contain.
    m.meta = {static_cast<int>(self_), 0, 0};
    m.payload = (p < n_ / 2) ? a_ : b_;
    out.send(p, std::move(m));
  }
}

ChoiceEquivocatingAsyncProcess::ChoiceEquivocatingAsyncProcess(
    std::size_t n, protocols::ProcessId self, Vec value_a, Vec value_b,
    mc::ChoiceSource* choices)
    : n_(n),
      self_(self),
      a_(std::move(value_a)),
      b_(std::move(value_b)),
      choices_(choices) {}

void ChoiceEquivocatingAsyncProcess::init(sim::Outbox& out) {
  for (sim::ProcessId p = 0; p < n_; ++p) {
    sim::Message m;
    m.kind = "rbc";
    // meta = [source, instance 0, INIT]; see EquivocatingAsyncProcess.
    m.meta = {static_cast<int>(self_), 0, 0};
    const std::size_t pick = choices_ != nullptr ? choices_->choose(2) : 0;
    m.payload = pick == 0 ? a_ : b_;
    out.send(p, std::move(m));
  }
}

const char* to_string(AsyncStrategy s) {
  switch (s) {
    case AsyncStrategy::kSilent:
      return "silent";
    case AsyncStrategy::kEquivocate:
      return "equivocate";
    case AsyncStrategy::kOutlierInput:
      return "outlier-input";
    case AsyncStrategy::kCrashMidway:
      return "crash-midway";
    case AsyncStrategy::kChoiceEquivocate:
      return "choice-equivocate";
  }
  return "?";
}

std::unique_ptr<sim::AsyncProcess> make_async_outlier(
    consensus::AsyncAveragingProcess::Params prm, protocols::ProcessId self,
    std::size_t d, double magnitude, std::uint64_t seed) {
  Rng rng(seed);
  Vec outlier = scale(magnitude, rng.normal_vec(d));
  return std::make_unique<consensus::AsyncAveragingProcess>(
      prm, self, std::move(outlier));
}

std::unique_ptr<sim::AsyncProcess> make_async_byzantine(
    AsyncStrategy strategy, consensus::AsyncAveragingProcess::Params prm,
    protocols::ProcessId self, std::size_t d, std::uint64_t seed,
    mc::ChoiceSource* choices) {
  Rng rng(seed);
  switch (strategy) {
    case AsyncStrategy::kSilent:
      return std::make_unique<SilentAsyncProcess>();
    case AsyncStrategy::kEquivocate:
      return std::make_unique<EquivocatingAsyncProcess>(
          prm.n, self, scale(10.0, rng.normal_vec(d)),
          scale(-10.0, rng.normal_vec(d)));
    case AsyncStrategy::kOutlierInput:
      return make_async_outlier(prm, self, d, 25.0, rng.next_u64());
    case AsyncStrategy::kCrashMidway:
      return std::make_unique<CrashingAsyncProcess>(
          std::make_unique<consensus::AsyncAveragingProcess>(
              prm, self, rng.normal_vec(d)),
          /*max_deliveries=*/40);
    case AsyncStrategy::kChoiceEquivocate:
      return std::make_unique<ChoiceEquivocatingAsyncProcess>(
          prm.n, self, scale(10.0, rng.normal_vec(d)),
          scale(-10.0, rng.normal_vec(d)), choices);
  }
  throw invalid_argument("unknown async strategy");
}

}  // namespace rbvc::workload
