// Byzantine process implementations for both engines. A strategy factory
// builds the process for a given id, so experiment harnesses can mix
// correct and faulty processes declaratively.
#pragma once

#include <functional>
#include <memory>

#include "consensus/async_averaging.h"
#include "mc/choices.h"
#include "protocols/dolev_strong.h"
#include "protocols/om_broadcast.h"
#include "sim/rng.h"

namespace rbvc::workload {

// ---------------------------------------------------------------------------
// Synchronous (EIG interactive consistency) adversaries.
// ---------------------------------------------------------------------------

/// Stays completely silent (crash from the start).
class SilentSyncProcess final : public sim::SyncProcess {
 public:
  void round(std::size_t, const std::vector<sim::Message>&,
             sim::Outbox&) override {}
  bool decided() const override { return true; }
};

/// Follows the protocol but equivocates on its own input: recipient r gets
/// input + spread * dir_r where dir_r alternates sign by recipient parity.
class EquivocatingSyncProcess final : public protocols::EigConsensusProcess {
 public:
  EquivocatingSyncProcess(std::size_t n, std::size_t f,
                          protocols::ProcessId self, Vec input,
                          Vec default_value, double spread);

 protected:
  Vec initial_value_for(protocols::ProcessId recipient) override;

 private:
  double spread_;
};

/// Relays honestly for its own instance but lies about everyone else's
/// values with probability `lie_prob`, adding seeded noise.
class LyingRelaySyncProcess final : public protocols::EigConsensusProcess {
 public:
  LyingRelaySyncProcess(std::size_t n, std::size_t f,
                        protocols::ProcessId self, Vec input,
                        Vec default_value, std::uint64_t seed,
                        double lie_prob = 0.5, double noise = 10.0);

 protected:
  std::optional<Vec> relay_value_for(protocols::ProcessId source,
                                     const std::vector<int>& path,
                                     const Vec& honest,
                                     protocols::ProcessId recipient) override;

 private:
  Rng rng_;
  double lie_prob_;
  double noise_;
};

/// Wraps any process and crashes it (permanent silence) from a given round
/// on -- the benign end of the Byzantine spectrum.
class CrashingSyncProcess final : public sim::SyncProcess {
 public:
  CrashingSyncProcess(std::unique_ptr<sim::SyncProcess> inner,
                      std::size_t crash_round)
      : inner_(std::move(inner)), crash_round_(crash_round) {}

  void round(std::size_t round_no, const std::vector<sim::Message>& inbox,
             sim::Outbox& out) override {
    if (round_no >= crash_round_) return;
    inner_->round(round_no, inbox, out);
  }
  bool decided() const override { return true; }

 private:
  std::unique_ptr<sim::SyncProcess> inner_;
  std::size_t crash_round_;
};

/// Equivocates under explicit adversary control: every per-recipient "send
/// value A or value B?" branch is a choose(2) on a mc::ChoiceSource, so the
/// model checker enumerates all 2^(n-1) initial-value assignments and a
/// recorded run replays the exact one taken. With no source attached the
/// behavior degenerates to FirstChoice (always A) -- an honest-looking run.
class ChoiceEquivocatingEigProcess final
    : public protocols::EigConsensusProcess {
 public:
  ChoiceEquivocatingEigProcess(std::size_t n, std::size_t f,
                               protocols::ProcessId self, Vec value_a,
                               Vec value_b, Vec default_value,
                               mc::ChoiceSource* choices);

 protected:
  Vec initial_value_for(protocols::ProcessId recipient) override;

 private:
  Vec value_b_;
  mc::ChoiceSource* choices_;  // may be null: always value A
};

/// Named synchronous strategies, for sweeps.
enum class SyncStrategy {
  kSilent,
  kEquivocate,
  kLyingRelay,
  kOutlierInput,   // honest protocol, adversarially distant input
  kCrashMidway,    // honest until round 1, then permanently silent
  kBadChainRelay,  // DS: relays a forged signature chain to half the network
  kChoiceEquivocate,  // per-recipient A/B equivocation driven by choose()
};

const char* to_string(SyncStrategy s);

/// Builds a Byzantine synchronous process implementing `strategy`.
/// `choices` drives the choice-based strategies (kChoiceEquivocate) and is
/// ignored by the seeded ones; null means "always the first option".
std::unique_ptr<sim::SyncProcess> make_sync_byzantine(
    SyncStrategy strategy, std::size_t n, std::size_t f,
    protocols::ProcessId self, std::size_t d, std::uint64_t seed,
    mc::ChoiceSource* choices = nullptr);

// ---------------------------------------------------------------------------
// Authenticated (Dolev-Strong) adversaries. Signatures make forging other
// processes' statements impossible: the strategy space shrinks to input
// equivocation (double-signing), withholding relays, outlier inputs, and
// silence -- which is exactly why the bounds drop (paper footnote 3).
// ---------------------------------------------------------------------------

/// Double-signs two different initial values and sends them to different
/// halves; never relays anything.
class DsEquivocatingProcess final : public protocols::DolevStrongProcess {
 public:
  DsEquivocatingProcess(std::size_t n, std::size_t f,
                        protocols::ProcessId self, Vec value_a, Vec value_b,
                        Vec default_value, sim::Signer signer,
                        const sim::SignatureAuthority* authority);

 protected:
  std::vector<std::pair<protocols::ProcessId, sim::Message>>
  initial_messages() override;
  bool should_relay(protocols::ProcessId, const Vec&) override {
    return false;
  }

 private:
  Vec value_b_;
};

/// Follows the protocol but never relays others' values (the strongest
/// "omission" behavior signatures leave available besides equivocation).
class DsWithholdingProcess final : public protocols::DolevStrongProcess {
 public:
  using DolevStrongProcess::DolevStrongProcess;

 protected:
  bool should_relay(protocols::ProcessId, const Vec&) override {
    return false;
  }
};

/// Broadcasts its own value honestly, then in round 1 injects a forged
/// chain -- a fabricated value for a victim correct source, carried by a
/// chain whose victim signature is garbage but whose own appended signature
/// is genuine -- to the lower half of the network. Correct chain validation
/// rejects it outright; with validation disabled (the harness's planted
/// fault, see DolevStrongProcess::set_validate_chains) the receiving half
/// extracts a second value for the victim's instance and resolves the
/// default, while the other half resolves the victim's true input:
/// interactive consistency breaks, deterministically.
class DsBadChainRelayProcess final : public sim::SyncProcess {
 public:
  DsBadChainRelayProcess(std::size_t n, std::size_t f,
                         protocols::ProcessId self, Vec value, Vec forged,
                         sim::Signer signer);

  void round(std::size_t round_no, const std::vector<sim::Message>& inbox,
             sim::Outbox& out) override;
  bool decided() const override { return true; }

 private:
  std::size_t n_;
  std::size_t f_;
  protocols::ProcessId self_;
  Vec value_;
  Vec forged_;
  sim::Signer signer_;
};

/// Double-signs value A or B per recipient, each branch a choose(2) on a
/// mc::ChoiceSource (the authenticated counterpart of
/// ChoiceEquivocatingEigProcess); never relays. The model checker sweeps
/// all 2^(n-1) signed-value assignments.
class DsChoiceEquivocatingProcess final
    : public protocols::DolevStrongProcess {
 public:
  DsChoiceEquivocatingProcess(std::size_t n, std::size_t f,
                              protocols::ProcessId self, Vec value_a,
                              Vec value_b, Vec default_value,
                              sim::Signer signer,
                              const sim::SignatureAuthority* authority,
                              mc::ChoiceSource* choices);

 protected:
  std::vector<std::pair<protocols::ProcessId, sim::Message>>
  initial_messages() override;
  bool should_relay(protocols::ProcessId, const Vec&) override {
    return false;
  }

 private:
  Vec value_b_;
  mc::ChoiceSource* choices_;  // may be null: always value A
};

/// Builds a Byzantine Dolev-Strong participant for `strategy` (kLyingRelay
/// maps to withholding: lying about others is unforgeable). `choices`
/// drives kChoiceEquivocate; null means "always the first option".
std::unique_ptr<sim::SyncProcess> make_ds_byzantine(
    SyncStrategy strategy, std::size_t n, std::size_t f,
    protocols::ProcessId self, std::size_t d, std::uint64_t seed,
    sim::Signer signer, const sim::SignatureAuthority* authority,
    mc::ChoiceSource* choices = nullptr);

// ---------------------------------------------------------------------------
// Asynchronous adversaries.
// ---------------------------------------------------------------------------

/// Stays silent forever.
class SilentAsyncProcess final : public sim::AsyncProcess {
 public:
  void init(sim::Outbox&) override {}
  void on_message(const sim::Message&, sim::Outbox&) override {}
  bool decided() const override { return true; }
};

/// Sends conflicting RBC INITs for its round-0 value (value A to low ids,
/// value B to high ids), then never assists the protocol again. Bracha RBC
/// prevents any two correct processes from delivering different values; the
/// usual outcome is that no one delivers this source at all.
class EquivocatingAsyncProcess final : public sim::AsyncProcess {
 public:
  EquivocatingAsyncProcess(std::size_t n, protocols::ProcessId self,
                           Vec value_a, Vec value_b);
  void init(sim::Outbox& out) override;
  void on_message(const sim::Message&, sim::Outbox&) override {}
  bool decided() const override { return true; }

 private:
  std::size_t n_;
  protocols::ProcessId self_;
  Vec a_, b_;
};

/// Runs the Relaxed Verified Averaging protocol correctly but with an
/// adversarially chosen input (the strongest behavior verification leaves
/// open besides view selection).
std::unique_ptr<sim::AsyncProcess> make_async_outlier(
    consensus::AsyncAveragingProcess::Params prm, protocols::ProcessId self,
    std::size_t d, double magnitude, std::uint64_t seed);

/// Wraps an async process and crashes it after `max_deliveries` handled
/// messages.
class CrashingAsyncProcess final : public sim::AsyncProcess {
 public:
  CrashingAsyncProcess(std::unique_ptr<sim::AsyncProcess> inner,
                       std::size_t max_deliveries)
      : inner_(std::move(inner)), budget_(max_deliveries) {}

  void init(sim::Outbox& out) override { inner_->init(out); }
  void on_message(const sim::Message& m, sim::Outbox& out) override {
    if (handled_ >= budget_) return;
    ++handled_;
    inner_->on_message(m, out);
  }
  bool decided() const override { return true; }

 private:
  std::unique_ptr<sim::AsyncProcess> inner_;
  std::size_t budget_;
  std::size_t handled_ = 0;
};

/// Sends conflicting RBC INITs like EquivocatingAsyncProcess, but each
/// per-recipient A-or-B branch is a choose(2) on a mc::ChoiceSource, so
/// the model checker enumerates every split (not just the fixed low/high
/// halves) and replay reproduces the one recorded.
class ChoiceEquivocatingAsyncProcess final : public sim::AsyncProcess {
 public:
  ChoiceEquivocatingAsyncProcess(std::size_t n, protocols::ProcessId self,
                                 Vec value_a, Vec value_b,
                                 mc::ChoiceSource* choices);
  void init(sim::Outbox& out) override;
  void on_message(const sim::Message&, sim::Outbox&) override {}
  bool decided() const override { return true; }

 private:
  std::size_t n_;
  protocols::ProcessId self_;
  Vec a_, b_;
  mc::ChoiceSource* choices_;  // may be null: always value A
};

enum class AsyncStrategy {
  kSilent,
  kEquivocate,
  kOutlierInput,
  kCrashMidway,
  kChoiceEquivocate,  // per-recipient A/B equivocation driven by choose()
};

const char* to_string(AsyncStrategy s);

/// `choices` drives kChoiceEquivocate and is ignored by the seeded
/// strategies; null means "always the first option".
std::unique_ptr<sim::AsyncProcess> make_async_byzantine(
    AsyncStrategy strategy, consensus::AsyncAveragingProcess::Params prm,
    protocols::ProcessId self, std::size_t d, std::uint64_t seed,
    mc::ChoiceSource* choices = nullptr);

}  // namespace rbvc::workload
