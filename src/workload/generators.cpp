#include "workload/generators.h"

#include "linalg/qr.h"

namespace rbvc::workload {

std::vector<Vec> gaussian_cloud(Rng& rng, std::size_t n, std::size_t d,
                                double sigma) {
  std::vector<Vec> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(scale(sigma, rng.normal_vec(d)));
  }
  return pts;
}

std::vector<Vec> uniform_cube(Rng& rng, std::size_t n, std::size_t d,
                              double lo, double hi) {
  std::vector<Vec> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back(rng.uniform_vec(d, lo, hi));
  return pts;
}

std::vector<Vec> sphere_points(Rng& rng, std::size_t n, std::size_t d,
                               double radius) {
  std::vector<Vec> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec v = rng.normal_vec(d);
    double nv = norm2(v);
    while (nv < 1e-12) {  // astronomically unlikely; regenerate
      v = rng.normal_vec(d);
      nv = norm2(v);
    }
    pts.push_back(scale(radius / nv, v));
  }
  return pts;
}

std::vector<Vec> clustered(Rng& rng, std::size_t n, std::size_t d,
                           double separation, double sigma) {
  Vec dir = rng.normal_vec(d);
  dir = scale(1.0 / norm2(dir), dir);
  std::vector<Vec> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double side = (i % 2 == 0) ? 0.5 : -0.5;
    Vec p = scale(side * separation, dir);
    axpy(sigma, rng.normal_vec(d), p);
    pts.push_back(std::move(p));
  }
  return pts;
}

std::vector<Vec> random_simplex(Rng& rng, std::size_t d, double scale_factor) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<Vec> pts = gaussian_cloud(rng, d + 1, d, scale_factor);
    if (affinely_independent(pts, 1e-6)) return pts;
  }
  throw numerical_error("random_simplex: could not generate a simplex");
}

std::vector<Vec> degenerate_subspace(Rng& rng, std::size_t n, std::size_t d,
                                     std::size_t subspace_dim) {
  RBVC_REQUIRE(subspace_dim <= d, "degenerate_subspace: dim too large");
  // Random orthonormal frame for the subspace.
  std::vector<Vec> frame_raw;
  for (std::size_t i = 0; i < subspace_dim; ++i) {
    frame_raw.push_back(rng.normal_vec(d));
  }
  const std::vector<Vec> frame = orthonormal_basis(frame_raw);
  RBVC_REQUIRE(frame.size() == subspace_dim,
               "degenerate_subspace: frame generation failed");
  std::vector<Vec> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec p = zeros(d);
    for (const Vec& q : frame) axpy(rng.normal(), q, p);
    pts.push_back(std::move(p));
  }
  return pts;
}

std::vector<Vec> identical_points(Rng& rng, std::size_t n, std::size_t d) {
  const Vec p = rng.normal_vec(d);
  return std::vector<Vec>(n, p);
}

std::vector<Vec> duplicated_simplex(Rng& rng, std::size_t d, std::size_t f) {
  RBVC_REQUIRE(f >= 1, "duplicated_simplex: f must be >= 1");
  const std::vector<Vec> verts = random_simplex(rng, d);
  std::vector<Vec> pts;
  pts.reserve((d + 1) * f);
  for (const Vec& v : verts) {
    for (std::size_t i = 0; i < f; ++i) pts.push_back(v);
  }
  return pts;
}

}  // namespace rbvc::workload
