// Input-vector workload generators for experiments and property tests.
// All are deterministic functions of an explicit Rng.
#pragma once

#include "sim/rng.h"

namespace rbvc::workload {

/// n iid Gaussian points, N(0, sigma^2 I_d).
std::vector<Vec> gaussian_cloud(Rng& rng, std::size_t n, std::size_t d,
                                double sigma = 1.0);

/// n iid uniform points in the cube [lo, hi]^d.
std::vector<Vec> uniform_cube(Rng& rng, std::size_t n, std::size_t d,
                              double lo = -1.0, double hi = 1.0);

/// n points uniform on the unit sphere S^{d-1}, scaled by radius.
std::vector<Vec> sphere_points(Rng& rng, std::size_t n, std::size_t d,
                               double radius = 1.0);

/// Two Gaussian clusters at +/- separation/2 along a random direction.
std::vector<Vec> clustered(Rng& rng, std::size_t n, std::size_t d,
                           double separation, double sigma = 0.1);

/// d+1 affinely independent points in R^d (a random non-degenerate simplex);
/// retries until the affine-independence check passes.
std::vector<Vec> random_simplex(Rng& rng, std::size_t d, double scale = 1.0);

/// n points confined to a random subspace of the given dimension
/// (affinely dependent whenever subspace_dim < n - 1).
std::vector<Vec> degenerate_subspace(Rng& rng, std::size_t n, std::size_t d,
                                     std::size_t subspace_dim);

/// n copies of one random point (the fully degenerate multiset).
std::vector<Vec> identical_points(Rng& rng, std::size_t n, std::size_t d);

/// The tight Theorem 12 instance: each vertex of a random d-simplex
/// repeated f times, giving n = (d+1)f points whose Gamma is empty (any
/// drop-f subset can erase a vertex entirely), so delta* > 0.
std::vector<Vec> duplicated_simplex(Rng& rng, std::size_t d, std::size_t f);

}  // namespace rbvc::workload
