#include "workload/runner.h"

#include <algorithm>

#include "consensus/exact_bvc.h"
#include "sim/sync_engine.h"

namespace rbvc::workload {

namespace {
bool is_byzantine(const std::vector<std::size_t>& ids, std::size_t id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}
}  // namespace

SyncOutcome run_sync_experiment(const SyncExperiment& e) {
  RBVC_REQUIRE(e.decision, "run_sync_experiment: missing decision rule");
  RBVC_REQUIRE(e.byzantine_ids.size() <= e.f,
               "run_sync_experiment: more faulty ids than the fault budget");
  RBVC_REQUIRE(e.honest_inputs.size() + e.byzantine_ids.size() == e.n,
               "run_sync_experiment: inputs + faulty ids must cover n");
  const std::size_t d = e.honest_inputs.front().size();

  sim::SyncEngine engine;
  engine.trace().set_enabled(e.capture_trace);
  if (e.record) {
    e.record->clear();
    engine.set_schedule_log(e.record);
  }
  Rng seeds(e.seed);
  // The authority outlives the engine run; only used for kDolevStrong.
  sim::SignatureAuthority authority(seeds.next_u64());
  std::vector<std::size_t> correct_ids;
  std::size_t next_input = 0;
  for (std::size_t id = 0; id < e.n; ++id) {
    if (is_byzantine(e.byzantine_ids, id)) {
      if (e.backend == SyncBackend::kEig) {
        engine.add(make_sync_byzantine(e.strategy, e.n, e.f, id, d,
                                       seeds.next_u64()));
      } else {
        engine.add(make_ds_byzantine(e.strategy, e.n, e.f, id, d,
                                     seeds.next_u64(),
                                     authority.signer_for(id), &authority));
      }
    } else {
      if (e.backend == SyncBackend::kEig) {
        engine.add(std::make_unique<protocols::EigConsensusProcess>(
            e.n, e.f, id, e.honest_inputs.at(next_input++), zeros(d),
            e.decision));
      } else {
        engine.add(std::make_unique<protocols::DolevStrongProcess>(
            e.n, e.f, id, e.honest_inputs.at(next_input++), zeros(d),
            e.decision, authority.signer_for(id), &authority));
      }
      correct_ids.push_back(id);
    }
  }

  SyncOutcome out;
  out.honest_inputs = e.honest_inputs;
  const std::size_t rounds =
      protocols::EigConsensusProcess::rounds_needed(e.f);  // f+2 for both
  try {
    out.stats = engine.run(rounds);
  } catch (const consensus::infeasible_instance& ex) {
    out.decision_failed = true;
    out.failure = ex.what();
    out.trace = engine.trace();
    return out;
  }
  out.trace = engine.trace();
  for (std::size_t id : correct_ids) {
    if (e.backend == SyncBackend::kEig) {
      out.decisions.push_back(
          dynamic_cast<protocols::EigConsensusProcess&>(engine.process(id))
              .decision());
    } else {
      out.decisions.push_back(
          dynamic_cast<protocols::DolevStrongProcess&>(engine.process(id))
              .decision());
    }
  }
  return out;
}

AsyncOutcome run_async_experiment(const AsyncExperiment& e) {
  RBVC_REQUIRE(e.honest_inputs.size() + e.byzantine_ids.size() == e.prm.n,
               "run_async_experiment: inputs + faulty ids must cover n");
  RBVC_REQUIRE(e.byzantine_ids.size() <= e.prm.f,
               "run_async_experiment: more faulty ids than the fault budget");

  Rng seeds(e.seed);
  // Always burn one seed draw for the scheduler so process seeds line up
  // between recorded runs and replays (which ignore the scheduler seed).
  const std::uint64_t sched_seed = seeds.next_u64();
  std::unique_ptr<sim::Scheduler> sched;
  if (e.replay) {
    sched = std::make_unique<sim::ReplayScheduler>(*e.replay);
  } else if (e.scheduler == SchedulerKind::kRandom) {
    sched = std::make_unique<sim::RandomScheduler>(sched_seed);
  } else {
    // Lag the Byzantine processes plus (arbitrarily) the highest correct id,
    // modelling "f slow correct processes" when there are no faults.
    std::vector<sim::ProcessId> laggards(e.byzantine_ids.begin(),
                                         e.byzantine_ids.end());
    if (laggards.empty() && e.prm.n > 0) laggards.push_back(e.prm.n - 1);
    sched = std::make_unique<sim::LaggardScheduler>(sched_seed,
                                                    std::move(laggards));
  }
  sim::AsyncEngine engine(std::move(sched));
  engine.trace().set_enabled(e.capture_trace);
  if (e.record) {
    e.record->clear();
    engine.set_schedule_log(e.record);
  }

  std::vector<sim::ProcessId> correct_ids;
  std::size_t next_input = 0;
  for (std::size_t id = 0; id < e.prm.n; ++id) {
    if (is_byzantine(e.byzantine_ids, id)) {
      engine.add(make_async_byzantine(e.strategy, e.prm, id, e.d,
                                      seeds.next_u64()));
    } else {
      engine.add(std::make_unique<consensus::AsyncAveragingProcess>(
          e.prm, id, e.honest_inputs.at(next_input++)));
      correct_ids.push_back(id);
    }
  }

  AsyncOutcome out;
  out.honest_inputs = e.honest_inputs;
  out.stats = engine.run(correct_ids, e.max_events);
  out.trace = engine.trace();
  for (sim::ProcessId id : correct_ids) {
    auto& p = dynamic_cast<consensus::AsyncAveragingProcess&>(
        engine.process(id));
    if (!p.decided() || p.failed()) {
      out.failed = true;
      continue;
    }
    out.decisions.push_back(p.decision());
    out.round0_deltas.push_back(p.round0_delta());
  }
  return out;
}

}  // namespace rbvc::workload
