#include "workload/runner.h"

#include <algorithm>

#include "consensus/algo_relaxed.h"
#include "consensus/exact_bvc.h"
#include "consensus/k_relaxed.h"
#include "hull/delta_star.h"
#include "hull/gamma.h"
#include "obs/metrics.h"
#include "sim/sync_engine.h"

namespace rbvc::workload {

namespace {
bool is_byzantine(const std::vector<std::size_t>& ids, std::size_t id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

// The effective adversary-decision source of a run: a live source wins,
// else a recorded log's kChoice subsequence replays, else every branch
// takes its first option. Holds the fallback objects so callers get one
// reference with the right lifetime (the run's scope).
struct ChoiceStack {
  ChoiceStack(mc::ChoiceSource* live, const sim::ScheduleLog* replay,
              sim::ScheduleLog* record)
      : replayer(replay),
        base(live != nullptr
                 ? *live
                 : (replay != nullptr ? static_cast<mc::ChoiceSource&>(replayer)
                                      : static_cast<mc::ChoiceSource&>(first))),
        recorder(base, record) {}

  mc::FirstChoice first;
  mc::ChoiceReplayer replayer;
  mc::ChoiceSource& base;
  mc::RecordingChoices recorder;  // the source handed to strategies
};

// Expensive derived metrics, gated on Registry::enabled(): how far the
// correct decisions actually sit outside the drop-f hulls of the honest
// inputs (the achieved delta), against delta*(honest inputs) -- the paper's
// Thm 9/12 yardstick. Both need LP solves, so never on the default path;
// a degenerate episode (f = 0, too few inputs, solver failure) just skips
// the gauges rather than failing the run.
void record_delta_gauges(const char* prefix, const std::vector<Vec>& decisions,
                         const std::vector<Vec>& honest_inputs,
                         std::size_t f) {
  obs::Registry& reg = obs::global();
  if (!reg.enabled() || decisions.empty()) return;
  if (f < 1 || honest_inputs.size() <= f) return;
  try {
    double achieved = 0.0;
    for (const Vec& dec : decisions) {
      achieved = std::max(achieved,
                          gamma_excess(dec, honest_inputs, f, /*p=*/2.0));
    }
    const double bound = delta_star_2(honest_inputs, f).value;
    reg.gauge(std::string(prefix) + ".achieved_delta").set(achieved);
    reg.gauge(std::string(prefix) + ".delta_star_bound").set(bound);
  } catch (const std::exception&) {
    // Diagnostics only: a solver failure here must not fail the episode.
  }
}
}  // namespace

protocols::DecisionFn make_decision(SyncRule rule, std::size_t f,
                                    std::size_t k) {
  switch (rule) {
    case SyncRule::kAlgoRelaxed:
      return consensus::algo_decision(f);
    case SyncRule::kExactBvc:
      return consensus::exact_bvc_decision(f);
    case SyncRule::kKRelaxed:
      return consensus::k_relaxed_decision(f, k);
    case SyncRule::kFirstResolved:
      return [](const std::vector<Vec>& s) { return s.front(); };
    case SyncRule::kCustom:
      break;
  }
  throw invalid_argument(
      "make_decision: SyncRule::kCustom has no factory; set "
      "SyncExperiment::decision instead");
}

SyncOutcome run_sync_experiment(const SyncExperiment& e) {
  obs::Registry& reg = obs::global();
  reg.counter("workload.sync.episodes").inc();
  obs::ScopedTimer timer(reg, "workload.sync.episode_seconds");
  const protocols::DecisionFn decision =
      e.decision ? e.decision : make_decision(e.rule, e.f, e.k);
  RBVC_REQUIRE(e.byzantine_ids.size() <= e.f,
               "run_sync_experiment: more faulty ids than the fault budget");
  RBVC_REQUIRE(e.honest_inputs.size() + e.byzantine_ids.size() == e.n,
               "run_sync_experiment: inputs + faulty ids must cover n");
  const std::size_t d = e.honest_inputs.front().size();

  sim::SyncEngine engine;
  engine.trace().set_enabled(e.capture_trace);
  if (e.record) {
    e.record->clear();
    engine.set_schedule_log(e.record);
  }
  Rng seeds(e.seed);
  ChoiceStack choices(e.choices, e.replay, e.record);
  // The authority outlives the engine run; only used for kDolevStrong.
  sim::SignatureAuthority authority(seeds.next_u64());
  std::vector<std::size_t> correct_ids;
  std::size_t next_input = 0;
  for (std::size_t id = 0; id < e.n; ++id) {
    if (is_byzantine(e.byzantine_ids, id)) {
      if (e.backend == SyncBackend::kEig) {
        engine.add(make_sync_byzantine(e.strategy, e.n, e.f, id, d,
                                       seeds.next_u64(), &choices.recorder));
      } else {
        engine.add(make_ds_byzantine(e.strategy, e.n, e.f, id, d,
                                     seeds.next_u64(),
                                     authority.signer_for(id), &authority,
                                     &choices.recorder));
      }
    } else {
      if (e.backend == SyncBackend::kEig) {
        engine.add(std::make_unique<protocols::EigConsensusProcess>(
            e.n, e.f, id, e.honest_inputs.at(next_input++), zeros(d),
            decision));
      } else {
        auto p = std::make_unique<protocols::DolevStrongProcess>(
            e.n, e.f, id, e.honest_inputs.at(next_input++), zeros(d),
            decision, authority.signer_for(id), &authority);
        p->set_validate_chains(e.validate_chains);
        engine.add(std::move(p));
      }
      correct_ids.push_back(id);
    }
  }

  SyncOutcome out;
  out.honest_inputs = e.honest_inputs;
  const std::size_t rounds =
      protocols::EigConsensusProcess::rounds_needed(e.f);  // f+2 for both
  try {
    out.stats = engine.run(rounds);
  } catch (const consensus::infeasible_instance& ex) {
    out.decision_failed = true;
    out.failure = ex.what();
    out.trace = engine.trace();
    return out;
  }
  out.trace = engine.trace();
  for (std::size_t id : correct_ids) {
    if (e.backend == SyncBackend::kEig) {
      out.decisions.push_back(
          dynamic_cast<protocols::EigConsensusProcess&>(engine.process(id))
              .decision());
    } else {
      out.decisions.push_back(
          dynamic_cast<protocols::DolevStrongProcess&>(engine.process(id))
              .decision());
    }
  }
  reg.histogram("workload.sync.decide_rounds", obs::count_buckets())
      .observe(static_cast<double>(out.stats.rounds));
  record_delta_gauges("workload.sync", out.decisions, out.honest_inputs, e.f);
  return out;
}

AsyncOutcome run_async_experiment(const AsyncExperiment& e) {
  obs::Registry& reg = obs::global();
  reg.counter("workload.async.episodes").inc();
  obs::ScopedTimer timer(reg, "workload.async.episode_seconds");
  RBVC_REQUIRE(e.honest_inputs.size() + e.byzantine_ids.size() == e.prm.n,
               "run_async_experiment: inputs + faulty ids must cover n");
  RBVC_REQUIRE(e.byzantine_ids.size() <= e.prm.f,
               "run_async_experiment: more faulty ids than the fault budget");

  Rng seeds(e.seed);
  ChoiceStack choices(e.choices, e.replay, e.record);
  // Always burn one seed draw for the scheduler so process seeds line up
  // between recorded runs and replays (which ignore the scheduler seed).
  const std::uint64_t sched_seed = seeds.next_u64();
  std::unique_ptr<sim::Scheduler> sched;
  if (e.choices != nullptr) {
    // A live source owns the scheduler decisions too (model checking);
    // picks route through the recorder, which forwards them unrecorded
    // because the engine logs its own picks.
    sched = std::make_unique<mc::SourceScheduler>(choices.recorder);
  } else if (e.replay) {
    sched = std::make_unique<sim::ReplayScheduler>(*e.replay);
  } else if (e.scheduler == SchedulerKind::kRandom) {
    sched = std::make_unique<sim::RandomScheduler>(sched_seed);
  } else {
    // Lag the Byzantine processes plus (arbitrarily) the highest correct id,
    // modelling "f slow correct processes" when there are no faults.
    std::vector<sim::ProcessId> laggards(e.byzantine_ids.begin(),
                                         e.byzantine_ids.end());
    if (laggards.empty() && e.prm.n > 0) laggards.push_back(e.prm.n - 1);
    sched = std::make_unique<sim::LaggardScheduler>(sched_seed,
                                                    std::move(laggards));
  }
  sim::AsyncEngine engine(std::move(sched));
  engine.trace().set_enabled(e.capture_trace);
  if (e.record) {
    e.record->clear();
    engine.set_schedule_log(e.record);
  }

  std::vector<sim::ProcessId> correct_ids;
  std::size_t next_input = 0;
  for (std::size_t id = 0; id < e.prm.n; ++id) {
    if (is_byzantine(e.byzantine_ids, id)) {
      engine.add(make_async_byzantine(e.strategy, e.prm, id, e.d,
                                      seeds.next_u64(), &choices.recorder));
    } else {
      engine.add(std::make_unique<consensus::AsyncAveragingProcess>(
          e.prm, id, e.honest_inputs.at(next_input++)));
      correct_ids.push_back(id);
    }
  }

  AsyncOutcome out;
  out.honest_inputs = e.honest_inputs;
  out.stats = engine.run(correct_ids, e.max_events);
  out.trace = engine.trace();
  for (sim::ProcessId id : correct_ids) {
    auto& p = dynamic_cast<consensus::AsyncAveragingProcess&>(
        engine.process(id));
    if (!p.decided() || p.failed()) {
      out.failed = true;
      continue;
    }
    out.decisions.push_back(p.decision());
    out.round0_deltas.push_back(p.round0_delta());
  }
  reg.histogram("workload.async.decide_deliveries", obs::count_buckets())
      .observe(static_cast<double>(out.stats.deliveries));
  if (!out.failed) {
    record_delta_gauges("workload.async", out.decisions, out.honest_inputs,
                        e.prm.f);
  }
  return out;
}

namespace {

/// A correct participant of a standalone RBC experiment: broadcasts its
/// input as instance 0 and records everything it delivers. Never reports
/// decided -- the experiment runs to network quiescence, which is the only
/// point where the RBC totality clause is checkable.
class RbcPeerProcess final : public sim::AsyncProcess {
 public:
  RbcPeerProcess(std::size_t n, std::size_t f, sim::ProcessId self, Vec input,
                 const protocols::BrachaRbc::Quorums& quorums,
                 bool broadcast = true)
      : rbc_(n, f, self), input_(std::move(input)), broadcast_(broadcast) {
    rbc_.override_quorums(quorums);
  }

  void init(sim::Outbox& out) override {
    if (broadcast_) rbc_.broadcast(0, input_, out);
  }
  void on_message(const sim::Message& m, sim::Outbox& out) override {
    for (auto& d : rbc_.on_message(m, out)) {
      deliveries_.push_back(std::move(d));
    }
  }
  bool decided() const override { return false; }

  const std::vector<protocols::BrachaRbc::Delivery>& deliveries() const {
    return deliveries_;
  }

 private:
  protocols::BrachaRbc rbc_;
  Vec input_;
  bool broadcast_;
  std::vector<protocols::BrachaRbc::Delivery> deliveries_;
};

}  // namespace

RbcOutcome run_rbc_experiment(const RbcExperiment& e) {
  obs::Registry& reg = obs::global();
  reg.counter("workload.rbc.episodes").inc();
  obs::ScopedTimer timer(reg, "workload.rbc.episode_seconds");
  RBVC_REQUIRE(e.honest_inputs.size() + e.byzantine_ids.size() == e.n,
               "run_rbc_experiment: inputs + faulty ids must cover n");
  RBVC_REQUIRE(e.byzantine_ids.size() <= e.f,
               "run_rbc_experiment: more faulty ids than the fault budget");
  RBVC_REQUIRE(!e.honest_inputs.empty(),
               "run_rbc_experiment: need at least one correct process");
  const std::size_t d = e.honest_inputs.front().size();

  Rng seeds(e.seed);
  ChoiceStack choices(e.choices, e.replay, e.record);
  // Same seed-derivation order as run_async_experiment, so schedules and
  // Byzantine randomness replay identically.
  const std::uint64_t sched_seed = seeds.next_u64();
  std::unique_ptr<sim::Scheduler> sched;
  if (e.choices != nullptr) {
    sched = std::make_unique<mc::SourceScheduler>(choices.recorder);
  } else if (e.replay) {
    sched = std::make_unique<sim::ReplayScheduler>(*e.replay);
  } else if (e.scheduler == SchedulerKind::kRandom) {
    sched = std::make_unique<sim::RandomScheduler>(sched_seed);
  } else {
    std::vector<sim::ProcessId> laggards(e.byzantine_ids.begin(),
                                         e.byzantine_ids.end());
    if (laggards.empty() && e.n > 0) laggards.push_back(e.n - 1);
    sched = std::make_unique<sim::LaggardScheduler>(sched_seed,
                                                    std::move(laggards));
  }
  sim::AsyncEngine engine(std::move(sched));
  engine.trace().set_enabled(e.capture_trace);
  if (e.record) {
    e.record->clear();
    engine.set_schedule_log(e.record);
  }

  std::vector<sim::ProcessId> correct_ids;
  std::size_t next_input = 0;
  for (std::size_t id = 0; id < e.n; ++id) {
    if (is_byzantine(e.byzantine_ids, id)) {
      Rng rng(seeds.next_u64());
      switch (e.strategy) {
        case AsyncStrategy::kSilent:
          engine.add(std::make_unique<SilentAsyncProcess>());
          break;
        case AsyncStrategy::kEquivocate:
          engine.add(std::make_unique<EquivocatingAsyncProcess>(
              e.n, id, scale(10.0, rng.normal_vec(d)),
              scale(-10.0, rng.normal_vec(d))));
          break;
        case AsyncStrategy::kOutlierInput:
          engine.add(std::make_unique<RbcPeerProcess>(
              e.n, e.f, id, scale(25.0, rng.normal_vec(d)),
              protocols::BrachaRbc::Quorums{}));
          break;
        case AsyncStrategy::kCrashMidway:
          engine.add(std::make_unique<CrashingAsyncProcess>(
              std::make_unique<RbcPeerProcess>(
                  e.n, e.f, id, rng.normal_vec(d),
                  protocols::BrachaRbc::Quorums{}),
              /*max_deliveries=*/10));
          break;
        case AsyncStrategy::kChoiceEquivocate:
          engine.add(std::make_unique<ChoiceEquivocatingAsyncProcess>(
              e.n, id, scale(10.0, rng.normal_vec(d)),
              scale(-10.0, rng.normal_vec(d)), &choices.recorder));
          break;
      }
    } else {
      const bool broadcast_all =
          e.broadcasters.size() == 1 &&
          e.broadcasters.front() == RbcExperiment::kBroadcastAll;
      const bool broadcasts =
          broadcast_all || std::find(e.broadcasters.begin(),
                                     e.broadcasters.end(),
                                     id) != e.broadcasters.end();
      engine.add(std::make_unique<RbcPeerProcess>(
          e.n, e.f, id, e.honest_inputs.at(next_input++), e.quorums,
          broadcasts));
      correct_ids.push_back(id);
    }
  }

  RbcOutcome out;
  out.honest_inputs = e.honest_inputs;
  out.correct_ids = correct_ids;
  // RbcPeerProcess::decided() is always false, so the run ends only at
  // quiescence (empty pool) or the event cap -- totality needs the former.
  out.stats = engine.run(correct_ids, e.max_events);
  out.trace = engine.trace();
  for (sim::ProcessId id : correct_ids) {
    out.deliveries.push_back(
        dynamic_cast<RbcPeerProcess&>(engine.process(id)).deliveries());
  }
  return out;
}

BroadcastOutcome run_broadcast_experiment(const BroadcastExperiment& e) {
  obs::Registry& reg = obs::global();
  reg.counter("workload.ds.episodes").inc();
  obs::ScopedTimer timer(reg, "workload.ds.episode_seconds");
  RBVC_REQUIRE(e.honest_inputs.size() + e.byzantine_ids.size() == e.n,
               "run_broadcast_experiment: inputs + faulty ids must cover n");
  RBVC_REQUIRE(e.byzantine_ids.size() <= e.f,
               "run_broadcast_experiment: more faulty ids than the budget");
  RBVC_REQUIRE(!e.honest_inputs.empty(),
               "run_broadcast_experiment: need at least one correct process");
  const std::size_t d = e.honest_inputs.front().size();

  sim::SyncEngine engine;
  engine.trace().set_enabled(e.capture_trace);
  if (e.record) {
    e.record->clear();
    engine.set_schedule_log(e.record);
  }
  Rng seeds(e.seed);
  ChoiceStack choices(e.choices, e.replay, e.record);
  sim::SignatureAuthority authority(seeds.next_u64());
  const protocols::DecisionFn resolve_only =
      make_decision(SyncRule::kFirstResolved, e.f);
  std::vector<std::size_t> correct_ids;
  std::size_t next_input = 0;
  for (std::size_t id = 0; id < e.n; ++id) {
    if (is_byzantine(e.byzantine_ids, id)) {
      engine.add(make_ds_byzantine(e.strategy, e.n, e.f, id, d,
                                   seeds.next_u64(), authority.signer_for(id),
                                   &authority, &choices.recorder));
    } else {
      auto p = std::make_unique<protocols::DolevStrongProcess>(
          e.n, e.f, id, e.honest_inputs.at(next_input++), zeros(d),
          resolve_only, authority.signer_for(id), &authority);
      p->set_validate_chains(e.validate_chains);
      engine.add(std::move(p));
      correct_ids.push_back(id);
    }
  }

  BroadcastOutcome out;
  out.honest_inputs = e.honest_inputs;
  out.correct_ids = correct_ids;
  out.stats =
      engine.run(protocols::DolevStrongProcess::rounds_needed(e.f));
  out.trace = engine.trace();
  for (std::size_t id : correct_ids) {
    out.resolved.push_back(
        dynamic_cast<protocols::DolevStrongProcess&>(engine.process(id))
            .resolved_inputs());
  }
  return out;
}

}  // namespace rbvc::workload
