// Declarative experiment runners: build an engine with the requested mix of
// correct and Byzantine processes, run it, and collect the correct
// processes' decisions plus verification-ready metadata. Used by tests,
// benches, and the examples.
#pragma once

#include "consensus/async_averaging.h"
#include "protocols/bracha_rbc.h"
#include "sim/async_engine.h"
#include "sim/schedule_log.h"
#include "workload/byzantine_strategies.h"

namespace rbvc::workload {

// ---------------------------------------------------------------------------
// Synchronous experiments (interactive consistency + decision rule).
// ---------------------------------------------------------------------------

/// Which broadcast substrate carries Step 1 of the synchronous algorithms.
///   kEig         -- unauthenticated EIG/OM broadcast, needs n >= 3f+1
///   kDolevStrong -- signature-authenticated broadcast, needs only
///                   n >= f+2 (the paper's footnote-3 regime)
enum class SyncBackend { kEig, kDolevStrong };

/// Serializable decision rules, so a SyncExperiment can round-trip through
/// a repro file (a raw DecisionFn closure cannot). kCustom means "the
/// `decision` field carries an arbitrary closure" and is rejected by the
/// repro serializer.
enum class SyncRule {
  kCustom = 0,
  kAlgoRelaxed = 1,    // consensus::algo_decision(f)
  kExactBvc = 2,       // consensus::exact_bvc_decision(f)
  kKRelaxed = 3,       // consensus::k_relaxed_decision(f, k)
  kFirstResolved = 4,  // first entry of the agreed multiset (broadcast-only)
};

/// Builds the DecisionFn for a serializable rule (throws on kCustom).
protocols::DecisionFn make_decision(SyncRule rule, std::size_t f,
                                    std::size_t k = 1);

struct SyncExperiment {
  std::size_t n = 0;
  std::size_t f = 0;                      // fault budget given to processes
  std::vector<Vec> honest_inputs;         // one per correct process
  std::vector<std::size_t> byzantine_ids; // actual faulty ids (size <= f)
  SyncStrategy strategy = SyncStrategy::kSilent;
  // Decision: either an arbitrary closure in `decision`, or (for harness
  // properties, which must serialize the experiment) a SyncRule. When
  // `decision` is empty the rule is used; kCustom then throws.
  protocols::DecisionFn decision;
  SyncRule rule = SyncRule::kCustom;
  std::size_t k = 1;                      // k for SyncRule::kKRelaxed
  SyncBackend backend = SyncBackend::kEig;
  // Fault injection (test-only): disable Dolev-Strong chain validation at
  // the correct processes, exposing them to forged-chain relays.
  bool validate_chains = true;
  std::uint64_t seed = 1;
  // Record/replay hooks (sync runs are deterministic given the config and
  // the adversary's choices, so the recorded log doubles as a divergence
  // checkpoint for re-runs). `record` captures round checkpoints (kRound)
  // and adversary choices (kChoice); `replay` re-executes the kChoice
  // subsequence of a recorded log through a mc::ChoiceReplayer.
  sim::ScheduleLog* record = nullptr;
  const sim::ScheduleLog* replay = nullptr;
  // Live decision source for choice-driven strategies (model checking).
  // Takes precedence over `replay`; null falls back to replay, then to
  // "always the first option".
  mc::ChoiceSource* choices = nullptr;
  bool capture_trace = false;  // when set, the outcome carries a Trace
};

struct SyncOutcome {
  std::vector<Vec> decisions;      // correct processes' outputs, id order
  std::vector<Vec> honest_inputs;  // echo of the experiment's inputs
  sim::SyncRunStats stats;
  sim::Trace trace;                // populated when capture_trace was set
  bool decision_failed = false;    // a decision rule threw (infeasible)
  std::string failure;             // its message
};

SyncOutcome run_sync_experiment(const SyncExperiment& e);

// ---------------------------------------------------------------------------
// Asynchronous experiments (Relaxed Verified Averaging and baseline).
// ---------------------------------------------------------------------------

enum class SchedulerKind { kRandom, kLaggard };

struct AsyncExperiment {
  consensus::AsyncAveragingProcess::Params prm;
  std::size_t d = 0;
  std::vector<Vec> honest_inputs;
  std::vector<std::size_t> byzantine_ids;
  AsyncStrategy strategy = AsyncStrategy::kSilent;
  SchedulerKind scheduler = SchedulerKind::kRandom;
  std::uint64_t seed = 1;
  std::size_t max_events = 2'000'000;
  // Record/replay hooks. `record` captures every scheduler pick into the
  // given log; `replay` substitutes a ReplayScheduler that re-executes the
  // given log (the `scheduler` kind is then only used to keep the seed
  // derivation identical to the recorded run). Both may be set at once,
  // e.g. to re-record the effective schedule of a shrunk replay.
  sim::ScheduleLog* record = nullptr;
  const sim::ScheduleLog* replay = nullptr;
  // Live decision source: when set it drives BOTH scheduler picks and the
  // adversary's choices (model checking); it takes precedence over
  // `replay` and the `scheduler` kind. Null falls back to replay for
  // choices, then to "always the first option".
  mc::ChoiceSource* choices = nullptr;
  bool capture_trace = false;  // when set, the outcome carries a Trace
};

struct AsyncOutcome {
  std::vector<Vec> decisions;       // correct processes' outputs, id order
  std::vector<Vec> honest_inputs;
  std::vector<double> round0_deltas;  // per correct process
  sim::AsyncRunStats stats;
  sim::Trace trace;     // populated when capture_trace was set
  bool failed = false;  // some correct process failed or did not decide
};

AsyncOutcome run_async_experiment(const AsyncExperiment& e);

// ---------------------------------------------------------------------------
// Standalone Bracha reliable-broadcast experiments: every correct process
// RBC-broadcasts its input (instance 0) and records what it delivers. The
// harness oracle checks the RBC contract directly -- no consensus layer on
// top -- so broadcast-substrate bugs shrink to broadcast-sized repros.
// ---------------------------------------------------------------------------

struct RbcExperiment {
  /// Sentinel for `broadcasters`: every correct process broadcasts.
  static constexpr std::size_t kBroadcastAll = static_cast<std::size_t>(-1);

  std::size_t n = 0;
  std::size_t f = 0;
  std::vector<Vec> honest_inputs;          // broadcast value per correct id
  std::vector<std::size_t> byzantine_ids;  // actual faulty ids (size <= f)
  AsyncStrategy strategy = AsyncStrategy::kSilent;
  SchedulerKind scheduler = SchedulerKind::kRandom;
  // Which correct ids broadcast their input as instance 0. The default
  // ({kBroadcastAll}) keeps the historical "everyone broadcasts" behavior;
  // an explicit list (possibly empty) restricts the senders, which bounds
  // the state space for exhaustive exploration. Non-broadcasting correct
  // processes still participate in every RBC instance (echo/ready relay).
  std::vector<std::size_t> broadcasters{kBroadcastAll};
  // Fault injection (test-only): vote-threshold overrides for the correct
  // processes' RBC instances (0 = protocol value).
  protocols::BrachaRbc::Quorums quorums;
  std::uint64_t seed = 1;
  std::size_t max_events = 500'000;
  // Record/replay hooks, as for AsyncExperiment; `choices` likewise drives
  // both scheduler picks and adversary choices when set.
  sim::ScheduleLog* record = nullptr;
  const sim::ScheduleLog* replay = nullptr;
  mc::ChoiceSource* choices = nullptr;
  bool capture_trace = false;
};

struct RbcOutcome {
  // Per correct process (in `correct_ids` order), its deliveries in the
  // order they happened.
  std::vector<std::vector<protocols::BrachaRbc::Delivery>> deliveries;
  std::vector<std::size_t> correct_ids;
  std::vector<Vec> honest_inputs;
  sim::AsyncRunStats stats;
  sim::Trace trace;  // populated when capture_trace was set
};

RbcOutcome run_rbc_experiment(const RbcExperiment& e);

// ---------------------------------------------------------------------------
// Standalone Dolev-Strong broadcast experiments: n parallel authenticated
// broadcasts (the interactive-consistency substrate), with the per-process
// resolved multisets exposed so the oracle can check the
// identical-extracted-sets lemma and per-source validity directly.
// ---------------------------------------------------------------------------

struct BroadcastExperiment {
  std::size_t n = 0;
  std::size_t f = 0;
  std::vector<Vec> honest_inputs;          // one per correct process
  std::vector<std::size_t> byzantine_ids;  // actual faulty ids (size <= f)
  SyncStrategy strategy = SyncStrategy::kSilent;
  // Fault injection (test-only): disable chain validation at the correct
  // processes (see protocols::DolevStrongProcess::set_validate_chains).
  bool validate_chains = true;
  std::uint64_t seed = 1;
  // Record/replay hooks, as for SyncExperiment: kRound checkpoints plus
  // kChoice adversary decisions in `record`; `replay`/`choices` drive the
  // choice-based strategies.
  sim::ScheduleLog* record = nullptr;
  const sim::ScheduleLog* replay = nullptr;
  mc::ChoiceSource* choices = nullptr;
  bool capture_trace = false;
};

struct BroadcastOutcome {
  // Per correct process (in `correct_ids` order), its resolved multiset --
  // one value per source instance, identical across correct processes when
  // the protocol holds.
  std::vector<std::vector<Vec>> resolved;
  std::vector<std::size_t> correct_ids;
  std::vector<Vec> honest_inputs;
  sim::SyncRunStats stats;
  sim::Trace trace;  // populated when capture_trace was set
};

BroadcastOutcome run_broadcast_experiment(const BroadcastExperiment& e);

}  // namespace rbvc::workload
