// Declarative experiment runners: build an engine with the requested mix of
// correct and Byzantine processes, run it, and collect the correct
// processes' decisions plus verification-ready metadata. Used by tests,
// benches, and the examples.
#pragma once

#include "consensus/async_averaging.h"
#include "sim/async_engine.h"
#include "sim/schedule_log.h"
#include "workload/byzantine_strategies.h"

namespace rbvc::workload {

// ---------------------------------------------------------------------------
// Synchronous experiments (interactive consistency + decision rule).
// ---------------------------------------------------------------------------

/// Which broadcast substrate carries Step 1 of the synchronous algorithms.
///   kEig         -- unauthenticated EIG/OM broadcast, needs n >= 3f+1
///   kDolevStrong -- signature-authenticated broadcast, needs only
///                   n >= f+2 (the paper's footnote-3 regime)
enum class SyncBackend { kEig, kDolevStrong };

struct SyncExperiment {
  std::size_t n = 0;
  std::size_t f = 0;                      // fault budget given to processes
  std::vector<Vec> honest_inputs;         // one per correct process
  std::vector<std::size_t> byzantine_ids; // actual faulty ids (size <= f)
  SyncStrategy strategy = SyncStrategy::kSilent;
  protocols::DecisionFn decision;
  SyncBackend backend = SyncBackend::kEig;
  std::uint64_t seed = 1;
  // Record/replay hooks (sync runs are deterministic given the config, so
  // the recorded log doubles as a divergence checkpoint for re-runs).
  sim::ScheduleLog* record = nullptr;  // when set, round checkpoints land here
  bool capture_trace = false;          // when set, the outcome carries a Trace
};

struct SyncOutcome {
  std::vector<Vec> decisions;      // correct processes' outputs, id order
  std::vector<Vec> honest_inputs;  // echo of the experiment's inputs
  sim::SyncRunStats stats;
  sim::Trace trace;                // populated when capture_trace was set
  bool decision_failed = false;    // a decision rule threw (infeasible)
  std::string failure;             // its message
};

SyncOutcome run_sync_experiment(const SyncExperiment& e);

// ---------------------------------------------------------------------------
// Asynchronous experiments (Relaxed Verified Averaging and baseline).
// ---------------------------------------------------------------------------

enum class SchedulerKind { kRandom, kLaggard };

struct AsyncExperiment {
  consensus::AsyncAveragingProcess::Params prm;
  std::size_t d = 0;
  std::vector<Vec> honest_inputs;
  std::vector<std::size_t> byzantine_ids;
  AsyncStrategy strategy = AsyncStrategy::kSilent;
  SchedulerKind scheduler = SchedulerKind::kRandom;
  std::uint64_t seed = 1;
  std::size_t max_events = 2'000'000;
  // Record/replay hooks. `record` captures every scheduler pick into the
  // given log; `replay` substitutes a ReplayScheduler that re-executes the
  // given log (the `scheduler` kind is then only used to keep the seed
  // derivation identical to the recorded run). Both may be set at once,
  // e.g. to re-record the effective schedule of a shrunk replay.
  sim::ScheduleLog* record = nullptr;
  const sim::ScheduleLog* replay = nullptr;
  bool capture_trace = false;  // when set, the outcome carries a Trace
};

struct AsyncOutcome {
  std::vector<Vec> decisions;       // correct processes' outputs, id order
  std::vector<Vec> honest_inputs;
  std::vector<double> round0_deltas;  // per correct process
  sim::AsyncRunStats stats;
  sim::Trace trace;     // populated when capture_trace was set
  bool failed = false;  // some correct process failed or did not decide
};

AsyncOutcome run_async_experiment(const AsyncExperiment& e);

}  // namespace rbvc::workload
