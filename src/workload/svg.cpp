#include "workload/svg.h"

#include <cstdio>
#include <fstream>

namespace rbvc::workload {

Point2 SvgScene::to_point(const Vec& v) {
  RBVC_REQUIRE(v.size() == 2, "SvgScene: vectors must be 2-D");
  return {v[0], v[1]};
}

void SvgScene::extend_bounds(const Point2& p) {
  min_x_ = std::min(min_x_, p.x);
  max_x_ = std::max(max_x_, p.x);
  min_y_ = std::min(min_y_, p.y);
  max_y_ = std::max(max_y_, p.y);
}

void SvgScene::add_points(const std::vector<Vec>& pts,
                          const std::string& color, const std::string& label,
                          double radius) {
  PointGroup g;
  for (const Vec& v : pts) {
    g.pts.push_back(to_point(v));
    extend_bounds(g.pts.back());
  }
  g.color = color;
  g.label = label;
  g.radius = radius;
  g.marker = false;
  groups_.push_back(std::move(g));
}

void SvgScene::add_polygon(const std::vector<Point2>& poly,
                           const std::string& color,
                           const std::string& label) {
  Polygon p;
  p.pts = poly;
  for (const Point2& v : poly) extend_bounds(v);
  p.color = color;
  p.label = label;
  polys_.push_back(std::move(p));
}

void SvgScene::add_hull(const std::vector<Vec>& pts, const std::string& color,
                        const std::string& label) {
  std::vector<Point2> raw;
  raw.reserve(pts.size());
  for (const Vec& v : pts) raw.push_back(to_point(v));
  add_polygon(convex_hull_2d(raw), color, label);
}

void SvgScene::add_marker(const Vec& p, const std::string& color,
                          const std::string& label) {
  PointGroup g;
  g.pts.push_back(to_point(p));
  extend_bounds(g.pts.back());
  g.color = color;
  g.label = label;
  g.radius = 7.0;
  g.marker = true;
  groups_.push_back(std::move(g));
}

std::string SvgScene::render() const {
  // Map logical coords to pixels with 10% padding; flip y (SVG grows down).
  const double span_x = std::max(1e-9, max_x_ - min_x_);
  const double span_y = std::max(1e-9, max_y_ - min_y_);
  const double span = std::max(span_x, span_y);
  const double pad = 0.1 * span;
  const double scale = size_px_ / (span + 2 * pad);
  auto px = [&](const Point2& p) {
    return Point2{(p.x - min_x_ + pad) * scale,
                  size_px_ - (p.y - min_y_ + pad) * scale};
  };

  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "<svg xmlns='http://www.w3.org/2000/svg' width='%d' "
                "height='%d' viewBox='0 0 %d %d'>\n",
                size_px_, size_px_, size_px_, size_px_);
  out += buf;
  out += "<rect width='100%' height='100%' fill='white'/>\n";

  for (const Polygon& poly : polys_) {
    if (poly.pts.empty()) continue;
    out += "<polygon points='";
    for (const Point2& v : poly.pts) {
      const Point2 q = px(v);
      std::snprintf(buf, sizeof(buf), "%.2f,%.2f ", q.x, q.y);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "' fill='%s' fill-opacity='0.15' stroke='%s' "
                  "stroke-width='2'><title>%s</title></polygon>\n",
                  poly.color.c_str(), poly.color.c_str(),
                  poly.label.c_str());
    out += buf;
  }
  for (const PointGroup& g : groups_) {
    for (const Point2& v : g.pts) {
      const Point2 q = px(v);
      if (g.marker) {
        std::snprintf(
            buf, sizeof(buf),
            "<circle cx='%.2f' cy='%.2f' r='%.1f' fill='%s' stroke='black' "
            "stroke-width='2'><title>%s</title></circle>\n",
            q.x, q.y, g.radius, g.color.c_str(), g.label.c_str());
      } else {
        std::snprintf(buf, sizeof(buf),
                      "<circle cx='%.2f' cy='%.2f' r='%.1f' fill='%s'>"
                      "<title>%s</title></circle>\n",
                      q.x, q.y, g.radius, g.color.c_str(), g.label.c_str());
      }
      out += buf;
    }
  }
  // Legend.
  double ly = 18.0;
  for (const PointGroup& g : groups_) {
    if (g.label.empty()) continue;
    std::snprintf(buf, sizeof(buf),
                  "<circle cx='14' cy='%.1f' r='5' fill='%s'/>"
                  "<text x='26' y='%.1f' font-size='13' "
                  "font-family='sans-serif'>%s</text>\n",
                  ly - 4, g.color.c_str(), ly, g.label.c_str());
    out += buf;
    ly += 18.0;
  }
  for (const Polygon& p : polys_) {
    if (p.label.empty()) continue;
    std::snprintf(buf, sizeof(buf),
                  "<rect x='9' y='%.1f' width='10' height='10' fill='%s' "
                  "fill-opacity='0.4'/><text x='26' y='%.1f' font-size='13' "
                  "font-family='sans-serif'>%s</text>\n",
                  ly - 12, p.color.c_str(), ly, p.label.c_str());
    out += buf;
    ly += 18.0;
  }
  out += "</svg>\n";
  return out;
}

bool SvgScene::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

}  // namespace rbvc::workload
