// Tiny SVG writer for 2-D scenes: input points, convex hulls, safe
// polygons, and decision points. Used by the examples to render what the
// consensus geometry actually did (e.g. the drone rendezvous picture) and
// by humans debugging adversarial instances. No dependencies; output is a
// self-contained .svg file.
#pragma once

#include <string>
#include <vector>

#include "geometry/poly2d.h"

namespace rbvc::workload {

class SvgScene {
 public:
  /// Logical coordinate bounds are computed from the added elements; the
  /// viewport adds 10% padding. `size_px` is the output square's side.
  explicit SvgScene(int size_px = 640) : size_px_(size_px) {}

  /// Scatter of points with a per-group color and label.
  void add_points(const std::vector<Vec>& pts, const std::string& color,
                  const std::string& label, double radius = 4.0);

  /// Closed polygon outline with translucent fill.
  void add_polygon(const std::vector<Point2>& poly, const std::string& color,
                   const std::string& label);

  /// Convex hull outline of the given points.
  void add_hull(const std::vector<Vec>& pts, const std::string& color,
                const std::string& label);

  /// A single highlighted point (e.g. the decision).
  void add_marker(const Vec& p, const std::string& color,
                  const std::string& label);

  /// Serializes the scene to SVG markup.
  std::string render() const;

  /// Convenience: render() to a file. Returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct PointGroup {
    std::vector<Point2> pts;
    std::string color, label;
    double radius;
    bool marker;
  };
  struct Polygon {
    std::vector<Point2> pts;
    std::string color, label;
  };

  void extend_bounds(const Point2& p);
  static Point2 to_point(const Vec& v);

  int size_px_;
  double min_x_ = 1e300, max_x_ = -1e300;
  double min_y_ = 1e300, max_y_ = -1e300;
  std::vector<PointGroup> groups_;
  std::vector<Polygon> polys_;
};

}  // namespace rbvc::workload
