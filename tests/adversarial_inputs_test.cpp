// Structural tests that the adversarial matrices match the paper exactly.
#include "workload/adversarial_inputs.h"

#include <gtest/gtest.h>

namespace rbvc::workload {
namespace {

TEST(AdversarialTest, Thm3MatrixLayout) {
  const double g = 2.0, eps = 0.5;
  const auto s = thm3_inputs(4, g, eps);
  ASSERT_EQ(s.size(), 5u);
  // Column 2 (0-indexed 1): first 1 element 0, then gamma, then epsilons.
  EXPECT_EQ(s[1], (Vec{0.0, g, eps, eps}));
  // Column 1: gamma then epsilons.
  EXPECT_EQ(s[0], (Vec{g, eps, eps, eps}));
  // Column d: zeros then gamma at the end.
  EXPECT_EQ(s[3], (Vec{0.0, 0.0, 0.0, g}));
  // Column d+1: all -gamma.
  EXPECT_EQ(s[4], (Vec{-g, -g, -g, -g}));
}

TEST(AdversarialTest, Thm3Validation) {
  EXPECT_THROW(thm3_inputs(2, 1.0, 0.5), invalid_argument);   // d < 3
  EXPECT_THROW(thm3_inputs(3, 1.0, 2.0), invalid_argument);   // eps > gamma
  EXPECT_THROW(thm3_inputs(3, 1.0, 0.0), invalid_argument);   // eps = 0
  EXPECT_NO_THROW(thm3_inputs(3, 1.0, 1.0));                  // eps = gamma ok
}

TEST(AdversarialTest, AppendixBMatrixLayout) {
  const double g = 2.0, eps = 0.5;
  const auto s = appendix_b_inputs(3, g, eps);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0], (Vec{g, 2 * eps, 2 * eps}));
  EXPECT_EQ(s[3], (Vec{-g, -g, -g}));
  EXPECT_EQ(s[4], (Vec{0.0, 0.0, 0.0}));
  EXPECT_THROW(appendix_b_inputs(3, 1.0, 0.5), invalid_argument);  // 2eps=gamma
}

TEST(AdversarialTest, Thm5MatrixLayout) {
  const auto s = thm5_inputs(3, 4.0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], (Vec{4.0, 0.0, 0.0}));
  EXPECT_EQ(s[2], (Vec{0.0, 0.0, 4.0}));
  EXPECT_EQ(s[3], (Vec{0.0, 0.0, 0.0}));
  EXPECT_THROW(thm5_inputs(3, -1.0), invalid_argument);
}

TEST(AdversarialTest, AppendixCMatrixLayout) {
  const auto s = appendix_c_inputs(3, 4.0);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[3], (Vec{0.0, 0.0, 0.0}));
  EXPECT_EQ(s[4], (Vec{0.0, 0.0, 0.0}));
}

TEST(AdversarialTest, AsyncProofSubsets) {
  const auto s = appendix_b_inputs(3, 2.0, 0.5);  // 5 inputs, first 4 used
  const auto subs = async_proof_subsets(s, 0);    // process 1 (0-indexed 0)
  // j ranges over {1,2,3} (0-indexed), each subset has m-1 = 3 elements.
  ASSERT_EQ(subs.size(), 3u);
  for (const auto& t : subs) EXPECT_EQ(t.size(), 3u);
  // The first subset is S^2 = {s_0, s_2, s_3} (0-indexed, j=1 removed).
  EXPECT_EQ(subs[0][0], s[0]);
  EXPECT_EQ(subs[0][1], s[2]);
  EXPECT_EQ(subs[0][2], s[3]);
  // Input s_4 (the "slow" process) never appears in any subset.
  for (const auto& t : subs) {
    for (const auto& v : t) EXPECT_NE(v, s[4]);
  }
}

}  // namespace
}  // namespace rbvc::workload
