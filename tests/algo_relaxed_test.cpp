// End-to-end tests for ALGO (paper Sec. 9): agreement plus the Theorem 9 /
// Theorem 12 delta bounds under live Byzantine behavior.
#include "consensus/algo_relaxed.h"

#include <gtest/gtest.h>

#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc::consensus {
namespace {

struct AlgoCase {
  workload::SyncStrategy strategy;
  std::uint64_t seed;
};

class AlgoStrategySweep : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(AlgoStrategySweep, Thm9BoundHolds) {
  // n = d+1 = 5, f = 1: ALGO must agree, and the achieved delta must be
  // within min(min-edge/2, max-edge/(n-2)) of the honest inputs (Thm 9).
  const auto param = GetParam();
  Rng rng(param.seed);
  workload::SyncExperiment e;
  e.n = 5;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 4, 4);
  e.byzantine_ids = {2};
  e.strategy = param.strategy;
  e.decision = algo_decision(1);
  e.seed = rng.next_u64();
  const auto out = run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  ASSERT_EQ(out.decisions.size(), 4u);
  EXPECT_TRUE(check_agreement(out.decisions).identical);

  const auto ee = edge_extremes(out.honest_inputs);
  const double bound = std::min(ee.min_edge / 2.0,
                                ee.max_edge / static_cast<double>(e.n - 2));
  EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs, bound,
                                    2.0),
            1e-6)
      << workload::to_string(param.strategy);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AlgoStrategySweep,
    ::testing::Values(AlgoCase{workload::SyncStrategy::kSilent, 401},
                      AlgoCase{workload::SyncStrategy::kEquivocate, 402},
                      AlgoCase{workload::SyncStrategy::kLyingRelay, 403},
                      AlgoCase{workload::SyncStrategy::kOutlierInput, 404},
                      AlgoCase{workload::SyncStrategy::kEquivocate, 405},
                      AlgoCase{workload::SyncStrategy::kOutlierInput, 406}),
    [](const auto& info) {
      std::string name = workload::to_string(info.param.strategy);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(info.param.seed);
    });

TEST(AlgoTest, DecisionMatchesDeltaStar) {
  Rng rng(409);
  const auto s = workload::random_simplex(rng, 3);
  const Vec p = algo_decision(1)(s);
  const auto ds = delta_star_2(s, 1);
  EXPECT_EQ(p, ds.point);
}

TEST(AlgoTest, WorksWithNoActualFaults) {
  // All n processes honest (f budget unused): output still valid and agreed.
  Rng rng(419);
  workload::SyncExperiment e;
  e.n = 4;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 4, 3);
  e.byzantine_ids = {};
  e.strategy = workload::SyncStrategy::kSilent;
  e.decision = algo_decision(1);
  const auto out = run_sync_experiment(e);
  ASSERT_EQ(out.decisions.size(), 4u);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  // With all-honest inputs, the multiset is the honest inputs themselves;
  // validity excess is bounded by the Thm 9 budget.
  const auto ee = edge_extremes(out.honest_inputs);
  const double bound = std::min(ee.min_edge / 2.0, ee.max_edge / 2.0);
  EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs, bound,
                                    2.0),
            1e-6);
}

TEST(AlgoTest, Thm12BoundForFTwo) {
  // f = 2, d = 3, n = (d+1)f = 8: delta must be < max-edge/(d-1) (Thm 12).
  Rng rng(421);
  workload::SyncExperiment e;
  e.n = 8;
  e.f = 2;
  e.honest_inputs = workload::gaussian_cloud(rng, 6, 3);
  e.byzantine_ids = {1, 6};
  e.strategy = workload::SyncStrategy::kEquivocate;
  e.decision = algo_decision(2);
  const auto out = run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  const auto ee = edge_extremes(out.honest_inputs);
  EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs,
                                    ee.max_edge / 2.0, 2.0),
            1e-5);
}

TEST(AlgoTest, LinfVariantValidity) {
  Rng rng(431);
  workload::SyncExperiment e;
  e.n = 5;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 4, 4);
  e.byzantine_ids = {0};
  e.strategy = workload::SyncStrategy::kOutlierInput;
  e.decision = algo_decision_linear(1, kInfNorm);
  const auto out = run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  // delta*_inf <= delta*_2 < min-edge/2 by Thm 9 + norm ordering.
  const auto ee = edge_extremes(out.honest_inputs);
  EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs,
                                    ee.min_edge / 2.0, kInfNorm),
            1e-6);
}

TEST(AlgoTest, DegenerateHonestInputsGiveExactValidity) {
  // Theorem 8: affinely dependent inputs -> delta* = 0 -> exact validity.
  Rng rng(433);
  workload::SyncExperiment e;
  e.n = 5;
  e.f = 1;
  e.honest_inputs = workload::degenerate_subspace(rng, 4, 5, 2);
  e.byzantine_ids = {4};
  e.strategy = workload::SyncStrategy::kSilent;
  e.decision = algo_decision(1);
  const auto out = run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  // Silent Byzantine resolves to the zero default; the multiset S is then
  // 4 coplanar points + origin. delta* may be nonzero if the origin is off
  // the plane -- but validity within the Thm 9 budget must still hold.
  const auto ee = edge_extremes(out.honest_inputs);
  const double bound = std::min(ee.min_edge / 2.0,
                                ee.max_edge / static_cast<double>(e.n - 2));
  EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs, bound,
                                    2.0),
            1e-6);
}

}  // namespace
}  // namespace rbvc::consensus
