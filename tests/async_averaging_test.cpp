// End-to-end tests for Relaxed Verified Averaging (paper Sec. 10).
#include "consensus/async_averaging.h"

#include <gtest/gtest.h>

#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc::consensus {
namespace {

using Rule = AsyncAveragingProcess::Round0Rule;

workload::AsyncExperiment base_experiment(Rng& rng, std::size_t n,
                                          std::size_t f, std::size_t d,
                                          Rule rule) {
  workload::AsyncExperiment e;
  e.prm.n = n;
  e.prm.f = f;
  e.prm.rounds = 8;
  e.prm.rule = rule;
  e.d = d;
  e.honest_inputs = workload::gaussian_cloud(rng, n - 1, d);
  e.byzantine_ids = {n - 1};
  e.strategy = workload::AsyncStrategy::kSilent;
  e.seed = rng.next_u64();
  return e;
}

TEST(AsyncAveragingTest, FaultFreeConvergence) {
  Rng rng(461);
  workload::AsyncExperiment e;
  e.prm.n = 4;
  e.prm.f = 1;
  e.prm.rounds = 10;
  e.prm.rule = Rule::kRelaxedL2;
  e.d = 3;
  e.honest_inputs = workload::gaussian_cloud(rng, 4, 3);
  const auto out = run_async_experiment(e);
  ASSERT_FALSE(out.failed);
  ASSERT_EQ(out.decisions.size(), 4u);
  EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.05));
}

TEST(AsyncAveragingTest, BelowClassicBoundWithRelaxation) {
  // n = 4 < (d+2)f+1 = 5 for d = 3: the relaxed rule still terminates with
  // epsilon-agreement and input-dependent validity (the paper's point).
  Rng rng(463);
  for (auto strat : {workload::AsyncStrategy::kSilent,
                     workload::AsyncStrategy::kEquivocate,
                     workload::AsyncStrategy::kOutlierInput}) {
    auto e = base_experiment(rng, 4, 1, 3, Rule::kRelaxedL2);
    e.strategy = strat;
    const auto out = run_async_experiment(e);
    ASSERT_FALSE(out.failed) << workload::to_string(strat);
    ASSERT_EQ(out.decisions.size(), 3u);
    EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.2))
        << workload::to_string(strat);
    // Theorem 15-flavoured validity: within kappa * max-edge of the honest
    // hull, kappa = 1 is generous for d = 3 (bound is 1/(d-1) = 0.5 plus
    // averaging slack).
    EXPECT_LT(delta_p_validity_excess(
                  out.decisions, out.honest_inputs,
                  input_dependent_delta(out.honest_inputs, 1.0), 2.0),
              1e-4)
        << workload::to_string(strat);
  }
}

TEST(AsyncAveragingTest, ExactBaselineAtItsBound) {
  // n = (d+2)f+1 = 5, d = 3: the exact rule works and gives exact validity.
  Rng rng(467);
  auto e = base_experiment(rng, 5, 1, 3, Rule::kExactGamma);
  e.strategy = workload::AsyncStrategy::kOutlierInput;
  const auto out = run_async_experiment(e);
  ASSERT_FALSE(out.failed);
  EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.2));
  for (double dl : out.round0_deltas) EXPECT_DOUBLE_EQ(dl, 0.0);
}

TEST(AsyncAveragingTest, MoreRoundsTightenAgreement) {
  Rng rng(479);
  const auto inputs = workload::gaussian_cloud(rng, 3, 3);
  double prev_spread = 1e300;
  for (std::size_t rounds : {2u, 6u, 12u}) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = rounds;
    e.prm.rule = Rule::kRelaxedL2;
    e.d = 3;
    e.honest_inputs = inputs;
    e.byzantine_ids = {0};
    e.strategy = workload::AsyncStrategy::kOutlierInput;
    e.seed = 555;  // same schedule family across rounds
    const auto out = run_async_experiment(e);
    ASSERT_FALSE(out.failed);
    const double spread = check_agreement(out.decisions).max_pairwise_linf;
    EXPECT_LE(spread, prev_spread * 1.5 + 1e-9) << rounds;
    prev_spread = spread;
  }
  EXPECT_LT(prev_spread, 0.05);
}

TEST(AsyncAveragingTest, LaggardScheduleStillTerminates) {
  Rng rng(487);
  auto e = base_experiment(rng, 5, 1, 3, Rule::kRelaxedL2);
  e.scheduler = workload::SchedulerKind::kLaggard;
  e.strategy = workload::AsyncStrategy::kSilent;
  const auto out = run_async_experiment(e);
  ASSERT_FALSE(out.failed);
  EXPECT_EQ(out.decisions.size(), 4u);
}

TEST(AsyncAveragingTest, LinfRuleWorks) {
  Rng rng(491);
  auto e = base_experiment(rng, 4, 1, 3, Rule::kRelaxedLinf);
  e.strategy = workload::AsyncStrategy::kOutlierInput;
  const auto out = run_async_experiment(e);
  ASSERT_FALSE(out.failed);
  EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.2));
}

TEST(AsyncAveragingTest, HistoryTracksRounds) {
  AsyncAveragingProcess::Params prm;
  prm.n = 4;
  prm.f = 1;
  prm.rounds = 3;
  AsyncAveragingProcess p(prm, 0, {1.0, 2.0});
  EXPECT_EQ(p.history().size(), 1u);  // input recorded up front
  EXPECT_FALSE(p.decided());
  EXPECT_THROW(p.decision(), invalid_argument);
}

TEST(AsyncAveragingTest, WitnessExchangeImprovesAgreement) {
  // Design-choice regression: disabling the witness common-core wait must
  // degrade one-round agreement in aggregate (n = 7, f = 2, outliers).
  auto sweep = [](bool witness) {
    double sum = 0.0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed);
      workload::AsyncExperiment e;
      e.prm.n = 7;
      e.prm.f = 2;
      e.prm.rounds = 1;
      e.prm.rule = Rule::kRelaxedL2;
      e.prm.use_witness = witness;
      e.d = 3;
      e.honest_inputs = workload::gaussian_cloud(rng, 5, 3);
      e.byzantine_ids = {1, 4};
      e.strategy = workload::AsyncStrategy::kOutlierInput;
      e.seed = seed * 31;
      const auto out = workload::run_async_experiment(e);
      if (!out.failed) {
        sum += check_agreement(out.decisions).max_pairwise_linf;
      }
    }
    return sum;
  };
  const double with_witness = sweep(true);
  const double without = sweep(false);
  EXPECT_LT(with_witness, without);
}

TEST(AsyncAveragingTest, ValidatesParams) {
  AsyncAveragingProcess::Params bad;
  bad.n = 3;
  bad.f = 1;
  EXPECT_THROW(AsyncAveragingProcess(bad, 0, {1.0}), invalid_argument);
  AsyncAveragingProcess::Params bad2;
  bad2.n = 4;
  bad2.f = 1;
  bad2.rounds = 0;
  EXPECT_THROW(AsyncAveragingProcess(bad2, 0, {1.0}), invalid_argument);
}

}  // namespace
}  // namespace rbvc::consensus
