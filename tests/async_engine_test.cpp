#include "sim/async_engine.h"

#include <gtest/gtest.h>

namespace rbvc::sim {
namespace {

// Echoes every "ping" once as "pong"; decides after hearing `need` pongs.
class EchoProcess final : public AsyncProcess {
 public:
  EchoProcess(std::size_t n, std::size_t need) : n_(n), need_(need) {}

  void init(Outbox& out) override {
    Message m;
    m.kind = "ping";
    out.broadcast(n_, m);
  }

  void on_message(const Message& m, Outbox& out) override {
    if (m.kind == "ping") {
      Message r;
      r.kind = "pong";
      out.send(m.from, std::move(r));
    } else if (m.kind == "pong") {
      ++pongs_;
    }
  }

  bool decided() const override { return pongs_ >= need_; }
  std::size_t pongs() const { return pongs_; }

 private:
  std::size_t n_, need_, pongs_ = 0;
};

TEST(AsyncEngineTest, AllMessagesEventuallyDelivered) {
  AsyncEngine e(std::make_unique<RandomScheduler>(1));
  for (int i = 0; i < 4; ++i) e.add(std::make_unique<EchoProcess>(4, 4));
  const auto stats = e.run({0, 1, 2, 3}, 10'000);
  EXPECT_TRUE(stats.all_decided);
  // 16 pings + 16 pongs.
  EXPECT_EQ(stats.sends, 32u);
}

TEST(AsyncEngineTest, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    AsyncEngine e(std::make_unique<RandomScheduler>(seed));
    for (int i = 0; i < 3; ++i) e.add(std::make_unique<EchoProcess>(3, 3));
    return e.run({0, 1, 2}, 10'000).deliveries;
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

TEST(AsyncEngineTest, EventLimitRespected) {
  AsyncEngine e(std::make_unique<RandomScheduler>(2));
  for (int i = 0; i < 4; ++i) {
    e.add(std::make_unique<EchoProcess>(4, 1'000'000));
  }
  const auto stats = e.run({0}, 10);
  EXPECT_EQ(stats.deliveries, 10u);
  EXPECT_FALSE(stats.all_decided);
}

TEST(AsyncEngineTest, LaggardSchedulerStillFair) {
  // Process 0 is lagged, but all its messages must eventually arrive.
  AsyncEngine e(std::make_unique<LaggardScheduler>(3, std::vector<ProcessId>{0}));
  for (int i = 0; i < 3; ++i) e.add(std::make_unique<EchoProcess>(3, 3));
  const auto stats = e.run({0, 1, 2}, 100'000);
  EXPECT_TRUE(stats.all_decided);
}

TEST(AsyncEngineTest, LaggardPrefersFastMessages) {
  // With two pending messages -- one lagged, one not -- the scheduler should
  // mostly pick the fast one first. Statistical check over many picks.
  LaggardScheduler sched(7, {0}, /*leak=*/0.0);
  Message lagged;
  lagged.from = 0;
  lagged.to = 1;
  Message fast;
  fast.from = 1;
  fast.to = 2;
  const std::vector<Message> pending = {lagged, fast};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sched.pick(pending), 1u);
  }
}

TEST(AsyncEngineTest, FromFieldIsStamped) {
  class Spoof final : public AsyncProcess {
   public:
    void init(Outbox& out) override {
      Message m;
      m.kind = "x";
      m.from = 42;  // attempt to spoof: the engine must overwrite this
      out.send(1, std::move(m));
    }
    void on_message(const Message& m, Outbox&) override {
      froms_.push_back(m.from);
    }
    bool decided() const override { return froms_.size() >= 2; }
    std::vector<ProcessId> froms_;
  };
  AsyncEngine e(std::make_unique<RandomScheduler>(4));
  e.add(std::make_unique<Spoof>());
  e.add(std::make_unique<Spoof>());
  e.run({1}, 100);
  const auto& p1 = dynamic_cast<Spoof&>(e.process(1));
  ASSERT_EQ(p1.froms_.size(), 2u);
  for (ProcessId from : p1.froms_) EXPECT_LT(from, 2u);
}

}  // namespace
}  // namespace rbvc::sim
