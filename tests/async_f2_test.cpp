// Asynchronous runs with f = 2: seven processes, two simultaneous Byzantine
// (mixed strategies), adversarial scheduling. Stresses the witness
// exchange's common-core property and the verification pipeline at a scale
// the f = 1 tests do not reach.
#include <gtest/gtest.h>

#include "consensus/async_averaging.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "sim/async_engine.h"
#include "workload/byzantine_strategies.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

using consensus::AsyncAveragingProcess;
using Rule = AsyncAveragingProcess::Round0Rule;

struct MixedOutcome {
  std::vector<Vec> decisions;
  std::vector<Vec> honest_inputs;
  bool all_decided = false;
};

// n = 7, f = 2, one Byzantine per strategy in `strategies`.
MixedOutcome run_mixed(const std::vector<workload::AsyncStrategy>& strategies,
                       std::size_t rounds, std::uint64_t seed,
                       bool laggard = false) {
  const std::size_t n = 7, f = 2, d = 3;
  Rng rng(seed);
  AsyncAveragingProcess::Params prm;
  prm.n = n;
  prm.f = f;
  prm.rounds = rounds;
  prm.rule = Rule::kRelaxedL2;

  std::unique_ptr<sim::Scheduler> sched;
  if (laggard) {
    sched = std::make_unique<sim::LaggardScheduler>(
        rng.next_u64(), std::vector<sim::ProcessId>{0, 6});
  } else {
    sched = std::make_unique<sim::RandomScheduler>(rng.next_u64());
  }
  sim::AsyncEngine engine(std::move(sched));

  MixedOutcome out;
  std::vector<sim::ProcessId> correct;
  for (std::size_t id = 0; id < n; ++id) {
    if (id < strategies.size()) {
      engine.add(workload::make_async_byzantine(strategies[id], prm, id, d,
                                                rng.next_u64()));
    } else {
      out.honest_inputs.push_back(rng.normal_vec(d));
      engine.add(std::make_unique<AsyncAveragingProcess>(
          prm, id, out.honest_inputs.back()));
      correct.push_back(id);
    }
  }
  const auto stats = engine.run(correct, 3'000'000);
  out.all_decided = stats.all_decided;
  for (auto id : correct) {
    auto& p = dynamic_cast<AsyncAveragingProcess&>(engine.process(id));
    if (p.decided() && !p.failed()) out.decisions.push_back(p.decision());
  }
  return out;
}

TEST(AsyncF2Test, TwoSilentByzantine) {
  const auto out = run_mixed(
      {workload::AsyncStrategy::kSilent, workload::AsyncStrategy::kSilent},
      6, 71);
  ASSERT_TRUE(out.all_decided);
  ASSERT_EQ(out.decisions.size(), 5u);
  EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.1));
  EXPECT_LT(delta_p_validity_excess(
                out.decisions, out.honest_inputs,
                input_dependent_delta(out.honest_inputs, 1.0), 2.0),
            1e-4);
}

TEST(AsyncF2Test, MixedEquivocatorAndOutlier) {
  const auto out = run_mixed({workload::AsyncStrategy::kEquivocate,
                              workload::AsyncStrategy::kOutlierInput},
                             6, 73);
  ASSERT_TRUE(out.all_decided);
  EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.1));
  EXPECT_LT(delta_p_validity_excess(
                out.decisions, out.honest_inputs,
                input_dependent_delta(out.honest_inputs, 1.0), 2.0),
            1e-4);
}

TEST(AsyncF2Test, CrashPlusEquivocatorUnderLaggardSchedule) {
  const auto out = run_mixed({workload::AsyncStrategy::kCrashMidway,
                              workload::AsyncStrategy::kEquivocate},
                             5, 79, /*laggard=*/true);
  ASSERT_TRUE(out.all_decided);
  EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.2));
}

TEST(AsyncF2Test, BelowClassicBoundForD3) {
  // n = 7 = 3f+1 < (d+2)f+1 = 11 for d = 3, f = 2: the relaxed algorithm
  // operates four processes below the classic asynchronous requirement.
  const auto out = run_mixed({workload::AsyncStrategy::kOutlierInput,
                              workload::AsyncStrategy::kSilent},
                             6, 83);
  ASSERT_TRUE(out.all_decided);
  EXPECT_EQ(out.decisions.size(), 5u);
}

}  // namespace
}  // namespace rbvc
