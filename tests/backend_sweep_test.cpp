// Cross-product sweep: {EIG, Dolev-Strong} x Byzantine strategies x
// decision rules. Whatever the backend and adversary, agreement must be
// bitwise and validity must stay inside the theorem budget.
#include <gtest/gtest.h>

#include "consensus/algo_relaxed.h"
#include "consensus/exact_bvc.h"
#include "consensus/k_relaxed.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc {
namespace {

struct SweepCase {
  workload::SyncBackend backend;
  workload::SyncStrategy strategy;
  std::uint64_t seed;
};

class BackendStrategySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BackendStrategySweep, AlgoKeepsGuarantees) {
  const auto param = GetParam();
  Rng rng(param.seed);
  workload::SyncExperiment e;
  // DS works from n = f+2; EIG needs 3f+1. Use n = 4 so both apply.
  e.n = 4;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 3, 3);
  e.byzantine_ids = {1};
  e.strategy = param.strategy;
  e.backend = param.backend;
  e.decision = consensus::algo_decision(1);
  e.seed = rng.next_u64();
  const auto out = workload::run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  ASSERT_EQ(out.decisions.size(), 3u);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  // Generic input-dependent budget (kappa = 1): max honest edge.
  EXPECT_LT(delta_p_validity_excess(
                out.decisions, out.honest_inputs,
                input_dependent_delta(out.honest_inputs, 1.0), 2.0),
            1e-6);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 5000;
  for (auto backend : {workload::SyncBackend::kEig,
                       workload::SyncBackend::kDolevStrong}) {
    for (auto strategy :
         {workload::SyncStrategy::kSilent, workload::SyncStrategy::kEquivocate,
          workload::SyncStrategy::kLyingRelay,
          workload::SyncStrategy::kOutlierInput,
          workload::SyncStrategy::kCrashMidway}) {
      cases.push_back({backend, strategy, ++seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BackendStrategySweep, ::testing::ValuesIn(sweep_cases()),
    [](const auto& info) {
      std::string name =
          info.param.backend == workload::SyncBackend::kEig ? "eig_" : "ds_";
      name += workload::to_string(info.param.strategy);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BackendSweepTest, DsSupportsAllDecisionRules) {
  // The backend is orthogonal to the decision rule: exact BVC and
  // k-relaxed run over Dolev-Strong too (given enough processes for their
  // geometry).
  Rng rng(6001);
  workload::SyncExperiment e;
  e.n = 5;  // (d+1)f+1 for d = 3
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 4, 3);
  e.byzantine_ids = {4};
  e.strategy = workload::SyncStrategy::kOutlierInput;
  e.backend = workload::SyncBackend::kDolevStrong;

  e.decision = consensus::exact_bvc_decision(1);
  const auto exact_out = workload::run_sync_experiment(e);
  ASSERT_FALSE(exact_out.decision_failed);
  EXPECT_TRUE(
      check_exact_validity(exact_out.decisions, exact_out.honest_inputs,
                           1e-6));

  e.decision = consensus::k_relaxed_decision(1, 2);
  const auto k_out = workload::run_sync_experiment(e);
  ASSERT_FALSE(k_out.decision_failed);
  EXPECT_TRUE(check_k_validity(k_out.decisions, k_out.honest_inputs, 2,
                               1e-6));
}

TEST(BackendSweepTest, BackendsAgreeOnFaultFreeDecision) {
  // With no actual faults both backends produce the identical multiset,
  // hence the identical decision.
  Rng rng(6007);
  const auto inputs = workload::gaussian_cloud(rng, 4, 3);
  Vec eig_decision, ds_decision;
  for (auto backend : {workload::SyncBackend::kEig,
                       workload::SyncBackend::kDolevStrong}) {
    workload::SyncExperiment e;
    e.n = 4;
    e.f = 1;
    e.honest_inputs = inputs;
    e.byzantine_ids = {};
    e.backend = backend;
    e.decision = consensus::algo_decision(1);
    const auto out = workload::run_sync_experiment(e);
    ASSERT_EQ(out.decisions.size(), 4u);
    (backend == workload::SyncBackend::kEig ? eig_decision : ds_decision) =
        out.decisions.front();
  }
  EXPECT_EQ(eig_decision, ds_decision);
}

}  // namespace
}  // namespace rbvc
