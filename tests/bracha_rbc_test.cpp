#include "protocols/bracha_rbc.h"

#include <gtest/gtest.h>

namespace rbvc::protocols {
namespace {

// Minimal host process that drives a BrachaRbc component and records
// deliveries.
class RbcHost final : public sim::AsyncProcess {
 public:
  RbcHost(std::size_t n, std::size_t f, ProcessId self,
          std::optional<Vec> to_broadcast)
      : rbc_(n, f, self), to_broadcast_(std::move(to_broadcast)) {}

  void init(Outbox& out) override {
    if (to_broadcast_) rbc_.broadcast(0, *to_broadcast_, out);
  }

  void on_message(const Message& m, Outbox& out) override {
    for (auto& d : rbc_.on_message(m, out)) {
      deliveries_.push_back(std::move(d));
    }
  }

  bool decided() const override { return !deliveries_.empty(); }
  const std::vector<BrachaRbc::Delivery>& deliveries() const {
    return deliveries_;
  }

 private:
  BrachaRbc rbc_;
  std::optional<Vec> to_broadcast_;
  std::vector<BrachaRbc::Delivery> deliveries_;
};

// Sends INIT value A to the first half and B to the second half.
class EquivocatingSource final : public sim::AsyncProcess {
 public:
  EquivocatingSource(std::size_t n, ProcessId self, Vec a, Vec b)
      : n_(n), self_(self), a_(std::move(a)), b_(std::move(b)) {}
  void init(Outbox& out) override {
    for (ProcessId p = 0; p < n_; ++p) {
      Message m;
      m.kind = "rbc";
      m.meta = {static_cast<int>(self_), 0, 0};
      m.payload = (p < n_ / 2) ? a_ : b_;
      out.send(p, std::move(m));
    }
  }
  void on_message(const Message&, Outbox&) override {}
  bool decided() const override { return true; }

 private:
  std::size_t n_;
  ProcessId self_;
  Vec a_, b_;
};

TEST(BrachaTest, CorrectSourceDeliversEverywhere) {
  const std::size_t n = 4, f = 1;
  sim::AsyncEngine e(std::make_unique<sim::RandomScheduler>(61));
  const Vec v = {1.0, 2.0};
  e.add(std::make_unique<RbcHost>(n, f, 0, v));
  for (ProcessId id = 1; id < n; ++id) {
    e.add(std::make_unique<RbcHost>(n, f, id, std::nullopt));
  }
  const auto stats = e.run({0, 1, 2, 3}, 100'000);
  ASSERT_TRUE(stats.all_decided);
  for (ProcessId id = 0; id < n; ++id) {
    const auto& ds = dynamic_cast<RbcHost&>(e.process(id)).deliveries();
    ASSERT_EQ(ds.size(), 1u) << "id " << id;
    EXPECT_EQ(ds[0].source, 0u);
    EXPECT_EQ(ds[0].value, v);
  }
}

TEST(BrachaTest, NoEquivocationAcrossDeliveries) {
  // With an equivocating source, either nobody delivers or everyone who
  // delivers agrees. Run several seeds; record observed behaviors.
  const std::size_t n = 4, f = 1;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sim::AsyncEngine e(std::make_unique<sim::RandomScheduler>(seed));
    e.add(std::make_unique<EquivocatingSource>(n, 0, Vec{1.0}, Vec{2.0}));
    for (ProcessId id = 1; id < n; ++id) {
      e.add(std::make_unique<RbcHost>(n, f, id, std::nullopt));
    }
    e.run({1, 2, 3}, 50'000);
    std::vector<Vec> delivered;
    for (ProcessId id = 1; id < n; ++id) {
      for (const auto& d :
           dynamic_cast<RbcHost&>(e.process(id)).deliveries()) {
        delivered.push_back(d.value);
      }
    }
    for (std::size_t i = 1; i < delivered.size(); ++i) {
      EXPECT_EQ(delivered[i], delivered[0]) << "seed " << seed;
    }
  }
}

TEST(BrachaTest, ExtraMetadataCarriedThrough) {
  const std::size_t n = 4, f = 1;
  sim::AsyncEngine e(std::make_unique<sim::RandomScheduler>(67));
  class ExtraHost final : public sim::AsyncProcess {
   public:
    ExtraHost(std::size_t n, std::size_t f, ProcessId self, bool source)
        : rbc_(n, f, self), source_(source) {}
    void init(Outbox& out) override {
      if (source_) rbc_.broadcast(3, {9.0}, out, {7, 8});
    }
    void on_message(const Message& m, Outbox& out) override {
      for (auto& d : rbc_.on_message(m, out)) delivered_.push_back(d);
    }
    bool decided() const override { return !delivered_.empty(); }
    BrachaRbc rbc_;
    bool source_;
    std::vector<BrachaRbc::Delivery> delivered_;
  };
  e.add(std::make_unique<ExtraHost>(n, f, 0, true));
  for (ProcessId id = 1; id < n; ++id) {
    e.add(std::make_unique<ExtraHost>(n, f, id, false));
  }
  ASSERT_TRUE(e.run({0, 1, 2, 3}, 100'000).all_decided);
  for (ProcessId id = 0; id < n; ++id) {
    const auto& ds = dynamic_cast<ExtraHost&>(e.process(id)).delivered_;
    ASSERT_EQ(ds.size(), 1u);
    EXPECT_EQ(ds[0].instance, 3);
    EXPECT_EQ(ds[0].extra, (std::vector<int>{7, 8}));
  }
}

TEST(BrachaTest, SpoofedInitIgnored) {
  // A process claiming to be the source of someone else's instance: the
  // from-check must drop it (no echo storm, no delivery).
  const std::size_t n = 4, f = 1;
  class Spoofer final : public sim::AsyncProcess {
   public:
    explicit Spoofer(std::size_t n) : n_(n) {}
    void init(Outbox& out) override {
      Message m;
      m.kind = "rbc";
      m.meta = {2, 0, 0};  // pretend process 2 initiated
      m.payload = {5.0};
      for (ProcessId p = 0; p < n_; ++p) {
        Message c = m;
        out.send(p, std::move(c));
      }
    }
    void on_message(const Message&, Outbox&) override {}
    bool decided() const override { return true; }
    std::size_t n_;
  };
  sim::AsyncEngine e(std::make_unique<sim::RandomScheduler>(71));
  e.add(std::make_unique<Spoofer>(n));
  for (ProcessId id = 1; id < n; ++id) {
    e.add(std::make_unique<RbcHost>(n, f, id, std::nullopt));
  }
  e.run({1, 2, 3}, 50'000);
  for (ProcessId id = 1; id < n; ++id) {
    EXPECT_TRUE(dynamic_cast<RbcHost&>(e.process(id)).deliveries().empty());
  }
}

TEST(BrachaTest, RequiresQuorum) {
  EXPECT_THROW(BrachaRbc(3, 1, 0), invalid_argument);
}

TEST(BrachaTest, MessageCountPerBroadcast) {
  BrachaRbc rbc(4, 1, 0);
  class NullOutbox final : public Outbox {
   public:
    void send(ProcessId, Message) override { ++count; }
    std::size_t count = 0;
  } out;
  rbc.broadcast(0, {1.0}, out);
  EXPECT_EQ(rbc.sent(), 4u);  // INIT to everyone
}

}  // namespace
}  // namespace rbvc::protocols
