#include "workload/byzantine_strategies.h"

#include <gtest/gtest.h>

#include "consensus/algo_relaxed.h"
#include "consensus/verifier.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc::workload {
namespace {

TEST(StrategiesTest, Names) {
  EXPECT_STREQ(to_string(SyncStrategy::kSilent), "silent");
  EXPECT_STREQ(to_string(SyncStrategy::kEquivocate), "equivocate");
  EXPECT_STREQ(to_string(SyncStrategy::kLyingRelay), "lying-relay");
  EXPECT_STREQ(to_string(SyncStrategy::kOutlierInput), "outlier-input");
  EXPECT_STREQ(to_string(AsyncStrategy::kSilent), "silent");
  EXPECT_STREQ(to_string(AsyncStrategy::kEquivocate), "equivocate");
  EXPECT_STREQ(to_string(AsyncStrategy::kOutlierInput), "outlier-input");
}

TEST(StrategiesTest, FactoriesProduceProcesses) {
  for (auto s : {SyncStrategy::kSilent, SyncStrategy::kEquivocate,
                 SyncStrategy::kLyingRelay, SyncStrategy::kOutlierInput}) {
    EXPECT_NE(make_sync_byzantine(s, 4, 1, 0, 3, 1), nullptr);
  }
  consensus::AsyncAveragingProcess::Params prm;
  prm.n = 4;
  prm.f = 1;
  for (auto s : {AsyncStrategy::kSilent, AsyncStrategy::kEquivocate,
                 AsyncStrategy::kOutlierInput}) {
    EXPECT_NE(make_async_byzantine(s, prm, 0, 3, 1), nullptr);
  }
}

TEST(StrategiesTest, EquivocatorSendsDifferentValues) {
  EquivocatingSyncProcess p(4, 1, 0, {1.0, 1.0}, zeros(2), 2.0);
  // Hooks are protected; observe behavior through a run instead: the
  // equivocator is exercised end-to-end in om_broadcast_test. Here just
  // check it is constructible and initially undecided.
  EXPECT_FALSE(p.decided());
}

TEST(StrategiesTest, SweepNeverBreaksAlgoValidity) {
  // Property sweep: whatever the strategy and seed, ALGO's validity bound
  // holds. This is the "no strategy in our zoo beats the theorem" test.
  Rng rng(521);
  for (auto strat : {SyncStrategy::kSilent, SyncStrategy::kEquivocate,
                     SyncStrategy::kLyingRelay, SyncStrategy::kOutlierInput}) {
    for (int rep = 0; rep < 3; ++rep) {
      SyncExperiment e;
      e.n = 5;
      e.f = 1;
      e.honest_inputs = gaussian_cloud(rng, 4, 4);
      e.byzantine_ids = {rng.below(5)};
      e.strategy = strat;
      e.decision = consensus::algo_decision(1);
      e.seed = rng.next_u64();
      const auto out = run_sync_experiment(e);
      ASSERT_FALSE(out.decision_failed);
      EXPECT_TRUE(check_agreement(out.decisions).identical)
          << to_string(strat) << " rep " << rep;
      const auto ee = edge_extremes(out.honest_inputs);
      const double bound = std::min(ee.min_edge / 2.0, ee.max_edge / 3.0);
      EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs,
                                        bound, 2.0),
                1e-6)
          << to_string(strat) << " rep " << rep;
    }
  }
}

TEST(StrategiesTest, RunnerValidation) {
  SyncExperiment e;
  e.n = 4;
  e.f = 1;
  e.honest_inputs = {{1.0}, {2.0}};  // only 2 inputs for n=4 with 1 byz
  e.byzantine_ids = {0};
  e.decision = consensus::algo_decision(1);
  EXPECT_THROW(run_sync_experiment(e), invalid_argument);
  SyncExperiment e2;
  e2.n = 4;
  e2.f = 1;
  e2.honest_inputs = {{1.0}, {2.0}};
  e2.byzantine_ids = {0, 1};  // exceeds f
  e2.decision = consensus::algo_decision(1);
  EXPECT_THROW(run_sync_experiment(e2), invalid_argument);
}

}  // namespace
}  // namespace rbvc::workload
