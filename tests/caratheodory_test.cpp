#include "geometry/caratheodory.h"

#include <gtest/gtest.h>

#include "linalg/qr.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(NullspaceTest, FindsKernelVector) {
  // Rank-2 matrix in R^{2x3}: kernel is 1-dimensional.
  const Matrix a = Matrix::from_rows({{1.0, 0.0, 1.0}, {0.0, 1.0, 1.0}});
  const auto x = nullspace_vector(a);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(norm2(*x), 1.0, 1e-12);
  EXPECT_LT(norm2(a * *x), 1e-10);
}

TEST(NullspaceTest, FullRankHasNone) {
  EXPECT_FALSE(nullspace_vector(Matrix::identity(3)).has_value());
  const Matrix tall = Matrix::from_rows({{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}});
  EXPECT_FALSE(nullspace_vector(tall).has_value());
}

TEST(NullspaceTest, RandomRankDeficient) {
  Rng rng(1013);
  for (int rep = 0; rep < 20; ++rep) {
    // 4 rows, 7 columns: kernel guaranteed.
    Matrix a(4, 7);
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 7; ++c) a(r, c) = rng.normal();
    }
    const auto x = nullspace_vector(a);
    ASSERT_TRUE(x.has_value()) << "rep " << rep;
    EXPECT_LT(norm2(a * *x), 1e-8) << "rep " << rep;
  }
}

TEST(CaratheodoryTest, ReducesToAtMostDPlus1Points) {
  Rng rng(1019);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t d = 2 + rep % 3;
    const std::size_t n = 2 * d + 4;  // far more points than d+1
    const auto s = workload::gaussian_cloud(rng, n, d);
    // Build u as a dense convex combination of ALL points.
    Vec u = zeros(d);
    for (const Vec& p : s) axpy(1.0 / double(n), p, u);
    const auto red = caratheodory_reduce(u, s, 1e-9);
    ASSERT_TRUE(red.has_value()) << "rep " << rep;
    EXPECT_LE(red->support.size(), d + 1) << "rep " << rep;
    // Reconstruction.
    Vec recon = zeros(d);
    double sum = 0.0;
    for (std::size_t j = 0; j < red->support.size(); ++j) {
      EXPECT_GT(red->coeffs[j], 0.0);
      axpy(red->coeffs[j], s[red->support[j]], recon);
      sum += red->coeffs[j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_LT(dist2(recon, u), 1e-6) << "rep " << rep;
  }
}

TEST(CaratheodoryTest, OutsidePointRejected) {
  const std::vector<Vec> sq = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  EXPECT_FALSE(caratheodory_reduce({2.0, 2.0}, sq).has_value());
}

TEST(CaratheodoryTest, VertexIsItsOwnSupport) {
  const std::vector<Vec> sq = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  const auto red = caratheodory_reduce({1.0, 1.0}, sq);
  ASSERT_TRUE(red.has_value());
  EXPECT_LE(red->support.size(), 3u);
  Vec recon = zeros(2);
  for (std::size_t j = 0; j < red->support.size(); ++j) {
    axpy(red->coeffs[j], sq[red->support[j]], recon);
  }
  EXPECT_TRUE(approx_equal(recon, {1.0, 1.0}, 1e-8));
}

TEST(HellyTest, TheoremHoldsOnRandomFamilies) {
  // Helly: in R^d, if every d+1 of the convex sets intersect, all do.
  // Generate random polytope families and assert the implication.
  Rng rng(1021);
  int premise_true = 0;
  for (int rep = 0; rep < 25; ++rep) {
    const std::size_t d = 2;
    std::vector<std::vector<Vec>> sets;
    const std::size_t m = 4 + rep % 3;
    for (std::size_t i = 0; i < m; ++i) {
      // Triangles around a drifting center: sometimes all intersect,
      // sometimes not.
      Vec c = scale(0.4, rng.normal_vec(d));
      std::vector<Vec> tri;
      for (int v = 0; v < 3; ++v) {
        tri.push_back(add(c, scale(2.5, rng.normal_vec(d))));
      }
      sets.push_back(std::move(tri));
    }
    const auto check = helly_check(sets);
    if (check.every_d_plus_1_intersect) {
      ++premise_true;
      EXPECT_TRUE(check.all_intersect) << "HELLY VIOLATION at rep " << rep;
    }
  }
  EXPECT_GT(premise_true, 0);  // the test exercised the implication
}

TEST(HellyTest, SmallFamiliesDegenerate) {
  const std::vector<Vec> a = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const auto check = helly_check({a, a});
  EXPECT_TRUE(check.all_intersect);
  EXPECT_TRUE(check.every_d_plus_1_intersect);
}

}  // namespace
}  // namespace rbvc
