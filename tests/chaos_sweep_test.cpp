// Chaos sweep: randomized end-to-end runs across (n, f, d, workload shape,
// strategy, backend, faulty-id placement), asserting the universal
// guarantees on every draw. This is the closest thing to fuzzing a
// consensus stack admits.
#include <gtest/gtest.h>

#include "consensus/algo_relaxed.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc {
namespace {

workload::SyncStrategy pick_strategy(Rng& rng) {
  constexpr workload::SyncStrategy all[] = {
      workload::SyncStrategy::kSilent, workload::SyncStrategy::kEquivocate,
      workload::SyncStrategy::kLyingRelay,
      workload::SyncStrategy::kOutlierInput,
      workload::SyncStrategy::kCrashMidway};
  return all[rng.below(5)];
}

std::vector<Vec> pick_inputs(Rng& rng, std::size_t count, std::size_t d) {
  switch (rng.below(4)) {
    case 0:
      return workload::gaussian_cloud(rng, count, d);
    case 1:
      return workload::clustered(rng, count, d, 4.0);
    case 2:
      return workload::sphere_points(rng, count, d, 3.0);
    default:
      return workload::degenerate_subspace(rng, count, d,
                                           std::max<std::size_t>(1, d / 2));
  }
}

TEST(ChaosSweepTest, SyncAlgoSurvivesEverything) {
  Rng rng(20260704);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t f = 1 + rng.below(2);
    const std::size_t d = 2 + rng.below(4);
    const bool use_ds = rng.below(2) == 0;
    // With signatures the broadcast works from n = f+2, but the kappa = 1
    // validity envelope below needs every drop-f subset to contain at least
    // one honest input, i.e. n >= 2f+1 (at n = 2f the adversary pair forms
    // its own subset and delta* legitimately explodes).
    const std::size_t n_min =
        use_ds ? std::max(f + 2, 2 * f + 1) : 3 * f + 1;
    const std::size_t n = n_min + rng.below(3);
    const std::size_t actual_faults = rng.below(f + 1);  // 0..f

    workload::SyncExperiment e;
    e.n = n;
    e.f = f;
    e.honest_inputs = pick_inputs(rng, n - actual_faults, d);
    std::vector<std::size_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = i;
    rng.shuffle(ids);
    e.byzantine_ids.assign(ids.begin(),
                           ids.begin() + static_cast<long>(actual_faults));
    e.strategy = pick_strategy(rng);
    e.backend = use_ds ? workload::SyncBackend::kDolevStrong
                       : workload::SyncBackend::kEig;
    e.decision = consensus::algo_decision(f);
    e.seed = rng.next_u64();

    const auto out = workload::run_sync_experiment(e);
    const std::string ctx = "rep " + std::to_string(rep) + " n=" +
                            std::to_string(n) + " f=" + std::to_string(f) +
                            " d=" + std::to_string(d) + " " +
                            workload::to_string(e.strategy) +
                            (use_ds ? " ds" : " eig");
    ASSERT_FALSE(out.decision_failed) << ctx;
    ASSERT_EQ(out.decisions.size(), n - actual_faults) << ctx;
    // Agreement is always exact and bitwise.
    EXPECT_TRUE(check_agreement(out.decisions).identical) << ctx;
    // Universal validity envelope: within the honest diameter of the honest
    // hull (much looser than the per-theorem bounds, but holds for every
    // (n, f) combination in the sweep, including n below (d+1)f+1).
    const double budget =
        std::max(1e-9, input_dependent_delta(out.honest_inputs, 1.0));
    EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs,
                                      budget, 2.0),
              1e-5)
        << ctx;
  }
}

TEST(ChaosSweepTest, AsyncAveragingSurvivesEverything) {
  Rng rng(20260705);
  for (int rep = 0; rep < 12; ++rep) {
    const std::size_t f = 1;
    const std::size_t d = 2 + rng.below(3);
    const std::size_t n = 4 + rng.below(3);
    const std::size_t actual_faults = rng.below(2);

    workload::AsyncExperiment e;
    e.prm.n = n;
    e.prm.f = f;
    e.prm.rounds = 4 + rng.below(4);
    e.d = d;
    e.honest_inputs = pick_inputs(rng, n - actual_faults, d);
    if (actual_faults > 0) e.byzantine_ids = {rng.below(n)};
    constexpr workload::AsyncStrategy strategies[] = {
        workload::AsyncStrategy::kSilent,
        workload::AsyncStrategy::kEquivocate,
        workload::AsyncStrategy::kOutlierInput,
        workload::AsyncStrategy::kCrashMidway};
    e.strategy = strategies[rng.below(4)];
    e.scheduler = rng.below(2) == 0 ? workload::SchedulerKind::kRandom
                                    : workload::SchedulerKind::kLaggard;
    e.seed = rng.next_u64();

    const auto out = workload::run_async_experiment(e);
    const std::string ctx = "rep " + std::to_string(rep) + " n=" +
                            std::to_string(n) + " d=" + std::to_string(d) +
                            " " + workload::to_string(e.strategy);
    ASSERT_FALSE(out.failed) << ctx;
    ASSERT_EQ(out.decisions.size(), n - actual_faults) << ctx;
    EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.5)) << ctx;
    const double budget =
        std::max(1e-9, input_dependent_delta(out.honest_inputs, 1.0));
    EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs,
                                      budget, 2.0),
              1e-4)
        << ctx;
  }
}

}  // namespace
}  // namespace rbvc
