// Chaos sweep: randomized end-to-end runs across (n, f, d, workload shape,
// strategy, backend, faulty-id placement), asserting the universal
// guarantees on every draw. Runs on the check_property harness, so a
// failing draw is recorded, shrunk, and written as a repro file that
// RBVC_REPLAY re-executes exactly (docs/HARNESS.md); RBVC_FUZZ_EPISODES
// scales the sweep for nightly runs.
#include <gtest/gtest.h>

#include "harness/property.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

std::vector<Vec> pick_inputs(Rng& rng, std::size_t count, std::size_t d) {
  switch (rng.below(4)) {
    case 0:
      return workload::gaussian_cloud(rng, count, d);
    case 1:
      return workload::clustered(rng, count, d, 4.0);
    case 2:
      return workload::sphere_points(rng, count, d, 3.0);
    default:
      return workload::degenerate_subspace(rng, count, d,
                                           std::max<std::size_t>(1, d / 2));
  }
}

TEST(ChaosSweepTest, SyncAlgoSurvivesEverything) {
  harness::SyncProperty prop;
  prop.name = "chaos_sync_algo";
  prop.generate = [](Rng& rng) {
    workload::SyncExperiment e;
    e.f = 1 + rng.below(2);
    const std::size_t d = 2 + rng.below(4);
    const bool use_ds = rng.below(2) == 0;
    // With signatures the broadcast works from n = f+2, but the kappa = 1
    // validity envelope below needs every drop-f subset to contain at least
    // one honest input, i.e. n >= 2f+1 (at n = 2f the adversary pair forms
    // its own subset and delta* legitimately explodes).
    e.n = (use_ds ? std::max(e.f + 2, 2 * e.f + 1) : 3 * e.f + 1) +
          rng.below(3);
    e.backend = use_ds ? workload::SyncBackend::kDolevStrong
                       : workload::SyncBackend::kEig;
    const std::size_t actual_faults = rng.below(e.f + 1);  // 0..f
    e.honest_inputs = pick_inputs(rng, e.n - actual_faults, d);
    std::vector<std::size_t> ids(e.n);
    for (std::size_t i = 0; i < e.n; ++i) ids[i] = i;
    rng.shuffle(ids);
    e.byzantine_ids.assign(ids.begin(),
                           ids.begin() + static_cast<long>(actual_faults));
    constexpr workload::SyncStrategy strategies[] = {
        workload::SyncStrategy::kSilent, workload::SyncStrategy::kEquivocate,
        workload::SyncStrategy::kLyingRelay,
        workload::SyncStrategy::kOutlierInput,
        workload::SyncStrategy::kCrashMidway};
    e.strategy = strategies[rng.below(5)];
    e.rule = workload::SyncRule::kAlgoRelaxed;  // serializable for repros
    e.seed = rng.next_u64();
    return e;
  };
  // Agreement is exact and bitwise for sync runs; validity is the universal
  // kappa = 1 envelope (within the honest diameter of the honest hull --
  // much looser than the per-theorem bounds, but it holds for every (n, f)
  // combination in the sweep, including n below (d+1)f+1).
  prop.oracle = harness::sync_decide_agree_valid_oracle(1e-12, 1.0);
  prop.episodes = harness::fuzz_episodes(40);
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property<harness::SyncRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
}

TEST(ChaosSweepTest, AsyncAveragingSurvivesEverything) {
  harness::AsyncProperty prop;
  prop.name = "chaos_async_averaging";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.f = 1;
    e.prm.n = 4 + rng.below(3);
    e.prm.rounds = 4 + rng.below(4);
    e.d = 2 + rng.below(3);
    const std::size_t actual_faults = rng.below(2);
    e.honest_inputs = pick_inputs(rng, e.prm.n - actual_faults, e.d);
    if (actual_faults > 0) e.byzantine_ids = {rng.below(e.prm.n)};
    constexpr workload::AsyncStrategy strategies[] = {
        workload::AsyncStrategy::kSilent,
        workload::AsyncStrategy::kEquivocate,
        workload::AsyncStrategy::kOutlierInput,
        workload::AsyncStrategy::kCrashMidway};
    e.strategy = strategies[rng.below(4)];
    e.scheduler = rng.below(2) == 0 ? workload::SchedulerKind::kRandom
                                    : workload::SchedulerKind::kLaggard;
    e.seed = rng.next_u64();
    return e;
  };
  // Async agreement only converges geometrically, hence the loose eps.
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = harness::fuzz_episodes(12);
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property<harness::AsyncRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
}

}  // namespace
}  // namespace rbvc
