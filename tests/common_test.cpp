#include "rbvc/common.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rbvc {
namespace {

TEST(CommonTest, RequireThrowsWithContext) {
  try {
    RBVC_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(CommonTest, RequirePassesSilently) {
  EXPECT_NO_THROW(RBVC_REQUIRE(true, "never"));
}

TEST(CommonTest, ErrorHierarchy) {
  // invalid_argument and numerical_error are std exceptions, catchable
  // uniformly at API boundaries.
  EXPECT_THROW(throw invalid_argument("x"), std::invalid_argument);
  EXPECT_THROW(throw numerical_error("y"), std::runtime_error);
}

TEST(CommonTest, Constants) {
  EXPECT_GT(kLooseTol, kTol);
  EXPECT_TRUE(std::isinf(kInfNorm));
}

}  // namespace
}  // namespace rbvc
