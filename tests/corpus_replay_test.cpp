// Replays every checked-in repro under tests/corpus/ (ctest label: mc) and
// asserts the recorded verdict reproduces byte-for-byte. The corpus is the
// regression net for the whole record/shrink/replay pipeline: each file is
// a minimized counterexample some earlier planted-bug suite produced, and
// a parser or engine change that silently alters replay semantics fails
// here even if the unit tests still pass. Files are plain schema-v3 text;
// add new ones by copying a harness-written rbvc_repro_*.txt into the
// directory (the recorded `failure` line is the expected verdict).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/exhaustive.h"
#include "harness/property.h"
#include "harness/repro.h"

#ifndef RBVC_CORPUS_DIR
#error "RBVC_CORPUS_DIR must point at tests/corpus (set in CMakeLists.txt)"
#endif

namespace rbvc {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(RBVC_CORPUS_DIR)) {
    if (entry.path().extension() == ".txt") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The corpus stores experiments and schedules but not oracles (closures do
// not serialize), so the property name recorded in each file selects the
// oracle its suite used when the counterexample was found.
std::string replay_verdict(const std::string& path) {
  const auto info = harness::peek_repro_file(path);
  switch (info.mode) {
    case harness::ReproMode::kSync: {
      const auto rep = harness::SyncRunner::load(path);
      return harness::SyncRunner::replay(
          rep, harness::sync_decide_agree_valid_oracle(1e-9, 1.0));
    }
    case harness::ReproMode::kRbc: {
      const auto rep = harness::RbcRunner::load(path);
      return harness::RbcRunner::replay(rep, harness::rbc_safety_oracle());
    }
    case harness::ReproMode::kDs: {
      const auto rep = harness::DsRunner::load(path);
      return harness::DsRunner::replay(
          rep, harness::broadcast_agreement_oracle());
    }
    case harness::ReproMode::kAsync: {
      const auto rep = harness::load_async_repro(path);
      const auto out = harness::replay_async_repro(rep);
      return harness::decide_agree_valid_oracle(0.5, 1.0)(rep.experiment,
                                                          out);
    }
  }
  ADD_FAILURE() << "unhandled repro mode in " << path;
  return {};
}

TEST(CorpusReplayTest, CorpusIsPresent) {
  // At least the three seeded counterexamples (sync infeasibility, rbc
  // equivocation, async quorum bug); growing the corpus is encouraged.
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(CorpusReplayTest, EveryCorpusFileReproducesItsRecordedVerdict) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const auto info = harness::peek_repro_file(path);
    EXPECT_EQ(info.version, harness::kReproVersion);

    // The recorded verdict: the `failure` line the harness wrote when it
    // minimized this schedule.
    std::string recorded;
    switch (info.mode) {
      case harness::ReproMode::kSync:
        recorded = harness::SyncRunner::load(path).failure;
        break;
      case harness::ReproMode::kRbc:
        recorded = harness::RbcRunner::load(path).failure;
        break;
      case harness::ReproMode::kDs:
        recorded = harness::DsRunner::load(path).failure;
        break;
      case harness::ReproMode::kAsync:
        recorded = harness::load_async_repro(path).failure;
        break;
    }
    ASSERT_FALSE(recorded.empty());

    // Replay must fail, with exactly the recorded message: replays are
    // deterministic, so any drift is a semantic change, not noise.
    EXPECT_EQ(replay_verdict(path), recorded);
  }
}

TEST(CorpusReplayTest, ReplayIsStableAcrossRepeats) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    EXPECT_EQ(replay_verdict(path), replay_verdict(path));
  }
}

}  // namespace
}  // namespace rbvc
