// Crash faults are the benign end of the Byzantine spectrum: every
// algorithm must keep all its guarantees when the "Byzantine" process
// merely stops. These tests run the crash strategy through both system
// models and both broadcast backends.
#include <gtest/gtest.h>

#include "consensus/algo_relaxed.h"
#include "consensus/exact_bvc.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc {
namespace {

TEST(CrashFaultTest, SyncAlgoToleratesCrash) {
  Rng rng(907);
  workload::SyncExperiment e;
  e.n = 5;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 4, 4);
  e.byzantine_ids = {3};
  e.strategy = workload::SyncStrategy::kCrashMidway;
  e.decision = consensus::algo_decision(1);
  const auto out = workload::run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  ASSERT_EQ(out.decisions.size(), 4u);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  const auto ee = edge_extremes(out.honest_inputs);
  const double bound =
      std::min(ee.min_edge / 2.0, ee.max_edge / double(e.n - 2));
  EXPECT_LT(
      delta_p_validity_excess(out.decisions, out.honest_inputs, bound, 2.0),
      1e-6);
}

TEST(CrashFaultTest, SyncExactBvcToleratesCrash) {
  Rng rng(911);
  workload::SyncExperiment e;
  e.n = 5;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 4, 3);
  e.byzantine_ids = {0};
  e.strategy = workload::SyncStrategy::kCrashMidway;
  e.decision = consensus::exact_bvc_decision(1);
  const auto out = workload::run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  EXPECT_TRUE(check_exact_validity(out.decisions, out.honest_inputs, 1e-6));
  EXPECT_TRUE(check_agreement(out.decisions).identical);
}

TEST(CrashFaultTest, DolevStrongToleratesCrash) {
  Rng rng(919);
  workload::SyncExperiment e;
  e.n = 3;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 2, 2);
  e.byzantine_ids = {2};
  e.strategy = workload::SyncStrategy::kCrashMidway;
  e.decision = consensus::algo_decision(1);
  e.backend = workload::SyncBackend::kDolevStrong;
  const auto out = workload::run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  ASSERT_EQ(out.decisions.size(), 2u);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
}

TEST(CrashFaultTest, AsyncAveragingToleratesCrash) {
  Rng rng(929);
  workload::AsyncExperiment e;
  e.prm.n = 4;
  e.prm.f = 1;
  e.prm.rounds = 6;
  e.d = 3;
  e.honest_inputs = workload::gaussian_cloud(rng, 3, 3);
  e.byzantine_ids = {1};
  e.strategy = workload::AsyncStrategy::kCrashMidway;
  e.seed = 17;
  const auto out = workload::run_async_experiment(e);
  ASSERT_FALSE(out.failed);
  ASSERT_EQ(out.decisions.size(), 3u);
  EXPECT_TRUE(check_epsilon_agreement(out.decisions, 0.2));
  EXPECT_LT(delta_p_validity_excess(
                out.decisions, out.honest_inputs,
                input_dependent_delta(out.honest_inputs, 1.0), 2.0),
            1e-4);
}

TEST(CrashFaultTest, CrashAtRoundZeroEqualsSilent) {
  // A process that crashes before sending anything behaves like kSilent:
  // both runs must produce identical decisions.
  Rng rng(937);
  const auto inputs = workload::gaussian_cloud(rng, 4, 3);
  auto run = [&](workload::SyncStrategy strat) {
    workload::SyncExperiment e;
    e.n = 5;
    e.f = 1;
    e.honest_inputs = inputs;
    e.byzantine_ids = {4};
    e.strategy = strat;
    e.decision = consensus::algo_decision(1);
    e.seed = 3;
    return workload::run_sync_experiment(e);
  };
  // kCrashMidway crashes at round 1 (it does send its initial value), so it
  // is NOT identical to silent -- but both must satisfy the bound. Verify
  // both succeed and agree internally.
  const auto a = run(workload::SyncStrategy::kSilent);
  const auto b = run(workload::SyncStrategy::kCrashMidway);
  EXPECT_TRUE(check_agreement(a.decisions).identical);
  EXPECT_TRUE(check_agreement(b.decisions).identical);
}

}  // namespace
}  // namespace rbvc
