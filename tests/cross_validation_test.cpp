// Cross-validation between independent implementations of the same
// geometric question -- the strongest correctness evidence the library can
// give itself:
//   * 2-D membership: LP oracle vs halfplane (poly2d) oracle
//   * 2-D Gamma: LP feasibility vs exact polygon clipping
//   * distances: Wolfe L2 vs LP Linf/L1 orderings on the same instances
//   * Caratheodory support vs direct LP coefficients
// Also smoke-checks the umbrella header compiles and exposes everything.
#include "rbvc/rbvc.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rbvc {
namespace {

TEST(CrossValidation2D, LpVsHalfplaneMembership) {
  Rng rng(1201);
  std::size_t checked = 0, inside = 0;
  for (int rep = 0; rep < 40; ++rep) {
    const auto pts = workload::gaussian_cloud(rng, 6, 2);
    std::vector<Point2> pts2;
    for (const Vec& p : pts) pts2.push_back({p[0], p[1]});
    for (int q = 0; q < 10; ++q) {
      const Vec u = scale(1.5, rng.normal_vec(2));
      const bool by_lp = in_hull(u, pts, 1e-9);
      const bool by_halfplanes = in_hull_2d({u[0], u[1]}, pts2, 1e-7);
      // Skip razor-edge cases where tolerance conventions differ.
      const double dist = project_to_hull(u, pts).distance;
      if (dist > 1e-6 || by_lp) {
        EXPECT_EQ(by_lp, by_halfplanes)
            << "rep " << rep << " q " << q << " dist " << dist;
        ++checked;
        inside += by_lp ? 1 : 0;
      }
    }
  }
  EXPECT_GT(checked, 200u);
  EXPECT_GT(inside, 0u);  // both branches exercised
  EXPECT_LT(inside, checked);
}

TEST(CrossValidation2D, GammaLpVsPolygonClipping) {
  Rng rng(1213);
  for (int rep = 0; rep < 25; ++rep) {
    const std::size_t n = 4 + rep % 5;
    const std::size_t f = 1 + rep % 2;
    if (n <= f) continue;
    const auto pts = workload::gaussian_cloud(rng, n, 2);
    const bool by_lp = gamma_point(pts, f).has_value();
    const auto poly = consensus::gamma_polygon(pts, f);
    EXPECT_EQ(by_lp, poly.has_value()) << "rep " << rep;
    if (poly && by_lp) {
      // The LP's point must lie in (or within clipping tolerance of) the
      // clipped polygon -- both describe the same set. Near the bound the
      // polygon can be razor thin, so measure the Euclidean distance to it
      // rather than using halfplane predicates.
      const auto g = gamma_point(pts, f);
      std::vector<Vec> poly_vecs;
      for (const Point2& v : *poly) poly_vecs.push_back({v.x, v.y});
      EXPECT_LT(project_to_hull(*g, poly_vecs).distance, 1e-4)
          << "rep " << rep;
    }
  }
}

TEST(CrossValidationDistance, NormOrderOnSharedInstances) {
  Rng rng(1217);
  for (int rep = 0; rep < 25; ++rep) {
    const auto pts = workload::gaussian_cloud(rng, 7, 4);
    const Vec u = scale(2.5, rng.normal_vec(4));
    const double l1 = detail::lp_projection_via_lp(u, pts, 1.0, kTol).distance;
    const double l2 = detail::wolfe_min_norm(u, pts, kTol).distance;
    const double li =
        detail::lp_projection_via_lp(u, pts, kInfNorm, kTol).distance;
    EXPECT_GE(l1 + 1e-8, l2) << rep;
    EXPECT_GE(l2 + 1e-8, li) << rep;
    // And the sqrt(d) norm-equivalence sandwich: l2 <= sqrt(d) * linf.
    EXPECT_LE(l2, std::sqrt(4.0) * li + 1e-8) << rep;
  }
}

TEST(CrossValidationCaratheodory, SupportAgreesWithLp) {
  Rng rng(1223);
  for (int rep = 0; rep < 15; ++rep) {
    const auto pts = workload::gaussian_cloud(rng, 9, 3);
    Vec u = zeros(3);
    for (const Vec& p : pts) axpy(1.0 / 9.0, p, u);
    const auto red = caratheodory_reduce(u, pts, 1e-9);
    ASSERT_TRUE(red.has_value());
    // The reduced support's own hull still contains u (checked by LP).
    std::vector<Vec> support_pts;
    for (std::size_t i : red->support) support_pts.push_back(pts[i]);
    EXPECT_TRUE(in_hull(u, support_pts, 1e-6)) << "rep " << rep;
  }
}

TEST(CrossValidationDeltaStar, ThreeEnginesOneSimplex) {
  // Closed form (inradius), LP bisection (Linf scaled), and minimax all
  // describe delta* of the same simplex consistently.
  Rng rng(1229);
  const auto s = workload::random_simplex(rng, 3);
  const double exact = delta_star_2(s, 1).value;
  const double numeric =
      min_max_hull_distance(drop_f_subsets(s, 1), mean(s)).value;
  const double linf = delta_star_linear(s, 1, kInfNorm).value;
  EXPECT_NEAR(exact, numeric, exact * 0.03);
  EXPECT_LE(linf, exact + 1e-9);                       // norm ordering
  EXPECT_GE(std::sqrt(3.0) * linf + 1e-9, exact);      // equivalence
}

}  // namespace
}  // namespace rbvc
