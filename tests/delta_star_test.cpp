// Tests for delta*(S) (paper Sec. 9): closed forms, numerical paths, and
// the theorem bounds.
#include "hull/delta_star.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(DeltaStarTest, ZeroWhenGammaNonEmpty) {
  Rng rng(227);
  const auto s = workload::gaussian_cloud(rng, 6, 3);  // n > (d+1)f
  const auto r = delta_star_2(s, 1);
  EXPECT_EQ(r.method, DeltaStarResult::Method::kGammaNonempty);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(gamma_excess(r.point, s, 1, 2.0), 0.0, 1e-6);
}

TEST(DeltaStarTest, SimplexCaseUsesInradius) {
  Rng rng(229);
  const auto s = workload::random_simplex(rng, 4);
  const auto r = delta_star_2(s, 1);
  EXPECT_EQ(r.method, DeltaStarResult::Method::kSimplexInradius);
  ASSERT_TRUE(r.exact);
  const auto g = SimplexGeometry::build(s);
  ASSERT_TRUE(g.has_value());
  EXPECT_NEAR(r.value, g->inradius(), 1e-12);
  // The chosen point achieves exactly that excess.
  EXPECT_NEAR(gamma_excess(r.point, s, 1, 2.0), r.value, 1e-7);
}

TEST(DeltaStarTest, IdenticalInputs) {
  Rng rng(233);
  const auto s = workload::identical_points(rng, 5, 3);
  const auto r = delta_star_2(s, 2);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(approx_equal(r.point, s.front(), 1e-9));
}

TEST(DeltaStarTest, Theorem8DegenerateInputsGiveZero) {
  // Affinely dependent inputs with f=1, 4 <= n <= d+1: delta* = 0.
  Rng rng(239);
  for (int rep = 0; rep < 5; ++rep) {
    // 5 points in a 3-dimensional subspace of R^6: n=5 <= d+1=7, affinely
    // dependent within their span? They span a 3-dim subspace and n-1=4 > 3
    // so the difference vectors are dependent -> Thm 8 applies.
    const auto s = workload::degenerate_subspace(rng, 5, 6, 3);
    const auto r = delta_star_2(s, 1);
    EXPECT_EQ(r.method, DeltaStarResult::Method::kGammaNonempty)
        << "rep " << rep;
    EXPECT_DOUBLE_EQ(r.value, 0.0);
  }
}

TEST(DeltaStarTest, SubspaceSimplexHandledExactly) {
  // n = 4 points spanning a 3-dim affine subspace of R^6 with f = 1: the
  // projected points form a simplex; delta* is its inradius.
  Rng rng(241);
  const auto s = workload::degenerate_subspace(rng, 4, 6, 3);
  const auto r = delta_star_2(s, 1);
  EXPECT_EQ(r.method, DeltaStarResult::Method::kSimplexInradius);
  EXPECT_GT(r.value, 0.0);
  EXPECT_NEAR(gamma_excess(r.point, s, 1, 2.0), r.value, 1e-6);
}

TEST(DeltaStarTest, NumericalPathMatchesExactOnSimplex) {
  // Force the numerical path by asking for f = 1 on a simplex through the
  // generic minimax (compare delta_star_2's closed form with the minimax).
  Rng rng(251);
  const auto s = workload::random_simplex(rng, 3);
  const auto exact = delta_star_2(s, 1);
  const MinimaxResult mm =
      min_max_hull_distance(drop_f_subsets(s, 1), mean(s));
  EXPECT_NEAR(mm.value, exact.value, exact.value * 0.02);
}

TEST(DeltaStarTest, LinearBisectionConsistent) {
  Rng rng(257);
  const auto s = workload::random_simplex(rng, 3);
  for (double p : {1.0, kInfNorm}) {
    const auto r = delta_star_linear(s, 1, p);
    EXPECT_GT(r.value, 0.0);
    // Witness achieves the value.
    EXPECT_LE(gamma_excess(r.point, s, 1, p), r.value + 1e-6);
    // Nothing does better: re-check feasibility below the value.
    EXPECT_FALSE(
        gamma_delta_point_linear(s, 1, r.value * 0.98 - 1e-9, p).has_value());
  }
}

TEST(DeltaStarTest, NormOrderingAcrossP) {
  // delta*_inf <= delta*_2 <= delta*_1 (norm ordering, Thm 14 machinery).
  Rng rng(263);
  const auto s = workload::random_simplex(rng, 3);
  const double d1 = delta_star_linear(s, 1, 1.0).value;
  const double d2 = delta_star_2(s, 1).value;
  const double dinf = delta_star_linear(s, 1, kInfNorm).value;
  EXPECT_LE(dinf, d2 + 1e-6);
  EXPECT_LE(d2, d1 + 1e-6);
}

TEST(DeltaStarTest, GeneralPUpperBound) {
  // delta*_p <= delta*_2 for p >= 2 (Theorem 14's first step).
  Rng rng(269);
  const auto s = workload::random_simplex(rng, 3);
  const auto d2 = delta_star_2(s, 1);
  const auto d4 = delta_star_p(s, 1, 4.0);
  EXPECT_LE(d4.value, d2.value + 1e-3);
}

TEST(DeltaStarTest, ValidatesArguments) {
  EXPECT_THROW(delta_star_2({{0.0}}, 1), invalid_argument);
  EXPECT_THROW(delta_star_2({{0.0}, {1.0}}, 0), invalid_argument);
  EXPECT_THROW(delta_star_linear({{0.0}, {1.0}}, 1, 2.0), invalid_argument);
}

TEST(DeltaStarTest, DeterministicPoint) {
  Rng rng(271);
  const auto s = workload::random_simplex(rng, 4);
  const auto a = delta_star_2(s, 1);
  const auto b = delta_star_2(s, 1);
  EXPECT_EQ(a.point, b.point);  // agreement depends on bitwise determinism
}

}  // namespace
}  // namespace rbvc
