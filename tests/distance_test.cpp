#include "geometry/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

const std::vector<Vec> kSquare = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};

TEST(DistanceTest, LinfAxisAligned) {
  EXPECT_NEAR(distance_to_hull({2.0, 0.5}, kSquare, kInfNorm), 1.0, 1e-8);
  EXPECT_NEAR(distance_to_hull({2.0, 2.0}, kSquare, kInfNorm), 1.0, 1e-8);
  EXPECT_NEAR(distance_to_hull({0.5, 0.5}, kSquare, kInfNorm), 0.0, 1e-8);
}

TEST(DistanceTest, L1AxisAligned) {
  EXPECT_NEAR(distance_to_hull({2.0, 0.5}, kSquare, 1.0), 1.0, 1e-8);
  EXPECT_NEAR(distance_to_hull({2.0, 2.0}, kSquare, 1.0), 2.0, 1e-8);
}

TEST(DistanceTest, NormOrderingAcrossP) {
  // dist_p is non-increasing in p for p >= 1 (pointwise norm ordering).
  Rng rng(53);
  for (int rep = 0; rep < 15; ++rep) {
    const auto pts = workload::gaussian_cloud(rng, 6, 4);
    const Vec u = scale(3.0, rng.normal_vec(4));
    const double d1 = distance_to_hull(u, pts, 1.0);
    const double d2 = distance_to_hull(u, pts, 2.0);
    const double dinf = distance_to_hull(u, pts, kInfNorm);
    EXPECT_GE(d1, d2 - 1e-7) << "rep " << rep;
    EXPECT_GE(d2, dinf - 1e-7) << "rep " << rep;
  }
}

TEST(DistanceTest, GeneralPBetweenTwoAndInf) {
  Rng rng(59);
  for (int rep = 0; rep < 8; ++rep) {
    const auto pts = workload::gaussian_cloud(rng, 5, 3);
    const Vec u = scale(3.0, rng.normal_vec(3));
    const double d2 = distance_to_hull(u, pts, 2.0);
    const double d3 = distance_to_hull(u, pts, 3.0);
    const double dinf = distance_to_hull(u, pts, kInfNorm);
    // d3 is an approximation: allow loose tolerance.
    EXPECT_LE(d3, d2 + 1e-3) << "rep " << rep;
    EXPECT_GE(d3, dinf - 1e-3) << "rep " << rep;
  }
}

TEST(DistanceTest, GeneralPOnSinglePoint) {
  const std::vector<Vec> one = {{1.0, 1.0, 1.0}};
  const Vec u = {0.0, 0.0, 0.0};
  EXPECT_NEAR(distance_to_hull(u, one, 3.0), std::pow(3.0, 1.0 / 3.0), 1e-4);
}

TEST(DistanceTest, LpProjectionReturnsHullPoint) {
  Rng rng(61);
  const auto pts = workload::gaussian_cloud(rng, 6, 3);
  const Vec u = scale(4.0, rng.normal_vec(3));
  for (double p : {1.0, kInfNorm}) {
    const auto pr = project_to_hull_p(u, pts, p);
    double sum = 0.0;
    Vec recon = zeros(3);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_GE(pr.coeffs[i], -1e-9);
      sum += pr.coeffs[i];
      axpy(pr.coeffs[i], pts[i], recon);
    }
    EXPECT_NEAR(sum, 1.0, 1e-7);
    EXPECT_NEAR(lp_dist(u, recon, p), pr.distance, 1e-7);
  }
}

TEST(DistanceTest, InvalidPThrows) {
  const std::vector<Vec> single = {{1.0}};
  EXPECT_THROW(distance_to_hull({0.0}, single, 0.5), invalid_argument);
  EXPECT_THROW(detail::lp_projection_via_lp({0.0}, single, 2.0, kTol),
               invalid_argument);
  EXPECT_THROW(detail::lp_projection_frank_wolfe({0.0}, single, kInfNorm),
               invalid_argument);
}

TEST(DistanceTest, WolfeVsLpCrossCheckOnSegments) {
  // For points on a coordinate axis, L2 and Linf distances coincide.
  const std::vector<Vec> seg = {{0.0, 0.0}, {4.0, 0.0}};
  const Vec u = {5.0, 0.0};
  EXPECT_NEAR(distance_to_hull(u, seg, 2.0),
              distance_to_hull(u, seg, kInfNorm), 1e-8);
}

}  // namespace
}  // namespace rbvc
