// Tests for authenticated broadcast (Dolev-Strong) and its interactive
// consistency -- the paper's footnote-3 regime where the 3f+1 floor drops.
#include "protocols/dolev_strong.h"

#include <gtest/gtest.h>

#include "consensus/algo_relaxed.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/byzantine_strategies.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc::protocols {
namespace {

DecisionFn keep_multiset() {
  return [](const std::vector<Vec>& s) { return mean(s); };
}

struct Rig {
  explicit Rig(std::uint64_t seed) : authority(seed) {}
  sim::SignatureAuthority authority;
  sim::SyncEngine engine;
  std::vector<sim::ProcessId> correct;
};

Rig build(std::size_t n, std::size_t f, std::size_t d,
          const std::vector<std::size_t>& byz,
          workload::SyncStrategy strategy, std::uint64_t seed) {
  Rig rig(seed);
  Rng rng(seed + 1);
  for (std::size_t id = 0; id < n; ++id) {
    const bool is_byz = std::find(byz.begin(), byz.end(), id) != byz.end();
    if (is_byz) {
      rig.engine.add(workload::make_ds_byzantine(
          strategy, n, f, id, d, rng.next_u64(),
          rig.authority.signer_for(id), &rig.authority));
    } else {
      rig.engine.add(std::make_unique<DolevStrongProcess>(
          n, f, id, rng.normal_vec(d), zeros(d), keep_multiset(),
          rig.authority.signer_for(id), &rig.authority));
      rig.correct.push_back(id);
    }
  }
  return rig;
}

std::vector<std::vector<Vec>> resolved_sets(Rig& rig) {
  std::vector<std::vector<Vec>> out;
  for (auto id : rig.correct) {
    out.push_back(dynamic_cast<DolevStrongProcess&>(rig.engine.process(id))
                      .resolved_inputs());
  }
  return out;
}

TEST(DsWireTest, EncodeDecodeRoundTrip) {
  sim::SignatureAuthority auth(5);
  const Vec v = {1.5, -2.0};
  SigChain chain;
  chain.emplace_back(
      1, auth.signer_for(1).sign(ds_wire::chain_digest(1, v, {})));
  chain.emplace_back(
      0, auth.signer_for(0).sign(ds_wire::chain_digest(1, v, chain)));
  const sim::Message m = ds_wire::encode(1, v, chain);
  const auto parsed = ds_wire::decode(m, 4);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, 1u);
  EXPECT_EQ(parsed->second, chain);
  EXPECT_TRUE(ds_wire::chain_valid(auth, 1, v, chain));
}

TEST(DsWireTest, InvalidChainsRejected) {
  sim::SignatureAuthority auth(5);
  const Vec v = {1.0};
  // Wrong first signer.
  SigChain wrong_first;
  wrong_first.emplace_back(
      2, auth.signer_for(2).sign(ds_wire::chain_digest(1, v, {})));
  EXPECT_FALSE(ds_wire::chain_valid(auth, 1, v, wrong_first));
  // Tampered value.
  SigChain good;
  good.emplace_back(
      1, auth.signer_for(1).sign(ds_wire::chain_digest(1, v, {})));
  EXPECT_TRUE(ds_wire::chain_valid(auth, 1, v, good));
  EXPECT_FALSE(ds_wire::chain_valid(auth, 1, {2.0}, good));
  // Repeated signer.
  SigChain repeated = good;
  repeated.emplace_back(
      1, auth.signer_for(1).sign(ds_wire::chain_digest(1, v, good)));
  EXPECT_FALSE(ds_wire::chain_valid(auth, 1, v, repeated));
  // Empty chain.
  EXPECT_FALSE(ds_wire::chain_valid(auth, 1, v, {}));
}

TEST(DsTest, FaultFreeConsistencyAtN3) {
  // The headline: n = 3, f = 1 works with signatures (impossible for EIG).
  Rig rig = build(3, 1, 2, {}, workload::SyncStrategy::kSilent, 11);
  const auto stats =
      rig.engine.run(DolevStrongProcess::rounds_needed(1));
  ASSERT_TRUE(stats.all_decided);
  const auto sets = resolved_sets(rig);
  for (std::size_t i = 1; i < sets.size(); ++i) EXPECT_EQ(sets[i], sets[0]);
  for (auto id : rig.correct) {
    const auto& p =
        dynamic_cast<DolevStrongProcess&>(rig.engine.process(id));
    EXPECT_EQ(sets[0][id], p.input());
  }
}

TEST(DsTest, EquivocatorResolvesToDefaultEverywhere) {
  // A double-signing source is detected: every correct process extracts two
  // values and falls back to the common default. Consistency holds.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rig rig = build(4, 1, 2, {0}, workload::SyncStrategy::kEquivocate, seed);
    rig.engine.run(DolevStrongProcess::rounds_needed(1));
    const auto sets = resolved_sets(rig);
    for (std::size_t i = 1; i < sets.size(); ++i) {
      EXPECT_EQ(sets[i], sets[0]) << "seed " << seed;
    }
    EXPECT_EQ(sets[0][0], zeros(2)) << "seed " << seed;
  }
}

TEST(DsTest, WithholderCannotBreakConsistency) {
  Rig rig = build(4, 1, 3, {2}, workload::SyncStrategy::kLyingRelay, 7);
  rig.engine.run(DolevStrongProcess::rounds_needed(1));
  const auto sets = resolved_sets(rig);
  for (std::size_t i = 1; i < sets.size(); ++i) EXPECT_EQ(sets[i], sets[0]);
  for (auto id : rig.correct) {
    const auto& p =
        dynamic_cast<DolevStrongProcess&>(rig.engine.process(id));
    EXPECT_EQ(sets[0][id], p.input());
  }
}

TEST(DsTest, ToleratesLargeFWithSmallN) {
  // f = 2 with only n = 5 processes (EIG would need 7).
  Rig rig = build(5, 2, 2, {1, 3}, workload::SyncStrategy::kEquivocate, 13);
  const auto stats = rig.engine.run(DolevStrongProcess::rounds_needed(2));
  ASSERT_TRUE(stats.all_decided);
  const auto sets = resolved_sets(rig);
  for (std::size_t i = 1; i < sets.size(); ++i) EXPECT_EQ(sets[i], sets[0]);
}

TEST(DsTest, EndToEndAlgoAtN3) {
  // ALGO over authenticated broadcast with n = 3, f = 1, d = 2: agreement +
  // bounded validity below every unauthenticated bound.
  Rng rng(17);
  workload::SyncExperiment e;
  e.n = 3;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 2, 2);
  e.byzantine_ids = {1};
  e.strategy = workload::SyncStrategy::kOutlierInput;
  e.decision = consensus::algo_decision(1);
  e.backend = workload::SyncBackend::kDolevStrong;
  const auto out = workload::run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  ASSERT_EQ(out.decisions.size(), 2u);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  // Validity: with 2 honest inputs the relevant budget is their distance.
  const double budget = edge_extremes(out.honest_inputs).max_edge;
  EXPECT_LT(delta_p_validity_excess(out.decisions, out.honest_inputs,
                                    budget, 2.0),
            1e-6);
}

TEST(DsTest, RequiresSaneParameters) {
  sim::SignatureAuthority auth(1);
  EXPECT_THROW(DolevStrongProcess(2, 1, 0, {0.0}, {0.0}, keep_multiset(),
                                  auth.signer_for(0), &auth),
               invalid_argument);
  EXPECT_THROW(DolevStrongProcess(4, 1, 0, {0.0}, {0.0}, keep_multiset(),
                                  auth.signer_for(1), &auth),
               invalid_argument);
}

TEST(DsTest, GarbageMessagesIgnored) {
  class Garbage final : public sim::SyncProcess {
   public:
    explicit Garbage(std::size_t n) : n_(n) {}
    void round(std::size_t r, const std::vector<sim::Message>&,
               sim::Outbox& out) override {
      if (r > 2) return;
      sim::Message m;
      m.kind = "ds";
      m.meta = {0, 1, 2};  // wrong arity
      m.payload = {1.0, 2.0};
      out.broadcast(n_, m);
      sim::Message m2;
      m2.kind = "ds";
      m2.meta = {1, 1, 0, 0};  // fake chain: bogus signature
      m2.payload = {5.0, 5.0};
      out.broadcast(n_, m2);
    }
    bool decided() const override { return true; }
    std::size_t n_;
  };
  Rig rig(21);
  Rng rng(22);
  std::vector<Vec> inputs;
  for (std::size_t id = 0; id < 3; ++id) {
    inputs.push_back(rng.normal_vec(2));
    rig.engine.add(std::make_unique<DolevStrongProcess>(
        4, 1, id, inputs.back(), zeros(2), keep_multiset(),
        rig.authority.signer_for(id), &rig.authority));
  }
  rig.engine.add(std::make_unique<Garbage>(4));
  rig.engine.run(DolevStrongProcess::rounds_needed(1));
  for (std::size_t id = 0; id < 3; ++id) {
    const auto& p =
        dynamic_cast<DolevStrongProcess&>(rig.engine.process(id));
    EXPECT_EQ(p.resolved_inputs()[id], inputs[id]);
    // The garbage sender's instance resolves to the default.
    EXPECT_EQ(p.resolved_inputs()[3], zeros(2));
  }
}

TEST(DsTest, MessageComplexityQuadraticIsh) {
  // DS: O(n^2) per instance per round vs EIG's O(n^{f+1}) blowup.
  Rig rig = build(5, 2, 2, {}, workload::SyncStrategy::kSilent, 31);
  const auto ds_stats = rig.engine.run(DolevStrongProcess::rounds_needed(2));
  EXPECT_GT(ds_stats.messages, 0u);
  EXPECT_LE(ds_stats.messages, 5u * 5u * 5u * 4u);  // loose O(n^3 f) cap
}

}  // namespace
}  // namespace rbvc::protocols
