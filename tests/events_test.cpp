// Flight recorder + causal clock (obs/events.h), ctest labels: obs, tsan.
// Pins the ring's keep-newest wraparound, TSan-clean concurrent emit /
// snapshot, the JSONL dump/parse byte fixpoint, the Lamport meta
// stamp/strip roundtrip, SimTransport's never-stamps guarantee (sim
// ScheduleLog byte identity), and the RBVC_JOBS repro byte-identity
// contract with the trace sink armed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/property.h"
#include "net/sim_transport.h"
#include "obs/events.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

namespace ev = obs::events;

ev::Event make_event(std::uint64_t ts, std::uint64_t lc, std::int32_t node,
                     std::int32_t inst, ev::Type t, std::int64_t a,
                     std::int64_t b) {
  ev::Event e;
  e.ts_ns = ts;
  e.lamport = lc;
  e.node = node;
  e.instance = inst;
  e.type = t;
  e.a = a;
  e.b = b;
  return e;
}

TEST(EventRingTest, WraparoundKeepsTheNewest) {
  ev::Ring ring(8);
  for (int i = 0; i < 20; ++i) {
    ring.emit(make_event(100 + static_cast<std::uint64_t>(i), 1, 0, -1,
                         ev::Type::kNote, i, 0));
  }
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.emitted(), 20u);
  std::vector<ev::Event> got;
  ring.snapshot_into(got);
  ASSERT_EQ(got.size(), 8u);
  // Oldest-first, and only the last 8 of the 20 survive.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].a, 12 + i);
  }
}

TEST(EventRingTest, ConcurrentEmitAndSnapshotStayConsistent) {
  // TSan coverage: four writers hammer one ring while a reader snapshots.
  // Every snapshot must hold only fully published events (a == 2 * b).
  ev::Ring ring(64);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::vector<ev::Event> got;
    while (!done.load(std::memory_order_acquire)) {
      ring.snapshot_into(got);
      for (const auto& e : got) {
        ASSERT_EQ(e.a, 2 * e.b) << "torn event escaped the tag check";
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < 2000; ++i) {
        const std::int64_t b = w * 10000 + i;
        ring.emit(make_event(1, 1, w, -1, ev::Type::kNote, 2 * b, b));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.emitted(), 8000u);
  std::vector<ev::Event> final_snap;
  ring.snapshot_into(final_snap);
  EXPECT_EQ(final_snap.size(), 64u);
}

TEST(EventJsonlTest, DumpParseIsAByteFixpoint) {
  std::vector<ev::Event> evs;
  evs.push_back(make_event(0, 0, -1, -1, ev::Type::kNote, 0, 0));
  evs.push_back(make_event(123456789012345ull, 42, 3, 17,
                           ev::Type::kFrameRx, 41, 950));
  evs.push_back(make_event(7, (1ull << 59) + 5, 0, -1,
                           ev::Type::kInstanceDecided, 1, -12345));
  evs.push_back(make_event(8, 9, 255, 2147483647, ev::Type::kDecision,
                           -9223372036854775807ll - 1, 9223372036854775807ll));
  const std::string text = ev::dump_jsonl(evs);
  const auto parsed = ev::parse_jsonl(text);
  ASSERT_EQ(parsed.size(), evs.size());
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(parsed[i], evs[i]) << "event " << i;
  }
  EXPECT_EQ(ev::dump_jsonl(parsed), text);  // the fixpoint
}

TEST(EventJsonlTest, MalformedLinesAreRejectedNotSkipped) {
  const std::string good =
      ev::dump_jsonl({make_event(1, 2, 0, -1, ev::Type::kNote, 0, 0)});
  EXPECT_NO_THROW(ev::parse_jsonl(good));
  // Blank line, wrong key order, unknown type name, trailing garbage.
  EXPECT_THROW(ev::parse_jsonl(good + "\n" + good), invalid_argument);
  EXPECT_THROW(
      ev::parse_jsonl(
          "{\"lc\":2,\"ts\":1,\"node\":0,\"inst\":-1,\"type\":\"note\","
          "\"a\":0,\"b\":0}\n"),
      invalid_argument);
  EXPECT_THROW(
      ev::parse_jsonl(
          "{\"ts\":1,\"lc\":2,\"node\":0,\"inst\":-1,\"type\":\"nope\","
          "\"a\":0,\"b\":0}\n"),
      invalid_argument);
  std::string trailing = good;
  trailing.insert(trailing.size() - 1, " ");
  EXPECT_THROW(ev::parse_jsonl(trailing), invalid_argument);
}

TEST(EventJsonlTest, TypeNamesRoundTrip) {
  for (std::uint16_t i = 0; i < static_cast<std::uint16_t>(ev::Type::kCount_);
       ++i) {
    const auto t = static_cast<ev::Type>(i);
    const auto back = ev::type_from_name(ev::type_name(t));
    ASSERT_TRUE(back.has_value()) << ev::type_name(t);
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(ev::type_from_name("unknown").has_value());
}

TEST(LamportTest, StampStripRoundTrip) {
  for (const std::uint64_t clock :
       {std::uint64_t{1}, std::uint64_t{0x3FFFFFFF},
        (std::uint64_t{1} << 59) + 12345}) {
    std::vector<int> meta{7, 1, 2};
    ev::stamp_lamport(meta, clock);
    ASSERT_EQ(meta.size(), 6u);
    EXPECT_EQ(meta.back(), ev::kLamportMetaTag);
    const auto got = ev::strip_lamport(meta);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, clock);
    EXPECT_EQ(meta, (std::vector<int>{7, 1, 2}));
  }
}

TEST(LamportTest, StripIsFailSafeOnUnstampedMeta) {
  std::vector<int> meta{1, 2, 3};
  EXPECT_FALSE(ev::strip_lamport(meta).has_value());
  EXPECT_EQ(meta, (std::vector<int>{1, 2, 3}));
  std::vector<int> short_meta{ev::kLamportMetaTag};
  EXPECT_FALSE(ev::strip_lamport(short_meta).has_value());
  // A tag with an out-of-range limb in front is not a stamp.
  std::vector<int> bad{0, -1, 5, ev::kLamportMetaTag};
  EXPECT_FALSE(ev::strip_lamport(bad).has_value());
  EXPECT_EQ(bad.size(), 4u);
}

TEST(LamportTest, TickAndMergeAreMonotone) {
  const std::uint64_t t0 = ev::lamport_now();
  const std::uint64_t t1 = ev::lamport_tick();
  EXPECT_GT(t1, t0);
  const std::uint64_t jumped = ev::lamport_merge(t1 + 1000);
  EXPECT_GT(jumped, t1 + 1000);
  // Merging an old stamp still moves forward.
  const std::uint64_t after = ev::lamport_merge(1);
  EXPECT_GT(after, jumped);
}

TEST(EventRecorderTest, EmitRecordsNodeAndInstance) {
  ev::set_node(37);
  const std::uint64_t before = ev::emitted_total();
  ev::emit(ev::Type::kNote, 123, 456, 789);
  ev::set_node(-1);
  EXPECT_EQ(ev::emitted_total(), before + 1);
  bool found = false;
  for (const auto& e : ev::snapshot()) {
    if (e.type == ev::Type::kNote && e.node == 37 && e.instance == 123 &&
        e.a == 456 && e.b == 789) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EventRecorderTest, DisabledEmitRecordsNothing) {
  ev::set_enabled(false);
  const std::uint64_t before = ev::emitted_total();
  ev::emit(ev::Type::kNote, 1, 2, 3);
  ev::set_enabled(true);
  EXPECT_EQ(ev::emitted_total(), before);
}

TEST(EventRecorderTest, ExportTraceWritesAParseableFixpoint) {
  ev::emit(ev::Type::kNote, -1, 11, 22);
  const std::string path = ::testing::TempDir() + "/events_export.jsonl";
  ASSERT_EQ(ev::export_trace(path), path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_EQ(ev::dump_jsonl(ev::parse_jsonl(text)), text);
  std::filesystem::remove(path);
}

/// Captures what a sim process sends, exactly as the engine would see it.
struct CapturingOutbox final : net::Outbox {
  std::vector<std::pair<net::ProcessId, net::Message>> sent;
  void send(net::ProcessId to, net::Message m) override {
    sent.emplace_back(to, std::move(m));
  }
};

TEST(SimTransportTest, NeverStampsMeta) {
  // The sim transport must pass messages through byte-identically -- a
  // Lamport stamp here would change ScheduleLog digests and break every
  // recorded repro. Only the TCP send path stamps.
  CapturingOutbox out;
  net::SimTransport st(out, 0, 4);
  net::Message m("rbc", {5, 6, 7}, Vec{1.0, 2.0});
  st.send(2, m);
  ASSERT_EQ(out.sent.size(), 1u);
  EXPECT_EQ(out.sent[0].first, 2u);
  EXPECT_EQ(out.sent[0].second.meta, (std::vector<int>{5, 6, 7}));
  EXPECT_FALSE(ev::strip_lamport(out.sent[0].second.meta).has_value());
}

class EventsJobsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    save("RBVC_JOBS", jobs_);
    save("RBVC_REPLAY", replay_);
    save("RBVC_FUZZ_EPISODES", episodes_);
    save("RBVC_TRACE_OUT", trace_out_);
    ::unsetenv("RBVC_REPLAY");
    ::unsetenv("RBVC_FUZZ_EPISODES");
  }
  void TearDown() override {
    restore("RBVC_JOBS", jobs_);
    restore("RBVC_REPLAY", replay_);
    restore("RBVC_FUZZ_EPISODES", episodes_);
    restore("RBVC_TRACE_OUT", trace_out_);
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  static void save(const char* name, std::pair<bool, std::string>& slot) {
    const char* v = std::getenv(name);
    slot = {v != nullptr, v ? v : ""};
  }
  static void restore(const char* name,
                      const std::pair<bool, std::string>& slot) {
    if (slot.first) {
      ::setenv(name, slot.second.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  std::pair<bool, std::string> jobs_;
  std::pair<bool, std::string> replay_;
  std::pair<bool, std::string> episodes_;
  std::pair<bool, std::string> trace_out_;
};

/// The parallel-determinism planted property (quorum below n - f makes
/// divergent views surface as disagreement on several episodes).
harness::AsyncProperty planted_property(const std::string& repro_dir) {
  harness::AsyncProperty prop;
  prop.name = "events_planted";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = 2;
    e.prm.use_witness = false;
    e.prm.quorum_override = 2;
    e.d = 2;
    e.honest_inputs = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
    e.scheduler = workload::SchedulerKind::kRandom;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = 24;
  prop.shrink_budget = 120;
  prop.repro_dir = repro_dir;
  return prop;
}

TEST_F(EventsJobsTest, ReproStaysByteIdenticalWithTraceSinkArmed) {
  // The flight recorder is always on, and RBVC_TRACE_OUT additionally arms
  // the at-exit sink; neither may perturb detection order, shrinking, or
  // the repro bytes across job counts.
  const std::string dir1 = ::testing::TempDir() + "/ev_jobs1";
  const std::string dir8 = ::testing::TempDir() + "/ev_jobs8";
  std::filesystem::create_directories(dir1);
  std::filesystem::create_directories(dir8);
  const std::string trace_path = ::testing::TempDir() + "/ev_trace.jsonl";
  ::setenv("RBVC_TRACE_OUT", trace_path.c_str(), 1);

  ::setenv("RBVC_JOBS", "1", 1);
  const auto serial =
      harness::check_property<harness::AsyncRunner>(planted_property(dir1));
  ASSERT_FALSE(serial.passed) << harness::describe(serial);
  ASSERT_FALSE(serial.repro_path.empty());

  ::setenv("RBVC_JOBS", "8", 1);
  const auto parallel =
      harness::check_property<harness::AsyncRunner>(planted_property(dir8));
  ASSERT_FALSE(parallel.passed) << harness::describe(parallel);

  EXPECT_EQ(parallel.failing_episode, serial.failing_episode);
  EXPECT_EQ(parallel.failure, serial.failure);
  EXPECT_EQ(slurp(parallel.repro_path), slurp(serial.repro_path));

  // The harness actually recorded episode markers along the way.
  std::size_t episode_events = 0;
  for (const auto& e : ev::snapshot()) {
    if (e.type == ev::Type::kEpisodeStart) ++episode_events;
  }
  EXPECT_GT(episode_events, 0u);
}

}  // namespace
}  // namespace rbvc
