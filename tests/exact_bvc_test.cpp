#include "consensus/exact_bvc.h"

#include <gtest/gtest.h>

#include "consensus/verifier.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc::consensus {
namespace {

TEST(ExactBvcTest, DecisionInsideGamma) {
  Rng rng(307);
  const auto s = workload::gaussian_cloud(rng, 6, 2);  // n=6 > (d+1)f=3
  const Vec p = exact_bvc_decision(1)(s);
  EXPECT_NEAR(gamma_excess(p, s, 1, 2.0), 0.0, 1e-6);
}

TEST(ExactBvcTest, ThrowsBelowBound) {
  Rng rng(311);
  const auto s = workload::random_simplex(rng, 3);  // n = d+1 = (d+1)f
  EXPECT_THROW(exact_bvc_decision(1)(s), infeasible_instance);
}

TEST(ExactBvcTest, EndToEndWithByzantine) {
  // n = (d+1)f + 1 = 5, d = 3, f = 1: exact validity must hold against
  // every Byzantine strategy.
  Rng rng(313);
  for (auto strat :
       {workload::SyncStrategy::kSilent, workload::SyncStrategy::kEquivocate,
        workload::SyncStrategy::kLyingRelay,
        workload::SyncStrategy::kOutlierInput}) {
    workload::SyncExperiment e;
    e.n = 5;
    e.f = 1;
    e.honest_inputs = workload::gaussian_cloud(rng, 4, 3);
    e.byzantine_ids = {1};
    e.strategy = strat;
    e.decision = exact_bvc_decision(1);
    e.seed = rng.next_u64();
    const auto out = run_sync_experiment(e);
    ASSERT_FALSE(out.decision_failed) << workload::to_string(strat);
    ASSERT_EQ(out.decisions.size(), 4u);
    EXPECT_TRUE(check_agreement(out.decisions).identical)
        << workload::to_string(strat);
    EXPECT_TRUE(check_exact_validity(out.decisions, out.honest_inputs, 1e-6))
        << workload::to_string(strat);
  }
}

TEST(ExactBvcTest, FTwoEndToEnd) {
  // d = 2, f = 2: n = (d+1)f + 1 = 7.
  Rng rng(317);
  workload::SyncExperiment e;
  e.n = 7;
  e.f = 2;
  e.honest_inputs = workload::gaussian_cloud(rng, 5, 2);
  e.byzantine_ids = {0, 4};
  e.strategy = workload::SyncStrategy::kEquivocate;
  e.decision = exact_bvc_decision(2);
  const auto out = run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  EXPECT_TRUE(check_exact_validity(out.decisions, out.honest_inputs, 1e-6));
}

TEST(ExactBvcTest, FailsEndToEndBelowBound) {
  // n = (d+1)f = 4 with a simplex input: Gamma can be empty -> the run
  // reports failure instead of silently mis-deciding.
  Rng rng(331);
  workload::SyncExperiment e;
  e.n = 4;
  e.f = 1;
  e.honest_inputs = workload::random_simplex(rng, 3);
  e.honest_inputs.pop_back();  // 3 honest
  e.byzantine_ids = {3};
  e.strategy = workload::SyncStrategy::kOutlierInput;
  e.decision = exact_bvc_decision(1);
  const auto out = run_sync_experiment(e);
  // Depending on the Byzantine input geometry Gamma may or may not be
  // empty; with a far outlier it is (the three honest + outlier form a
  // simplex-ish configuration). Either the run fails or validity holds.
  if (!out.decision_failed) {
    EXPECT_TRUE(check_exact_validity(out.decisions, out.honest_inputs, 1e-5));
  } else {
    EXPECT_FALSE(out.failure.empty());
  }
}

}  // namespace
}  // namespace rbvc::consensus
