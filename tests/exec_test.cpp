// Work-stealing executor contract tests: exactly-once execution, the
// lowest-hit find_first guarantee (including "every index below the hit
// ran"), exception propagation, pool reuse, the serial inline path, env
// knob parsing, and the exec.* metric deltas. Runs under the `tsan` ctest
// label -- these tests are the data-race canary for the pool.
#include "exec/parallel_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace rbvc::exec {
namespace {

/// Saves/restores RBVC_JOBS around each test so knob tests can't leak into
/// the rest of the suite (or inherit CI's setting).
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* v = std::getenv("RBVC_JOBS");
    had_jobs_ = v != nullptr;
    if (had_jobs_) saved_jobs_ = v;
    ::unsetenv("RBVC_JOBS");
  }
  void TearDown() override {
    if (had_jobs_) {
      ::setenv("RBVC_JOBS", saved_jobs_.c_str(), 1);
    } else {
      ::unsetenv("RBVC_JOBS");
    }
  }

 private:
  bool had_jobs_ = false;
  std::string saved_jobs_;
};

TEST_F(ExecTest, ParallelForRunsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 257;  // not a multiple of the worker count
  ParallelExecutor pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ExecTest, ParallelForZeroAndOneTasks) {
  ParallelExecutor pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(ExecTest, FindFirstReturnsLowestHit) {
  ParallelExecutor pool(4);
  const std::size_t hit = pool.find_first(
      200, [](std::size_t i) { return i == 11 || i == 37 || i == 150; });
  EXPECT_EQ(hit, 11u);
}

TEST_F(ExecTest, FindFirstNoHitReturnsNoIndex) {
  ParallelExecutor pool(4);
  EXPECT_EQ(pool.find_first(100, [](std::size_t) { return false; }),
            kNoIndex);
  EXPECT_EQ(pool.find_first(0, [](std::size_t) { return true; }), kNoIndex);
}

TEST_F(ExecTest, FindFirstRanEveryIndexBelowTheHit) {
  // The determinism contract: indices above the hit may be skipped, but
  // everything below it must have executed (and missed). Repeat to give a
  // racy implementation chances to misbehave.
  constexpr std::size_t kN = 300;
  constexpr std::size_t kHit = 201;
  for (int round = 0; round < 10; ++round) {
    ParallelExecutor pool(8);
    std::vector<std::atomic<int>> ran(kN);
    const std::size_t hit = pool.find_first(kN, [&](std::size_t i) {
      ran[i].fetch_add(1, std::memory_order_relaxed);
      return i >= kHit;  // several hits; lowest is kHit
    });
    ASSERT_EQ(hit, kHit) << "round " << round;
    for (std::size_t i = 0; i < kHit; ++i) {
      EXPECT_EQ(ran[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST_F(ExecTest, ExceptionPropagatesAndPoolStaysUsable) {
  ParallelExecutor pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("episode 13");
                                   }
                                 }),
               std::runtime_error);
  // The pool must have fully drained: the next batch runs normally.
  std::vector<std::atomic<int>> hits(32);
  pool.parallel_for(32, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_F(ExecTest, ReuseAcrossMixedBatches) {
  ParallelExecutor pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
    EXPECT_EQ(pool.find_first(50, [&](std::size_t i) { return i == 42; }),
              42u);
  }
}

TEST_F(ExecTest, SerialPoolRunsInlineInIndexOrder) {
  ParallelExecutor pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  std::vector<std::size_t> order;  // no lock needed: inline on this thread
  pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(ExecTest, EnvJobsParsing) {
  ::unsetenv("RBVC_JOBS");
  EXPECT_EQ(env_jobs(), 0u);
  ::setenv("RBVC_JOBS", "6", 1);
  EXPECT_EQ(env_jobs(), 6u);
  EXPECT_EQ(default_jobs(), 6u);
  ::setenv("RBVC_JOBS", "0", 1);
  EXPECT_EQ(env_jobs(), 0u);
  ::setenv("RBVC_JOBS", "garbage", 1);
  EXPECT_EQ(env_jobs(), 0u);
  ::unsetenv("RBVC_JOBS");
  EXPECT_GE(default_jobs(), 1u);
}

TEST_F(ExecTest, ZeroWidthMeansDefaultJobs) {
  ::setenv("RBVC_JOBS", "3", 1);
  ParallelExecutor pool(0);
  EXPECT_EQ(pool.jobs(), 3u);
}

TEST_F(ExecTest, ExecMetricsCountTasks) {
  auto& tasks = obs::global().counter("exec.tasks");
  const std::uint64_t before = tasks.value();
  {
    ParallelExecutor pool(4);
    pool.parallel_for(128, [](std::size_t) {});
  }
  EXPECT_EQ(tasks.value() - before, 128u);
  // Serial inline path counts too.
  {
    ParallelExecutor pool(1);
    pool.parallel_for(16, [](std::size_t) {});
  }
  EXPECT_EQ(tasks.value() - before, 144u);
}

TEST_F(ExecTest, SkippedTasksAccountedOnEarlyExit) {
  auto& tasks = obs::global().counter("exec.tasks");
  auto& skipped = obs::global().counter("exec.tasks_skipped");
  const std::uint64_t tasks_before = tasks.value();
  const std::uint64_t skipped_before = skipped.value();
  ParallelExecutor pool(4);
  const std::size_t hit =
      pool.find_first(1000, [](std::size_t i) { return i >= 3; });
  EXPECT_EQ(hit, 3u);
  // Every index is accounted exactly once, as a run or as a skip.
  EXPECT_EQ((tasks.value() - tasks_before) +
                (skipped.value() - skipped_before),
            1000u);
  EXPECT_GE(tasks.value() - tasks_before, 4u);  // 0..3 provably ran
}

}  // namespace
}  // namespace rbvc::exec
