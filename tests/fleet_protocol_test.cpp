// Fleet protocol codec (fleet/protocol.h): encode/decode fixpoint for
// every coordinator<->worker message, named rejection of truncated and
// garbage-extended bodies (mirroring wire_codec_test), fleet-specific
// body validation (reversed ranges, out-of-shard failing index), and the
// framed forms round-tripping through the shared net/wire framing.

#include <gtest/gtest.h>

#include <string>

#include "fleet/protocol.h"

namespace fl = rbvc::fleet;
namespace w = rbvc::net::wire;

namespace {

fl::ShardResult sample_result() {
  fl::ShardResult r;
  r.shard_id = 7;
  r.begin = 32;
  r.end = 48;
  r.failing = 41;
  r.metrics_json = "{\"counters\":{\"fleet.shard.episodes\":16}}";
  return r;
}

fl::FailureReport sample_failure() {
  fl::FailureReport f;
  f.episode = 41;
  f.original_len = 399;
  f.shrunk_len = 377;
  f.message = "agreement: pairwise decision distance exceeds eps";
  // std::string(ptr, len): keeps the embedded NUL a char* would truncate.
  f.repro_text = std::string("rbvc-repro v3\nmode async\n\0\xff bytes\n", 34);
  return f;
}

TEST(FleetProtocol, HelloRoundTripFixpoint) {
  const fl::Hello h{12345, 8};
  const std::string body = fl::encode_hello(h);
  const fl::Hello back = fl::decode_hello(body);
  EXPECT_EQ(back, h);
  EXPECT_EQ(fl::encode_hello(back), body);
}

TEST(FleetProtocol, AssignRoundTripFixpoint) {
  const fl::Assign a{3, 128, 256};
  const std::string body = fl::encode_assign(a);
  const fl::Assign back = fl::decode_assign(body);
  EXPECT_EQ(back, a);
  EXPECT_EQ(fl::encode_assign(back), body);
}

TEST(FleetProtocol, ResultRoundTripFixpoint) {
  const fl::ShardResult r = sample_result();
  const std::string body = fl::encode_result(r);
  const fl::ShardResult back = fl::decode_result(body);
  EXPECT_EQ(back, r);
  EXPECT_EQ(fl::encode_result(back), body);
}

TEST(FleetProtocol, CleanResultUsesNoEpisodeSentinel) {
  fl::ShardResult r = sample_result();
  r.failing = fl::kNoEpisode;
  const fl::ShardResult back = fl::decode_result(fl::encode_result(r));
  EXPECT_EQ(back.failing, fl::kNoEpisode);
  EXPECT_EQ(back, r);
}

TEST(FleetProtocol, FailureRoundTripFixpoint) {
  // Repro text includes embedded NUL and high bytes: the codec must treat
  // it as opaque bytes, since real repro files embed trace dumps.
  const fl::FailureReport f = sample_failure();
  const std::string body = fl::encode_failure(f);
  const fl::FailureReport back = fl::decode_failure(body);
  EXPECT_EQ(back, f);
  EXPECT_EQ(fl::encode_failure(back), body);
}

TEST(FleetProtocol, HeartbeatRoundTripFixpoint) {
  const fl::Heartbeat hb{987654321};
  const std::string body = fl::encode_heartbeat(hb);
  EXPECT_EQ(fl::decode_heartbeat(body), hb);
  EXPECT_EQ(fl::encode_heartbeat(fl::decode_heartbeat(body)), body);
}

TEST(FleetProtocol, TruncatedBodiesRejectedEverywhere) {
  // Every strict prefix of every message body must throw, never decode.
  const std::string bodies[] = {
      fl::encode_hello(fl::Hello{1, 2}),
      fl::encode_assign(fl::Assign{3, 4, 5}),
      fl::encode_result(sample_result()),
      fl::encode_failure(sample_failure()),
      fl::encode_heartbeat(fl::Heartbeat{6}),
  };
  for (std::size_t which = 0; which < 5; ++which) {
    const std::string& body = bodies[which];
    for (std::size_t cut = 0; cut < body.size(); ++cut) {
      const std::string prefix = body.substr(0, cut);
      EXPECT_THROW(
          {
            switch (which) {
              case 0: fl::decode_hello(prefix); break;
              case 1: fl::decode_assign(prefix); break;
              case 2: fl::decode_result(prefix); break;
              case 3: fl::decode_failure(prefix); break;
              default: fl::decode_heartbeat(prefix); break;
            }
          },
          w::WireError)
          << "message " << which << " decoded a " << cut << "-byte prefix";
    }
  }
}

TEST(FleetProtocol, TrailingGarbageRejectedByName) {
  std::string body = fl::encode_assign(fl::Assign{1, 2, 3});
  body.push_back('\0');
  EXPECT_THROW(
      {
        try {
          fl::decode_assign(body);
        } catch (const w::WireError& e) {
          EXPECT_STREQ(e.what(), "wire: trailing garbage");
          throw;
        }
      },
      w::WireError);
}

TEST(FleetProtocol, ReversedAssignRangeRejected) {
  EXPECT_THROW(
      {
        try {
          fl::decode_assign(fl::encode_assign(fl::Assign{0, 10, 9}));
        } catch (const w::WireError& e) {
          EXPECT_STREQ(e.what(), "wire: fleet assign range reversed");
          throw;
        }
      },
      w::WireError);
}

TEST(FleetProtocol, OutOfShardFailingIndexRejected) {
  fl::ShardResult r = sample_result();
  r.failing = r.end;  // one past the shard: forged
  EXPECT_THROW(
      {
        try {
          fl::decode_result(fl::encode_result(r));
        } catch (const w::WireError& e) {
          EXPECT_STREQ(e.what(),
                       "wire: fleet result failing index outside its shard");
          throw;
        }
      },
      w::WireError);
}

TEST(FleetProtocol, FramedFormsRoundTripThroughWireFraming) {
  // The fleet types ride the shared framing: frame_* output must unframe
  // into (type, body) pairs the body codecs invert exactly.
  std::string stream = fl::frame_hello(fl::Hello{9, 4}) +
                       fl::frame_assign(fl::Assign{0, 0, 16}) +
                       fl::frame_result(sample_result()) +
                       fl::frame_failure(sample_failure()) +
                       fl::frame_heartbeat(fl::Heartbeat{3}) +
                       fl::frame_shutdown();
  auto f = w::try_unframe(stream);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, w::FrameType::kFleetHello);
  EXPECT_EQ(fl::decode_hello(f->body), (fl::Hello{9, 4}));
  f = w::try_unframe(stream);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, w::FrameType::kFleetAssign);
  EXPECT_EQ(fl::decode_assign(f->body), (fl::Assign{0, 0, 16}));
  f = w::try_unframe(stream);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, w::FrameType::kFleetResult);
  EXPECT_EQ(fl::decode_result(f->body), sample_result());
  f = w::try_unframe(stream);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, w::FrameType::kFleetFailure);
  EXPECT_EQ(fl::decode_failure(f->body), sample_failure());
  f = w::try_unframe(stream);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, w::FrameType::kFleetHeartbeat);
  EXPECT_EQ(fl::decode_heartbeat(f->body), (fl::Heartbeat{3}));
  f = w::try_unframe(stream);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, w::FrameType::kFleetShutdown);
  EXPECT_TRUE(f->body.empty());
  EXPECT_TRUE(stream.empty());
  EXPECT_FALSE(w::try_unframe(stream).has_value());
}

TEST(FleetProtocol, PartialFrameStaysBuffered) {
  // A half-received frame must not decode (or consume bytes) until the
  // rest arrives -- the coordinator feeds recv chunks straight in.
  const std::string full = fl::frame_result(sample_result());
  std::string stream = full.substr(0, full.size() / 2);
  EXPECT_FALSE(w::try_unframe(stream).has_value());
  EXPECT_EQ(stream.size(), full.size() / 2);
  stream += full.substr(full.size() / 2);
  const auto f = w::try_unframe(stream);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(fl::decode_result(f->body), sample_result());
}

}  // namespace
